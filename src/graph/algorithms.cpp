#include "graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sparse/coo.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/transpose.hpp"

namespace nsparse::graph {

namespace {

SpgemmFn<double> default_engine(const SpgemmFn<double>& engine)
{
    if (engine) { return engine; }
    return [](sim::Device& d, const CsrMatrix<double>& x, const CsrMatrix<double>& y) {
        return hash_spgemm<double>(d, x, y);
    };
}

void check_adjacency(const CsrMatrix<double>& a)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "adjacency matrix must be square");
}

}  // namespace

wide_t triangle_count(sim::Device& dev, const CsrMatrix<double>& adjacency,
                      const SpgemmFn<double>& engine)
{
    check_adjacency(adjacency);
    auto a = adjacency;
    a.sort_rows();
    // force 0/1 weights and no self loops
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            a.val[to_size(k)] = a.col[to_size(k)] == i ? 0.0 : 1.0;
        }
    }
    const auto sq = default_engine(engine)(dev, a, a);

    // sum (A^2)_ij over the edges of A (Hadamard mask), / 6.
    double sum = 0.0;
    for (index_t i = 0; i < a.rows; ++i) {
        auto ec = a.row_cols(i);
        auto ev = a.row_vals(i);
        auto sc = sq.matrix.row_cols(i);
        auto sv = sq.matrix.row_vals(i);
        std::size_t x = 0;
        for (std::size_t e = 0; e < ec.size(); ++e) {
            if (ev[e] == 0.0) { continue; }
            while (x < sc.size() && sc[x] < ec[e]) { ++x; }
            if (x < sc.size() && sc[x] == ec[e]) { sum += sv[x]; }
        }
    }
    return static_cast<wide_t>(std::llround(sum / 6.0));
}

BfsResult multi_source_bfs(sim::Device& dev, const CsrMatrix<double>& adjacency,
                           std::span<const index_t> sources, const SpgemmFn<double>& engine)
{
    check_adjacency(adjacency);
    const auto run = default_engine(engine);
    const index_t n = adjacency.rows;
    const auto s = to_index(sources.size());
    NSPARSE_EXPECTS(s > 0, "bfs needs at least one source");
    for (const index_t src : sources) {
        NSPARSE_EXPECTS(src >= 0 && src < n, "bfs source out of range");
    }
    const auto at = transpose(adjacency);

    BfsResult result;
    result.distances.assign(to_size(s), std::vector<index_t>(to_size(n), -1));

    // Frontier: n x s sparse matrix, one unit column entry per source.
    CsrMatrix<double> frontier = CsrMatrix<double>::zero(n, s);
    {
        CooMatrix<double> coo;
        coo.rows = n;
        coo.cols = s;
        for (index_t k = 0; k < s; ++k) {
            coo.row.push_back(sources[to_size(k)]);
            coo.col.push_back(k);
            coo.val.push_back(1.0);
            result.distances[to_size(k)][to_size(sources[to_size(k)])] = 0;
        }
        coo.sort();
        frontier = to_csr(coo);
    }

    for (index_t level = 1; frontier.nnz() > 0 && level <= n; ++level) {
        const auto next = run(dev, at, frontier);  // A^T F: reachable in one step
        result.spgemm_products += next.stats.intermediate_products;
        result.spgemm_seconds += next.stats.seconds;

        // mask: keep only first-time visits, rebuild the frontier
        CooMatrix<double> coo;
        coo.rows = n;
        coo.cols = s;
        for (index_t v = 0; v < n; ++v) {
            for (index_t k = next.matrix.rpt[to_size(v)];
                 k < next.matrix.rpt[to_size(v) + 1]; ++k) {
                const index_t src = next.matrix.col[to_size(k)];
                auto& dist = result.distances[to_size(src)][to_size(v)];
                if (dist < 0) {
                    dist = level;
                    coo.row.push_back(v);
                    coo.col.push_back(src);
                    coo.val.push_back(1.0);
                }
            }
        }
        coo.sort();
        frontier = to_csr(coo);
        if (frontier.nnz() == 0) { break; }
        result.levels = level;  // a level only counts if it visited something
    }
    return result;
}

MclResult markov_clustering(sim::Device& dev, const CsrMatrix<double>& adjacency,
                            const MclOptions& opt, const SpgemmFn<double>& engine)
{
    check_adjacency(adjacency);
    const auto run = default_engine(engine);
    const index_t n = adjacency.rows;

    // column-stochastic start with self loops
    CsrMatrix<double> m;
    {
        CooMatrix<double> coo = to_coo(adjacency);
        for (index_t i = 0; i < n; ++i) {
            coo.row.push_back(i);
            coo.col.push_back(i);
            coo.val.push_back(1.0);
        }
        coo.compress();
        m = to_csr(coo);
    }
    const auto normalize_columns = [n](CsrMatrix<double>& x) {
        std::vector<double> colsum(to_size(n), 0.0);
        for (std::size_t k = 0; k < x.col.size(); ++k) { colsum[to_size(x.col[k])] += x.val[k]; }
        for (std::size_t k = 0; k < x.col.size(); ++k) {
            if (colsum[to_size(x.col[k])] > 0.0) { x.val[k] /= colsum[to_size(x.col[k])]; }
        }
    };
    normalize_columns(m);

    MclResult result;
    for (int it = 0; it < opt.max_iterations; ++it) {
        const auto sq = run(dev, m, m);  // expansion
        result.spgemm_products += sq.stats.intermediate_products;
        result.spgemm_seconds += sq.stats.seconds;
        ++result.iterations;

        // inflation: elementwise power, column renormalise, prune
        CsrMatrix<double> next;
        next.rows = next.cols = n;
        next.rpt.assign(to_size(n) + 1, 0);
        std::vector<double> colsum(to_size(n), 0.0);
        for (std::size_t k = 0; k < sq.matrix.col.size(); ++k) {
            colsum[to_size(sq.matrix.col[k])] += std::pow(sq.matrix.val[k], opt.inflation);
        }
        for (index_t i = 0; i < n; ++i) {
            for (index_t k = sq.matrix.rpt[to_size(i)]; k < sq.matrix.rpt[to_size(i) + 1];
                 ++k) {
                const index_t j = sq.matrix.col[to_size(k)];
                const double denom = colsum[to_size(j)];
                const double v =
                    denom > 0.0 ? std::pow(sq.matrix.val[to_size(k)], opt.inflation) / denom
                                : 0.0;
                if (v > opt.prune_threshold) {
                    next.col.push_back(j);
                    next.val.push_back(v);
                }
            }
            next.rpt[to_size(i) + 1] = to_index(next.col.size());
        }
        next.validate();
        normalize_columns(next);

        // convergence: nnz pattern and values stable
        if (next.rpt == m.rpt && next.col == m.col) {
            double max_diff = 0.0;
            for (std::size_t k = 0; k < next.val.size(); ++k) {
                max_diff = std::max(max_diff, std::abs(next.val[k] - m.val[k]));
            }
            m = std::move(next);
            if (max_diff < opt.convergence_tol) { break; }
        } else {
            m = std::move(next);
        }
    }

    // clusters: vertices sharing an attractor row
    result.cluster_of.assign(to_size(n), -1);
    index_t next_cluster = 0;
    for (index_t i = 0; i < n; ++i) {  // attractor rows have mass on row i
        bool attractor = false;
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            if (m.col[to_size(k)] == i && m.val[to_size(k)] > 0.25) { attractor = true; }
        }
        if (!attractor) { continue; }
        const index_t c = next_cluster++;
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            if (m.val[to_size(k)] > 0.1) {
                result.cluster_of[to_size(m.col[to_size(k)])] = c;
            }
        }
    }
    // attach unassigned vertices to their own singleton clusters
    for (index_t v = 0; v < n; ++v) {
        if (result.cluster_of[to_size(v)] < 0) { result.cluster_of[to_size(v)] = next_cluster++; }
    }
    result.clusters = next_cluster;
    return result;
}

}  // namespace nsparse::graph
