// Graph algorithms built on SpGEMM — the paper's second motivating domain
// (§I cites graph clustering [2] and BFS [3], the Combinatorial-BLAS view
// of graph computation as sparse linear algebra).
//
// Every multiplication goes through a pluggable SpgemmFn (defaults to the
// paper's hash SpGEMM on a caller-provided simulated device), so these
// double as application-level workloads with the rectangular and
// mask-heavy products graph processing produces.
#pragma once

#include <vector>

#include "core/spgemm.hpp"
#include "gpusim/algorithm.hpp"

namespace nsparse::graph {

/// Number of triangles in a simple undirected graph given its symmetric
/// 0/1 adjacency matrix: sum over edges (i,j) of (A^2)_ij, divided by 6.
/// The A^2 runs on the device through `engine`.
wide_t triangle_count(sim::Device& dev, const CsrMatrix<double>& adjacency,
                      const SpgemmFn<double>& engine = {});

/// Multi-source BFS as iterated SpGEMM on a boolean-like semiring:
/// frontier matrix F (n x sources) is expanded by F' = A^T F and masked by
/// the visited set each level. Returns per-source distance vectors
/// (-1 = unreachable).
struct BfsResult {
    std::vector<std::vector<index_t>> distances;  ///< [source][vertex]
    int levels = 0;
    wide_t spgemm_products = 0;
    double spgemm_seconds = 0.0;
};
BfsResult multi_source_bfs(sim::Device& dev, const CsrMatrix<double>& adjacency,
                           std::span<const index_t> sources,
                           const SpgemmFn<double>& engine = {});

/// Markov clustering (Van Dongen): expansion = squaring the column-
/// stochastic matrix via SpGEMM, inflation = elementwise power + column
/// renormalisation + pruning. Returns a cluster id per vertex.
struct MclOptions {
    int max_iterations = 30;
    double inflation = 2.0;
    double prune_threshold = 1e-4;
    double convergence_tol = 1e-6;  ///< stop when the matrix stops changing
};
struct MclResult {
    std::vector<index_t> cluster_of;  ///< per vertex
    index_t clusters = 0;
    int iterations = 0;
    wide_t spgemm_products = 0;
    double spgemm_seconds = 0.0;
};
MclResult markov_clustering(sim::Device& dev, const CsrMatrix<double>& adjacency,
                            const MclOptions& opt = {}, const SpgemmFn<double>& engine = {});

}  // namespace nsparse::graph
