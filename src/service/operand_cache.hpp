// Content-addressed operand cache of the session layer (ROADMAP
// "plan/operand caching + QoS").
//
// Operands are keyed by a 128-bit content fingerprint over their CSR bytes
// (rpt, col, val) plus dimensions and element width — NOT by pointer, so a
// caller that mutates a matrix in place and resubmits it gets a clean miss
// instead of a stale artifact. Two stores hang off the fingerprints:
//
//   plan artifacts — host-side core::detail::CachedPlanArtifacts keyed by
//     the (fpA, fpB) pair: product counts, exact row-nnz histogram,
//     numeric grouping, fitted estimation model. Bounded by a host byte
//     budget with LRU eviction (pinned entries are never evicted).
//
//   device residency — uploaded DeviceCsr copies keyed per operand, so a
//     warm request skips the H2D upload. Bounded by a device byte budget
//     with LRU eviction; evicted and invalidated under memory pressure
//     and after device reclaim (the session orders eviction *before* the
//     slab-fallback rung of the recovery ladder).
//
// The cache itself is policy-free bookkeeping: the Session decides when to
// consult, insert, pin, evict and invalidate, and logs every hit, miss and
// eviction as session_cache_* events (service/session.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/plan_cache.hpp"
#include "gpusim/device_csr.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace nsparse {

/// 128-bit FNV-1a content fingerprint of one CSR operand.
struct OperandFingerprint {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    [[nodiscard]] bool operator==(const OperandFingerprint&) const = default;
    [[nodiscard]] bool valid() const { return lo != 0 || hi != 0; }
};

/// Key of a plan-artifact entry: the fingerprints of both operands.
struct OperandPairKey {
    OperandFingerprint a;
    OperandFingerprint b;

    [[nodiscard]] bool operator==(const OperandPairKey&) const = default;
};

struct OperandFingerprintHash {
    [[nodiscard]] std::size_t operator()(const OperandFingerprint& f) const
    {
        return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9E3779B97F4A7C15ULL));
    }
};

struct OperandPairKeyHash {
    [[nodiscard]] std::size_t operator()(const OperandPairKey& k) const
    {
        const OperandFingerprintHash h;
        return h(k.a) ^ (h(k.b) * 0x100000001B3ULL + 0x9E3779B9U);
    }
};

/// Fingerprints the full content of `m`: dims, element width and the raw
/// bytes of rpt/col/val. Deterministic across runs and processes.
template <ValueType T>
[[nodiscard]] OperandFingerprint fingerprint_operand(const CsrMatrix<T>& m);

struct OperandCacheConfig {
    /// Master switch. Off (the default) keeps every request cold — the
    /// cache changes admission inputs (resident bytes raise live_bytes)
    /// and mirrors events into the trace, so it is strictly opt-in.
    bool enabled = false;

    /// Host bytes of retained plan artifacts before LRU eviction.
    std::size_t plan_budget_bytes = std::size_t{64} << 20;

    /// Device bytes of retained operand residency before LRU eviction;
    /// 0 disables residency entirely (plan artifacts still cached).
    std::size_t residency_budget_bytes = std::size_t{256} << 20;
};

/// One eviction the cache performed (for session logging).
struct CacheEviction {
    bool residency = false;  ///< false: plan artifacts
    std::uint64_t key_lo = 0;
    std::size_t bytes = 0;
};

/// Lifetime counters; hit/miss pairs partition the respective lookups.
struct OperandCacheStats {
    std::uint64_t plan_hits = 0;
    std::uint64_t plan_misses = 0;
    std::uint64_t plan_evictions = 0;
    std::uint64_t residency_hits = 0;
    std::uint64_t residency_misses = 0;
    std::uint64_t residency_evictions = 0;
    std::uint64_t invalidations = 0;  ///< entries dropped by invalidate_residency
};

class OperandCache {
public:
    explicit OperandCache(OperandCacheConfig cfg = {}) : cfg_(cfg) {}

    [[nodiscard]] const OperandCacheConfig& config() const { return cfg_; }
    [[nodiscard]] const OperandCacheStats& stats() const { return stats_; }

    // ---- plan artifacts (keyed by operand pair) -------------------------

    /// Looks up the pair's artifacts, counting a hit or miss and bumping
    /// LRU recency. The pointer stays valid until the entry is evicted
    /// (pin it across any insert_plan call to guarantee that).
    [[nodiscard]] const core::detail::CachedPlanArtifacts* find_plan(const OperandPairKey& key);

    /// Inserts (or replaces) the pair's artifacts, then evicts unpinned
    /// plan entries in LRU order until the host budget holds. Evictions
    /// are appended to `evicted` when non-null.
    void insert_plan(const OperandPairKey& key, core::detail::CachedPlanArtifacts art,
                     std::vector<CacheEviction>* evicted = nullptr);

    void pin_plan(const OperandPairKey& key);
    void unpin_plan(const OperandPairKey& key);

    [[nodiscard]] std::size_t plan_bytes() const { return plan_bytes_; }
    [[nodiscard]] std::size_t plan_entries() const { return plans_.size(); }

    // ---- device residency (keyed per operand) ---------------------------

    /// Looks up a resident device copy, counting a hit or miss and
    /// bumping recency. Valid until evicted or invalidated.
    template <ValueType T>
    [[nodiscard]] const sim::DeviceCsr<T>* find_resident(const OperandFingerprint& fp)
    {
        auto& map = residency_map<T>();
        const auto it = map.find(fp);
        if (it == map.end()) {
            ++stats_.residency_misses;
            return nullptr;
        }
        ++stats_.residency_hits;
        it->second.tick = ++tick_;
        return &it->second.csr;
    }

    /// Inserts a resident copy (replacing any previous one), then evicts
    /// unpinned residency in LRU order until the device budget holds.
    /// No-op (drops `csr`) when residency is disabled by config.
    template <ValueType T>
    void insert_resident(const OperandFingerprint& fp, sim::DeviceCsr<T> csr,
                         std::vector<CacheEviction>* evicted = nullptr)
    {
        if (cfg_.residency_budget_bytes == 0) { return; }
        auto& map = residency_map<T>();
        const std::size_t bytes = residency_bytes_of(csr);
        auto [it, fresh] = map.try_emplace(fp);
        if (!fresh) { residency_bytes_ -= it->second.bytes; }
        it->second.csr = std::move(csr);
        it->second.bytes = bytes;
        it->second.tick = ++tick_;
        residency_bytes_ += bytes;
        evict_residency_over_budget(evicted);
    }

    template <ValueType T>
    void pin_resident(const OperandFingerprint& fp)
    {
        const auto it = residency_map<T>().find(fp);
        if (it != residency_map<T>().end()) { ++it->second.pins; }
    }

    template <ValueType T>
    void unpin_resident(const OperandFingerprint& fp)
    {
        const auto it = residency_map<T>().find(fp);
        if (it != residency_map<T>().end() && it->second.pins > 0) { --it->second.pins; }
    }

    /// Evicts unpinned residency entries in LRU order until at most
    /// `target_bytes` remain resident (0 = evict everything unpinned).
    /// Used by the session under device-memory pressure, before the slab
    /// rung of the recovery ladder.
    std::vector<CacheEviction> evict_residency_to(std::size_t target_bytes);

    /// Drops every residency entry, pinned or not (device reclaim makes
    /// the device state suspect). Returns the number of entries dropped.
    std::size_t invalidate_residency();

    [[nodiscard]] std::size_t residency_bytes() const { return residency_bytes_; }
    [[nodiscard]] std::size_t residency_entries() const
    {
        return res_f_.size() + res_d_.size();
    }

    /// Drops everything (plans + residency) without counting evictions.
    void clear();

private:
    struct PlanEntry {
        core::detail::CachedPlanArtifacts art;
        std::size_t bytes = 0;
        std::uint64_t tick = 0;
        int pins = 0;
    };

    template <ValueType T>
    struct ResidencyEntry {
        sim::DeviceCsr<T> csr;
        std::size_t bytes = 0;
        std::uint64_t tick = 0;
        int pins = 0;
    };

    template <ValueType T>
    [[nodiscard]] std::unordered_map<OperandFingerprint, ResidencyEntry<T>,
                                     OperandFingerprintHash>&
    residency_map()
    {
        if constexpr (std::is_same_v<T, float>) {
            return res_f_;
        } else {
            return res_d_;
        }
    }

    template <ValueType T>
    [[nodiscard]] static std::size_t residency_bytes_of(const sim::DeviceCsr<T>& c)
    {
        return (c.rpt.size() + c.col.size()) * sizeof(index_t) + c.val.size() * sizeof(T);
    }

    void evict_plans_over_budget(std::vector<CacheEviction>* evicted);
    void evict_residency_over_budget(std::vector<CacheEviction>* evicted);
    bool evict_residency_lru(std::vector<CacheEviction>* evicted);

    /// Removes the least-recently-used unpinned entry of `map`; returns
    /// false when every entry is pinned (eviction stalls rather than
    /// touching in-flight operands).
    template <ValueType T>
    bool evict_one_lru(
        std::unordered_map<OperandFingerprint, ResidencyEntry<T>, OperandFingerprintHash>& map,
        std::vector<CacheEviction>* evicted)
    {
        auto victim = map.end();
        for (auto it = map.begin(); it != map.end(); ++it) {
            if (it->second.pins > 0) { continue; }
            if (victim == map.end() || it->second.tick < victim->second.tick) { victim = it; }
        }
        if (victim == map.end()) { return false; }
        if (evicted != nullptr) {
            evicted->push_back({true, victim->first.lo, victim->second.bytes});
        }
        residency_bytes_ -= victim->second.bytes;
        ++stats_.residency_evictions;
        map.erase(victim);
        return true;
    }

    OperandCacheConfig cfg_;
    OperandCacheStats stats_;
    std::unordered_map<OperandPairKey, PlanEntry, OperandPairKeyHash> plans_;
    std::unordered_map<OperandFingerprint, ResidencyEntry<float>, OperandFingerprintHash>
        res_f_;
    std::unordered_map<OperandFingerprint, ResidencyEntry<double>, OperandFingerprintHash>
        res_d_;
    std::size_t plan_bytes_ = 0;
    std::size_t residency_bytes_ = 0;
    std::uint64_t tick_ = 0;
};

extern template OperandFingerprint fingerprint_operand(const CsrMatrix<float>&);
extern template OperandFingerprint fingerprint_operand(const CsrMatrix<double>&);

}  // namespace nsparse
