#include "service/operand_cache.hpp"

#include <utility>

namespace nsparse {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

template <ValueType T>
OperandFingerprint fingerprint_operand(const CsrMatrix<T>& m)
{
    // Two independent FNV-1a streams (different offset bases) over the
    // same bytes give a 128-bit fingerprint; a collision would need both
    // 64-bit streams to collide simultaneously.
    const struct {
        index_t rows, cols, nnz;
        std::uint32_t elem;
    } header{m.rows, m.cols, m.nnz(), static_cast<std::uint32_t>(sizeof(T))};
    std::uint64_t lo = 14695981039346656037ULL;
    std::uint64_t hi = 0x9E3779B97F4A7C15ULL;
    const auto mix = [&](const void* data, std::size_t n) {
        lo = fnv1a(lo, data, n);
        hi = fnv1a(hi, data, n);
    };
    mix(&header, sizeof(header));
    mix(m.rpt.data(), m.rpt.size() * sizeof(index_t));
    mix(m.col.data(), m.col.size() * sizeof(index_t));
    mix(m.val.data(), m.val.size() * sizeof(T));
    OperandFingerprint fp{lo, hi};
    // A fingerprint of exactly {0,0} would read as "absent"; nudge it.
    if (!fp.valid()) { fp.lo = 1; }
    return fp;
}

const core::detail::CachedPlanArtifacts* OperandCache::find_plan(const OperandPairKey& key)
{
    const auto it = plans_.find(key);
    if (it == plans_.end()) {
        ++stats_.plan_misses;
        return nullptr;
    }
    ++stats_.plan_hits;
    it->second.tick = ++tick_;
    return &it->second.art;
}

void OperandCache::insert_plan(const OperandPairKey& key, core::detail::CachedPlanArtifacts art,
                               std::vector<CacheEviction>* evicted)
{
    const std::size_t bytes = art.byte_size();
    auto [it, fresh] = plans_.try_emplace(key);
    if (!fresh) { plan_bytes_ -= it->second.bytes; }
    it->second.art = std::move(art);
    it->second.bytes = bytes;
    it->second.tick = ++tick_;
    plan_bytes_ += bytes;
    evict_plans_over_budget(evicted);
}

void OperandCache::pin_plan(const OperandPairKey& key)
{
    const auto it = plans_.find(key);
    if (it != plans_.end()) { ++it->second.pins; }
}

void OperandCache::unpin_plan(const OperandPairKey& key)
{
    const auto it = plans_.find(key);
    if (it != plans_.end() && it->second.pins > 0) { --it->second.pins; }
}

void OperandCache::evict_plans_over_budget(std::vector<CacheEviction>* evicted)
{
    while (plan_bytes_ > cfg_.plan_budget_bytes) {
        auto victim = plans_.end();
        for (auto it = plans_.begin(); it != plans_.end(); ++it) {
            if (it->second.pins > 0) { continue; }
            if (victim == plans_.end() || it->second.tick < victim->second.tick) {
                victim = it;
            }
        }
        if (victim == plans_.end()) { return; }  // everything pinned: stall
        if (evicted != nullptr) {
            evicted->push_back({false, victim->first.a.lo, victim->second.bytes});
        }
        plan_bytes_ -= victim->second.bytes;
        ++stats_.plan_evictions;
        plans_.erase(victim);
    }
}

bool OperandCache::evict_residency_lru(std::vector<CacheEviction>* evicted)
{
    // Evict the globally-least-recently-used unpinned entry across both
    // element widths.
    const auto oldest_tick = [](const auto& map, std::uint64_t best) {
        for (const auto& [fp, e] : map) {
            if (e.pins == 0 && e.tick < best) { best = e.tick; }
        }
        return best;
    };
    const std::uint64_t none = tick_ + 1;
    const std::uint64_t best_f = oldest_tick(res_f_, none);
    const std::uint64_t best_d = oldest_tick(res_d_, none);
    if (best_f == none && best_d == none) { return false; }
    return best_f <= best_d ? evict_one_lru(res_f_, evicted) : evict_one_lru(res_d_, evicted);
}

void OperandCache::evict_residency_over_budget(std::vector<CacheEviction>* evicted)
{
    while (residency_bytes_ > cfg_.residency_budget_bytes) {
        if (!evict_residency_lru(evicted)) { return; }  // everything pinned: stall
    }
}

std::vector<CacheEviction> OperandCache::evict_residency_to(std::size_t target_bytes)
{
    std::vector<CacheEviction> out;
    while (residency_bytes_ > target_bytes) {
        if (!evict_residency_lru(&out)) { break; }  // only pinned entries remain
    }
    return out;
}

std::size_t OperandCache::invalidate_residency()
{
    const std::size_t n = res_f_.size() + res_d_.size();
    res_f_.clear();
    res_d_.clear();
    residency_bytes_ = 0;
    stats_.invalidations += n;
    return n;
}

void OperandCache::clear()
{
    plans_.clear();
    plan_bytes_ = 0;
    res_f_.clear();
    res_d_.clear();
    residency_bytes_ = 0;
}

template OperandFingerprint fingerprint_operand(const CsrMatrix<float>&);
template OperandFingerprint fingerprint_operand(const CsrMatrix<double>&);

}  // namespace nsparse
