// The unified recovery-ladder policy engine of the session layer.
//
// PRs 2/3/6 built the survival mechanisms one by one — row-slab OOM
// fallback, group-0 retry with doubling tables, host recourse, estimation
// repair — but each escalation was hard-coded at its call site. This
// header lifts the escalation chain into one configurable object:
//
//   RecoveryPolicy  — per-stage attempt budgets and which stages exist
//   RecoveryStage   — the ladder's rungs, in escalation order
//   RecoveryEvent / RecoveryLog — structured record of what happened to a
//                     request (every escalation, backoff, breaker action,
//                     cancellation and rejection)
//   CircuitBreaker  — after K identical fault signatures, later requests
//                     jump straight to the last known-good stage instead
//                     of re-climbing the ladder; periodic probes re-try
//                     the full ladder and close the breaker when clean
//
// The ladder itself is driven by nsparse::Session (service/session.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nsparse {

/// The rungs of the recovery ladder, in escalation order.
enum class RecoveryStage : int {
    kAdmission = 0,   ///< admission control (rejections happen here)
    kPlanned,         ///< the attempt under Options::plan_mode
    kExactReplan,     ///< estimated→exact replan after a fault
    kSlab,            ///< row-slab degradation
    kHostRecourse,    ///< whole-product host reference recourse
    kSharded,         ///< multi-device row-sharded execution (admission
                      ///< planned it for certain-OOM / overflow requests)
};

[[nodiscard]] const char* to_string(RecoveryStage stage);

/// Configurable escalation policy. The defaults reproduce the behaviour
/// the direct entry points hard-code (slab fallback on, 8 slab halvings,
/// 3 row retries, host recourse for rows); the session adds the
/// estimated→exact replan, whole-product host recourse, backoff and the
/// circuit breaker on top.
struct RecoveryPolicy {
    /// Attempts of the planned stage before escalating (>= 1). More than
    /// one only helps against transient faults (probabilistic FaultPlan).
    int max_plan_attempts = 1;

    /// Replan estimated/hybrid requests with exact symbolic planning after
    /// an OOM or kernel fault, before degrading further (estimated padding
    /// can overshoot memory where the exact plan fits).
    bool exact_replan = true;

    /// Group-0 retries per faulted row (Options::max_row_retries override).
    int max_row_retries = 3;

    /// Slab-size halvings before the slab stage gives up
    /// (Options::max_slab_retries override).
    int max_slab_retries = 8;

    /// Degrade to row slabs on OOM.
    bool slab_fallback = true;

    /// Complete the whole product on the host (chunked reference SpGEMM,
    /// byte-identical) when every device stage failed.
    bool host_recourse = true;

    /// Exponential backoff before OOM-triggered escalations: sleep
    /// min(backoff_base_ms * 2^(streak-1), backoff_max_ms) host
    /// milliseconds, where streak counts consecutive requests of this
    /// session that hit an OOM. 0 disables backoff (default).
    int backoff_base_ms = 0;
    int backoff_max_ms = 100;

    /// Identical consecutive fault signatures before the breaker opens.
    /// <= 0 disables the breaker.
    int breaker_threshold = 3;

    /// While open, every Nth request probes the full ladder; a clean probe
    /// closes the breaker. <= 0 never probes (the breaker stays open until
    /// reset_breaker()).
    int breaker_probe_interval = 8;
};

/// One entry of a request's recovery log.
struct RecoveryEvent {
    enum class Kind : int {
        kAdmit = 0,     ///< admission passed
        kAnnotate,      ///< admitted, but annotated with a planned slab level
        kReject,        ///< admission refused the request
        kAttempt,       ///< a ladder stage started an attempt
        kEscalate,      ///< a fault moved the request to the next stage
        kBackoff,       ///< OOM backoff slept before the escalation
        kBreakerOpen,   ///< the circuit breaker opened
        kBreakerProbe,  ///< an open breaker let this request probe the ladder
        kBreakerClose,  ///< a clean probe closed the breaker
        kBreakerJump,   ///< the open breaker jumped to the known-good stage
        kCancelled,     ///< cooperative cancellation stopped the request
        kDeadline,      ///< a budget expired
        kSuccess,       ///< the request completed
        kFailure,       ///< every permitted stage failed
        kCacheHit,      ///< operand cache served plan artifacts / residency
        kCacheMiss,     ///< operand cache had nothing for the request
        kCacheEvict,    ///< the cache evicted or invalidated an entry
    };

    Kind kind = Kind::kAttempt;
    RecoveryStage stage = RecoveryStage::kPlanned;
    int attempt = 0;          ///< attempt number within the stage (1-based), 0 = n/a
    std::string detail;       ///< human-readable context (fault signature, bytes, ...)
    double sim_seconds = 0.0; ///< simulated seconds elapsed in the request when logged
};

[[nodiscard]] const char* to_string(RecoveryEvent::Kind kind);

/// Append-only record of what the ladder did to one request.
class RecoveryLog {
public:
    void append(RecoveryEvent ev) { events_.push_back(std::move(ev)); }

    [[nodiscard]] const std::vector<RecoveryEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t count(RecoveryEvent::Kind kind) const;
    [[nodiscard]] bool contains(RecoveryEvent::Kind kind) const { return count(kind) > 0; }

    /// Human-readable rendering, one line per event.
    [[nodiscard]] std::string report() const;

private:
    std::vector<RecoveryEvent> events_;
};

/// Session-level circuit breaker over fault signatures.
///
/// A fault signature is a short string like "oom@planned" or
/// "kernel_fault@slab" — the fault kind at the stage it first hit. After
/// `threshold` consecutive requests fault with the *same* signature, the
/// breaker opens: subsequent requests skip the doomed early rungs and jump
/// straight to the stage that last recovered (known-good), remembering its
/// slab level. Every `probe_interval`-th request while open runs the full
/// ladder as a probe; a clean probe closes the breaker.
class CircuitBreaker {
public:
    /// What the breaker wants for the next request.
    struct Decision {
        bool jump = false;   ///< skip to `stage` (with `slabs` when kSlab)
        bool probe = false;  ///< run the full ladder, report back via on_clean
        RecoveryStage stage = RecoveryStage::kPlanned;
        int slabs = 0;
    };

    void configure(int threshold, int probe_interval)
    {
        threshold_ = threshold;
        probe_interval_ = probe_interval;
    }

    /// Consult before running a request's ladder.
    [[nodiscard]] Decision next_request();

    /// A request faulted (first fault signature). Returns true when the
    /// breaker transitioned to open on this fault.
    bool on_fault(const std::string& signature);

    /// A faulted request recovered at `stage` (slab count when kSlab):
    /// remember the stage as known-good for jumps.
    void on_recovered(RecoveryStage stage, int slabs);

    /// A request finished without any fault. `probing` = the request was a
    /// breaker probe. Returns true when a clean probe just closed the
    /// breaker.
    bool on_clean(bool probing);

    [[nodiscard]] bool open() const { return open_; }
    [[nodiscard]] int consecutive_identical_faults() const { return consecutive_; }
    [[nodiscard]] RecoveryStage known_good_stage() const { return known_good_stage_; }
    [[nodiscard]] int known_good_slabs() const { return known_good_slabs_; }
    [[nodiscard]] const std::string& last_signature() const { return last_signature_; }

    /// Force-close and forget everything (Session::reset_breaker).
    void reset();

private:
    int threshold_ = 3;
    int probe_interval_ = 8;
    std::string last_signature_;
    int consecutive_ = 0;
    bool open_ = false;
    int requests_while_open_ = 0;
    RecoveryStage known_good_stage_ = RecoveryStage::kSlab;
    int known_good_slabs_ = 0;
};

}  // namespace nsparse
