// SpGEMM-as-a-service: a long-lived session owning one simulated device
// and one scratch pool, admitting single and batched multiply requests
// through three resilience layers (the ROADMAP's service front end):
//
//   1. Admission control — before any kernel runs, the memory estimator
//      predicts the request's peak against the live device capacity.
//      Requests that cannot fit even at the deepest slab level (B alone
//      exceeds the free capacity — B stays resident in every device path,
//      so this bound is certain, not estimated) are rejected synchronously
//      with AdmissionRejected; over-capacity-but-slabbable requests are
//      annotated with the planned degradation level (and, under
//      AdmissionMode::kEnforce, start slabbed instead of burning cycles
//      into the doomed unchunked attempt).
//
//   2. The unified recovery ladder (service/recovery.hpp) — planned
//      attempt → estimated→exact replan → row slabs → whole-product host
//      recourse, each stage budgeted by RecoveryPolicy, with exponential
//      backoff on repeated OOM and a circuit breaker that jumps straight
//      to the last known-good stage after repeated identical faults.
//
//   3. Deadlines + cooperative cancellation — per-request budgets in
//      simulated seconds and host wall-clock, enforced by a CancelToken
//      threaded through Device::launch and the worker-pool tasks:
//      over-budget requests stop at kernel boundaries, surface
//      DeadlineExceeded / OperationCancelled, and leave the device,
//      streams and scratch pool reusable for the next request.
//
// Every escalation, cancellation and rejection is appended to the
// request's RecoveryLog (and mirrored into the device trace as fault
// events) and rolled up into SpgemmStats / BatchStats / SessionStats.
// Recovered requests are byte-identical to a clean exact run.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/spgemm_batch.hpp"
#include "core/spgemm_sharded.hpp"
#include "gpusim/cancel.hpp"
#include "gpusim/device.hpp"
#include "gpusim/scratch_pool.hpp"
#include "service/operand_cache.hpp"
#include "service/recovery.hpp"

namespace nsparse {

/// How admission control reacts to its prediction.
enum class AdmissionMode : int {
    kOff = 0,   ///< no prediction; every request is admitted
    kAnnotate,  ///< predict and annotate, but never change the execution
    kEnforce,   ///< reject infeasible requests; start slabbed when the
                ///< prediction says the unchunked attempt is doomed
};

struct SessionConfig {
    sim::DeviceSpec device_spec = sim::DeviceSpec::pascal_p100();
    sim::CostModel cost_model = {};
    /// Per-request algorithm knobs; RecoveryPolicy overrides the retry
    /// budgets (max_row_retries / max_slab_retries) on every request.
    core::Options options = {};
    RecoveryPolicy policy = {};
    AdmissionMode admission = AdmissionMode::kEnforce;
    /// Retain per-kernel/per-event trace entries on the session device.
    bool record_trace = false;
    /// Devices of the sharded scale-out path (core::spgemm_sharded).
    /// Requests that admission would otherwise reject as certain-OOM, or
    /// whose nnz upper bound crosses the 32-bit index range, are admitted
    /// as multi-device row-sharded runs on this many fresh devices instead
    /// (the session device is untouched). 0 disables sharded admission and
    /// restores the pre-sharding rejection behaviour.
    int shard_devices = 2;
    /// Operand/plan caching (service/operand_cache.hpp). Disabled by
    /// default: resident operands change admission inputs and cache events
    /// are mirrored into the trace, so warm-path behaviour is opt-in.
    OperandCacheConfig cache = {};
};

/// Handle of a registered tenant (index into the session's tenant table;
/// tenant 0 is the pre-registered default every request uses unless told
/// otherwise).
using TenantId = int;

/// Multi-tenant QoS knobs of one tenant.
struct TenantConfig {
    std::string name = "tenant";
    /// Batch-wave share under weighted-deficit scheduling: each round a
    /// tenant earns `weight` credits and drains that many of its queued
    /// products. Must be >= 1, so every tenant progresses every round —
    /// a heavy tenant gets a bigger share, never the whole device.
    int weight = 1;
    /// Service order within a round (higher first; ties by TenantId).
    /// Priority orders, it does not starve: scheduling shares are decided
    /// by weight alone.
    int priority = 0;
};

/// Per-tenant roll-up (the same partition invariant as SessionStats:
/// requests == completed + failed + rejected + cancelled +
/// deadline_exceeded, and summing any field across tenants yields the
/// session-wide counter).
struct TenantStats {
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t recovered = 0;
    std::uint64_t cache_hits = 0;    ///< plan-artifact hits of this tenant
    std::uint64_t cache_misses = 0;  ///< plan-artifact misses of this tenant
    double sim_seconds = 0.0;        ///< simulated device time consumed

    [[nodiscard]] double cache_hit_rate() const
    {
        const auto total = cache_hits + cache_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(cache_hits) / static_cast<double>(total);
    }
};

/// Per-request budgets; 0 = unlimited.
struct RequestBudget {
    double sim_seconds = 0.0;   ///< budget in simulated device seconds
    std::int64_t wall_ms = 0;   ///< budget in host wall-clock milliseconds
    TenantId tenant = 0;        ///< accounting/QoS tenant of the request
};

/// What admission control decided for a request.
struct AdmissionDecision {
    bool admitted = true;
    std::size_t predicted_peak_bytes = 0;  ///< upper-bound estimate (0 under kOff)
    std::size_t available_bytes = 0;       ///< capacity - live bytes at admission
    std::size_t required_floor_bytes = 0;  ///< certain floor (B stays resident)
    /// Planned slab degradation (0 = expected to fit unchunked).
    int planned_slab_level = 0;
    /// Slab count the rejection bound is based on (single-row slabs).
    int deepest_slab_level = 0;
    /// Sharded-execution plan (0 = runs on the session device). Set when
    /// SessionConfig::shard_devices > 0 and the request is certain-OOM on
    /// the session device or at risk of 32-bit row-pointer overflow: the
    /// request is admitted as a row-sharded run over at least this many
    /// shards instead of being rejected.
    int planned_shards = 0;
    /// The nnz upper bound crosses the 32-bit index range: the merge may
    /// escalate to 64-bit row pointers (RequestResult::wide_matrix).
    bool overflow_risk = false;
};

/// How a request ended.
enum class RequestOutcome : int {
    kCompleted = 0,
    kRejected,   ///< admission control refused it (AdmissionRejected)
    kCancelled,  ///< cooperative cancellation (OperationCancelled)
    kDeadline,   ///< a budget expired (DeadlineExceeded)
    kFailed,     ///< every permitted ladder stage failed
};

[[nodiscard]] const char* to_string(RequestOutcome outcome);

/// One request's result: the output (when ok()), the admission decision,
/// the full recovery log and the structured error otherwise.
template <ValueType T>
struct RequestResult {
    SpgemmOutput<T> out;
    AdmissionDecision admission;
    RecoveryLog log;
    RequestOutcome outcome = RequestOutcome::kCompleted;
    RecoveryStage final_stage = RecoveryStage::kPlanned;
    std::exception_ptr error;   ///< null when the request succeeded
    std::string error_message;  ///< what() of the captured error
    /// The request ran on the sharded scale-out path (final_stage
    /// kSharded): per-shard fates live in `shard_stats`, the roll-up in
    /// `sharded`. When `escalated_64bit` is set the merged product crossed
    /// the 32-bit index range and lives in `wide_matrix` instead of
    /// out.matrix (the OpSparse hybrid: 64-bit row pointers, 32-bit
    /// column indices).
    bool sharded = false;
    bool escalated_64bit = false;
    WideCsrMatrix<T> wide_matrix;
    core::ShardedStats shard_rollup;
    std::vector<core::ShardStats> shard_stats;
    [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// A batched request: per-product results plus the batch roll-up.
template <ValueType T>
struct BatchRequestResult {
    std::vector<RequestResult<T>> items;
    core::BatchStats stats;
};

/// Session lifetime counters.
struct SessionStats {
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    /// Completed after at least one fault (any rung above kPlanned ran).
    std::uint64_t recovered = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t replans = 0;
    std::uint64_t slab_fallbacks = 0;
    std::uint64_t host_recourses = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_jumps = 0;
    std::uint64_t breaker_closes = 0;
    /// Requests admitted onto the sharded scale-out path.
    std::uint64_t sharded_runs = 0;
    /// Shards that exhausted their ladder across all sharded runs.
    std::uint64_t shard_failures = 0;
    /// Sharded runs whose merge escalated to 64-bit row pointers.
    std::uint64_t shard_escalations = 0;
    /// Operand-cache traffic (plan-artifact consults; hits + misses equals
    /// the cache-eligible requests).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    /// Resident-operand consults (two per cache-eligible request: A and B).
    std::uint64_t cache_residency_hits = 0;
    std::uint64_t cache_residency_misses = 0;
    /// Entries the cache evicted (LRU budget pressure or the OOM rung).
    std::uint64_t cache_evictions = 0;
    /// Residency entries invalidated after device reclaim.
    std::uint64_t cache_invalidations = 0;
};

class Session {
public:
    explicit Session(SessionConfig cfg = {});
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// One multiply through admission, the recovery ladder and the
    /// request budget. Precondition violations (mismatched dimensions,
    /// invalid options, corrupt inputs under validate_inputs) throw
    /// synchronously — they are caller bugs, not request failures; every
    /// runtime failure is captured in the returned result.
    template <ValueType T>
    RequestResult<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                              const RequestBudget& budget = {});

    /// A batch of products, each through the full ladder with its own
    /// `per_product` budget, sharing the session device and scratch pool.
    /// cancel() stops the in-flight product at its next kernel boundary
    /// and fails the remaining products synchronously. Failures are
    /// contained per product (the batch never throws on runtime errors).
    template <ValueType T>
    BatchRequestResult<T> multiply_batch(const std::vector<const CsrMatrix<T>*>& as,
                                         const std::vector<const CsrMatrix<T>*>& bs,
                                         const RequestBudget& per_product = {});

    /// Multi-tenant batch: item k is accounted to `tenants[k]` and the
    /// wave order is decided by weighted-deficit round-robin over the
    /// participating tenants (each round a tenant earns `weight` credits
    /// and drains that many queued products, high priority served first
    /// within the round), so one heavy tenant cannot starve the others.
    /// Results land in submission-order slots regardless of wave order.
    /// An empty `tenants` vector accounts every item to
    /// `per_product.tenant` (equivalent to the overload above).
    template <ValueType T>
    BatchRequestResult<T> multiply_batch(const std::vector<const CsrMatrix<T>*>& as,
                                         const std::vector<const CsrMatrix<T>*>& bs,
                                         const std::vector<TenantId>& tenants,
                                         const RequestBudget& per_product = {});

    /// Registers a QoS tenant (weight >= 1); returns its handle. Tenant 0
    /// ("default", weight 1, priority 0) is pre-registered.
    TenantId register_tenant(TenantConfig cfg);
    [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
    [[nodiscard]] const TenantStats& tenant_stats(TenantId id) const;
    [[nodiscard]] const TenantConfig& tenant_config(TenantId id) const;

    /// Dry-run admission control against the current live capacity:
    /// what would multiply() decide right now? Never executes anything.
    template <ValueType T>
    [[nodiscard]] AdmissionDecision admit(const CsrMatrix<T>& a, const CsrMatrix<T>& b) const;

    /// Cooperatively cancels the in-flight request (thread-safe): it stops
    /// at its next kernel boundary with OperationCancelled. Subsequent
    /// requests are unaffected (the token is re-armed per request).
    void cancel(std::string reason = {}) { token_.request_cancel(std::move(reason)); }

    /// The per-request cancellation token (for callers integrating their
    /// own cancellation sources).
    [[nodiscard]] sim::CancelToken& cancel_token() { return token_; }

    [[nodiscard]] const SessionStats& stats() const { return stats_; }
    [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }
    void reset_breaker() { breaker_.reset(); }

    /// The session device (observability: trace, allocator, timeline).
    [[nodiscard]] sim::Device& device() { return dev_; }
    [[nodiscard]] const sim::Device& device() const { return dev_; }
    [[nodiscard]] sim::ScratchPool& scratch_pool() { return scratch_; }

    /// The operand/plan cache (observability + manual invalidation).
    [[nodiscard]] OperandCache& operand_cache() { return cache_; }
    [[nodiscard]] const OperandCache& operand_cache() const { return cache_; }

private:
    template <ValueType T>
    RequestResult<T> run_request(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                 const RequestBudget& budget);

    /// The sharded scale-out path of run_request: admission planned the
    /// request onto `res.admission.planned_shards` shards across
    /// `cfg_.shard_devices` fresh devices. Per-shard failures are mapped
    /// back onto the request's outcome taxonomy (lowest failed shard
    /// wins, wrapped in ShardFailed unless it was a cancellation/deadline).
    template <ValueType T>
    RequestResult<T> run_sharded(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                 const RequestBudget& budget, RequestResult<T>& res);

    template <ValueType T>
    [[nodiscard]] AdmissionDecision admit_decision(const CsrMatrix<T>& a,
                                                   const CsrMatrix<T>& b) const;

    /// Appends to the request log and mirrors escalations / breaker
    /// actions / cancellations / rejections into the device trace.
    void log_event(RecoveryLog& log, RecoveryEvent::Kind kind, RecoveryStage stage,
                   int attempt = 0, std::string detail = {});

    /// Throws OperationCancelled / DeadlineExceeded when the token says
    /// stop (host-side ladder boundary check).
    void check_budget(RecoveryStage stage);

    /// OOM bookkeeping between stages: record freed bytes, reset fault
    /// tallies, drop pooled scratch, apply the backoff policy.
    void prepare_oom_rerun(SpgemmStats& stats, std::size_t live_floor, RecoveryLog& log,
                           RecoveryStage stage);

    /// The OOM rung of the operand cache: evicts every unpinned resident
    /// operand (LRU order) before the ladder degrades to row slabs, and
    /// logs each eviction. Called from the templated request path after
    /// the in-flight pins are dropped.
    void evict_cache_for_pressure(RecoveryLog& log, RecoveryStage stage);

    /// Restores a reusable device + pool after a failed/cancelled request;
    /// resident operands are invalidated (the reclaim makes device state
    /// suspect), logged into `log` when provided.
    void cleanup_after_failure(RecoveryLog* log = nullptr);

    SessionConfig cfg_;
    sim::Device dev_;
    sim::ScratchPool scratch_;
    sim::CancelToken token_;
    CircuitBreaker breaker_;
    SessionStats stats_;
    OperandCache cache_;
    struct Tenant {
        TenantConfig cfg;
        TenantStats stats;
    };
    std::vector<Tenant> tenants_;
    /// Consecutive requests that hit at least one OOM (drives backoff).
    int oom_streak_ = 0;
};

extern template RequestResult<float> Session::multiply(const CsrMatrix<float>&,
                                                       const CsrMatrix<float>&,
                                                       const RequestBudget&);
extern template RequestResult<double> Session::multiply(const CsrMatrix<double>&,
                                                        const CsrMatrix<double>&,
                                                        const RequestBudget&);
extern template BatchRequestResult<float>
Session::multiply_batch(const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<const CsrMatrix<float>*>&, const RequestBudget&);
extern template BatchRequestResult<double>
Session::multiply_batch(const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<const CsrMatrix<double>*>&, const RequestBudget&);
extern template BatchRequestResult<float>
Session::multiply_batch(const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<TenantId>&, const RequestBudget&);
extern template BatchRequestResult<double>
Session::multiply_batch(const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<TenantId>&, const RequestBudget&);
extern template AdmissionDecision Session::admit(const CsrMatrix<float>&,
                                                 const CsrMatrix<float>&) const;
extern template AdmissionDecision Session::admit(const CsrMatrix<double>&,
                                                 const CsrMatrix<double>&) const;

}  // namespace nsparse
