#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "core/memory_estimator.hpp"
#include "core/spgemm_impl.hpp"
#include "gpusim/executor.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/reference_spgemm.hpp"
#include "sparse/validate.hpp"

namespace nsparse {

namespace {

std::string product_prefix(std::size_t k) { return "batch product " + std::to_string(k) + ": "; }

}  // namespace

const char* to_string(RequestOutcome outcome)
{
    switch (outcome) {
    case RequestOutcome::kCompleted: return "completed";
    case RequestOutcome::kRejected: return "rejected";
    case RequestOutcome::kCancelled: return "cancelled";
    case RequestOutcome::kDeadline: return "deadline";
    case RequestOutcome::kFailed: return "failed";
    }
    return "unknown";
}

Session::Session(SessionConfig cfg)
    : cfg_(std::move(cfg)), dev_(cfg_.device_spec, cfg_.cost_model), cache_(cfg_.cache)
{
    core::validate_options(cfg_.options);
    NSPARSE_EXPECTS(cfg_.policy.max_plan_attempts >= 1,
                    "RecoveryPolicy::max_plan_attempts must be >= 1");
    NSPARSE_EXPECTS(cfg_.policy.max_row_retries >= 0,
                    "RecoveryPolicy::max_row_retries must be non-negative");
    NSPARSE_EXPECTS(cfg_.policy.max_slab_retries >= 0,
                    "RecoveryPolicy::max_slab_retries must be non-negative");
    breaker_.configure(cfg_.policy.breaker_threshold, cfg_.policy.breaker_probe_interval);
    if (cfg_.options.quiet) { sim::set_warnings_quiet(true); }
    if (cfg_.record_trace) { dev_.enable_trace(); }
    if (cfg_.options.batch_scratch_reuse) { dev_.set_scratch_pool(&scratch_); }
    tenants_.push_back({TenantConfig{"default", 1, 0}, TenantStats{}});
}

TenantId Session::register_tenant(TenantConfig cfg)
{
    NSPARSE_EXPECTS(cfg.weight >= 1, "TenantConfig::weight must be >= 1");
    tenants_.push_back({std::move(cfg), TenantStats{}});
    return static_cast<TenantId>(tenants_.size() - 1);
}

const TenantStats& Session::tenant_stats(TenantId id) const
{
    NSPARSE_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tenants_.size(),
                    "unknown tenant id");
    return tenants_[static_cast<std::size_t>(id)].stats;
}

const TenantConfig& Session::tenant_config(TenantId id) const
{
    NSPARSE_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tenants_.size(),
                    "unknown tenant id");
    return tenants_[static_cast<std::size_t>(id)].cfg;
}

Session::~Session()
{
    // Join any stragglers and detach session-owned state before members
    // are destroyed in reverse order.
    dev_.reclaim();
    dev_.set_scratch_pool(nullptr);
}

void Session::log_event(RecoveryLog& log, RecoveryEvent::Kind kind, RecoveryStage stage,
                        int attempt, std::string detail)
{
    using Kind = RecoveryEvent::Kind;
    RecoveryEvent ev;
    ev.kind = kind;
    ev.stage = stage;
    ev.attempt = attempt;
    ev.detail = detail;
    ev.sim_seconds = dev_.elapsed();
    log.append(std::move(ev));
    // Mirror the events that describe faults and their handling into the
    // device trace (extending the PR-3 fault-event stream); routine
    // admit/attempt/success entries stay out of it.
    switch (kind) {
    case Kind::kReject:
    case Kind::kEscalate:
    case Kind::kBackoff:
    case Kind::kBreakerOpen:
    case Kind::kBreakerProbe:
    case Kind::kBreakerClose:
    case Kind::kBreakerJump:
    case Kind::kCancelled:
    case Kind::kDeadline:
    case Kind::kFailure:
    case Kind::kCacheHit:
    case Kind::kCacheMiss:
    case Kind::kCacheEvict:
        dev_.record_fault_event(std::string("session_") + to_string(kind),
                                /*group=*/-1, /*row=*/-1, /*table_size=*/0, /*probes=*/0,
                                attempt);
        break;
    case Kind::kAdmit:
    case Kind::kAnnotate:
    case Kind::kAttempt:
    case Kind::kSuccess:
        break;
    }
}

void Session::check_budget(RecoveryStage stage)
{
    const double sim_elapsed = dev_.elapsed();
    switch (token_.should_cancel(sim_elapsed)) {
    case sim::CancelCause::kNone: return;
    case sim::CancelCause::kUser:
        throw OperationCancelled("operation cancelled between ladder stages",
                                 to_string(stage), token_.reason());
    case sim::CancelCause::kSimDeadline:
        throw DeadlineExceeded("simulated-time budget exceeded between ladder stages",
                               to_string(stage), sim_elapsed, /*wall_clock=*/false);
    case sim::CancelCause::kWallDeadline:
        throw DeadlineExceeded("wall-clock budget exceeded between ladder stages",
                               to_string(stage), token_.wall_elapsed_seconds(),
                               /*wall_clock=*/true);
    }
}

void Session::prepare_oom_rerun(SpgemmStats& stats, std::size_t live_floor, RecoveryLog& log,
                                RecoveryStage stage)
{
    const std::size_t at_oom = dev_.allocator().last_oom_live_bytes();
    const std::size_t freed = at_oom > live_floor ? at_oom - live_floor : 0;
    stats.fallback_bytes_freed = freed;
    dev_.record_memory_event("slab_fallback", freed, 0, 0);
    core::detail::reset_fault_tallies(stats);
    // The rerun must not compete with pooled scratch of earlier requests.
    scratch_.clear();
    // Exponential backoff on repeated OOM within the session.
    if (cfg_.policy.backoff_base_ms > 0 && oom_streak_ > 0) {
        const int shift = std::min(oom_streak_ - 1, 16);
        const std::int64_t ms =
            std::min<std::int64_t>(static_cast<std::int64_t>(cfg_.policy.backoff_base_ms)
                                       << shift,
                                   cfg_.policy.backoff_max_ms);
        if (ms > 0) {
            ++stats_.backoffs;
            log_event(log, RecoveryEvent::Kind::kBackoff, stage, 0,
                      std::to_string(ms) + " ms");
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
    }
}

void Session::evict_cache_for_pressure(RecoveryLog& log, RecoveryStage stage)
{
    for (const CacheEviction& e : cache_.evict_residency_to(0)) {
        ++stats_.cache_evictions;
        log_event(log, RecoveryEvent::Kind::kCacheEvict, stage, 0,
                  "oom pressure: resident operand, " + std::to_string(e.bytes) + " B");
    }
}

void Session::cleanup_after_failure(RecoveryLog* log)
{
    dev_.reclaim();
    scratch_.clear();
    if (cfg_.options.batch_scratch_reuse) { dev_.set_scratch_pool(&scratch_); }
    // reclaim() dropped every device allocation, so any resident operand
    // copy is gone with it — invalidate rather than serve stale handles.
    const std::size_t dropped = cache_.invalidate_residency();
    if (dropped > 0) {
        stats_.cache_invalidations += dropped;
        if (log != nullptr) {
            log_event(*log, RecoveryEvent::Kind::kCacheEvict, RecoveryStage::kAdmission, 0,
                      "invalidated " + std::to_string(dropped) +
                          " resident operand(s) after device reclaim");
        }
    }
}

template <ValueType T>
AdmissionDecision Session::admit_decision(const CsrMatrix<T>& a, const CsrMatrix<T>& b) const
{
    AdmissionDecision d;
    const auto& alloc = dev_.allocator();
    const std::size_t live = alloc.live_bytes();
    d.available_bytes = alloc.capacity() > live ? alloc.capacity() - live : 0;
    d.required_floor_bytes = b.byte_size();
    d.deepest_slab_level = static_cast<int>(std::max<index_t>(a.rows, 1));
    if (cfg_.admission == AdmissionMode::kOff) { return d; }

    // Upper-bound prediction: per-row nnz can never exceed the row's
    // intermediate products nor the output width. Feeding the bound
    // through the allocation-schedule walk gives a peak that the real run
    // cannot exceed — so `peak <= available` certifies the unchunked
    // attempt, while rejection must rest on the *certain* floor below.
    const auto products = intermediate_products_per_row(a, b);
    std::vector<index_t> nnz_ub(to_size(a.rows));
    wide_t nnz_ub_total = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        nnz_ub[to_size(i)] = std::min(products[to_size(i)], b.cols);
        nnz_ub_total += nnz_ub[to_size(i)];
    }
    d.overflow_risk = nnz_ub_total > std::numeric_limits<index_t>::max();
    const auto est =
        core::estimate_hash_spgemm_memory_from_nnz(a, b, products, nnz_ub, dev_.spec());
    d.predicted_peak_bytes = est.peak;

    // Certain infeasibility: B stays resident in every device path (every
    // slab multiplies against whole B), so when B alone does not fit the
    // free capacity, no degradation level can help on *this* device.
    if (d.required_floor_bytes >= d.available_bytes) {
        d.admitted = false;
    } else if (est.peak > d.available_bytes) {
        d.planned_slab_level = static_cast<int>(core::plan_row_slabs_from_estimate(
            est, b.byte_size(), a.rows, d.available_bytes));
    }
    // Sharded scale-out: certain-OOM requests and requests whose nnz upper
    // bound crosses the 32-bit index range are admitted as multi-device
    // row-sharded runs instead of rejected (or run into IndexOverflow).
    if (cfg_.shard_devices > 0 && (!d.admitted || d.overflow_risk)) {
        d.planned_shards = std::max(cfg_.shard_devices, d.planned_slab_level);
        d.admitted = true;
    }
    return d;
}

template <ValueType T>
AdmissionDecision Session::admit(const CsrMatrix<T>& a, const CsrMatrix<T>& b) const
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    return admit_decision(a, b);
}

template <ValueType T>
RequestResult<T> Session::run_request(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                      const RequestBudget& budget)
{
    using Kind = RecoveryEvent::Kind;
    RequestResult<T> res;

    // Precondition violations are caller bugs and throw synchronously,
    // before the request is even counted.
    core::Options opt = cfg_.options;
    core::validate_options(opt);
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    NSPARSE_EXPECTS(budget.tenant >= 0 &&
                        static_cast<std::size_t>(budget.tenant) < tenants_.size(),
                    "unknown tenant id");
    if (opt.validate_inputs) { validate_spgemm_inputs(a, b); }
    ++stats_.requests;
    Tenant& ten = tenants_[static_cast<std::size_t>(budget.tenant)];
    ++ten.stats.requests;
    // The policy owns the retry budgets on the session path.
    opt.max_row_retries = cfg_.policy.max_row_retries;
    opt.max_slab_retries = cfg_.policy.max_slab_retries;
    opt.slab_fallback = cfg_.policy.slab_fallback;

    // ---- layer 1: admission ---------------------------------------------
    res.admission = admit_decision(a, b);
    if (!res.admission.admitted) {
        ++stats_.rejected;
        ++ten.stats.rejected;
        res.outcome = RequestOutcome::kRejected;
        res.final_stage = RecoveryStage::kAdmission;
        log_event(res.log, Kind::kReject, RecoveryStage::kAdmission, 0,
                  "B alone needs " + std::to_string(res.admission.required_floor_bytes) +
                      " B of " + std::to_string(res.admission.available_bytes) + " B free");
        try {
            throw AdmissionRejected(
                "admission rejected: the request cannot fit the free device capacity even "
                "at the deepest slab level",
                res.admission.required_floor_bytes, res.admission.available_bytes,
                res.admission.deepest_slab_level);
        } catch (const AdmissionRejected& e) {
            res.error = std::current_exception();
            res.error_message = e.what();
        }
        return res;
    }
    ++stats_.admitted;
    ++ten.stats.admitted;
    log_event(res.log, Kind::kAdmit, RecoveryStage::kAdmission, 0,
              "predicted peak " + std::to_string(res.admission.predicted_peak_bytes) +
                  " B, available " + std::to_string(res.admission.available_bytes) + " B");
    if (res.admission.planned_shards > 0) { return run_sharded(a, b, budget, res); }
    if (res.admission.planned_slab_level > 0) {
        log_event(res.log, Kind::kAnnotate, RecoveryStage::kSlab, 0,
                  "planned degradation to " +
                      std::to_string(res.admission.planned_slab_level) + " slab(s)");
        if (cfg_.admission == AdmissionMode::kEnforce) {
            // Skip the doomed unchunked attempt: start at the planned level.
            opt.force_slabs = std::max(opt.force_slabs, res.admission.planned_slab_level);
        }
    }

    // ---- circuit breaker ------------------------------------------------
    const CircuitBreaker::Decision dec = breaker_.next_request();
    if (dec.probe) {
        log_event(res.log, Kind::kBreakerProbe, RecoveryStage::kPlanned);
    }
    if (dec.jump) {
        ++stats_.breaker_jumps;
        log_event(res.log, Kind::kBreakerJump, dec.stage, 0,
                  dec.stage == RecoveryStage::kSlab
                      ? std::to_string(dec.slabs) + " slab(s)"
                      : std::string(to_string(dec.stage)));
        if (dec.stage == RecoveryStage::kSlab) {
            opt.force_slabs = std::max(opt.force_slabs, dec.slabs);
        } else if (dec.stage == RecoveryStage::kExactReplan) {
            opt.plan_mode = core::PlanMode::kExact;
        }
    }

    // ---- operand cache consult ------------------------------------------
    // Only the planned rung runs warm: slab-forced and escalated attempts
    // stay cold (their shapes differ from the cached artifacts), and the
    // native backend manages its own memory.
    core::detail::AttemptCache<T> ac;
    core::detail::CachedPlanArtifacts captured;
    OperandPairKey cache_key;
    OperandFingerprint fp_a, fp_b;
    const bool cache_active = cfg_.cache.enabled &&
                              opt.backend == core::BackendKind::kSimulated &&
                              opt.force_slabs == 0;
    bool plan_pinned = false;
    bool pinned_a = false;
    bool pinned_b = false;
    const auto release_cache_pins = [&] {
        if (plan_pinned) {
            cache_.unpin_plan(cache_key);
            plan_pinned = false;
        }
        if (pinned_a) {
            cache_.unpin_resident<T>(fp_a);
            pinned_a = false;
        }
        if (pinned_b) {
            cache_.unpin_resident<T>(fp_b);
            pinned_b = false;
        }
    };
    // The first rung of the memory-pressure ladder: drop the in-flight
    // residency pins and evict every unpinned resident operand, so a
    // degraded rerun competes only with its own allocations.
    const auto shed_residency = [&](RecoveryStage stage, RecoveryLog& log) {
        if (!cache_active) { return; }
        if (pinned_a) {
            cache_.unpin_resident<T>(fp_a);
            pinned_a = false;
        }
        if (pinned_b) {
            cache_.unpin_resident<T>(fp_b);
            pinned_b = false;
        }
        ac.resident_a = nullptr;
        ac.resident_b = nullptr;
        evict_cache_for_pressure(log, stage);
    };
    if (cache_active) {
        fp_a = fingerprint_operand(a);
        fp_b = fingerprint_operand(b);
        cache_key = {fp_a, fp_b};
        const auto* warm = cache_.find_plan(cache_key);
        if (warm != nullptr) {
            ++stats_.cache_hits;
            ++ten.stats.cache_hits;
            ac.warm = warm;
            cache_.pin_plan(cache_key);
            plan_pinned = true;
        } else {
            ++stats_.cache_misses;
            ++ten.stats.cache_misses;
            ac.capture = &captured;
        }
        ac.resident_a = cache_.find_resident<T>(fp_a);
        ac.resident_b = cache_.find_resident<T>(fp_b);
        if (ac.resident_a != nullptr) {
            ++stats_.cache_residency_hits;
            cache_.pin_resident<T>(fp_a);
            pinned_a = true;
        } else {
            ++stats_.cache_residency_misses;
        }
        if (ac.resident_b != nullptr) {
            ++stats_.cache_residency_hits;
            cache_.pin_resident<T>(fp_b);
            pinned_b = true;
        } else {
            ++stats_.cache_residency_misses;
        }
        log_event(res.log, warm != nullptr ? Kind::kCacheHit : Kind::kCacheMiss,
                  RecoveryStage::kPlanned, 0,
                  std::string("plan ") + (warm != nullptr ? "hit" : "miss") +
                      ", resident A " + (ac.resident_a != nullptr ? "hit" : "miss") +
                      ", resident B " + (ac.resident_b != nullptr ? "hit" : "miss"));
    }

    // ---- layer 3: arm the budgets ---------------------------------------
    token_.arm_sim_deadline(budget.sim_seconds);
    token_.arm_wall_budget_ms(budget.wall_ms);
    dev_.set_cancel_token(&token_);
    dev_.set_executor_threads(opt.executor_threads);
    dev_.reset_measurement();
    const std::size_t live_floor = dev_.allocator().live_bytes();

    // ---- layer 2: the recovery ladder -----------------------------------
    bool faulted = false;
    std::string first_signature;
    const auto note_fault = [&](const char* kind, RecoveryStage stage, bool oom) {
        if (!faulted) {
            faulted = true;
            first_signature = std::string(kind) + "@" + to_string(stage);
            if (oom) { ++oom_streak_; }
        }
    };
    RecoveryStage reached =
        opt.force_slabs > 0 ? RecoveryStage::kSlab : RecoveryStage::kPlanned;
    const bool estimated_plan = opt.plan_mode != core::PlanMode::kExact;

    try {
        core::detail::MultiplyResult<T> mres;
        bool have = false;
        bool want_replan = false;
        bool want_slab = opt.force_slabs > 0;
        bool want_host = false;

        // ---- stage: planned attempt(s) ----------------------------------
        const int plan_attempts = std::max(1, cfg_.policy.max_plan_attempts);
        for (int attempt = 1; !have && !want_replan && !want_slab && !want_host &&
                              attempt <= plan_attempts;
             ++attempt) {
            check_budget(RecoveryStage::kPlanned);
            log_event(res.log, Kind::kAttempt, RecoveryStage::kPlanned, attempt);
            try {
                mres = core::detail::multiply_attempt(dev_, a, b, opt, res.out.stats, ac);
                have = true;
            } catch (const DeviceOutOfMemory&) {
                note_fault("oom", RecoveryStage::kPlanned, /*oom=*/true);
                prepare_oom_rerun(res.out.stats, live_floor, res.log,
                                  RecoveryStage::kPlanned);
                shed_residency(RecoveryStage::kPlanned, res.log);
                if (attempt < plan_attempts) { continue; }
                if (estimated_plan && cfg_.policy.exact_replan) {
                    want_replan = true;
                } else if (cfg_.policy.slab_fallback) {
                    want_slab = true;
                } else if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                note_fault("kernel_fault", RecoveryStage::kPlanned, /*oom=*/false);
                core::detail::reset_fault_tallies(res.out.stats);
                scratch_.clear();
                if (estimated_plan && cfg_.policy.exact_replan) {
                    want_replan = true;
                } else if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- stage: estimated→exact replan ------------------------------
        if (!have && want_replan) {
            reached = RecoveryStage::kExactReplan;
            ++stats_.replans;
            res.out.stats.replans += 1;
            log_event(res.log, Kind::kEscalate, RecoveryStage::kExactReplan, 0,
                      first_signature);
            check_budget(RecoveryStage::kExactReplan);
            log_event(res.log, Kind::kAttempt, RecoveryStage::kExactReplan, 1);
            core::Options exact_opt = opt;
            exact_opt.plan_mode = core::PlanMode::kExact;
            try {
                mres = core::detail::multiply_attempt(dev_, a, b, exact_opt, res.out.stats);
                have = true;
            } catch (const DeviceOutOfMemory&) {
                note_fault("oom", RecoveryStage::kExactReplan, /*oom=*/true);
                prepare_oom_rerun(res.out.stats, live_floor, res.log,
                                  RecoveryStage::kExactReplan);
                shed_residency(RecoveryStage::kExactReplan, res.log);
                if (cfg_.policy.slab_fallback) {
                    want_slab = true;
                } else if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                note_fault("kernel_fault", RecoveryStage::kExactReplan, /*oom=*/false);
                core::detail::reset_fault_tallies(res.out.stats);
                scratch_.clear();
                if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- stage: row slabs -------------------------------------------
        int slabs_used = 0;
        if (!have && want_slab) {
            if (reached != RecoveryStage::kSlab) {
                log_event(res.log, Kind::kEscalate, RecoveryStage::kSlab, 0,
                          first_signature);
            }
            reached = RecoveryStage::kSlab;
            ++stats_.slab_fallbacks;
            check_budget(RecoveryStage::kSlab);
            log_event(res.log, Kind::kAttempt, RecoveryStage::kSlab, 1);
            try {
                mres = core::detail::multiply_slabbed(dev_, a, b, opt, live_floor,
                                                      res.out.stats);
                have = true;
                slabs_used = res.out.stats.fallback_slabs;
            } catch (const DeviceOutOfMemory&) {
                note_fault("oom", RecoveryStage::kSlab, /*oom=*/true);
                prepare_oom_rerun(res.out.stats, live_floor, res.log, RecoveryStage::kSlab);
                shed_residency(RecoveryStage::kSlab, res.log);
                if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                note_fault("kernel_fault", RecoveryStage::kSlab, /*oom=*/false);
                core::detail::reset_fault_tallies(res.out.stats);
                scratch_.clear();
                if (cfg_.policy.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- stage: whole-product host recourse -------------------------
        if (!have && want_host) {
            log_event(res.log, Kind::kEscalate, RecoveryStage::kHostRecourse, 0,
                      first_signature);
            reached = RecoveryStage::kHostRecourse;
            ++stats_.host_recourses;
            // Chunked so cancellation/deadlines still bite between chunks;
            // the reference kernel accumulates in ascending column order,
            // byte-identical to the device pipeline's assembly.
            mres.matrix.rows = 0;
            mres.matrix.cols = b.cols;
            mres.matrix.rpt.assign(1, 0);
            const index_t chunk = std::max<index_t>(1, std::max<index_t>(a.rows / 16, 1024));
            for (index_t r0 = 0; r0 < a.rows; r0 += chunk) {
                check_budget(RecoveryStage::kHostRecourse);
                const index_t r1 = std::min<index_t>(a.rows, r0 + chunk);
                append_rows(mres.matrix, reference_spgemm(slice_rows(a, r0, r1), b));
            }
            mres.products = total_intermediate_products(a, b);
            have = true;
            res.out.stats.host_recourse = 1;
            res.out.stats.host_fallback_rows += static_cast<int>(a.rows);
            fill_stats_from_device(res.out.stats, dev_);
        }

        NSPARSE_ASSERT(have, "recovery ladder exited without a result or an exception");

        // ---- success epilogue -------------------------------------------
        res.out.matrix = std::move(mres.matrix);
        res.out.stats.intermediate_products = mres.products;
        res.out.stats.nnz_c = res.out.matrix.nnz();
        res.final_stage = reached;
        res.outcome = RequestOutcome::kCompleted;
        ++stats_.completed;
        ++ten.stats.completed;
        ten.stats.sim_seconds += res.out.stats.seconds;
        log_event(res.log, Kind::kSuccess, reached);

        // ---- operand cache adoption -------------------------------------
        release_cache_pins();
        if (cache_active && reached == RecoveryStage::kPlanned) {
            std::vector<CacheEviction> evs;
            if (ac.capture != nullptr && captured.has_row_nnz) {
                cache_.insert_plan(cache_key, std::move(captured), &evs);
            }
            // Residency uploads happen after the stats snapshot, so they
            // are never charged to the request's measured timings; a full
            // device swallows the upload rather than failing the request.
            try {
                if (ac.resident_a == nullptr && cfg_.cache.residency_budget_bytes > 0) {
                    cache_.insert_resident<T>(
                        fp_a, sim::DeviceCsr<T>::upload(dev_.allocator(), a), &evs);
                }
                if (fp_b != fp_a && ac.resident_b == nullptr &&
                    cfg_.cache.residency_budget_bytes > 0) {
                    cache_.insert_resident<T>(
                        fp_b, sim::DeviceCsr<T>::upload(dev_.allocator(), b), &evs);
                }
            } catch (const DeviceOutOfMemory&) {
                // no room to keep the operands resident — a cache miss
                // next time, never a failure now
            }
            for (const CacheEviction& e : evs) {
                ++stats_.cache_evictions;
                log_event(res.log, Kind::kCacheEvict, reached, 0,
                          std::string(e.residency ? "resident operand" : "plan artifacts") +
                              " (lru), " + std::to_string(e.bytes) + " B");
            }
        }

        if (faulted) {
            ++stats_.recovered;
            ++ten.stats.recovered;
            if (breaker_.on_fault(first_signature)) {
                ++stats_.breaker_opens;
                log_event(res.log, Kind::kBreakerOpen, reached, 0, first_signature);
            }
            breaker_.on_recovered(reached, slabs_used);
        } else {
            if (breaker_.on_clean(dec.probe)) {
                ++stats_.breaker_closes;
                log_event(res.log, Kind::kBreakerClose, reached);
            }
        }
        dev_.set_cancel_token(nullptr);
        token_.arm_sim_deadline(0.0);
        token_.arm_wall_budget_ms(0);
    } catch (const OperationCancelled& e) {
        ++stats_.cancelled;
        ++ten.stats.cancelled;
        res.outcome = RequestOutcome::kCancelled;
        res.final_stage = reached;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kCancelled, reached, 0, e.stage());
        release_cache_pins();
        cleanup_after_failure(&res.log);
    } catch (const DeadlineExceeded& e) {
        ++stats_.deadline_exceeded;
        ++ten.stats.deadline_exceeded;
        res.outcome = RequestOutcome::kDeadline;
        res.final_stage = reached;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kDeadline, reached, 0, e.stage());
        release_cache_pins();
        cleanup_after_failure(&res.log);
    } catch (const Error& e) {
        ++stats_.failed;
        ++ten.stats.failed;
        res.outcome = RequestOutcome::kFailed;
        res.final_stage = reached;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kFailure, reached, 0,
                  faulted ? first_signature : std::string(e.what()));
        if (faulted && breaker_.on_fault(first_signature)) {
            ++stats_.breaker_opens;
            log_event(res.log, Kind::kBreakerOpen, reached, 0, first_signature);
        }
        release_cache_pins();
        cleanup_after_failure(&res.log);
    }
    if (!faulted) { oom_streak_ = 0; }
    return res;
}

template <ValueType T>
RequestResult<T> Session::run_sharded(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                      const RequestBudget& budget, RequestResult<T>& res)
{
    using Kind = RecoveryEvent::Kind;
    Tenant& ten = tenants_[static_cast<std::size_t>(budget.tenant)];
    res.sharded = true;
    res.final_stage = RecoveryStage::kSharded;
    ++stats_.sharded_runs;
    log_event(res.log, Kind::kAnnotate, RecoveryStage::kSharded, 0,
              "sharded over " + std::to_string(res.admission.planned_shards) +
                  " shard(s) on " + std::to_string(cfg_.shard_devices) + " device(s)" +
                  (res.admission.overflow_risk ? ", 64-bit escalation possible" : ""));

    core::ShardOptions sopt;
    sopt.devices = cfg_.shard_devices;
    sopt.min_shards = res.admission.planned_shards;
    sopt.options = cfg_.options;
    sopt.options.max_row_retries = cfg_.policy.max_row_retries;
    sopt.options.max_slab_retries = cfg_.policy.max_slab_retries;
    sopt.exact_replan = cfg_.policy.exact_replan;
    sopt.slab_fallback = cfg_.policy.slab_fallback;
    sopt.host_recourse = cfg_.policy.host_recourse;
    // The request budget bounds each shard (the finest granularity the
    // sharded layer can cancel at); the wall budget is also armed on the
    // session token, which the shards consult as their external cancel.
    sopt.shard_sim_seconds = budget.sim_seconds;
    sopt.shard_wall_ms = budget.wall_ms;
    sopt.cancel = &token_;
    sopt.device_spec = cfg_.device_spec;
    sopt.cost_model = cfg_.cost_model;
    sopt.record_trace = cfg_.record_trace;
    sopt.fail_fast = false;
    token_.arm_wall_budget_ms(budget.wall_ms);

    try {
        log_event(res.log, Kind::kAttempt, RecoveryStage::kSharded, 1);
        core::ShardedOutput<T> sh = core::spgemm_sharded(a, b, sopt);
        stats_.shard_failures += static_cast<std::uint64_t>(sh.sharded.failed_shards);
        res.shard_rollup = sh.sharded;
        res.shard_stats = std::move(sh.shards);
        if (res.shard_rollup.failed_shards > 0) {
            // Surface the lowest failed shard, preserving the outcome
            // taxonomy: cancellations and deadlines keep their kind, every
            // other cause is wrapped in a structured ShardFailed.
            const auto bad = std::find_if(res.shard_stats.begin(), res.shard_stats.end(),
                                          [](const core::ShardStats& s) { return !s.ok(); });
            NSPARSE_ASSERT(bad != res.shard_stats.end(),
                           "failed_shards > 0 without a failed shard slot");
            try {
                std::rethrow_exception(bad->error);
            } catch (const OperationCancelled&) {
                throw;
            } catch (const DeadlineExceeded&) {
                throw;
            } catch (...) {
                throw ShardFailed("sharded request failed: " + bad->error_message,
                                  bad->shard, bad->device_id, bad->error);
            }
        }
        res.escalated_64bit = sh.escalated_64bit;
        if (sh.escalated_64bit) {
            ++stats_.shard_escalations;
            res.wide_matrix = std::move(sh.wide_matrix);
            log_event(res.log, Kind::kAnnotate, RecoveryStage::kSharded, 0,
                      "escalated to 64-bit row pointers (nnz " +
                          std::to_string(res.wide_matrix.nnz()) + ")");
        } else {
            res.out.matrix = std::move(sh.matrix);
        }
        res.out.stats = sh.stats;
        res.outcome = RequestOutcome::kCompleted;
        ++stats_.completed;
        ++ten.stats.completed;
        ten.stats.sim_seconds += res.out.stats.seconds;
        if (res.shard_rollup.faults > 0 || res.shard_rollup.requeues > 0) {
            ++stats_.recovered;
            ++ten.stats.recovered;
        }
        log_event(res.log, Kind::kSuccess, RecoveryStage::kSharded, 0,
                  std::to_string(res.shard_rollup.shards) + " shard(s), " +
                      std::to_string(res.shard_rollup.faults) + " fault(s), " +
                      std::to_string(res.shard_rollup.requeues) + " requeue(s)");
    } catch (const OperationCancelled& e) {
        ++stats_.cancelled;
        ++ten.stats.cancelled;
        res.outcome = RequestOutcome::kCancelled;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kCancelled, RecoveryStage::kSharded, 0, e.stage());
    } catch (const DeadlineExceeded& e) {
        ++stats_.deadline_exceeded;
        ++ten.stats.deadline_exceeded;
        res.outcome = RequestOutcome::kDeadline;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kDeadline, RecoveryStage::kSharded, 0, e.stage());
    } catch (const Error& e) {
        ++stats_.failed;
        ++ten.stats.failed;
        res.outcome = RequestOutcome::kFailed;
        res.error = std::current_exception();
        res.error_message = e.what();
        log_event(res.log, Kind::kFailure, RecoveryStage::kSharded, 0, e.what());
    }
    token_.arm_wall_budget_ms(0);
    return std::move(res);
}

template <ValueType T>
RequestResult<T> Session::multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                   const RequestBudget& budget)
{
    token_.reset();
    return run_request(a, b, budget);
}

template <ValueType T>
BatchRequestResult<T> Session::multiply_batch(const std::vector<const CsrMatrix<T>*>& as,
                                              const std::vector<const CsrMatrix<T>*>& bs,
                                              const RequestBudget& per_product)
{
    return multiply_batch(as, bs, std::vector<TenantId>{}, per_product);
}

template <ValueType T>
BatchRequestResult<T> Session::multiply_batch(const std::vector<const CsrMatrix<T>*>& as,
                                              const std::vector<const CsrMatrix<T>*>& bs,
                                              const std::vector<TenantId>& tenants,
                                              const RequestBudget& per_product)
{
    NSPARSE_EXPECTS(as.size() == bs.size(), "batch A and B lists must have equal length");
    NSPARSE_EXPECTS(tenants.empty() || tenants.size() == as.size(),
                    "tenant list must be empty or match the batch length");
    const std::size_t n = as.size();
    // A malformed batch is a caller error and fails as a whole, naming the
    // offending product — matching core::spgemm_batch semantics.
    for (std::size_t k = 0; k < n; ++k) {
        if (as[k] == nullptr || bs[k] == nullptr) {
            throw PreconditionError(product_prefix(k) + "null matrix pointer",
                                    "non_null_inputs");
        }
        if (as[k]->cols != bs[k]->rows) {
            throw PreconditionError(product_prefix(k) + "inner dimensions must agree",
                                    "inner_dims_agree");
        }
        if (cfg_.options.validate_inputs) {
            try {
                validate_spgemm_inputs(*as[k], *bs[k]);
            } catch (const PreconditionError& e) {
                throw PreconditionError(product_prefix(k) + e.what(), e.invariant());
            }
        }
    }

    // ---- per-item tenants + the QoS wave schedule -----------------------
    std::vector<TenantId> ids(n, per_product.tenant);
    if (!tenants.empty()) { ids = tenants; }
    for (const TenantId t : ids) {
        NSPARSE_EXPECTS(t >= 0 && static_cast<std::size_t>(t) < tenants_.size(),
                        "unknown tenant id");
    }

    // Weighted-deficit round-robin: each tenant keeps a FIFO queue of its
    // items; rounds visit tenants in (priority desc, id asc) order, adding
    // `weight` credits and draining that many queued items. Weight decides
    // the share, priority only the order within a round, and every tenant
    // with weight >= 1 progresses every round — no starvation.
    std::vector<TenantId> order;
    std::vector<std::vector<std::size_t>> queues(tenants_.size());
    for (std::size_t k = 0; k < n; ++k) {
        const auto t = static_cast<std::size_t>(ids[k]);
        if (queues[t].empty()) { order.push_back(ids[k]); }
        queues[t].push_back(k);
    }
    std::stable_sort(order.begin(), order.end(), [&](TenantId x, TenantId y) {
        const int px = tenants_[static_cast<std::size_t>(x)].cfg.priority;
        const int py = tenants_[static_cast<std::size_t>(y)].cfg.priority;
        return px != py ? px > py : x < y;
    });
    std::vector<std::size_t> schedule;
    schedule.reserve(n);
    std::vector<std::size_t> head(tenants_.size(), 0);
    std::vector<int> credit(tenants_.size(), 0);
    while (schedule.size() < n) {
        for (const TenantId t : order) {
            const auto ti = static_cast<std::size_t>(t);
            if (head[ti] >= queues[ti].size()) { continue; }
            credit[ti] += tenants_[ti].cfg.weight;
            while (credit[ti] >= 1 && head[ti] < queues[ti].size()) {
                schedule.push_back(queues[ti][head[ti]++]);
                --credit[ti];
            }
            if (head[ti] >= queues[ti].size()) { credit[ti] = 0; }
        }
    }

    BatchRequestResult<T> out;
    out.items.resize(n);
    out.stats.products = static_cast<int>(n);
    token_.reset();

    for (const std::size_t k : schedule) {
        if (token_.cancel_requested()) {
            // Mid-batch cancellation: the remaining products fail
            // synchronously without touching the device.
            ++stats_.requests;
            ++stats_.cancelled;
            Tenant& ten = tenants_[static_cast<std::size_t>(ids[k])];
            ++ten.stats.requests;
            ++ten.stats.cancelled;
            RequestResult<T> slot;
            slot.outcome = RequestOutcome::kCancelled;
            slot.final_stage = RecoveryStage::kAdmission;
            try {
                throw OperationCancelled(product_prefix(k) + "batch cancelled before start",
                                         "admission", token_.reason());
            } catch (const OperationCancelled& e) {
                slot.error = std::current_exception();
                slot.error_message = e.what();
            }
            slot.log.append(RecoveryEvent{RecoveryEvent::Kind::kCancelled,
                                          RecoveryStage::kAdmission, 0, token_.reason(),
                                          0.0});
            out.items[k] = std::move(slot);
            continue;
        }
        RequestBudget item_budget = per_product;
        item_budget.tenant = ids[k];
        out.items[k] = run_request(*as[k], *bs[k], item_budget);
        if (!out.items[k].ok()) {
            out.items[k].error_message = product_prefix(k) + out.items[k].error_message;
        }
    }

    // ---- roll-up --------------------------------------------------------
    auto& bsout = out.stats;
    for (const auto& item : out.items) {
        const auto& s = item.out.stats;
        if (!item.ok()) {
            ++bsout.failed;
            switch (item.outcome) {
            case RequestOutcome::kRejected: ++bsout.rejected; break;
            case RequestOutcome::kCancelled: ++bsout.cancelled; break;
            case RequestOutcome::kDeadline: ++bsout.deadline_exceeded; break;
            case RequestOutcome::kFailed:
            case RequestOutcome::kCompleted: break;
            }
            continue;
        }
        bsout.total_intermediate_products += s.intermediate_products;
        bsout.total_nnz_c += s.nnz_c;
        bsout.seconds += s.seconds;
        bsout.malloc_seconds += s.malloc_seconds;
        bsout.peak_bytes = std::max(bsout.peak_bytes, s.peak_bytes);
        bsout.fallback_slabs += s.fallback_slabs;
        bsout.fallback_retries += s.fallback_retries;
        bsout.faulted_rows += s.faulted_rows;
        bsout.row_retries += s.row_retries;
        bsout.host_fallback_rows += s.host_fallback_rows;
        bsout.estimated_rows += s.estimated_rows;
        bsout.mispredicted_rows += s.mispredicted_rows;
        bsout.replans += s.replans;
        bsout.host_recourse_products += s.host_recourse;
    }
    bsout.scratch_hits = scratch_.hits();
    bsout.scratch_misses = scratch_.misses();
    return out;
}

template RequestResult<float> Session::multiply(const CsrMatrix<float>&,
                                                const CsrMatrix<float>&, const RequestBudget&);
template RequestResult<double> Session::multiply(const CsrMatrix<double>&,
                                                 const CsrMatrix<double>&,
                                                 const RequestBudget&);
template BatchRequestResult<float>
Session::multiply_batch(const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<const CsrMatrix<float>*>&, const RequestBudget&);
template BatchRequestResult<double>
Session::multiply_batch(const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<const CsrMatrix<double>*>&, const RequestBudget&);
template BatchRequestResult<float>
Session::multiply_batch(const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<const CsrMatrix<float>*>&,
                        const std::vector<TenantId>&, const RequestBudget&);
template BatchRequestResult<double>
Session::multiply_batch(const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<const CsrMatrix<double>*>&,
                        const std::vector<TenantId>&, const RequestBudget&);
template AdmissionDecision Session::admit(const CsrMatrix<float>&,
                                          const CsrMatrix<float>&) const;
template AdmissionDecision Session::admit(const CsrMatrix<double>&,
                                          const CsrMatrix<double>&) const;

}  // namespace nsparse
