#include "service/recovery.hpp"

#include <algorithm>

namespace nsparse {

const char* to_string(RecoveryStage stage)
{
    switch (stage) {
    case RecoveryStage::kAdmission: return "admission";
    case RecoveryStage::kPlanned: return "planned";
    case RecoveryStage::kExactReplan: return "exact_replan";
    case RecoveryStage::kSlab: return "slab";
    case RecoveryStage::kHostRecourse: return "host_recourse";
    case RecoveryStage::kSharded: return "sharded";
    }
    return "unknown";
}

const char* to_string(RecoveryEvent::Kind kind)
{
    switch (kind) {
    case RecoveryEvent::Kind::kAdmit: return "admit";
    case RecoveryEvent::Kind::kAnnotate: return "annotate";
    case RecoveryEvent::Kind::kReject: return "reject";
    case RecoveryEvent::Kind::kAttempt: return "attempt";
    case RecoveryEvent::Kind::kEscalate: return "escalate";
    case RecoveryEvent::Kind::kBackoff: return "backoff";
    case RecoveryEvent::Kind::kBreakerOpen: return "breaker_open";
    case RecoveryEvent::Kind::kBreakerProbe: return "breaker_probe";
    case RecoveryEvent::Kind::kBreakerClose: return "breaker_close";
    case RecoveryEvent::Kind::kBreakerJump: return "breaker_jump";
    case RecoveryEvent::Kind::kCancelled: return "cancelled";
    case RecoveryEvent::Kind::kDeadline: return "deadline";
    case RecoveryEvent::Kind::kSuccess: return "success";
    case RecoveryEvent::Kind::kFailure: return "failure";
    case RecoveryEvent::Kind::kCacheHit: return "cache_hit";
    case RecoveryEvent::Kind::kCacheMiss: return "cache_miss";
    case RecoveryEvent::Kind::kCacheEvict: return "cache_evict";
    }
    return "unknown";
}

std::size_t RecoveryLog::count(RecoveryEvent::Kind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const RecoveryEvent& ev) { return ev.kind == kind; }));
}

std::string RecoveryLog::report() const
{
    std::string out;
    for (const auto& ev : events_) {
        out += to_string(ev.kind);
        out += " stage=";
        out += to_string(ev.stage);
        if (ev.attempt > 0) {
            out += " attempt=";
            out += std::to_string(ev.attempt);
        }
        if (!ev.detail.empty()) {
            out += " (";
            out += ev.detail;
            out += ")";
        }
        out += "\n";
    }
    return out;
}

CircuitBreaker::Decision CircuitBreaker::next_request()
{
    if (!open_) { return {}; }
    ++requests_while_open_;
    if (probe_interval_ > 0 && requests_while_open_ % probe_interval_ == 0) {
        Decision d;
        d.probe = true;
        return d;
    }
    Decision d;
    d.jump = true;
    d.stage = known_good_stage_;
    d.slabs = known_good_stage_ == RecoveryStage::kSlab ? std::max(known_good_slabs_, 2) : 0;
    return d;
}

bool CircuitBreaker::on_fault(const std::string& signature)
{
    if (signature == last_signature_) {
        ++consecutive_;
    } else {
        last_signature_ = signature;
        consecutive_ = 1;
    }
    if (!open_ && threshold_ > 0 && consecutive_ >= threshold_) {
        open_ = true;
        requests_while_open_ = 0;
        return true;
    }
    return false;
}

void CircuitBreaker::on_recovered(RecoveryStage stage, int slabs)
{
    known_good_stage_ = stage;
    known_good_slabs_ = slabs;
}

bool CircuitBreaker::on_clean(bool probing)
{
    consecutive_ = 0;
    last_signature_.clear();
    if (open_ && probing) {
        open_ = false;
        requests_while_open_ = 0;
        return true;
    }
    return false;
}

void CircuitBreaker::reset()
{
    last_signature_.clear();
    consecutive_ = 0;
    open_ = false;
    requests_while_open_ = 0;
    known_good_stage_ = RecoveryStage::kSlab;
    known_good_slabs_ = 0;
}

}  // namespace nsparse
