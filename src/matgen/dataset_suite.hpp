// The evaluation dataset suite: synthetic analogues of the 12 UF-collection
// matrices plus the 3 large graph matrices of the paper's Table II.
//
// Each entry records the paper's published statistics (for EXPERIMENTS.md
// paper-vs-measured comparison) and knows how to generate its analogue at a
// configurable scale: `scale` divides the row count while preserving the
// row-degree distribution, so the number of intermediate products also
// scales by ~1/scale and one CPU core can execute the simulation. The
// default per-dataset scale keeps every matrix between roughly 2M and 35M
// intermediate products.
//
// Setting the environment variable NSPARSE_SCALE to a positive value
// multiplies every default scale by it (values < 1 grow the matrices).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace nsparse::gen {

struct PaperStats {
    wide_t rows = 0;
    wide_t nnz = 0;
    double nnz_per_row = 0.0;
    index_t max_nnz_per_row = 0;
    wide_t intermediate_products = 0;
    wide_t nnz_of_square = 0;
};

struct DatasetSpec {
    std::string name;
    bool high_throughput = false;  ///< Figure 2(a)/(b) split (top-8 by nnz/row)
    bool large_graph = false;      ///< Table III set
    double default_scale = 1.0;
    PaperStats paper;
};

/// The 15 datasets in Table II order.
const std::vector<DatasetSpec>& dataset_suite();

/// Spec lookup by paper name; nullopt when unknown.
std::optional<DatasetSpec> find_dataset(const std::string& name);

/// Generates the analogue of `name` at `scale` x the default scale
/// (scale = 1 uses the per-dataset default; larger = smaller matrix).
/// Honours NSPARSE_SCALE (multiplied on top).
CsrMatrix<double> make_dataset(const std::string& name, double scale = 1.0);

/// Effective scale that make_dataset would use (default * arg * env).
double effective_scale(const std::string& name, double scale = 1.0);

}  // namespace nsparse::gen
