#include "matgen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "matgen/rng.hpp"

namespace nsparse::gen {

namespace {

/// Builds a CSR matrix from per-row column lists: sorts, deduplicates and
/// assigns deterministic pseudo-random values in [0.5, 1.5) (positive so
/// cancellation never changes the nonzero pattern between algorithms).
CsrMatrix<double> assemble(index_t rows, index_t cols,
                           std::vector<std::vector<index_t>>& row_cols, Pcg32& rng)
{
    CsrMatrix<double> m;
    m.rows = rows;
    m.cols = cols;
    m.rpt.assign(to_size(rows) + 1, 0);
    std::size_t nnz = 0;
    for (auto& rc : row_cols) {
        std::sort(rc.begin(), rc.end());
        rc.erase(std::unique(rc.begin(), rc.end()), rc.end());
        nnz += rc.size();
    }
    m.col.reserve(nnz);
    m.val.reserve(nnz);
    for (index_t i = 0; i < rows; ++i) {
        for (const index_t c : row_cols[to_size(i)]) {
            m.col.push_back(c);
            m.val.push_back(rng.uniform(0.5, 1.5));
        }
        m.rpt[to_size(i) + 1] = to_index(m.col.size());
    }
    m.validate();
    return m;
}

index_t clamp_col(wide_t c, index_t n)
{
    if (c < 0) { return 0; }
    if (c >= n) { return n - 1; }
    return static_cast<index_t>(c);
}

}  // namespace

CsrMatrix<double> grid2d(index_t nx, index_t ny, bool periodic, std::uint64_t seed)
{
    NSPARSE_EXPECTS(nx > 0 && ny > 0, "grid dimensions must be positive");
    const index_t n = to_index(static_cast<wide_t>(nx) * ny);
    Pcg32 rng(seed);
    std::vector<std::vector<index_t>> rc(to_size(n));
    const auto at = [&](index_t x, index_t y) { return y * nx + x; };
    for (index_t y = 0; y < ny; ++y) {
        for (index_t x = 0; x < nx; ++x) {
            auto& r = rc[to_size(at(x, y))];
            const auto push = [&](index_t xx, index_t yy) {
                if (periodic) {
                    xx = (xx + nx) % nx;
                    yy = (yy + ny) % ny;
                } else if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) {
                    return;
                }
                r.push_back(at(xx, yy));
            };
            push(x - 1, y);
            push(x + 1, y);
            push(x, y - 1);
            push(x, y + 1);
        }
    }
    return assemble(n, n, rc, rng);
}

CsrMatrix<double> banded(index_t n, index_t diagonals, index_t spread, std::uint64_t seed)
{
    NSPARSE_EXPECTS(n > 0 && diagonals > 0, "banded: bad parameters");
    NSPARSE_EXPECTS(diagonals <= n, "banded: more diagonals than columns");
    Pcg32 rng(seed);
    // Fixed wrapped offsets: 0, +-spread, +-2*spread, ... until `diagonals`
    // offsets are chosen; every row gets exactly the same count, like the
    // QCD lattice operator (39 nonzeros in every row).
    std::vector<wide_t> offsets;
    offsets.push_back(0);
    for (index_t k = 1; to_index(offsets.size()) < diagonals; ++k) {
        offsets.push_back(static_cast<wide_t>(k) * spread);
        if (to_index(offsets.size()) < diagonals) {
            offsets.push_back(-static_cast<wide_t>(k) * spread);
        }
    }
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 0; i < n; ++i) {
        auto& r = rc[to_size(i)];
        r.reserve(offsets.size());
        for (const wide_t o : offsets) {
            const wide_t c = ((static_cast<wide_t>(i) + o) % n + n) % n;
            r.push_back(static_cast<index_t>(c));
        }
    }
    return assemble(n, n, rc, rng);
}

CsrMatrix<double> fem_like(const FemParams& p)
{
    NSPARSE_EXPECTS(p.nodes > 0 && p.block_size > 0, "fem_like: bad parameters");
    Pcg32 rng(p.seed);
    const index_t rows = to_index(static_cast<wide_t>(p.nodes) * p.block_size);
    std::vector<std::vector<index_t>> rc(to_size(rows));
    for (index_t node = 0; node < p.nodes; ++node) {
        // Sample neighbouring node blocks within the bandwidth.
        const double jitter = 1.0 + p.jitter * (2.0 * rng.uniform() - 1.0);
        const auto want = static_cast<index_t>(std::max(1.0, p.avg_blocks * jitter));
        std::vector<index_t> nbr;
        nbr.push_back(node);  // self block (diagonal)
        // Rejection-sample distinct neighbours so clamping at the matrix
        // boundary and duplicate draws do not erode the degree signature.
        for (index_t attempts = 0; to_index(nbr.size()) < want && attempts < 8 * want;
             ++attempts) {
            const auto off = static_cast<wide_t>(rng.bounded(
                                 static_cast<std::uint32_t>(2 * p.bandwidth + 1))) -
                             p.bandwidth;
            const index_t cand = clamp_col(static_cast<wide_t>(node) + off, p.nodes);
            if (std::find(nbr.begin(), nbr.end(), cand) == nbr.end()) { nbr.push_back(cand); }
        }
        std::sort(nbr.begin(), nbr.end());
        // Fill dense block rows.
        for (index_t bi = 0; bi < p.block_size; ++bi) {
            auto& r = rc[to_size(node * p.block_size + bi)];
            r.reserve(nbr.size() * to_size(p.block_size));
            for (const index_t nb : nbr) {
                for (index_t bj = 0; bj < p.block_size; ++bj) {
                    r.push_back(nb * p.block_size + bj);
                }
            }
        }
    }
    return assemble(rows, rows, rc, rng);
}

CsrMatrix<double> scale_free(const ScaleFreeParams& p)
{
    NSPARSE_EXPECTS(p.rows > 0, "scale_free: rows must be positive");
    NSPARSE_EXPECTS(p.min_degree >= 0 && p.max_degree >= p.min_degree,
                    "scale_free: bad degree bounds");
    Pcg32 rng(p.seed);
    std::vector<std::vector<index_t>> rc(to_size(p.rows));

    // Draw truncated-Pareto degrees, then rescale multiplicatively so the
    // realised mean matches avg_degree (the raw Pareto mean depends on
    // alpha and the truncation range).
    std::vector<double> deg(to_size(p.rows));
    double sum = 0.0;
    const double lo = std::max(1.0, static_cast<double>(p.min_degree));
    const double hi = std::max(lo + 1.0, static_cast<double>(p.max_degree));
    for (auto& d : deg) {
        d = rng.pareto(lo, hi, p.alpha);
        sum += d;
    }
    const double scale = p.avg_degree * static_cast<double>(p.rows) / std::max(sum, 1.0);
    if (p.hub_attach > 0.0) {
        // hubs first: row index correlates with out-degree, and the biased
        // column sampling below points edges at exactly those rows.
        std::sort(deg.begin(), deg.end(), std::greater<>());
    }

    const auto band_skip = static_cast<index_t>(p.hub_band_skip *
                                                static_cast<double>(p.rows));
    const auto band_size = std::max<index_t>(
        1, static_cast<index_t>(p.hub_band * static_cast<double>(p.rows)));

    for (index_t i = 0; i < p.rows; ++i) {
        const double want = deg[to_size(i)] * scale;
        auto d = static_cast<index_t>(want);
        if (rng.uniform() < want - static_cast<double>(d)) { ++d; }
        d = std::clamp(d, p.min_degree, std::min(p.max_degree, p.rows));
        auto& r = rc[to_size(i)];
        r.reserve(to_size(d));
        const bool in_band = p.hub_attach > 0.0 && i >= band_skip && i < band_skip + band_size;
        index_t anchor = -1;  // per-row band anchor (domain clustering)
        for (index_t k = 0; k < d; ++k) {
            index_t c = 0;
            if (p.locality > 0.0 && rng.uniform() < p.locality) {
                // near-diagonal neighbourhood
                const index_t window = std::max<index_t>(8, p.rows / 64);
                const auto off =
                    static_cast<wide_t>(rng.bounded(static_cast<std::uint32_t>(2 * window))) -
                    window;
                c = clamp_col(static_cast<wide_t>(i) + off, p.rows);
            } else if (in_band) {
                // Hub-band rows (site index pages) link *densely* within a
                // window barely larger than their degree, so adjacent band
                // rows have near-identical contents — a page attaching to
                // several of them gets the within-row products : nnz(C)
                // compression of real web matrices.
                const index_t window = std::max<index_t>(4, (5 * d) / 8);
                const auto off = static_cast<wide_t>(rng.bounded(
                                     static_cast<std::uint32_t>(2 * window + 1))) -
                                 window;
                c = clamp_col(static_cast<wide_t>(i) + off, p.rows);
            } else if (p.hub_attach > 0.0 && d <= 8 && rng.uniform() < p.hub_attach) {
                // Ordinary pages link AT the hub band, clustered around a
                // per-page anchor (pages of one domain reference the same
                // few index pages). Restricting to short rows keeps any
                // single row's intermediate-product count bounded.
                if (anchor < 0) { anchor = band_skip + to_index(rng.bounded(
                                      static_cast<std::uint32_t>(band_size))); }
                const auto jitter =
                    static_cast<wide_t>(rng.bounded(5)) - 2;
                c = clamp_col(static_cast<wide_t>(anchor) + jitter, p.rows);
            } else {
                c = to_index(rng.bounded(static_cast<std::uint32_t>(p.rows)));
            }
            r.push_back(c);
        }
    }
    return assemble(p.rows, p.rows, rc, rng);
}

CsrMatrix<double> rmat(const RmatParams& p)
{
    NSPARSE_EXPECTS(p.scale > 0 && p.scale < 31, "rmat: scale out of range");
    NSPARSE_EXPECTS(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0,
                    "rmat: bad partition probabilities");
    Pcg32 rng(p.seed);
    const index_t n = index_t{1} << p.scale;
    const auto edges = static_cast<wide_t>(p.edges_per_vertex * static_cast<double>(n));
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (wide_t e = 0; e < edges; ++e) {
        index_t r = 0;
        index_t c = 0;
        for (int level = 0; level < p.scale; ++level) {
            const double u = rng.uniform();
            r <<= 1;
            c <<= 1;
            if (u < p.a) {
                // top-left
            } else if (u < p.a + p.b) {
                c |= 1;
            } else if (u < p.a + p.b + p.c) {
                r |= 1;
            } else {
                r |= 1;
                c |= 1;
            }
        }
        rc[to_size(r)].push_back(c);
    }
    if (p.permute_columns) {
        std::vector<index_t> perm(to_size(n));
        std::iota(perm.begin(), perm.end(), index_t{0});
        for (std::size_t k = perm.size(); k > 1; --k) {
            std::swap(perm[k - 1], perm[rng.bounded(static_cast<std::uint32_t>(k))]);
        }
        for (auto& row : rc) {
            for (auto& c : row) { c = perm[to_size(c)]; }
        }
    }
    if (p.max_degree >= 0) {
        for (auto& row : rc) {
            if (to_index(row.size()) > p.max_degree) { row.resize(to_size(p.max_degree)); }
        }
    }
    return assemble(n, n, rc, rng);
}

CsrMatrix<double> random_banded(const RandomBandedParams& p)
{
    NSPARSE_EXPECTS(p.n > 0, "random_banded: n must be positive");
    Pcg32 rng(p.seed);
    std::vector<std::vector<index_t>> rc(to_size(p.n));
    const index_t bw = std::min(p.bandwidth, p.n - 1);
    for (index_t i = 0; i < p.n; ++i) {
        // degree ~ avg +- 30%, capped at max_degree
        const double want = p.avg_degree * rng.uniform(0.7, 1.3);
        auto d = std::clamp(static_cast<index_t>(want), index_t{1}, p.max_degree);
        auto& r = rc[to_size(i)];
        r.reserve(to_size(d) + 1);
        r.push_back(i);
        for (index_t k = 1; k < d; ++k) {
            const auto off =
                static_cast<wide_t>(rng.bounded(static_cast<std::uint32_t>(2 * bw + 1))) - bw;
            r.push_back(clamp_col(static_cast<wide_t>(i) + off, p.n));
        }
    }
    return assemble(p.n, p.n, rc, rng);
}

CsrMatrix<double> uniform_random(index_t rows, index_t cols, index_t degree, std::uint64_t seed)
{
    NSPARSE_EXPECTS(rows >= 0 && cols > 0, "uniform_random: bad dimensions");
    NSPARSE_EXPECTS(degree <= cols, "uniform_random: degree exceeds columns");
    Pcg32 rng(seed);
    std::vector<std::vector<index_t>> rc(to_size(rows));
    for (auto& r : rc) {
        r.reserve(to_size(degree));
        for (index_t k = 0; k < degree; ++k) {
            r.push_back(to_index(rng.bounded(static_cast<std::uint32_t>(cols))));
        }
    }
    return assemble(rows, cols, rc, rng);
}

}  // namespace nsparse::gen
