// Parameterised sparse-matrix generators.
//
// The paper evaluates on real matrices from the UF Sparse Matrix Collection
// plus three large graph matrices. This environment has no network or
// dataset mirror, so the benchmark suite substitutes synthetic analogues
// with matching *structural signatures* — row count, mean and maximum
// nonzeros per row, and pattern class (banded FEM blocks, constant-degree
// lattice, grid stencil, scale-free tail, R-MAT community structure) —
// because every algorithm under study dispatches on exactly these
// signatures (see DESIGN.md §2). Real .mtx files can be loaded instead via
// sparse/io_matrix_market.hpp.
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace nsparse::gen {

/// 2-D grid where each cell connects to its von Neumann neighbours
/// (no self loop): exactly 4 nonzeros for interior rows, fewer at the
/// boundary unless `periodic`. Analogue of `Epidemiology` (nnz/row = max
/// nnz/row = 4).
CsrMatrix<double> grid2d(index_t nx, index_t ny, bool periodic, std::uint64_t seed);

/// Constant-degree wrapped banded matrix: every row has exactly `diagonals`
/// nonzeros at fixed (wrapped) offsets. Analogue of `QCD` (nnz/row = max =
/// 39, perfectly regular).
CsrMatrix<double> banded(index_t n, index_t diagonals, index_t spread, std::uint64_t seed);

/// FEM-style block matrix: nodes of `block_size` DOFs each connect to
/// `avg_blocks` neighbouring nodes within `bandwidth` (plus self), giving
/// dense block_size x block_size sub-blocks. Analogues of Protein,
/// FEM/Spheres, Cantilever, Ship, Wind Tunnel, Harbor, Accelerator.
struct FemParams {
    index_t nodes = 1000;        ///< number of node blocks (rows = nodes*block_size)
    index_t block_size = 3;      ///< DOFs per node
    double avg_blocks = 20.0;    ///< mean neighbouring node blocks per node
    double jitter = 0.25;        ///< relative spread of the neighbour count
    index_t bandwidth = 200;     ///< neighbour blocks live within +-bandwidth
    std::uint64_t seed = 1;
};
CsrMatrix<double> fem_like(const FemParams& p);

/// Rows with truncated-Pareto degrees: most rows tiny, a heavy tail up to
/// `max_degree`. Columns drawn with locality bias `locality` in [0,1]
/// (1 = near the diagonal, 0 = uniform). Analogues of webbase, wb-edu,
/// Circuit (with symmetrize), Economics.
///
/// `hub_attach` > 0 models web graphs where edges point AT hubs: row
/// degrees are assigned in descending order (row 0 is the biggest hub) and
/// each non-local column draw of a *short* row attaches, with probability
/// hub_attach, to a uniformly random row in the top `hub_band` fraction
/// (the medium-hub band). This raises the out/in-degree correlation that
/// gives webbase/wb-edu their large intermediate-product counts (Table II)
/// while keeping any single output row's width bounded — pointing most
/// in-edges at a few mega-hubs instead would make the O(nnz^2) row sort
/// quadratically dominant, which the real matrices do not exhibit.
struct ScaleFreeParams {
    index_t rows = 10000;
    double avg_degree = 4.0;
    index_t min_degree = 1;
    index_t max_degree = 1000;
    double alpha = 1.8;       ///< Pareto tail exponent (smaller = heavier tail)
    double locality = 0.0;
    double hub_attach = 0.0;  ///< probability a short-row edge targets the hub band
    double hub_band = 0.04;   ///< fraction of rows forming the hub band
    double hub_band_skip = 0.003;  ///< top fraction excluded from the band: the
                                   ///< widest rows (index pages) are not the
                                   ///< most linked-to, and including them would
                                   ///< concentrate quadratic-sort mass the real
                                   ///< matrices do not show
    std::uint64_t seed = 1;
};
CsrMatrix<double> scale_free(const ScaleFreeParams& p);

/// Classic R-MAT generator with partition probabilities (a, b, c, d);
/// duplicates folded. Analogue of cit-Patents.
struct RmatParams {
    int scale = 14;            ///< 2^scale vertices
    double edges_per_vertex = 8.0;
    double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
    index_t max_degree = -1;   ///< cap on row degree (-1 = uncapped); excess
                               ///< edges of a hub row are dropped
    bool permute_columns = false;  ///< decorrelate out- and in-degree (a patent
                                   ///< citing many is not cited proportionally)
    std::uint64_t seed = 1;
};
CsrMatrix<double> rmat(const RmatParams& p);

/// Moderately regular random banded graph with degree jitter. Analogue of
/// cage15 (nnz/row 19.2, max 47, diffusion-like regularity).
struct RandomBandedParams {
    index_t n = 10000;
    double avg_degree = 19.0;
    index_t max_degree = 47;
    index_t bandwidth = 4000;
    std::uint64_t seed = 1;
};
CsrMatrix<double> random_banded(const RandomBandedParams& p);

/// Uniform random matrix: every row gets `degree` columns uniformly at
/// random (used heavily by tests).
CsrMatrix<double> uniform_random(index_t rows, index_t cols, index_t degree, std::uint64_t seed);

}  // namespace nsparse::gen
