#include "matgen/adversarial.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "matgen/generators.hpp"
#include "matgen/rng.hpp"

namespace nsparse::gen {

namespace {

/// Sorted/deduplicated CSR from per-row column lists with positive values.
CsrMatrix<double> assemble(index_t n, std::vector<std::vector<index_t>>& rc, Pcg32& rng)
{
    CsrMatrix<double> m;
    m.rows = n;
    m.cols = n;
    m.rpt.assign(to_size(n) + 1, 0);
    for (auto& cols : rc) {
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    }
    for (index_t i = 0; i < n; ++i) {
        for (const index_t c : rc[to_size(i)]) {
            m.col.push_back(c);
            m.val.push_back(rng.uniform(0.5, 1.5));
        }
        m.rpt[to_size(i) + 1] = to_index(m.col.size());
    }
    m.validate();
    return m;
}

/// Every column of every row congruent to one residue modulo `stride`.
/// With stride a multiple of a pow2 hash-table size, (c * 107) & (size-1)
/// maps the whole row onto a single slot: maximal linear-probe chains in
/// every bounded table of size <= stride (the pwarp table is 32 entries).
AdversarialCase hash_collider(Pcg32& rng, index_t stride)
{
    const index_t n = stride * 8;
    const index_t lanes = n / stride;
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 0; i < n; ++i) {
        const auto residue = to_index(rng.bounded(static_cast<std::uint32_t>(stride)));
        const index_t degree = 2 + to_index(rng.bounded(7));  // 2..8 per row
        for (index_t t = 0; t < degree; ++t) {
            const auto lane = to_index(rng.bounded(static_cast<std::uint32_t>(lanes)));
            rc[to_size(i)].push_back(residue + lane * stride);
        }
    }
    AdversarialCase c;
    c.name = "hash_collider/stride" + std::to_string(stride);
    c.matrix = assemble(n, rc, rng);
    return c;
}

/// Unsorted rows with duplicate columns, assembled by direct field
/// mutation (the validating constructor would reject them). Still a
/// well-formed CSR structurally, so the algorithms must cope — the hash
/// accumulators merge duplicates exactly like the dense reference.
AdversarialCase duplicate_unsorted(Pcg32& rng)
{
    const index_t n = 48 + to_index(rng.bounded(81));  // 48..128
    CsrMatrix<double> m;
    m.rows = n;
    m.cols = n;
    m.rpt.assign(to_size(n) + 1, 0);
    for (index_t i = 0; i < n; ++i) {
        const index_t degree = 1 + to_index(rng.bounded(6));
        for (index_t t = 0; t < degree; ++t) {
            const auto c = to_index(rng.bounded(static_cast<std::uint32_t>(n)));
            m.col.push_back(c);
            m.val.push_back(rng.uniform(0.5, 1.5));
            if (rng.bounded(4) == 0) {  // explicit duplicate entry
                m.col.push_back(c);
                m.val.push_back(rng.uniform(0.5, 1.5));
            }
        }
        m.rpt[to_size(i) + 1] = to_index(m.col.size());
    }
    AdversarialCase c;
    c.name = "duplicate_unsorted";
    c.matrix = std::move(m);
    c.sorted = false;
    return c;
}

/// Mostly-empty matrix: only every k-th row is populated (the first and
/// last rows always empty), stressing the grouping's empty-row bin and
/// the row-pointer scan over long empty runs.
AdversarialCase empty_rows(Pcg32& rng)
{
    const index_t n = 150 + to_index(rng.bounded(101));
    const index_t stride = 3 + 2 * to_index(rng.bounded(4));  // 3,5,7,9
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 1; i + 1 < n; ++i) {
        if (i % stride != 1) { continue; }
        const index_t degree = 1 + to_index(rng.bounded(4));
        for (index_t t = 0; t < degree; ++t) {
            rc[to_size(i)].push_back(to_index(rng.bounded(static_cast<std::uint32_t>(n))));
        }
    }
    AdversarialCase c;
    c.name = "empty_rows/stride" + std::to_string(stride);
    c.matrix = assemble(n, rc, rng);
    return c;
}

/// Diagonal matrix plus one fully dense row. Squaring keeps that row
/// dense, so with `huge` its C-row exceeds every bounded numeric table
/// and must take the group-0 global path.
AdversarialCase dense_row(Pcg32& rng, bool huge)
{
    const index_t n = huge ? 4200 : 80 + to_index(rng.bounded(33));
    const auto dense = to_index(rng.bounded(static_cast<std::uint32_t>(n)));
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 0; i < n; ++i) { rc[to_size(i)].push_back(i); }
    for (index_t j = 0; j < n; ++j) { rc[to_size(dense)].push_back(j); }
    AdversarialCase c;
    c.name = huge ? "dense_row/global" : "dense_row";
    c.matrix = assemble(n, rc, rng);
    return c;
}

/// Rows pinned exactly on the Table-I group boundaries: boundary rows of
/// degree d target only rows with exactly 32 nonzeros, so the row's
/// intermediate-product count is exactly 32*d — the shared-table limits
/// {512, 1024, 2048, 4096, 8192} and one past each.
AdversarialCase group_boundary(Pcg32& rng)
{
    constexpr index_t kDegrees[] = {1, 2, 16, 17, 32, 33, 64, 65, 128, 129, 256, 257};
    constexpr index_t kBoundaryRows = to_index(std::size(kDegrees));
    const index_t n = 600;
    const index_t body = n - kBoundaryRows;
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 0; i < kBoundaryRows; ++i) {
        const auto offset = to_index(rng.bounded(static_cast<std::uint32_t>(body)));
        for (index_t j = 0; j < kDegrees[to_size(i)]; ++j) {
            rc[to_size(i)].push_back(kBoundaryRows + (offset + j) % body);
        }
    }
    for (index_t i = kBoundaryRows; i < n; ++i) {
        // 32 distinct columns: stride 13 is coprime with n = 600.
        for (index_t t = 0; t < 32; ++t) {
            rc[to_size(i)].push_back((i + t * 13) % n);
        }
    }
    AdversarialCase c;
    c.name = "group_boundary";
    c.matrix = assemble(n, rc, rng);
    return c;
}

/// All of the above in one matrix: collider rows, empty runs and a
/// half-dense row next to ordinary sparse rows.
AdversarialCase mixed(Pcg32& rng)
{
    const index_t n = 160;
    std::vector<std::vector<index_t>> rc(to_size(n));
    for (index_t i = 0; i < n; ++i) {
        switch (i % 4) {
            case 0:  // collider row: all columns congruent mod 32
                for (index_t t = 0; t < 5; ++t) {
                    rc[to_size(i)].push_back((i % 32) + 32 * to_index(rng.bounded(5)));
                }
                break;
            case 1:  // empty row
                break;
            case 2:  // ordinary sparse row
                for (index_t t = 0; t < 1 + to_index(rng.bounded(5)); ++t) {
                    rc[to_size(i)].push_back(to_index(rng.bounded(static_cast<std::uint32_t>(n))));
                }
                break;
            default:  // half-dense row
                for (index_t j = 0; j < n; j += 2) { rc[to_size(i)].push_back(j); }
                break;
        }
    }
    AdversarialCase c;
    c.name = "mixed";
    c.matrix = assemble(n, rc, rng);
    return c;
}

}  // namespace

AdversarialCase adversarial_case(std::uint64_t seed, int index)
{
    NSPARSE_EXPECTS(index >= 0, "adversarial case index must be non-negative");
    // One deterministic stream per (seed, index): cases are independent, so
    // a failing index reproduces in isolation.
    Pcg32 rng(seed * std::uint64_t{1000003} + static_cast<std::uint64_t>(index));
    constexpr index_t kStrides[] = {32, 64, 128};
    switch (index % 6) {
        case 0: return hash_collider(rng, kStrides[(index / 6) % 3]);
        case 1: return duplicate_unsorted(rng);
        case 2: return empty_rows(rng);
        case 3: return dense_row(rng, index % 24 == 3);
        case 4: return group_boundary(rng);
        default: return mixed(rng);
    }
}

std::vector<AdversarialCase> adversarial_suite(std::uint64_t seed, int count)
{
    std::vector<AdversarialCase> cases;
    cases.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) { cases.push_back(adversarial_case(seed, i)); }
    return cases;
}

const char* corruption_name(CsrCorruption kind)
{
    switch (kind) {
        case CsrCorruption::kColumnOutOfRange: return "column_out_of_range";
        case CsrCorruption::kNegativeColumn: return "negative_column";
        case CsrCorruption::kNonMonotoneRpt: return "non_monotone_rpt";
        case CsrCorruption::kRptSizeMismatch: return "rpt_size_mismatch";
        case CsrCorruption::kRptFrontNonzero: return "rpt_front_nonzero";
        case CsrCorruption::kColSizeMismatch: return "col_size_mismatch";
        case CsrCorruption::kValSizeMismatch: return "val_size_mismatch";
        case CsrCorruption::kUnsortedRow: return "unsorted_row";
        case CsrCorruption::kDuplicateColumn: return "duplicate_column";
    }
    return "unknown";
}

const char* corruption_invariant(CsrCorruption kind)
{
    switch (kind) {
        case CsrCorruption::kColumnOutOfRange:
        case CsrCorruption::kNegativeColumn: return "col_in_range";
        case CsrCorruption::kNonMonotoneRpt: return "rpt_monotone";
        case CsrCorruption::kRptSizeMismatch: return "rpt_size";
        case CsrCorruption::kRptFrontNonzero: return "rpt_front_zero";
        case CsrCorruption::kColSizeMismatch: return "col_size";
        case CsrCorruption::kValSizeMismatch: return "val_size";
        case CsrCorruption::kUnsortedRow:
        case CsrCorruption::kDuplicateColumn: return "rows_sorted";
    }
    return "unknown";
}

CsrMatrix<double> corrupt_csr(CsrCorruption kind, std::uint64_t seed)
{
    // Banded base guarantees interior rows with several strictly
    // increasing columns to unsort or duplicate.
    CsrMatrix<double> m = banded(16, 5, 1, seed);
    // First row with at least two entries.
    index_t wide = -1;
    for (index_t i = 0; i < m.rows; ++i) {
        if (m.rpt[to_size(i) + 1] - m.rpt[to_size(i)] >= 2) {
            wide = i;
            break;
        }
    }
    NSPARSE_ENSURES(wide >= 0, "banded base must have a multi-entry row");
    const auto k = to_size(m.rpt[to_size(wide)]);
    switch (kind) {
        case CsrCorruption::kColumnOutOfRange: m.col[k] = m.cols; break;
        case CsrCorruption::kNegativeColumn: m.col[k] = -1; break;
        case CsrCorruption::kNonMonotoneRpt: m.rpt[to_size(wide) + 1] = -1; break;
        case CsrCorruption::kRptSizeMismatch: m.rpt.pop_back(); break;
        case CsrCorruption::kRptFrontNonzero: m.rpt[0] = 1; break;
        case CsrCorruption::kColSizeMismatch:
            m.col.push_back(0);
            m.val.push_back(1.0);
            break;
        case CsrCorruption::kValSizeMismatch: m.val.pop_back(); break;
        case CsrCorruption::kUnsortedRow: std::swap(m.col[k], m.col[k + 1]); break;
        case CsrCorruption::kDuplicateColumn: m.col[k + 1] = m.col[k]; break;
    }
    return m;
}

}  // namespace nsparse::gen
