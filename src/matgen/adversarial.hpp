// Adversarial-input generator for the SpGEMM fuzz harness.
//
// Two families:
//  * adversarial_case / adversarial_suite — *valid* CSR matrices with
//    pathological structure: hash-adversarial columns (all congruent under
//    the (c*107) mod 2^k probe, so every insert collides), duplicate and
//    unsorted columns, almost-all-empty rows, one dense row that forces the
//    numeric group-0 global-table path, and rows pinned exactly on Table-I
//    group boundaries. Every case is square so the harness can run C = A^2
//    through all four algorithms against reference_spgemm.
//  * corrupt_csr — *invalid* CSR shapes (out-of-range column, non-monotone
//    row pointers, size mismatches, unsorted/duplicate rows) that
//    Options::validate_inputs must reject with the named invariant.
//
// Deterministic in (seed, index) / (kind, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace nsparse::gen {

struct AdversarialCase {
    std::string name;          ///< pathology family + parameters
    CsrMatrix<double> matrix;  ///< valid, square
    bool sorted = true;        ///< false: rows intentionally unsorted / duplicated
};

/// The `index`-th case of a deterministic adversarial stream; cycles
/// through the pathology families while varying sizes/strides by seed.
AdversarialCase adversarial_case(std::uint64_t seed, int index);

/// The first `count` cases of the stream.
std::vector<AdversarialCase> adversarial_suite(std::uint64_t seed, int count);

/// Documented corrupt-CSR shapes (see validate.hpp invariant identifiers).
enum class CsrCorruption {
    kColumnOutOfRange,  ///< col >= cols                    -> col_in_range
    kNegativeColumn,    ///< col < 0                        -> col_in_range
    kNonMonotoneRpt,    ///< rpt decreases                  -> rpt_monotone
    kRptSizeMismatch,   ///< rpt.size() != rows+1           -> rpt_size
    kRptFrontNonzero,   ///< rpt[0] != 0                    -> rpt_front_zero
    kColSizeMismatch,   ///< col.size() != rpt.back()       -> col_size
    kValSizeMismatch,   ///< val.size() != col.size()       -> val_size
    kUnsortedRow,       ///< decreasing columns in a row    -> rows_sorted
    kDuplicateColumn,   ///< repeated column in a row       -> rows_sorted
};

inline constexpr CsrCorruption kAllCorruptions[] = {
    CsrCorruption::kColumnOutOfRange, CsrCorruption::kNegativeColumn,
    CsrCorruption::kNonMonotoneRpt,   CsrCorruption::kRptSizeMismatch,
    CsrCorruption::kRptFrontNonzero,  CsrCorruption::kColSizeMismatch,
    CsrCorruption::kValSizeMismatch,  CsrCorruption::kUnsortedRow,
    CsrCorruption::kDuplicateColumn,
};

[[nodiscard]] const char* corruption_name(CsrCorruption kind);

/// The validate.hpp invariant identifier the corruption must trip.
[[nodiscard]] const char* corruption_invariant(CsrCorruption kind);

/// A small square matrix with exactly this corruption applied (built by
/// direct field mutation; do NOT call validate() on the result).
[[nodiscard]] CsrMatrix<double> corrupt_csr(CsrCorruption kind, std::uint64_t seed);

}  // namespace nsparse::gen
