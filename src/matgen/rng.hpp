// Deterministic, seedable random-number generation for the workload
// generators. PCG32 keeps results identical across platforms and standard
// libraries (std::uniform_* distributions are not portable), so dataset
// statistics in tests and benchmarks are exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace nsparse::gen {

class Pcg32 {
public:
    explicit Pcg32(std::uint64_t seed, std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (seq << 1U) | 1U;
        next();
        state_ += seed;
        next();
    }

    /// Uniform 32-bit value.
    std::uint32_t next()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
        const auto rot = static_cast<std::uint32_t>(old >> 59U);
        return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
    }

    /// Uniform in [0, bound) without modulo bias.
    std::uint32_t bounded(std::uint32_t bound)
    {
        if (bound <= 1) { return 0; }
        const std::uint32_t threshold = (0U - bound) % bound;
        while (true) {
            const std::uint32_t r = next();
            if (r >= threshold) { return r % bound; }
        }
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next()) * (1.0 / 4294967296.0); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Truncated Pareto sample in [lo, hi] with tail exponent alpha > 0.
    /// Used for power-law row-degree distributions (web/circuit graphs).
    double pareto(double lo, double hi, double alpha)
    {
        const double u = uniform();
        const double la = std::pow(lo, -alpha);
        const double ha = std::pow(hi, -alpha);
        return std::pow(la - u * (la - ha), -1.0 / alpha);
    }

private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

}  // namespace nsparse::gen
