#include "matgen/dataset_suite.hpp"

#include <cmath>
#include <cstdlib>

#include "matgen/generators.hpp"
#include "sparse/transpose.hpp"

namespace nsparse::gen {

namespace {

double env_scale()
{
    const char* s = std::getenv("NSPARSE_SCALE");
    if (s == nullptr) { return 1.0; }
    const double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
}

/// FEM analogue: picks fem_like parameters so that the scaled matrix keeps
/// the paper's nnz/row and max-nnz/row signature. The bandwidth rule
/// (~2.1x the mean block neighbourhood) reproduces the paper's
/// intermediate-products : nnz(A^2) compression ratios within ~2x.
CsrMatrix<double> fem_analogue(wide_t paper_rows, double scale, double nnz_per_row,
                               index_t max_nnz_per_row, index_t block, std::uint64_t seed)
{
    FemParams p;
    p.block_size = block;
    const auto rows = static_cast<wide_t>(static_cast<double>(paper_rows) / scale);
    p.avg_blocks = nnz_per_row / static_cast<double>(block);
    // Never scale below ~4x the neighbourhood size: smaller grids clamp the
    // sampled neighbours so hard that the degree signature collapses.
    p.nodes = std::max<index_t>(static_cast<index_t>(4.0 * p.avg_blocks) + 2,
                                to_index(rows / block));
    const double max_blocks = static_cast<double>(max_nnz_per_row) / static_cast<double>(block);
    p.jitter = std::clamp(max_blocks / std::max(p.avg_blocks, 1.0) - 1.0, 0.05, 1.0);
    p.bandwidth = std::min<index_t>(p.nodes - 1,
                                    std::max<index_t>(4, static_cast<index_t>(1.5 * p.avg_blocks)));
    p.seed = seed;
    return fem_like(p);
}

index_t scaled_rows(wide_t paper_rows, double scale)
{
    return std::max<index_t>(16, to_index(static_cast<wide_t>(
                                     static_cast<double>(paper_rows) / scale)));
}

}  // namespace

const std::vector<DatasetSpec>& dataset_suite()
{
    static const std::vector<DatasetSpec> specs = {
        // name, high-throughput, large-graph, default scale, paper stats
        {"Protein", true, false, 64.0,
         {36417, 4344765, 119.3, 204, 555322659, 19594581}},
        {"FEM/Spheres", true, false, 48.0,
         {83334, 6010480, 72.1, 81, 463845030, 26539736}},
        {"FEM/Cantilever", true, false, 32.0,
         {62451, 4007383, 64.2, 78, 269486473, 17440029}},
        {"FEM/Ship", true, false, 48.0,
         {140874, 7813404, 55.5, 102, 450639288, 24086412}},
        {"Wind Tunnel", true, false, 64.0,
         {217918, 11634424, 53.4, 180, 626054402, 32772236}},
        {"FEM/Harbor", true, false, 16.0,
         {46835, 2374001, 50.7, 145, 156480259, 7900917}},
        {"QCD", true, false, 8.0,
         {49152, 1916928, 39.0, 39, 74760192, 10911744}},
        {"FEM/Accelerator", true, false, 8.0,
         {121192, 2624331, 21.7, 81, 79883385, 18705069}},
        {"Economics", false, false, 1.0,
         {206500, 1273389, 6.2, 44, 7556897, 6704899}},
        {"Circuit", false, false, 1.0,
         {170998, 958936, 5.6, 353, 8676313, 5222525}},
        {"Epidemiology", false, false, 1.0,
         {525825, 2100225, 4.0, 4, 8391680, 5245952}},
        {"webbase", false, false, 8.0,
         {1000005, 3105536, 3.1, 4700, 69524195, 51111996}},
        {"cage15", false, true, 64.0,
         {5154859, 99199551, 19.2, 47, 2078631615, 929023247}},
        {"wb-edu", false, true, 64.0,
         {9845725, 57156537, 5.8, 3841, 1559579990, 630077764}},
        {"cit-Patents", false, true, 8.0,
         {3774768, 16518948, 4.4, 770, 82152992, 68848721}},
    };
    return specs;
}

std::optional<DatasetSpec> find_dataset(const std::string& name)
{
    for (const auto& s : dataset_suite()) {
        if (s.name == name) { return s; }
    }
    return std::nullopt;
}

double effective_scale(const std::string& name, double scale)
{
    const auto spec = find_dataset(name);
    NSPARSE_EXPECTS(spec.has_value(), "unknown dataset: " + name);
    return spec->default_scale * scale * env_scale();
}

CsrMatrix<double> make_dataset(const std::string& name, double scale)
{
    const auto spec = find_dataset(name);
    NSPARSE_EXPECTS(spec.has_value(), "unknown dataset: " + name);
    const double s = effective_scale(name, scale);
    const PaperStats& ps = spec->paper;
    const std::uint64_t seed = 0x5eed0000 + std::hash<std::string>{}(name) % 100000;

    if (name == "Protein") {
        return fem_analogue(ps.rows, s, ps.nnz_per_row, ps.max_nnz_per_row, 6, seed);
    }
    if (name == "FEM/Spheres" || name == "FEM/Cantilever" || name == "FEM/Ship" ||
        name == "FEM/Harbor") {
        return fem_analogue(ps.rows, s, ps.nnz_per_row, ps.max_nnz_per_row, 3, seed);
    }
    if (name == "Wind Tunnel") {
        return fem_analogue(ps.rows, s, ps.nnz_per_row, ps.max_nnz_per_row, 4, seed);
    }
    if (name == "FEM/Accelerator") {
        return fem_analogue(ps.rows, s, ps.nnz_per_row, ps.max_nnz_per_row, 3, seed);
    }
    if (name == "QCD") {
        // Perfectly regular: every row exactly 39 nonzeros (lattice operator).
        return banded(scaled_rows(ps.rows, s), 39, 1, seed);
    }
    if (name == "Economics") {
        ScaleFreeParams p;
        p.rows = scaled_rows(ps.rows, s);
        p.avg_degree = ps.nnz_per_row;
        p.min_degree = 1;
        p.max_degree = ps.max_nnz_per_row;
        p.alpha = 2.5;
        p.locality = 0.3;
        p.seed = seed;
        return scale_free(p);
    }
    if (name == "Circuit") {
        ScaleFreeParams p;
        p.rows = scaled_rows(ps.rows, s);
        p.avg_degree = ps.nnz_per_row / 2.0;  // symmetrize doubles degree
        p.min_degree = 1;
        p.max_degree = ps.max_nnz_per_row / 2;
        p.alpha = 1.9;
        p.locality = 0.4;
        p.seed = seed;
        return symmetrize(scale_free(p));
    }
    if (name == "Epidemiology") {
        const auto side = static_cast<index_t>(
            std::sqrt(static_cast<double>(ps.rows) / s));
        return grid2d(std::max<index_t>(4, side), std::max<index_t>(4, side), true, seed);
    }
    if (name == "webbase") {
        ScaleFreeParams p;
        p.rows = scaled_rows(ps.rows, s);
        p.avg_degree = ps.nnz_per_row;
        p.min_degree = 1;
        // Hub width scales with sqrt(scale): keeps (hub width)^2 / total
        // work — the quantity behind both the O(nnz^2) row sort cost and
        // the warp-per-row load imbalance — proportionate to the paper.
        p.max_degree = std::max<index_t>(
            64, static_cast<index_t>(static_cast<double>(ps.max_nnz_per_row) / std::sqrt(s)));
        p.alpha = 1.35;
        // no locality here: with hub-sorted rows, near-diagonal edges would
        // couple hubs to hubs and inflate output-row widths quadratically
        p.locality = 0.0;
        p.hub_attach = 0.6;  // edges point at the hub band: Table II products
        p.hub_band = 0.01;   // narrow band: pointer rows overlap on targets
        p.seed = seed;
        return scale_free(p);
    }
    if (name == "cage15") {
        RandomBandedParams p;
        p.n = scaled_rows(ps.rows, s);
        p.avg_degree = ps.nnz_per_row;
        p.max_degree = ps.max_nnz_per_row;
        // Narrow band: neighbouring rows overlap heavily, reproducing the
        // paper's 2.2x products : nnz(A^2) compression for cage15.
        p.bandwidth = std::max<index_t>(8, static_cast<index_t>(p.avg_degree * 2.5));
        p.seed = seed;
        return random_banded(p);
    }
    if (name == "wb-edu") {
        ScaleFreeParams p;
        p.rows = scaled_rows(ps.rows, s);
        p.avg_degree = ps.nnz_per_row;
        p.min_degree = 1;
        p.max_degree = std::max<index_t>(
            64, static_cast<index_t>(static_cast<double>(ps.max_nnz_per_row) / std::sqrt(s)));
        p.alpha = 1.45;
        p.locality = 0.0;
        p.hub_attach = 0.9;
        p.hub_band = 0.008;
        p.seed = seed;
        return scale_free(p);
    }
    if (name == "cit-Patents") {
        RmatParams p;
        const index_t rows = scaled_rows(ps.rows, s);
        p.scale = static_cast<int>(std::lround(std::log2(static_cast<double>(rows))));
        p.edges_per_vertex = ps.nnz_per_row * 1.15;  // compensate duplicate folding
        // Hub width scales with sqrt(scale), like webbase/wb-edu: keeps the
        // quadratic row-sort mass proportionate to the paper.
        p.max_degree = std::max<index_t>(
            64, static_cast<index_t>(static_cast<double>(ps.max_nnz_per_row) / std::sqrt(s)));
        p.permute_columns = true;
        p.seed = seed;
        return rmat(p);
    }
    throw PreconditionError("dataset has no generator: " + name);
}

}  // namespace nsparse::gen
