// Simulated-time accounting, bucketed into named phases.
//
// The breakdown figures of the paper (Fig. 5/6) split execution into
// `setup` / `count` / `calc` / `malloc`; algorithms open a phase scope and
// every synchronized kernel batch, cudaMalloc and cudaFree inside it is
// charged to that bucket (allocation time is reported both in-phase and in
// the dedicated malloc bucket, matching the paper's "cudaMalloc of output
// matrix" bar).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nsparse::sim {

class Timeline {
public:
    void add(const std::string& phase, double seconds)
    {
        auto [it, inserted] = totals_.try_emplace(phase, 0.0);
        it->second += seconds;
        if (inserted) { order_.push_back(phase); }
    }

    [[nodiscard]] double total() const
    {
        double t = 0.0;
        for (const auto& [_, v] : totals_) { t += v; }
        return t;
    }

    [[nodiscard]] double phase(const std::string& name) const
    {
        const auto it = totals_.find(name);
        return it == totals_.end() ? 0.0 : it->second;
    }

    /// Phases in first-use order.
    [[nodiscard]] const std::vector<std::string>& phases() const { return order_; }

    void clear()
    {
        totals_.clear();
        order_.clear();
    }

private:
    std::map<std::string, double> totals_;
    std::vector<std::string> order_;
};

}  // namespace nsparse::sim
