#include "gpusim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

namespace nsparse::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ResidentBlock {
    int kernel = 0;
    double remaining_work = 0.0;
    double span_deadline = 0.0;  ///< absolute time before which it cannot finish
    int threads = 0;
};

struct Sm {
    int free_threads = 0;
    std::size_t free_shared = 0;
    int free_slots = 0;
    double last_update = 0.0;
    std::vector<ResidentBlock> resident;
    std::uint64_t generation = 0;

    [[nodiscard]] bool fits(const LaunchConfig& cfg) const
    {
        return free_slots > 0 && cfg.block_dim <= free_threads && cfg.shared_bytes <= free_shared;
    }
};

struct KernelState {
    const KernelRecord* rec = nullptr;
    double ready = 0.0;
    double start = kInf;
    index_t next_block = 0;
    index_t blocks_done = 0;
    double finish = kInf;

    [[nodiscard]] bool fully_dispatched() const { return next_block >= rec->cfg.grid_dim; }
    [[nodiscard]] bool done() const { return blocks_done >= rec->cfg.grid_dim; }
};

/// Per-block drain rate under processor sharing, capped by per-thread rate.
double block_share(const Sm& sm, const ResidentBlock& b, const DeviceSpec& spec)
{
    double total_threads = 0.0;
    for (const auto& r : sm.resident) { total_threads += static_cast<double>(r.threads); }
    const double proportional =
        spec.sm_rate() * static_cast<double>(b.threads) / std::max(total_threads, 1.0);
    const double cap = static_cast<double>(b.threads) * spec.thread_rate();
    return std::max(1.0, std::min(proportional, cap));  // floor avoids div-by-zero stalls
}

/// Earliest absolute time any resident block of `sm` can finish.
double sm_next_finish(const Sm& sm, double now, const DeviceSpec& spec)
{
    double best = kInf;
    for (const auto& b : sm.resident) {
        const double drain = now + b.remaining_work / block_share(sm, b, spec);
        best = std::min(best, std::max(drain, b.span_deadline));
    }
    return best;
}

/// Advances an SM's residents to `now`, draining work at current shares.
void drain_sm(Sm& sm, double now, const DeviceSpec& spec)
{
    const double dt = now - sm.last_update;
    if (dt > 0.0) {
        for (auto& b : sm.resident) {
            b.remaining_work = std::max(0.0, b.remaining_work - block_share(sm, b, spec) * dt);
        }
    }
    sm.last_update = now;
}

}  // namespace

ScheduleResult schedule(const std::vector<KernelRecord>& kernels, const DeviceSpec& spec,
                        const CostModel& cost)
{
    ScheduleResult result;
    result.kernels.resize(kernels.size());
    if (kernels.empty()) { return result; }

    const double cycles_to_sec = 1.0 / (spec.clock_hz() * spec.efficiency);

    // Host-side serialized launches + per-stream serialization.
    std::vector<KernelState> ks(kernels.size());
    std::map<int, int> stream_tail;  // stream id -> last kernel index in that stream
    {
        double host_time = 0.0;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            host_time += cost.launch_overhead_us * 1e-6;
            ks[i].rec = &kernels[i];
            ks[i].ready = host_time;  // stream dependency folded in later
            result.kernels[i].ready = host_time;
        }
    }

    std::vector<Sm> sms(to_size(spec.num_sms));
    for (auto& sm : sms) {
        sm.free_threads = spec.max_threads_per_sm;
        sm.free_shared = spec.shared_mem_per_sm;
        sm.free_slots = spec.max_blocks_per_sm;
    }

    // Event queue of (time, sm index, generation) with lazy invalidation.
    // sm index kSentinel marks a "kernel becomes ready" wake-up.
    constexpr std::size_t kSentinel = std::numeric_limits<std::size_t>::max();
    using Event = std::tuple<double, std::size_t, std::uint64_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

    auto push_sm_event = [&](std::size_t s, double now) {
        const double t = sm_next_finish(sms[s], now, spec);
        if (t < kInf) { events.emplace(t, s, sms[s].generation); }
    };

    // Effective readiness accounting for stream predecessors (resolved as
    // predecessors finish) and, under batch capture, for earlier epochs of
    // the same batch item: a host join separated those launches, so epoch
    // e+1 of item k cannot start before every epoch-<e+1 kernel of item k
    // finished. Records of different items carry no mutual dependency.
    auto effective_ready = [&](std::size_t i) {
        double r = ks[i].ready;
        const int sid = ks[i].rec->stream_id;
        const int item = ks[i].rec->batch_item;
        const int epoch = ks[i].rec->epoch;
        for (std::size_t j = 0; j < i; ++j) {
            if (ks[j].rec->stream_id == sid ||
                (item >= 0 && ks[j].rec->batch_item == item && ks[j].rec->epoch < epoch)) {
                r = std::max(r, ks[j].finish);
            }
        }
        return r;
    };

    std::size_t done_count = 0;
    double now = 0.0;
    std::uint64_t iterations = 0;

    auto try_dispatch = [&](double t) {
        bool dispatched_any = false;
        for (std::size_t i = 0; i < ks.size(); ++i) {
            auto& k = ks[i];
            if (k.fully_dispatched()) { continue; }
            if (effective_ready(i) > t) { continue; }
            while (!k.fully_dispatched()) {
                // Best-fit SM: most free threads that satisfies the config.
                std::size_t best = sms.size();
                int best_free = -1;
                for (std::size_t s = 0; s < sms.size(); ++s) {
                    if (sms[s].fits(k.rec->cfg) && sms[s].free_threads > best_free) {
                        best = s;
                        best_free = sms[s].free_threads;
                    }
                }
                if (best == sms.size()) { break; }
                Sm& sm = sms[best];
                drain_sm(sm, t, spec);
                const BlockCost& bc = k.rec->blocks[to_size(k.next_block)];
                sm.free_threads -= k.rec->cfg.block_dim;
                sm.free_shared -= k.rec->cfg.shared_bytes;
                --sm.free_slots;
                sm.resident.push_back(ResidentBlock{
                    .kernel = static_cast<int>(i),
                    .remaining_work = std::max(bc.work, 1.0),
                    .span_deadline = t + bc.span * cycles_to_sec,
                    .threads = k.rec->cfg.block_dim,
                });
                // remaining_work is in cycles; convert share-space: we keep
                // work in cycles and rates in cycles/sec, so nothing to do.
                ++k.next_block;
                if (k.start == kInf) {
                    k.start = t;
                    result.kernels[i].start = t;
                }
                ++sm.generation;
                dispatched_any = true;
                push_sm_event(best, t);
                if (k.rec->cfg.grid_dim == 0) { break; }
            }
        }
        // Zero-block kernels complete as soon as they are ready.
        for (std::size_t i = 0; i < ks.size(); ++i) {
            auto& k = ks[i];
            if (!k.done() || k.finish < kInf) { continue; }
            if (k.rec->cfg.grid_dim == 0 && effective_ready(i) <= t) {
                k.finish = std::max(effective_ready(i), t);
                k.start = k.finish;
                result.kernels[i].start = k.start;
                result.kernels[i].finish = k.finish;
                ++done_count;
                dispatched_any = true;
            }
        }
        // Wake up again when the next not-yet-ready kernel becomes ready.
        double next_ready = kInf;
        for (std::size_t i = 0; i < ks.size(); ++i) {
            if (!ks[i].fully_dispatched() || (ks[i].rec->cfg.grid_dim == 0 && !ks[i].done())) {
                const double r = effective_ready(i);
                if (r > t && r < kInf) { next_ready = std::min(next_ready, r); }
            }
        }
        if (next_ready < kInf) { events.emplace(next_ready, kSentinel, 0); }
        return dispatched_any;
    };

    try_dispatch(now);

    while (done_count < ks.size()) {
        if (++iterations > 200'000'000ULL) {
            throw PreconditionError("scheduler livelock detected");
        }
        if (events.empty()) {
            // Nothing running: jump to the next kernel-ready time.
            double next_ready = kInf;
            for (std::size_t i = 0; i < ks.size(); ++i) {
                if (!ks[i].done() || ks[i].finish == kInf) {
                    if (!ks[i].fully_dispatched() || ks[i].rec->cfg.grid_dim == 0) {
                        next_ready = std::min(next_ready, effective_ready(i));
                    }
                }
            }
            NSPARSE_ENSURES(next_ready < kInf, "scheduler deadlock: no events and nothing ready");
            now = std::max(now, next_ready);
            try_dispatch(now);
            continue;
        }

        auto [t, s, gen] = events.top();
        events.pop();
        if (s == kSentinel) {
            now = std::max(now, t);
            try_dispatch(now);
            continue;
        }
        if (gen != sms[s].generation) { continue; }  // stale
        now = std::max(now, t);
        Sm& sm = sms[s];
        drain_sm(sm, now, spec);

        // Retire finished blocks on this SM. A block is work-complete when
        // its residual drains to ~zero OR when the residual is too small to
        // advance `now` by a representable amount (otherwise the event
        // would re-fire at the same timestamp forever).
        bool any_finished = false;
        for (std::size_t r = 0; r < sm.resident.size();) {
            const ResidentBlock& b = sm.resident[r];
            const double drain_t = now + b.remaining_work / block_share(sm, b, spec);
            const bool work_done = b.remaining_work <= 1e-9 || drain_t <= now;
            if (work_done && now + 1e-15 >= b.span_deadline) {
                auto& k = ks[to_size(b.kernel)];
                ++k.blocks_done;
                sm.free_threads += b.threads;
                sm.free_shared += k.rec->cfg.shared_bytes;
                ++sm.free_slots;
                if (k.done()) {
                    k.finish = now;
                    result.kernels[to_size(b.kernel)].finish = now;
                    ++done_count;
                }
                sm.resident[r] = sm.resident.back();
                sm.resident.pop_back();
                any_finished = true;
            } else {
                ++r;
            }
        }
        ++sm.generation;
        if (any_finished) { try_dispatch(now); }
        push_sm_event(s, now);
    }

    double makespan = now;
    for (const auto& k : ks) { makespan = std::max(makespan, k.finish); }
    result.makespan = makespan;
    return result;
}

}  // namespace nsparse::sim
