// Execution tracing: an optional per-kernel record of what ran on the
// simulated device — grid/block shape, total work, worst block span,
// scheduled start/finish — plus a text profile renderer. This is the
// observability layer used by `spgemm_tool --profile` and by tests that
// assert *which* kernels an algorithm launched.
#pragma once

#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace nsparse::sim {

struct KernelTraceEntry {
    std::string name;
    std::string phase;
    /// Device the kernel ran on in a multi-device roll-up (Trace::absorb);
    /// -1 = single-device trace.
    int device_id = -1;
    int stream_id = 0;
    index_t grid_dim = 0;
    int block_dim = 0;
    std::size_t shared_bytes = 0;
    double total_work = 0.0;   ///< work-cycles summed over blocks
    double max_span = 0.0;     ///< worst block critical path (cycles)
    double start = 0.0;        ///< seconds within its sync batch
    double finish = 0.0;
};

/// A memory-pressure event (OOM hit, slab fallback engaged, slab size
/// halved) recorded by algorithms that degrade gracefully instead of
/// failing — the observable counterpart of Table III's "-" entries.
struct MemoryEventEntry {
    std::string label;           ///< e.g. "oom", "slab_fallback", "slab_retry"
    int device_id = -1;          ///< device in a multi-device roll-up (-1 = single)
    std::string phase;           ///< device phase when the event fired
    std::size_t bytes_freed = 0; ///< bytes reclaimed by unwinding before retry
    int slabs = 0;               ///< row slabs in flight (0 = unchunked)
    int retry_depth = 0;         ///< slab-size halvings so far
};

/// A contained kernel fault (hash-table saturation captured per row, a
/// group-0 retry of such a row, or the host reference recourse) recorded
/// by the fault-containment layer — the observable record that a row did
/// *not* complete on its first kernel attempt.
struct FaultEventEntry {
    std::string label;        ///< e.g. "symbolic_row_fault", "numeric_row_retry"
    int device_id = -1;       ///< device in a multi-device roll-up (-1 = single)
    std::string phase;        ///< device phase when the fault fired
    int group = -1;           ///< Table-I group of the faulting kernel (-1 n/a)
    index_t row = -1;         ///< output row involved
    index_t table_size = 0;   ///< hash-table entries of the faulting/retry attempt
    int probes = 0;           ///< probes observed (table_size for a full scan)
    int retry_depth = 0;      ///< 0 = initial capture, k = k-th retry
};

class Trace {
public:
    void record(KernelTraceEntry entry) { entries_.push_back(std::move(entry)); }
    void record(MemoryEventEntry event) { memory_events_.push_back(std::move(event)); }
    void record(FaultEventEntry event) { fault_events_.push_back(std::move(event)); }

    [[nodiscard]] const std::vector<KernelTraceEntry>& entries() const { return entries_; }
    [[nodiscard]] const std::vector<MemoryEventEntry>& memory_events() const
    {
        return memory_events_;
    }
    [[nodiscard]] const std::vector<FaultEventEntry>& fault_events() const
    {
        return fault_events_;
    }
    [[nodiscard]] bool empty() const
    {
        return entries_.empty() && memory_events_.empty() && fault_events_.empty();
    }
    void clear()
    {
        entries_.clear();
        memory_events_.clear();
        fault_events_.clear();
    }

    /// Appends every entry of `other` with its device_id stamped to
    /// `device_id` — the multi-device roll-up of the sharded execution
    /// layer (shard devices absorb in device order, so the combined trace
    /// is deterministic given deterministic per-device traces).
    void absorb(const Trace& other, int device_id);

    /// Total fault events with the given (exact) label.
    [[nodiscard]] std::size_t fault_count(const std::string& label) const
    {
        std::size_t n = 0;
        for (const auto& e : fault_events_) {
            if (e.label == label) { ++n; }
        }
        return n;
    }

    /// Total launches of a kernel by (exact) name.
    [[nodiscard]] std::size_t count(const std::string& name) const
    {
        std::size_t n = 0;
        for (const auto& e : entries_) {
            if (e.name == name) { ++n; }
        }
        return n;
    }

    /// Multi-line text profile: per kernel name, aggregated launches,
    /// blocks, work share (sorted by work, descending), followed by any
    /// memory-pressure events.
    [[nodiscard]] std::string report() const;

private:
    std::vector<KernelTraceEntry> entries_;
    std::vector<MemoryEventEntry> memory_events_;
    std::vector<FaultEventEntry> fault_events_;
};

}  // namespace nsparse::sim
