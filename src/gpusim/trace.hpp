// Execution tracing: an optional per-kernel record of what ran on the
// simulated device — grid/block shape, total work, worst block span,
// scheduled start/finish — plus a text profile renderer. This is the
// observability layer used by `spgemm_tool --profile` and by tests that
// assert *which* kernels an algorithm launched.
#pragma once

#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace nsparse::sim {

struct KernelTraceEntry {
    std::string name;
    std::string phase;
    int stream_id = 0;
    index_t grid_dim = 0;
    int block_dim = 0;
    std::size_t shared_bytes = 0;
    double total_work = 0.0;   ///< work-cycles summed over blocks
    double max_span = 0.0;     ///< worst block critical path (cycles)
    double start = 0.0;        ///< seconds within its sync batch
    double finish = 0.0;
};

class Trace {
public:
    void record(KernelTraceEntry entry) { entries_.push_back(std::move(entry)); }

    [[nodiscard]] const std::vector<KernelTraceEntry>& entries() const { return entries_; }
    [[nodiscard]] bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

    /// Total launches of a kernel by (exact) name.
    [[nodiscard]] std::size_t count(const std::string& name) const
    {
        std::size_t n = 0;
        for (const auto& e : entries_) {
            if (e.name == name) { ++n; }
        }
        return n;
    }

    /// Multi-line text profile: per kernel name, aggregated launches,
    /// blocks, work share. Sorted by work, descending.
    [[nodiscard]] std::string report() const;

private:
    std::vector<KernelTraceEntry> entries_;
};

}  // namespace nsparse::sim
