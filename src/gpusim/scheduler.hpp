// Resource-aware makespan scheduler for batches of simulated kernels.
//
// Models the parts of GPU execution the paper's evaluation depends on:
//  * thread blocks are dispatched in launch order onto SMs with free
//    residency (threads / shared memory / block slots) — Table I's
//    occupancy reasoning emerges from these constraints;
//  * each SM drains resident blocks' `work` by processor sharing at
//    DeviceSpec::sm_rate(), each block additionally floored by its `span`
//    (critical path) — so one enormous row really does stall a
//    warp-per-row kernel (webbase, cit-Patents);
//  * kernels on the same stream serialize; kernels on different streams
//    co-schedule, which is how the multi-stream x1.3 of §IV-C arises;
//  * host-side launch overhead serializes across all launches.
#pragma once

#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"

namespace nsparse::sim {

/// Per-kernel placement result (for tests and tracing).
struct KernelTiming {
    double ready = 0.0;   ///< stream dependency + launch overhead satisfied
    double start = 0.0;   ///< first block dispatched
    double finish = 0.0;  ///< last block completed
};

struct ScheduleResult {
    double makespan = 0.0;  ///< seconds from batch start to last completion
    std::vector<KernelTiming> kernels;
};

/// Computes the makespan of `kernels` (in launch order) on an empty device.
ScheduleResult schedule(const std::vector<KernelRecord>& kernels, const DeviceSpec& spec,
                        const CostModel& cost);

}  // namespace nsparse::sim
