// Cost model: reciprocal-throughput cycle costs per simulated operation,
// and the per-block cost accumulator kernels charge against.
//
// Kernels report (work, span) per thread block:
//  * work — total thread-cycles executed by all active lanes; the SM
//    scheduler drains work at DeviceSpec::sm_rate(), shared between
//    resident blocks, so work models throughput.
//  * span — critical-path cycles of the block (the longest lane); a block
//    can never finish faster than its span, which is what makes a single
//    4700-nonzero row dominate a warp-per-row kernel (the paper's webbase /
//    cit-Patents load-imbalance story).
//
// The constants are reciprocal throughputs, not latencies; latency hiding
// is modelled by the efficiency knob in DeviceSpec.
#pragma once

#include <cstddef>

namespace nsparse::sim {

enum class MemPattern {
    kCoalesced,  ///< neighbouring lanes touch neighbouring addresses
    kRandom      ///< independent addresses (hash-table probing, B-row gather)
};

struct CostModel {
    // cycles per 4-byte element access
    double global_coalesced = 2.0;
    double global_random = 24.0;
    /// repeated access to a small working set (row hash table in L2):
    /// cheaper than DRAM-random, dearer than shared memory
    double global_cached = 4.0;
    double shared_access = 1.0;
    double shared_atomic = 14.0;
    double global_atomic = 64.0;
    double flop = 1.0;
    double int_op = 1.0;
    double modulus_op = 18.0;  ///< why pow2 tables + bit-and win (§III-D)
    double barrier = 8.0;
    double warp_shuffle = 2.0;

    /// Effective cycles per comparison in dense sorting loops (counting-
    /// rank, bitonic stages). These loops are fully pipelined compute with
    /// the row resident in shared memory/L1, so they run near peak issue
    /// rate; since DeviceSpec::efficiency (the global work->time knob) is
    /// calibrated for memory-stalled hash kernels, the per-op charge here
    /// is pre-discounted to compensate.
    double sort_compare_shared = 0.12;
    double sort_compare_global = 0.2;

    /// Fixed per-thread-block cost: kernel prologue/epilogue instructions
    /// executed by every thread (index math, bounds checks, barrier
    /// participation) plus the block's dispatch latency. This is what the
    /// PWARP/ROW assignment amortizes over 128 rows per block — without
    /// it, a 4-product row in a 64-thread block pays more for the block
    /// than for the row (the paper's x3.1 Epidemiology effect, §IV-C).
    double block_prologue_per_thread = 15.0;
    double block_prologue_span = 200.0;

    // host-side costs in microseconds
    double launch_overhead_us = 4.0;
    double malloc_base_us = 80.0;  ///< Pascal cudaMalloc is expensive (§IV-C)
    double malloc_per_mb_us = 0.35;
    double free_base_us = 40.0;

    [[nodiscard]] double global_cost(std::size_t bytes, MemPattern p) const
    {
        const double per4 = p == MemPattern::kCoalesced ? global_coalesced : global_random;
        const double words = static_cast<double>(bytes + 3) / 4.0;
        return per4 * words;
    }
};

/// Per-thread-block accumulated cost. Plain data; merged into the kernel
/// record at launch time.
struct BlockCost {
    double work = 0.0;          ///< thread-cycles (throughput resource)
    double span = 0.0;          ///< critical-path cycles (latency floor)
    double global_bytes = 0.0;  ///< device-memory traffic, for reporting

    void add(int lanes, double cycles_per_lane)
    {
        work += static_cast<double>(lanes) * cycles_per_lane;
        span += cycles_per_lane;
    }
};

}  // namespace nsparse::sim
