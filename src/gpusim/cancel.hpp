// Cooperative cancellation for the simulated device.
//
// A CancelToken carries three independent stop causes:
//
//   * user cancellation  — request_cancel(reason), sticky until reset()
//   * simulated deadline — arm_sim_deadline(seconds): the request's budget
//                          in simulated device time
//   * wall-clock deadline — arm_wall_budget_ms(ms): the request's budget in
//                          host wall-clock time (steady_clock)
//
// The device checks the token at every kernel boundary (Device::launch):
// cancellation is *cooperative*, a kernel already running completes, the
// next one refuses to start. Host-side checks (the recovery ladder between
// stages, the host-recourse row loop) use should_cancel() too, so a
// cancelled request stops within one kernel / one recourse chunk.
//
// Thread safety: the flags and deadlines are atomics — worker-pool tasks
// consult the token without locks; the reason string is mutex-guarded and
// written once (before the sticky flag flips), read only after.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

namespace nsparse::sim {

/// Why a token says "stop".
enum class CancelCause : int {
    kNone = 0,
    kUser,          ///< request_cancel() was called
    kSimDeadline,   ///< the simulated-seconds budget expired
    kWallDeadline,  ///< the host wall-clock budget expired
};

class CancelToken {
public:
    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Requests cooperative cancellation (sticky until reset()). The first
    /// caller's reason wins; later calls are no-ops.
    void request_cancel(std::string reason = {})
    {
        {
            const std::scoped_lock lock(mu_);
            if (cancel_requested_.load(std::memory_order_relaxed)) { return; }
            reason_ = std::move(reason);
        }
        cancel_requested_.store(true, std::memory_order_release);
    }

    [[nodiscard]] bool cancel_requested() const
    {
        return cancel_requested_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::string reason() const
    {
        const std::scoped_lock lock(mu_);
        return reason_;
    }

    /// Budgets the request in simulated device seconds, measured against
    /// the elapsed value the checker passes in. <= 0 disarms.
    void arm_sim_deadline(double seconds)
    {
        sim_deadline_.store(seconds > 0.0 ? seconds : kUnarmed, std::memory_order_release);
    }

    /// Budgets the request in host wall-clock milliseconds from now.
    /// <= 0 disarms.
    void arm_wall_budget_ms(std::int64_t ms)
    {
        if (ms <= 0) {
            wall_deadline_ns_.store(0, std::memory_order_release);
            return;
        }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        wall_deadline_ns_.store(now_ns + ms * 1'000'000, std::memory_order_release);
        wall_start_ns_.store(now_ns, std::memory_order_release);
    }

    [[nodiscard]] double sim_deadline() const
    {
        return sim_deadline_.load(std::memory_order_acquire);
    }

    /// Host wall-clock seconds consumed since the wall budget was armed
    /// (0 when unarmed).
    [[nodiscard]] double wall_elapsed_seconds() const
    {
        if (wall_deadline_ns_.load(std::memory_order_acquire) == 0) { return 0.0; }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        return static_cast<double>(now_ns - wall_start_ns_.load(std::memory_order_acquire)) *
               1e-9;
    }

    /// Full check at a kernel boundary: user cancellation, then the
    /// simulated budget against `sim_elapsed_seconds`, then the wall
    /// budget against steady_clock. Returns the first tripped cause.
    [[nodiscard]] CancelCause should_cancel(double sim_elapsed_seconds) const
    {
        if (cancel_requested()) { return CancelCause::kUser; }
        const double sim_deadline = sim_deadline_.load(std::memory_order_acquire);
        if (sim_deadline != kUnarmed && sim_elapsed_seconds >= sim_deadline) {
            return CancelCause::kSimDeadline;
        }
        return wall_tripped() ? CancelCause::kWallDeadline : CancelCause::kNone;
    }

    /// Boundary check for asynchronous worker-pool tasks: user and
    /// wall-clock causes only. The simulated clock lives on the host
    /// thread, so async tasks never consult it — the host-side
    /// should_cancel() at the next launch/stage boundary covers it.
    [[nodiscard]] CancelCause should_cancel_async() const
    {
        if (cancel_requested()) { return CancelCause::kUser; }
        return wall_tripped() ? CancelCause::kWallDeadline : CancelCause::kNone;
    }

    /// Disarms every deadline and clears the sticky cancellation — the
    /// token is ready for the next request.
    void reset()
    {
        {
            const std::scoped_lock lock(mu_);
            reason_.clear();
        }
        cancel_requested_.store(false, std::memory_order_release);
        sim_deadline_.store(kUnarmed, std::memory_order_release);
        wall_deadline_ns_.store(0, std::memory_order_release);
        wall_start_ns_.store(0, std::memory_order_release);
    }

private:
    [[nodiscard]] bool wall_tripped() const
    {
        const std::int64_t deadline = wall_deadline_ns_.load(std::memory_order_acquire);
        if (deadline == 0) { return false; }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >= deadline;
    }

    static constexpr double kUnarmed = -1.0;

    std::atomic<bool> cancel_requested_{false};
    std::atomic<double> sim_deadline_{kUnarmed};
    std::atomic<std::int64_t> wall_deadline_ns_{0};  ///< 0 = unarmed
    std::atomic<std::int64_t> wall_start_ns_{0};
    mutable std::mutex mu_;
    std::string reason_;  ///< guarded by mu_
};

}  // namespace nsparse::sim
