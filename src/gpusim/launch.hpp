// Kernel-launch plumbing: launch configuration, the per-block execution
// context handed to kernel functors, and the kernel record consumed by the
// makespan scheduler.
//
// Kernels are ordinary C++ callables `void(BlockCtx&)` invoked once per
// thread block. Inside, the functor writes real results into device buffers
// (warp/lane structure expressed as loops) and *charges* the cost of what a
// GPU would have done through the BlockCtx cost API.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "sparse/error.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

struct LaunchConfig {
    index_t grid_dim = 1;              ///< number of thread blocks
    int block_dim = 128;               ///< threads per block
    std::size_t shared_bytes = 0;      ///< static+dynamic shared memory per block

    void validate(const DeviceSpec& spec) const
    {
        NSPARSE_EXPECTS(grid_dim >= 0, "negative grid dimension");
        NSPARSE_EXPECTS(block_dim > 0 && block_dim <= spec.max_threads_per_block,
                        "block dimension out of range");
        NSPARSE_EXPECTS(block_dim % spec.warp_size == 0 || block_dim < spec.warp_size,
                        "block dimension should be a warp multiple");
        NSPARSE_EXPECTS(shared_bytes <= spec.max_shared_per_block,
                        "shared memory request exceeds per-block limit");
    }
};

/// Execution context of one simulated thread block.
class BlockCtx {
public:
    BlockCtx(index_t block_idx, const LaunchConfig& cfg, const CostModel& cost)
        : block_idx_(block_idx), cfg_(cfg), cost_(cost)
    {
    }

    [[nodiscard]] index_t block_idx() const { return block_idx_; }
    [[nodiscard]] int block_dim() const { return cfg_.block_dim; }
    [[nodiscard]] std::size_t shared_bytes() const { return cfg_.shared_bytes; }

    // --- cost charging -------------------------------------------------
    // `lanes` = number of threads doing this operation in parallel;
    // `n` = operations per lane.

    void charge(int lanes, double cycles_per_lane) { acc_.add(lanes, cycles_per_lane); }

    /// Direct (work, span) charge for kernels that compute per-lane or
    /// per-warp cycle totals themselves (exact load-imbalance modelling:
    /// span is the max over parallel lanes, work the sum).
    void charge_work_span(double work_cycles, double span_cycles)
    {
        acc_.work += work_cycles;
        acc_.span += span_cycles;
    }

    /// Adds device-memory traffic bookkeeping without cycle cost (for
    /// kernels that fold access cycles into charge_work_span).
    void add_global_bytes(double bytes) { acc_.global_bytes += bytes; }

    /// Cost-model constants, for kernels accumulating per-lane cycles.
    [[nodiscard]] const CostModel& model() const { return cost_; }

    void global_read(int lanes, std::size_t bytes_per_lane, MemPattern p, double n = 1.0)
    {
        acc_.add(lanes, n * cost_.global_cost(bytes_per_lane, p));
        acc_.global_bytes += static_cast<double>(lanes) * n * static_cast<double>(bytes_per_lane);
    }

    void global_write(int lanes, std::size_t bytes_per_lane, MemPattern p, double n = 1.0)
    {
        global_read(lanes, bytes_per_lane, p, n);  // symmetric cost
    }

    void shared_op(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.shared_access); }
    void atomic_shared(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.shared_atomic); }
    void atomic_global(int lanes, double n = 1.0)
    {
        acc_.add(lanes, n * cost_.global_atomic);
        acc_.global_bytes += static_cast<double>(lanes) * n * 4.0;
    }
    void flops(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.flop); }
    void int_ops(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.int_op); }
    void modulus(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.modulus_op); }
    void warp_shuffle(int lanes, double n = 1.0) { acc_.add(lanes, n * cost_.warp_shuffle); }
    void barrier() { acc_.add(cfg_.block_dim, cost_.barrier); }

    [[nodiscard]] const BlockCost& cost() const { return acc_; }

    // --- shared memory -------------------------------------------------

    /// Allocates `n` elements of shared memory for this block. The total
    /// must stay within the declared LaunchConfig::shared_bytes; this is
    /// verified so kernels cannot silently use more shared memory than the
    /// occupancy calculation assumed.
    template <typename U>
    [[nodiscard]] std::span<U> shared_alloc(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(U);
        NSPARSE_EXPECTS(shared_used_ + bytes <= cfg_.shared_bytes,
                        "kernel exceeded its declared shared memory");
        shared_used_ += bytes;
        shared_storage_.emplace_back(std::make_unique<std::byte[]>(bytes));
        return {reinterpret_cast<U*>(shared_storage_.back().get()), n};
    }

private:
    index_t block_idx_;
    LaunchConfig cfg_;
    const CostModel& cost_;
    BlockCost acc_;
    std::size_t shared_used_ = 0;
    std::vector<std::unique_ptr<std::byte[]>> shared_storage_;
};

/// Everything the scheduler needs to place one kernel on the timeline.
struct KernelRecord {
    std::string name;
    int stream_id = 0;
    /// Batch-capture provenance (Device::begin_batch_capture): the batch
    /// item (product index) this launch belongs to, or -1 outside batch
    /// mode. The scheduler serializes a record behind every earlier record
    /// of the same item with a lower epoch — the per-product host joins —
    /// while records of different items overlap freely.
    int batch_item = -1;
    int epoch = 0;
    /// Device phase at issue time (trace attribution; outside batch mode
    /// this always equals the phase at the next synchronize).
    std::string phase;
    LaunchConfig cfg;
    std::vector<BlockCost> blocks;  ///< per-block costs, filled by execution

    [[nodiscard]] double total_work() const
    {
        double w = 0.0;
        for (const auto& b : blocks) { w += b.work; }
        return w;
    }

    [[nodiscard]] double total_global_bytes() const
    {
        double g = 0.0;
        for (const auto& b : blocks) { g += b.global_bytes; }
        return g;
    }
};

}  // namespace nsparse::sim
