// Warp-level primitives used by the kernels.
//
// On the real GPU the per-lane partial nnz counts are combined with
// __shfl_down_sync; here the lanes' partial values live in a small host
// array and the helper charges the shuffle cost while producing the same
// reduction result.
#pragma once

#include <numeric>
#include <span>

#include "gpusim/launch.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

/// Butterfly/down-shuffle reduction across `lanes` partial values; charges
/// log2(width) shuffle steps to the block like the hardware instruction
/// sequence would.
template <typename T>
[[nodiscard]] T warp_reduce_sum(BlockCtx& blk, std::span<const T> lane_values)
{
    const auto n = static_cast<int>(lane_values.size());
    int steps = 0;
    for (int w = 1; w < n; w <<= 1) { ++steps; }
    blk.warp_shuffle(n, static_cast<double>(steps));
    return std::accumulate(lane_values.begin(), lane_values.end(), T{0});
}

/// Exclusive prefix sum within a block (shared-memory scan); used when
/// warps combine their partial sums. Charges a log-depth scan.
template <typename T>
void block_exclusive_scan(BlockCtx& blk, std::span<T> values)
{
    const auto n = static_cast<int>(values.size());
    int steps = 0;
    for (int w = 1; w < n; w <<= 1) { ++steps; }
    blk.shared_op(n, 2.0 * static_cast<double>(steps));
    blk.barrier();
    T running{0};
    for (auto& v : values) {
        const T x = v;
        v = running;
        running += x;
    }
}

}  // namespace nsparse::sim
