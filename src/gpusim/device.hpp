// The simulated GPU device: owns the allocator, streams, pending kernel
// records and the timeline. This is the only object algorithms talk to.
//
// Usage pattern (mirrors a CUDA host program):
//
//   sim::Device dev(sim::DeviceSpec::pascal_p100());
//   auto phase = dev.phase_scope("count");
//   sim::DeviceBuffer<index_t> rpt(dev.allocator(), host_rpt);
//   dev.launch(stream, {grid, block, smem}, "count_nnz", [&](sim::BlockCtx& blk) { ... });
//   dev.synchronize();              // schedules the batch, advances time
//
// Execution engine: with more than one executor thread, launch() only
// validates and enqueues — the functor runs asynchronously on the
// process-lifetime WorkerPool, launches on *different* simulated streams
// overlap on the host exactly as the makespan scheduler overlaps them in
// simulated time, and launches on the *same* stream are chained in issue
// order (CUDA stream semantics). flush() is the host-side join point: it
// completes every in-flight launch, folds counters in stream-issue order
// and rethrows the first deferred functor error (lowest launch index).
// synchronize() = flush() + makespan scheduling of the joined batch.
// With executor_threads == 1 the launch executes eagerly on the calling
// thread — the seed's sequential engine. Either way the functional
// results, simulated cycles, timelines and traces are bit-identical.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <map>

#include "gpusim/cancel.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/scheduler.hpp"
#include "gpusim/timeline.hpp"
#include "gpusim/trace.hpp"

namespace nsparse::sim {

class ScratchPool;

/// Opaque stream handle; Device::create_stream() mints them.
struct Stream {
    int id = 0;
};

/// What one batch item (product) consumed inside a capture window, derived
/// from the window's makespan schedule.
struct BatchItemUsage {
    std::uint64_t kernels = 0;
    double busy_seconds = 0.0;   ///< sum of kernel (finish - start) durations
    double setup_seconds = 0.0;  ///< busy attributed to the "setup" phase
    double count_seconds = 0.0;  ///< busy attributed to the "count" phase
    double calc_seconds = 0.0;   ///< busy attributed to the "calc" phase
    double estimate_seconds = 0.0;  ///< busy attributed to the "estimate" phase
};

/// Per simulated stream: launches and busy time inside a capture window.
struct BatchStreamUsage {
    std::uint64_t kernels = 0;
    double busy_seconds = 0.0;
};

/// Result of Device::end_batch_capture(): the window makespan plus
/// per-item and per-stream usage (ordered maps for deterministic
/// iteration and bit-identical floating-point accumulation).
struct BatchWindowReport {
    double makespan = 0.0;
    std::map<int, BatchItemUsage> items;
    std::map<int, BatchStreamUsage> streams;
};

class Device {
public:
    explicit Device(DeviceSpec spec, CostModel cost = {});
    ~Device();

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
    [[nodiscard]] const CostModel& cost_model() const { return cost_; }
    [[nodiscard]] DeviceAllocator& allocator() { return alloc_; }
    [[nodiscard]] const DeviceAllocator& allocator() const { return alloc_; }

    /// Stream 0 normally; under batch capture, the per-item stream minted
    /// by set_batch_item() so independent products never share the default
    /// stream (which would serialize them in the makespan schedule).
    [[nodiscard]] Stream default_stream() const
    {
        if (batch_capture_) {
            if (const auto it = batch_streams_.find(batch_item_); it != batch_streams_.end()) {
                return Stream{it->second};
            }
        }
        return Stream{0};
    }
    [[nodiscard]] Stream create_stream() { return Stream{next_stream_id_++}; }

    /// Records a kernel for the next synchronize() and executes its
    /// functor — eagerly with 1 executor thread, asynchronously on the
    /// worker pool otherwise (same-stream launches stay ordered; functor
    /// errors surface at the next flush()/synchronize()). The functor
    /// must only write block-disjoint data or use atomics, and every
    /// buffer it touches must stay alive until the next flush().
    void launch(Stream stream, const LaunchConfig& cfg, std::string name,
                const std::function<void(BlockCtx&)>& fn);

    /// How many host threads execute simulated blocks: 0 = all hardware
    /// threads (the default), 1 = sequential (the behaviour of the seed
    /// release), N = exactly N. Functional results, simulated cycle
    /// counts, timelines and traces are bit-identical for every setting —
    /// only wall-clock changes (see gpusim/executor.hpp).
    void set_executor_threads(int n) { executor_threads_ = n; }
    [[nodiscard]] int executor_threads() const { return executor_threads_; }

    /// Host-side join point: completes every in-flight asynchronous
    /// launch, folds its counters (kernels/blocks/global bytes) exactly
    /// once per launch in stream-issue order — repeated flush calls (e.g.
    /// between batch items, where capture keeps records pending) are
    /// idempotent — and rethrows the first deferred functor error:
    /// deterministically the lowest (batch item, launch index), so under
    /// batch capture the lowest product index wins regardless of stream
    /// interleaving. The failed record is dropped, successful ones stay
    /// pending. After flush() every functional result written by earlier
    /// launches is visible to the host. Does not advance simulated time.
    void flush();

    /// Batch item of the error last rethrown by flush(), -1 when the error
    /// was not batch-tagged (or none was thrown yet).
    [[nodiscard]] int last_error_batch_item() const { return last_error_batch_item_; }

    /// Launches currently in flight on the pool (observability).
    [[nodiscard]] std::size_t inflight_launches() const { return inflight_.size(); }

    /// Schedules everything launched since the previous synchronize and
    /// charges the makespan to the current phase (flushing first).
    /// Returns the makespan. Under batch capture, synchronize() only
    /// flushes (the functional join) and advances the current item's
    /// epoch; scheduling is deferred to end_batch_capture() so kernels of
    /// independent items overlap in the window's makespan.
    double synchronize();

    // --- batch capture ---------------------------------------------------
    // Batched SpGEMM runs several independent products against one device.
    // Inside a capture window, each product's launches are tagged with its
    // item index and a per-item epoch that advances at every synchronize
    // (the product's host joins). end_batch_capture() schedules the whole
    // window at once: the scheduler chains epochs within an item and lets
    // different items overlap — the multi-stream interleaving of §V-B
    // lifted from row groups to whole products.

    /// Enters batch capture (scheduling any leftover pending work first).
    void begin_batch_capture();

    /// Tags subsequent launches with product index `item` (>= 0) and mints
    /// the item's private default stream on first use.
    void set_batch_item(int item);
    [[nodiscard]] int current_batch_item() const { return batch_item_; }
    [[nodiscard]] bool batch_capture_active() const { return batch_capture_; }

    /// Flushes, schedules the captured window, charges its makespan to the
    /// "batch" phase and leaves capture mode. Returns per-item/per-stream
    /// usage derived from the schedule.
    BatchWindowReport end_batch_capture();

    // --- cooperative cancellation ----------------------------------------

    /// Installs a cancellation token consulted at every kernel boundary:
    /// launch() throws OperationCancelled / DeadlineExceeded synchronously
    /// when the token says stop (checking user cancellation, the simulated
    /// deadline against elapsed() and the wall budget), and asynchronous
    /// pool tasks refuse to start on a tripped token (user/wall causes
    /// only — simulated time is host-owned), surfacing the error at the
    /// next flush(). The device does not own the token; nullptr (the
    /// default) disables all checks. Cancellation is cooperative: kernels
    /// already running complete, so every buffer a launch captured stays
    /// valid and the device remains reusable after reclaim().
    void set_cancel_token(CancelToken* token)
    {
        cancel_.store(token, std::memory_order_release);
    }
    [[nodiscard]] CancelToken* cancel_token() const
    {
        return cancel_.load(std::memory_order_acquire);
    }

    /// Consults the installed cancel token against the current simulated
    /// elapsed time and throws OperationCancelled / DeadlineExceeded when
    /// it says stop; no-op without a token. launch() calls this at every
    /// kernel boundary; the native backend calls it between phases on the
    /// host thread (the same cooperative granularity — rows already being
    /// computed complete). Must be called from the host thread that owns
    /// the device: it reads the timeline.
    void check_cancel();

    /// Restores a usable device after a failed or cancelled request:
    /// detaches the cancel token, joins every in-flight launch (swallowing
    /// deferred errors of the abandoned request), closes a dangling batch
    /// capture window, schedules leftover pending work and clears the
    /// last-error bookkeeping. Streams, the allocator and the scratch pool
    /// are untouched — live buffers of the caller stay live. The next
    /// multiply starts from reset_measurement() as usual.
    void reclaim();

    /// Optional cross-product scratch pool consulted by allocation sites
    /// that opt in (grouping permutation, per-row count workspaces).
    /// The device does not own the pool; nullptr disables reuse.
    void set_scratch_pool(ScratchPool* pool) { scratch_pool_ = pool; }
    [[nodiscard]] ScratchPool* scratch_pool() const { return scratch_pool_; }

    // --- phases ---------------------------------------------------------

    class PhaseScope {
    public:
        PhaseScope(Device& dev, std::string name)
            : dev_(dev), prev_(dev.current_phase_), uncaught_(std::uncaught_exceptions())
        {
            dev_.synchronize();  // do not leak pending work across phases
            dev_.current_phase_ = std::move(name);
        }
        /// May rethrow a deferred functor error from the closing
        /// synchronize — except while already unwinding, where the
        /// original exception wins and the deferred one is swallowed.
        ~PhaseScope() noexcept(false)
        {
            const bool unwinding = std::uncaught_exceptions() > uncaught_;
            try {
                dev_.synchronize();
            } catch (...) {
                dev_.current_phase_ = prev_;
                if (!unwinding) { throw; }
                return;
            }
            dev_.current_phase_ = prev_;
        }
        PhaseScope(const PhaseScope&) = delete;
        PhaseScope& operator=(const PhaseScope&) = delete;

    private:
        Device& dev_;
        std::string prev_;
        int uncaught_;
    };

    [[nodiscard]] PhaseScope phase_scope(std::string name)
    {
        return PhaseScope(*this, std::move(name));
    }

    [[nodiscard]] const Timeline& timeline() const { return timeline_; }
    [[nodiscard]] double malloc_seconds() const { return timeline_.phase(kMallocPhase); }

    /// Total simulated seconds (kernels + allocation) so far.
    [[nodiscard]] double elapsed() const { return timeline_.total(); }

    /// Resets timeline and peak-memory watermark (start of a measurement).
    void reset_measurement();

    /// Name of the synthetic phase holding cudaMalloc/cudaFree time.
    static constexpr const char* kMallocPhase = "malloc";

    /// Name of the synthetic phase batch-capture windows charge their
    /// makespan to (per-phase attribution is meaningless under overlap;
    /// end_batch_capture() reports per-item busy time instead).
    static constexpr const char* kBatchPhase = "batch";

    // --- tracing ---------------------------------------------------------

    /// Enables per-kernel trace recording (off by default: it retains one
    /// entry per launch).
    void enable_trace() { trace_enabled_ = true; }
    [[nodiscard]] const Trace& trace() const { return trace_; }

    /// Records a memory-pressure event (OOM fallback engaged, slab size
    /// halved, ...) under the current phase. Always counted; retained in
    /// the trace when tracing is enabled.
    void record_memory_event(std::string label, std::size_t bytes_freed, int slabs,
                             int retry_depth);

    /// Records a contained kernel fault (per-row capture, group-0 retry,
    /// host recourse) under the current phase. Always counted; retained in
    /// the trace when tracing is enabled.
    void record_fault_event(std::string label, int group, index_t row, index_t table_size,
                            int probes, int retry_depth);

    // --- counters (observability) ----------------------------------------
    // Counters fold in at flush()/synchronize() (the join point), in
    // stream-issue order, so they are bit-identical for every executor
    // thread count.
    [[nodiscard]] std::uint64_t kernels_launched() const { return kernels_launched_; }
    [[nodiscard]] std::uint64_t blocks_executed() const { return blocks_executed_; }
    [[nodiscard]] double total_global_bytes() const { return global_bytes_; }
    /// Memory-pressure events recorded since the last reset_measurement().
    [[nodiscard]] std::uint64_t memory_events_recorded() const { return memory_events_; }
    /// Kernel-fault events recorded since the last reset_measurement().
    [[nodiscard]] std::uint64_t fault_events_recorded() const { return fault_events_; }

private:
    /// Per-launch completion + deferred error slot (defined in device.cpp).
    struct LaunchState;

    DeviceSpec spec_;
    CostModel cost_;
    DeviceAllocator alloc_;
    Timeline timeline_;
    std::string current_phase_ = "setup";
    std::vector<KernelRecord> pending_;
    /// One state per not-yet-flushed launch, aligned with the tail of
    /// pending_ (issue order).
    std::vector<std::shared_ptr<LaunchState>> inflight_;
    /// Last in-flight launch per stream id — the predecessor the next
    /// launch on that stream must wait for (CUDA stream FIFO).
    std::unordered_map<int, std::shared_ptr<LaunchState>> stream_tail_;
    bool batch_capture_ = false;
    int batch_item_ = -1;
    std::unordered_map<int, int> batch_epochs_;   ///< item -> current epoch
    std::unordered_map<int, int> batch_streams_;  ///< item -> private default stream
    int last_error_batch_item_ = -1;
    /// Cancellation token consulted at kernel boundaries; atomic because
    /// asynchronous pool tasks read it while the host thread may detach it
    /// (reclaim) after their join. Not owned.
    std::atomic<CancelToken*> cancel_{nullptr};
    ScratchPool* scratch_pool_ = nullptr;
    int next_stream_id_ = 1;
    int executor_threads_ = 0;  ///< 0 = hardware_concurrency
    std::uint64_t kernels_launched_ = 0;
    std::uint64_t blocks_executed_ = 0;
    double global_bytes_ = 0.0;
    std::uint64_t memory_events_ = 0;
    std::uint64_t fault_events_ = 0;
    bool trace_enabled_ = false;
    Trace trace_;
};

}  // namespace nsparse::sim
