#include "gpusim/device.hpp"

#include <cstdio>
#include <span>
#include <utility>

#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"

namespace nsparse::sim {

struct Device::LaunchState {
    std::exception_ptr error;
    Completion done;
};

Device::Device(DeviceSpec spec, CostModel cost)
    : spec_(spec), cost_(cost), alloc_(spec.memory_capacity)
{
    alloc_.set_hooks(
        [this](std::size_t bytes) {
            const double us =
                cost_.malloc_base_us +
                cost_.malloc_per_mb_us * static_cast<double>(bytes) / (1024.0 * 1024.0);
            timeline_.add(kMallocPhase, us * 1e-6);
        },
        [this]() { timeline_.add(kMallocPhase, cost_.free_base_us * 1e-6); });
}

Device::~Device()
{
    // Tasks still in flight reference this device's cost model and the
    // launch-captured buffers; join them before members are destroyed. A
    // deferred functor error has nowhere to go from a destructor.
    try {
        flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void Device::launch(Stream stream, const LaunchConfig& cfg, std::string name,
                    const std::function<void(BlockCtx&)>& fn)
{
    cfg.validate(spec_);  // config errors stay synchronous (issue time)
    KernelRecord rec;
    rec.name = std::move(name);
    rec.stream_id = stream.id;
    rec.cfg = cfg;
    rec.blocks.resize(to_size(cfg.grid_dim));
    pending_.push_back(std::move(rec));
    // The blocks heap buffer is stable even when pending_ reallocates.
    const std::span<BlockCost> blocks{pending_.back().blocks};

    auto st = std::make_shared<LaunchState>();
    std::shared_ptr<LaunchState> prev;
    if (const auto it = stream_tail_.find(stream.id); it != stream_tail_.end()) {
        prev = it->second;
    }

    const int nt = BlockExecutor::resolve_threads(executor_threads_);
    if (nt <= 1) {
        // Eager in-issue-order execution: the seed's sequential engine.
        // Functor errors are still deferred to flush() so error surfacing
        // does not depend on the thread count.
        if (prev && !prev->done.done()) { WorkerPool::instance().wait(prev->done); }
        stream_tail_.erase(stream.id);
        try {
            BlockExecutor::run(cfg, cost_, 1, blocks, fn);
        } catch (...) {
            st->error = std::current_exception();
        }
        st->done.set();
    } else {
        auto& pool = WorkerPool::instance();
        pool.ensure_workers(nt - 1);
        stream_tail_[stream.id] = st;
        // Stream-overlapped execution: the launch becomes one pool task,
        // chained behind its same-stream predecessor; launches on other
        // streams run concurrently. Submitted as `blocking` so it only
        // runs on dedicated workers: FIFO dequeue of the blocking queue
        // means the predecessor was dequeued before this task (running or
        // done), so the plain predecessor wait cannot deadlock — while a
        // help-stealing thread could pick up the successor of the very
        // launch executing on its own stack.
        pool.submit(
            [this, st, prev, cfg, fn, blocks, nt] {
                if (prev) { prev->done.wait(); }
                try {
                    BlockExecutor::run(cfg, cost_, nt, blocks, fn);
                } catch (...) {
                    st->error = std::current_exception();
                }
                st->done.set();
            },
            WorkerPool::TaskKind::blocking);
    }
    inflight_.push_back(std::move(st));
}

void Device::flush()
{
    if (inflight_.empty()) { return; }
    auto& pool = WorkerPool::instance();
    std::exception_ptr first_error;
    std::vector<std::size_t> failed;
    // inflight_ aligns with the tail of pending_: records before `base`
    // were counted by an earlier flush of this batch.
    const std::size_t base = pending_.size() - inflight_.size();
    for (std::size_t k = 0; k < inflight_.size(); ++k) {
        pool.wait(inflight_[k]->done);
        if (inflight_[k]->error != nullptr) {
            // Move, don't copy: the worker's task lambda may release the
            // last LaunchState reference after we clear inflight_, and
            // that release must not destroy an exception object this
            // thread still holds (exception refcounts live in
            // uninstrumented libstdc++, invisible to TSan).
            auto err = std::exchange(inflight_[k]->error, nullptr);
            if (first_error == nullptr) { first_error = std::move(err); }
            failed.push_back(base + k);
        } else {
            // Cross-launch reductions happen here, in issue order, so
            // counters are bit-identical for every thread count.
            const auto& rec = pending_[base + k];
            ++kernels_launched_;
            blocks_executed_ += rec.blocks.size();
            global_bytes_ += rec.total_global_bytes();
        }
    }
    inflight_.clear();
    stream_tail_.clear();
    for (auto it = failed.rbegin(); it != failed.rend(); ++it) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    if (first_error != nullptr) { std::rethrow_exception(first_error); }
}

double Device::synchronize()
{
    flush();
    if (pending_.empty()) { return 0.0; }
#ifdef NSPARSE_DEBUG_SYNC
    for (auto& k : pending_) {
        double span_max = 0;
        for (auto& b : k.blocks) span_max = std::max(span_max, b.span);
        fprintf(stderr, "[sync] %-20s stream=%d grid=%d block=%d work=%.3g max_span=%.3g\n",
                k.name.c_str(), k.stream_id, k.cfg.grid_dim, k.cfg.block_dim, k.total_work(),
                span_max);
    }
#endif
    const ScheduleResult r = schedule(pending_, spec_, cost_);
#ifdef NSPARSE_DEBUG_SYNC
    fprintf(stderr, "[sync] done makespan=%g\n", r.makespan);
#endif
    if (trace_enabled_) {
        for (std::size_t k = 0; k < pending_.size(); ++k) {
            const auto& rec = pending_[k];
            double max_span = 0.0;
            for (const auto& b : rec.blocks) { max_span = std::max(max_span, b.span); }
            trace_.record(KernelTraceEntry{
                .name = rec.name,
                .phase = current_phase_,
                .stream_id = rec.stream_id,
                .grid_dim = rec.cfg.grid_dim,
                .block_dim = rec.cfg.block_dim,
                .shared_bytes = rec.cfg.shared_bytes,
                .total_work = rec.total_work(),
                .max_span = max_span,
                .start = r.kernels[k].start,
                .finish = r.kernels[k].finish,
            });
        }
    }
    pending_.clear();
    timeline_.add(current_phase_, r.makespan);
    return r.makespan;
}

void Device::record_memory_event(std::string label, std::size_t bytes_freed, int slabs,
                                 int retry_depth)
{
    ++memory_events_;
    if (trace_enabled_) {
        trace_.record(MemoryEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .bytes_freed = bytes_freed,
            .slabs = slabs,
            .retry_depth = retry_depth,
        });
    }
}

void Device::record_fault_event(std::string label, int group, index_t row, index_t table_size,
                                int probes, int retry_depth)
{
    ++fault_events_;
    if (trace_enabled_) {
        trace_.record(FaultEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .group = group,
            .row = row,
            .table_size = table_size,
            .probes = probes,
            .retry_depth = retry_depth,
        });
    }
}

void Device::reset_measurement()
{
    synchronize();
    trace_.clear();
    timeline_.clear();
    alloc_.reset_peak();
    kernels_launched_ = 0;
    blocks_executed_ = 0;
    global_bytes_ = 0.0;
    memory_events_ = 0;
    fault_events_ = 0;
}

}  // namespace nsparse::sim
