#include "gpusim/device.hpp"

#include <cstdio>

#include "gpusim/executor.hpp"

namespace nsparse::sim {

Device::Device(DeviceSpec spec, CostModel cost)
    : spec_(spec), cost_(cost), alloc_(spec.memory_capacity)
{
    alloc_.set_hooks(
        [this](std::size_t bytes) {
            const double us =
                cost_.malloc_base_us +
                cost_.malloc_per_mb_us * static_cast<double>(bytes) / (1024.0 * 1024.0);
            timeline_.add(kMallocPhase, us * 1e-6);
        },
        [this]() { timeline_.add(kMallocPhase, cost_.free_base_us * 1e-6); });
}

void Device::launch(Stream stream, const LaunchConfig& cfg, std::string name,
                    const std::function<void(BlockCtx&)>& fn)
{
    cfg.validate(spec_);
    KernelRecord rec;
    rec.name = std::move(name);
    rec.stream_id = stream.id;
    rec.cfg = cfg;
    rec.blocks.resize(to_size(cfg.grid_dim));

    BlockExecutor::run(cfg, cost_, executor_threads_, rec.blocks, fn);

    // Cross-block reductions stay on the launching thread, in block-index
    // order, so counters and cycle totals are bit-identical for every
    // executor thread count.
    ++kernels_launched_;
    blocks_executed_ += to_size(cfg.grid_dim);
    global_bytes_ += rec.total_global_bytes();
    pending_.push_back(std::move(rec));
}

double Device::synchronize()
{
    if (pending_.empty()) { return 0.0; }
#ifdef NSPARSE_DEBUG_SYNC
    for (auto& k : pending_) {
        double span_max = 0;
        for (auto& b : k.blocks) span_max = std::max(span_max, b.span);
        fprintf(stderr, "[sync] %-20s stream=%d grid=%d block=%d work=%.3g max_span=%.3g\n",
                k.name.c_str(), k.stream_id, k.cfg.grid_dim, k.cfg.block_dim, k.total_work(),
                span_max);
    }
#endif
    const ScheduleResult r = schedule(pending_, spec_, cost_);
#ifdef NSPARSE_DEBUG_SYNC
    fprintf(stderr, "[sync] done makespan=%g\n", r.makespan);
#endif
    if (trace_enabled_) {
        for (std::size_t k = 0; k < pending_.size(); ++k) {
            const auto& rec = pending_[k];
            double max_span = 0.0;
            for (const auto& b : rec.blocks) { max_span = std::max(max_span, b.span); }
            trace_.record(KernelTraceEntry{
                .name = rec.name,
                .phase = current_phase_,
                .stream_id = rec.stream_id,
                .grid_dim = rec.cfg.grid_dim,
                .block_dim = rec.cfg.block_dim,
                .shared_bytes = rec.cfg.shared_bytes,
                .total_work = rec.total_work(),
                .max_span = max_span,
                .start = r.kernels[k].start,
                .finish = r.kernels[k].finish,
            });
        }
    }
    pending_.clear();
    timeline_.add(current_phase_, r.makespan);
    return r.makespan;
}

void Device::record_memory_event(std::string label, std::size_t bytes_freed, int slabs,
                                 int retry_depth)
{
    ++memory_events_;
    if (trace_enabled_) {
        trace_.record(MemoryEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .bytes_freed = bytes_freed,
            .slabs = slabs,
            .retry_depth = retry_depth,
        });
    }
}

void Device::record_fault_event(std::string label, int group, index_t row, index_t table_size,
                                int probes, int retry_depth)
{
    ++fault_events_;
    if (trace_enabled_) {
        trace_.record(FaultEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .group = group,
            .row = row,
            .table_size = table_size,
            .probes = probes,
            .retry_depth = retry_depth,
        });
    }
}

void Device::reset_measurement()
{
    synchronize();
    trace_.clear();
    timeline_.clear();
    alloc_.reset_peak();
    kernels_launched_ = 0;
    blocks_executed_ = 0;
    global_bytes_ = 0.0;
    memory_events_ = 0;
    fault_events_ = 0;
}

}  // namespace nsparse::sim
