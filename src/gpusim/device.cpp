#include "gpusim/device.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"

namespace nsparse::sim {

namespace {

/// Maps a tripped cancel cause to its structured exception. `stage` is the
/// device phase (host-side checks) the budget ran out in.
[[noreturn]] void throw_cancelled(CancelCause cause, const CancelToken& tok,
                                  const std::string& stage, double sim_elapsed)
{
    switch (cause) {
    case CancelCause::kUser:
        throw OperationCancelled("operation cancelled at kernel boundary", stage, tok.reason());
    case CancelCause::kSimDeadline:
        throw DeadlineExceeded("simulated-time budget exceeded at kernel boundary", stage,
                               sim_elapsed, /*wall_clock=*/false);
    case CancelCause::kWallDeadline:
        throw DeadlineExceeded("wall-clock budget exceeded at kernel boundary", stage,
                               tok.wall_elapsed_seconds(), /*wall_clock=*/true);
    case CancelCause::kNone: break;
    }
    NSPARSE_ASSERT(false, "throw_cancelled called without a tripped cause");
    std::abort();
}

}  // namespace

struct Device::LaunchState {
    std::exception_ptr error;
    Completion done;
    std::size_t record = 0;  ///< index of this launch's KernelRecord in pending_
    int batch_item = -1;     ///< batch item tag at issue (-1 outside capture)
    bool counted = false;    ///< counters folded (set exactly once by flush)
};

Device::Device(DeviceSpec spec, CostModel cost)
    : spec_(spec), cost_(cost), alloc_(spec.memory_capacity)
{
    alloc_.set_hooks(
        [this](std::size_t bytes) {
            const double us =
                cost_.malloc_base_us +
                cost_.malloc_per_mb_us * static_cast<double>(bytes) / (1024.0 * 1024.0);
            timeline_.add(kMallocPhase, us * 1e-6);
        },
        [this]() { timeline_.add(kMallocPhase, cost_.free_base_us * 1e-6); });
}

Device::~Device()
{
    // Tasks still in flight reference this device's cost model and the
    // launch-captured buffers; join them before members are destroyed. A
    // deferred functor error has nowhere to go from a destructor.
    try {
        flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
}

void Device::check_cancel()
{
    if (auto* tok = cancel_.load(std::memory_order_acquire)) {
        const double sim_elapsed = timeline_.total();
        const CancelCause cause = tok->should_cancel(sim_elapsed);
        if (cause != CancelCause::kNone) {
            throw_cancelled(cause, *tok, current_phase_, sim_elapsed);
        }
    }
}

void Device::launch(Stream stream, const LaunchConfig& cfg, std::string name,
                    const std::function<void(BlockCtx&)>& fn)
{
    cfg.validate(spec_);  // config errors stay synchronous (issue time)
    // Cooperative cancellation: a request past its budget (or cancelled by
    // the caller) stops here, at the kernel boundary, before the launch is
    // even recorded — the buffers it would have captured unwind by RAII.
    check_cancel();
    KernelRecord rec;
    rec.name = std::move(name);
    rec.stream_id = stream.id;
    rec.phase = current_phase_;
    if (batch_capture_) {
        rec.batch_item = batch_item_;
        if (const auto it = batch_epochs_.find(batch_item_); it != batch_epochs_.end()) {
            rec.epoch = it->second;
        }
    }
    rec.cfg = cfg;
    rec.blocks.resize(to_size(cfg.grid_dim));
    pending_.push_back(std::move(rec));
    // The blocks heap buffer is stable even when pending_ reallocates.
    const std::span<BlockCost> blocks{pending_.back().blocks};

    auto st = std::make_shared<LaunchState>();
    st->record = pending_.size() - 1;
    st->batch_item = pending_.back().batch_item;
    std::shared_ptr<LaunchState> prev;
    if (const auto it = stream_tail_.find(stream.id); it != stream_tail_.end()) {
        prev = it->second;
    }

    const int nt = BlockExecutor::resolve_threads(executor_threads_);
    if (nt <= 1) {
        // Eager in-issue-order execution: the seed's sequential engine.
        // Functor errors are still deferred to flush() so error surfacing
        // does not depend on the thread count.
        if (prev && !prev->done.done()) { WorkerPool::instance().wait(prev->done); }
        stream_tail_.erase(stream.id);
        try {
            BlockExecutor::run(cfg, cost_, 1, blocks, fn);
        } catch (...) {
            st->error = std::current_exception();
        }
        st->done.set();
    } else {
        auto& pool = WorkerPool::instance();
        pool.ensure_workers(nt - 1);
        stream_tail_[stream.id] = st;
        // Stream-overlapped execution: the launch becomes one pool task,
        // chained behind its same-stream predecessor; launches on other
        // streams run concurrently. Submitted as `blocking` so it only
        // runs on dedicated workers: FIFO dequeue of the blocking queue
        // means the predecessor was dequeued before this task (running or
        // done), so the plain predecessor wait cannot deadlock — while a
        // help-stealing thread could pick up the successor of the very
        // launch executing on its own stack.
        pool.submit(
            [this, st, prev, cfg, fn, blocks, nt, phase = current_phase_] {
                if (prev) { prev->done.wait(); }
                // Async boundary check (user / wall causes only — the
                // simulated clock is host-owned): an already-queued launch
                // of a cancelled request refuses to start; its deferred
                // error surfaces at the next flush().
                auto* tok = cancel_.load(std::memory_order_acquire);
                const CancelCause cause =
                    tok != nullptr ? tok->should_cancel_async() : CancelCause::kNone;
                try {
                    if (cause != CancelCause::kNone) {
                        throw_cancelled(cause, *tok, phase, 0.0);
                    }
                    BlockExecutor::run(cfg, cost_, nt, blocks, fn);
                } catch (...) {
                    st->error = std::current_exception();
                }
                st->done.set();
            },
            WorkerPool::TaskKind::blocking);
    }
    inflight_.push_back(std::move(st));
}

void Device::flush()
{
    if (inflight_.empty()) { return; }
    auto& pool = WorkerPool::instance();
    std::exception_ptr first_error;
    int first_error_item = -1;
    std::size_t first_error_record = 0;
    std::vector<std::size_t> failed;
    // Each LaunchState carries its own pending_ record index and a
    // `counted` latch, so every launch's counters fold exactly once no
    // matter how often flush runs — batch capture keeps already-counted
    // records pending across many flushes, which the old tail-index
    // arithmetic (pending size minus inflight size) would double-count.
    for (auto& st : inflight_) {
        pool.wait(st->done);
        if (st->error != nullptr) {
            // Move, don't copy: the worker's task lambda may release the
            // last LaunchState reference after we clear inflight_, and
            // that release must not destroy an exception object this
            // thread still holds (exception refcounts live in
            // uninstrumented libstdc++, invisible to TSan).
            auto err = std::exchange(st->error, nullptr);
            // Deterministic choice: lowest (batch item, launch index) —
            // in a batch the lowest product index wins regardless of how
            // streams interleaved, matching sequential execution order.
            if (first_error == nullptr ||
                std::pair(st->batch_item, st->record) <
                    std::pair(first_error_item, first_error_record)) {
                first_error = std::move(err);
                first_error_item = st->batch_item;
                first_error_record = st->record;
            }
            failed.push_back(st->record);
        } else if (!st->counted) {
            // Cross-launch reductions happen here, in issue order, so
            // counters are bit-identical for every thread count.
            st->counted = true;
            const auto& rec = pending_[st->record];
            ++kernels_launched_;
            blocks_executed_ += rec.blocks.size();
            global_bytes_ += rec.total_global_bytes();
        }
    }
    inflight_.clear();
    stream_tail_.clear();
    // Drop failed records (descending, so earlier indices stay valid). No
    // live LaunchState refers to pending_ anymore, so the index shift of
    // later records is safe.
    std::sort(failed.begin(), failed.end());
    for (auto it = failed.rbegin(); it != failed.rend(); ++it) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    if (first_error != nullptr) {
        last_error_batch_item_ = first_error_item;
        std::rethrow_exception(first_error);
    }
}

double Device::synchronize()
{
    flush();
    if (batch_capture_) {
        // Functional join only: results are host-visible, but scheduling
        // is deferred to end_batch_capture() so independent items overlap.
        // The epoch bump encodes this host join for the scheduler.
        if (batch_item_ >= 0) { ++batch_epochs_[batch_item_]; }
        return 0.0;
    }
    if (pending_.empty()) { return 0.0; }
#ifdef NSPARSE_DEBUG_SYNC
    for (auto& k : pending_) {
        double span_max = 0;
        for (auto& b : k.blocks) span_max = std::max(span_max, b.span);
        fprintf(stderr, "[sync] %-20s stream=%d grid=%d block=%d work=%.3g max_span=%.3g\n",
                k.name.c_str(), k.stream_id, k.cfg.grid_dim, k.cfg.block_dim, k.total_work(),
                span_max);
    }
#endif
    const ScheduleResult r = schedule(pending_, spec_, cost_);
#ifdef NSPARSE_DEBUG_SYNC
    fprintf(stderr, "[sync] done makespan=%g\n", r.makespan);
#endif
    if (trace_enabled_) {
        for (std::size_t k = 0; k < pending_.size(); ++k) {
            const auto& rec = pending_[k];
            double max_span = 0.0;
            for (const auto& b : rec.blocks) { max_span = std::max(max_span, b.span); }
            trace_.record(KernelTraceEntry{
                .name = rec.name,
                .phase = rec.phase,
                .stream_id = rec.stream_id,
                .grid_dim = rec.cfg.grid_dim,
                .block_dim = rec.cfg.block_dim,
                .shared_bytes = rec.cfg.shared_bytes,
                .total_work = rec.total_work(),
                .max_span = max_span,
                .start = r.kernels[k].start,
                .finish = r.kernels[k].finish,
            });
        }
    }
    pending_.clear();
    timeline_.add(current_phase_, r.makespan);
    return r.makespan;
}

void Device::begin_batch_capture()
{
    NSPARSE_EXPECTS(!batch_capture_, "batch capture already active");
    synchronize();  // leftover pending work belongs to the previous phase
    batch_capture_ = true;
    batch_item_ = -1;
    batch_epochs_.clear();
    batch_streams_.clear();
}

void Device::set_batch_item(int item)
{
    NSPARSE_EXPECTS(batch_capture_, "set_batch_item outside batch capture");
    NSPARSE_EXPECTS(item >= 0, "batch item must be non-negative");
    batch_item_ = item;
    if (batch_streams_.find(item) == batch_streams_.end()) {
        batch_streams_[item] = next_stream_id_++;
    }
}

BatchWindowReport Device::end_batch_capture()
{
    NSPARSE_EXPECTS(batch_capture_, "end_batch_capture without begin_batch_capture");
    flush();
    batch_capture_ = false;
    batch_item_ = -1;
    batch_epochs_.clear();
    batch_streams_.clear();

    BatchWindowReport report;
    if (pending_.empty()) { return report; }
    const ScheduleResult r = schedule(pending_, spec_, cost_);
    report.makespan = r.makespan;
    for (std::size_t k = 0; k < pending_.size(); ++k) {
        const auto& rec = pending_[k];
        const double busy = r.kernels[k].finish - r.kernels[k].start;
        auto& item = report.items[rec.batch_item];
        ++item.kernels;
        item.busy_seconds += busy;
        if (rec.phase == "setup") {
            item.setup_seconds += busy;
        } else if (rec.phase == "count") {
            item.count_seconds += busy;
        } else if (rec.phase == "calc") {
            item.calc_seconds += busy;
        } else if (rec.phase == "estimate") {
            item.estimate_seconds += busy;
        }
        auto& stream = report.streams[rec.stream_id];
        ++stream.kernels;
        stream.busy_seconds += busy;
        if (trace_enabled_) {
            double max_span = 0.0;
            for (const auto& b : rec.blocks) { max_span = std::max(max_span, b.span); }
            trace_.record(KernelTraceEntry{
                .name = rec.name,
                .phase = rec.phase,
                .stream_id = rec.stream_id,
                .grid_dim = rec.cfg.grid_dim,
                .block_dim = rec.cfg.block_dim,
                .shared_bytes = rec.cfg.shared_bytes,
                .total_work = rec.total_work(),
                .max_span = max_span,
                .start = r.kernels[k].start,
                .finish = r.kernels[k].finish,
            });
        }
    }
    pending_.clear();
    timeline_.add(kBatchPhase, r.makespan);
    return report;
}

void Device::record_memory_event(std::string label, std::size_t bytes_freed, int slabs,
                                 int retry_depth)
{
    ++memory_events_;
    if (trace_enabled_) {
        trace_.record(MemoryEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .bytes_freed = bytes_freed,
            .slabs = slabs,
            .retry_depth = retry_depth,
        });
    }
}

void Device::record_fault_event(std::string label, int group, index_t row, index_t table_size,
                                int probes, int retry_depth)
{
    ++fault_events_;
    if (trace_enabled_) {
        trace_.record(FaultEventEntry{
            .label = std::move(label),
            .phase = current_phase_,
            .group = group,
            .row = row,
            .table_size = table_size,
            .probes = probes,
            .retry_depth = retry_depth,
        });
    }
}

void Device::reset_measurement()
{
    NSPARSE_EXPECTS(!batch_capture_, "reset_measurement during batch capture");
    synchronize();
    trace_.clear();
    timeline_.clear();
    alloc_.reset_peak();
    kernels_launched_ = 0;
    blocks_executed_ = 0;
    global_bytes_ = 0.0;
    memory_events_ = 0;
    fault_events_ = 0;
    // Reuse hygiene: a fresh measurement must not report the previous
    // request's deferred-error provenance.
    last_error_batch_item_ = -1;
}

void Device::reclaim()
{
    cancel_.store(nullptr, std::memory_order_release);
    // Join every in-flight launch of the abandoned request; its deferred
    // errors have already been reported (or superseded) upstream.
    try {
        flush();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    if (batch_capture_) {
        try {
            end_batch_capture();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
    }
    // Schedule leftover pending records so the next reset_measurement()
    // starts from an empty device (their makespan lands in the current
    // timeline, which the next request resets anyway).
    try {
        synchronize();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    current_phase_ = "setup";
    last_error_batch_item_ = -1;
}

}  // namespace nsparse::sim
