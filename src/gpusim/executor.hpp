// Parallel block executor: runs a launched grid's block functors across
// the process-lifetime WorkerPool. The real GPU fills its SMs with
// concurrent thread blocks (§III-E); the blocks of a simulated kernel are
// independent in exactly the same way — each writes disjoint output slots
// or uses atomics — so the simulator may execute them on however many host
// cores are available without changing any result.
//
// Determinism contract: every block's cost lands in its own
// `blocks[block_idx]` slot and all cross-block reductions (kernel work
// totals, global-byte counters, the makespan schedule) are computed
// serially in launch-issue/block-index order afterwards. Simulated cycle
// counts, timelines and traces are therefore bit-identical for every
// thread count, including 1 (the sequential executor the seed shipped
// with).
#pragma once

#include <functional>
#include <span>

#include "gpusim/cost_model.hpp"
#include "gpusim/launch.hpp"

namespace nsparse::sim {

/// Process-wide switch for the library's one-time stderr warnings (the
/// resolve_threads clamp notices): true suppresses them. Also enabled by
/// the env variable NSPARSE_QUIET (non-empty, not "0"). Suppression never
/// changes resolved values, and does not consume the one-time latch — a
/// warning silenced while quiet still fires once if quiet is later turned
/// off and the condition recurs.
void set_warnings_quiet(bool quiet);
[[nodiscard]] bool warnings_quiet();

class BlockExecutor {
public:
    /// Host threads a request resolves to: `requested` if positive, else
    /// std::thread::hardware_concurrency (queried once and cached, never
    /// less than 1). Out-of-range requests — negative, or beyond
    /// WorkerPool::kMaxWorkers — are clamped with a one-time stderr
    /// warning instead of a silent fallback.
    [[nodiscard]] static int resolve_threads(int requested);

    /// Executes `fn` once per block of `cfg` on up to `threads` host
    /// threads (resolved as above; extra workers come from
    /// WorkerPool::instance(), not per-launch std::threads), writing each
    /// block's accumulated cost — plus the fixed block prologue charge —
    /// into `blocks[block_idx]`.
    ///
    /// A functor exception aborts the remaining blocks and is rethrown on
    /// the calling thread; when several blocks fail, the error of the
    /// lowest block index is reported so failures do not depend on thread
    /// timing.
    static void run(const LaunchConfig& cfg, const CostModel& cost, int threads,
                    std::span<BlockCost> blocks, const std::function<void(BlockCtx&)>& fn);
};

}  // namespace nsparse::sim
