// CSR matrix resident in simulated device memory.
//
// Uploading charges the allocator (and thus cudaMalloc time + peak memory,
// which Figure 4 measures including inputs and output); kernels index the
// raw spans exactly like CUDA kernels index raw device pointers.
#pragma once

#include "gpusim/memory.hpp"
#include "sparse/csr.hpp"

namespace nsparse::sim {

template <ValueType T>
struct DeviceCsr {
    index_t rows = 0;
    index_t cols = 0;
    DeviceBuffer<index_t> rpt;
    DeviceBuffer<index_t> col;
    DeviceBuffer<T> val;

    DeviceCsr() = default;

    /// "cudaMemcpy H2D" of a host CSR matrix.
    static DeviceCsr upload(DeviceAllocator& alloc, const CsrMatrix<T>& m)
    {
        DeviceCsr d;
        d.rows = m.rows;
        d.cols = m.cols;
        d.rpt = DeviceBuffer<index_t>(alloc, std::span<const index_t>(m.rpt));
        d.col = DeviceBuffer<index_t>(alloc, std::span<const index_t>(m.col));
        d.val = DeviceBuffer<T>(alloc, std::span<const T>(m.val));
        return d;
    }

    /// Allocates an uninitialized device CSR of known nnz ("two-phase"
    /// output allocation after the symbolic count).
    static DeviceCsr allocate(DeviceAllocator& alloc, index_t rows, index_t cols, index_t nnz)
    {
        DeviceCsr d;
        d.rows = rows;
        d.cols = cols;
        d.rpt = DeviceBuffer<index_t>(alloc, to_size(rows) + 1);
        d.col = DeviceBuffer<index_t>(alloc, to_size(nnz));
        d.val = DeviceBuffer<T>(alloc, to_size(nnz));
        return d;
    }

    [[nodiscard]] index_t nnz() const
    {
        return rpt.empty() ? 0 : rpt[rpt.size() - 1];
    }

    [[nodiscard]] index_t row_nnz(index_t i) const
    {
        return rpt[to_size(i) + 1] - rpt[to_size(i)];
    }

    /// Moving download for a device CSR that is not needed afterwards:
    /// hands the storage straight to the host matrix and releases the
    /// device allocation. Byte-identical to download() minus the copy.
    [[nodiscard]] CsrMatrix<T> take_download()
    {
        CsrMatrix<T> m;
        m.rows = rows;
        m.cols = cols;
        m.rpt = rpt.take_host();
        m.col = col.take_host();
        m.val = val.take_host();
        m.validate();
        return m;
    }

    /// "cudaMemcpy D2H" back to a host CSR matrix.
    [[nodiscard]] CsrMatrix<T> download() const
    {
        CsrMatrix<T> m;
        m.rows = rows;
        m.cols = cols;
        m.rpt = rpt.to_host();
        m.col = col.to_host();
        m.val = val.to_host();
        m.validate();
        return m;
    }
};

}  // namespace nsparse::sim
