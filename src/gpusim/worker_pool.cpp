#include "gpusim/worker_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

namespace nsparse::sim {

WorkerPool& WorkerPool::instance()
{
    static WorkerPool pool;
    return pool;
}

WorkerPool::WorkerPool(int workers)
{
    ensure_workers(workers);
}

WorkerPool::~WorkerPool()
{
    {
        const std::scoped_lock lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) { t.join(); }
}

void WorkerPool::ensure_workers(int target)
{
    const int clamped = std::min(target, kMaxWorkers);
    const std::scoped_lock lock(mu_);
    if (stop_) { return; }
    while (static_cast<int>(threads_.size()) < clamped) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

int WorkerPool::workers() const
{
    const std::scoped_lock lock(mu_);
    return static_cast<int>(threads_.size());
}

void WorkerPool::submit(Task task, TaskKind kind)
{
    {
        const std::scoped_lock lock(mu_);
        if (!stop_) {
            (kind == TaskKind::leaf ? leaf_queue_ : blocking_queue_)
                .push_back(std::move(task));
            task = nullptr;
        }
    }
    if (task) {
        // Shutting down (static-destruction stragglers): run inline so the
        // submitter still observes completion.
        task();
        executed_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    cv_.notify_one();
}

bool WorkerPool::try_run_one()
{
    Task task;
    {
        const std::scoped_lock lock(mu_);
        if (leaf_queue_.empty()) { return false; }
        task = std::move(leaf_queue_.front());
        leaf_queue_.pop_front();
    }
    try {
        task();
    } catch (...) {
        // Tasks are required to capture their own errors; see submit().
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void WorkerPool::wait(Completion& event)
{
    while (!event.done()) {
        if (!try_run_one()) {
            // Queue empty but the event's task is still running elsewhere:
            // sleep on the event with a short lease so a task enqueued in
            // the meantime (e.g. a chunk helper of the very task we wait
            // for) is picked up promptly.
            if (event.wait_for_ms(1)) { return; }
        }
    }
}

void WorkerPool::worker_loop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(mu_);
            cv_.wait(lock,
                     [&] { return stop_ || !leaf_queue_.empty() || !blocking_queue_.empty(); });
            if (leaf_queue_.empty() && blocking_queue_.empty()) {
                return;  // stop requested and fully drained
            }
            // Leaf work first: it is guaranteed-progress and unblocks
            // callers waiting out their own launch; blocking tasks may
            // park this worker on a predecessor wait.
            auto& q = leaf_queue_.empty() ? blocking_queue_ : leaf_queue_;
            task = std::move(q.front());
            q.pop_front();
        }
        try {
            task();
        } catch (...) {
            // See submit(): tasks capture their own errors.
        }
        executed_.fetch_add(1, std::memory_order_relaxed);
    }
}

namespace {

struct ChunkError {
    std::mutex mu;
    std::exception_ptr error;
    int first_bad = std::numeric_limits<int>::max();
};

}  // namespace

void parallel_chunks(std::int64_t n, int threads,
                     const std::function<void(int, std::int64_t, std::int64_t)>& fn)
{
    if (n <= 0) { return; }
    const int chunks = static_cast<int>(
        std::max<std::int64_t>(1, std::min<std::int64_t>(threads, n)));
    const auto chunk_begin = [n, chunks](int c) { return n * c / chunks; };

    if (chunks == 1) {
        fn(0, 0, n);
        return;
    }

    auto& pool = WorkerPool::instance();
    pool.ensure_workers(chunks - 1);

    struct State {
        std::atomic<int> remaining;
        Completion done;
        ChunkError err;
    };
    auto st = std::make_shared<State>();
    st->remaining.store(chunks, std::memory_order_relaxed);

    const auto run_chunk = [st, &fn, chunk_begin](int c) {
        try {
            fn(c, chunk_begin(c), chunk_begin(c + 1));
        } catch (...) {
            const std::scoped_lock lock(st->err.mu);
            if (c < st->err.first_bad) {
                st->err.first_bad = c;
                st->err.error = std::current_exception();
            }
        }
        if (st->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) { st->done.set(); }
    };

    // `fn` is captured by reference: safe because this frame outlives every
    // chunk (wait() below returns only after all chunks completed).
    for (int c = 1; c < chunks; ++c) {
        pool.submit([run_chunk, c] { run_chunk(c); });
    }
    run_chunk(0);
    pool.wait(st->done);

    // Move the exception out of the shared state before rethrowing so a
    // worker's later release of its State reference never destroys an
    // exception object this thread is still reading (the exception
    // refcount lives in uninstrumented libstdc++, invisible to TSan).
    if (st->err.error != nullptr) {
        std::rethrow_exception(std::exchange(st->err.error, nullptr));
    }
}

}  // namespace nsparse::sim
