#include "gpusim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace nsparse::sim {

void Trace::absorb(const Trace& other, int device_id)
{
    entries_.reserve(entries_.size() + other.entries_.size());
    for (auto e : other.entries_) {
        e.device_id = device_id;
        entries_.push_back(std::move(e));
    }
    memory_events_.reserve(memory_events_.size() + other.memory_events_.size());
    for (auto e : other.memory_events_) {
        e.device_id = device_id;
        memory_events_.push_back(std::move(e));
    }
    fault_events_.reserve(fault_events_.size() + other.fault_events_.size());
    for (auto e : other.fault_events_) {
        e.device_id = device_id;
        fault_events_.push_back(std::move(e));
    }
}

std::string Trace::report() const
{
    struct Agg {
        std::size_t launches = 0;
        wide_t blocks = 0;
        double work = 0.0;
        double seconds = 0.0;
    };
    std::map<std::string, Agg> by_name;
    double total_work = 0.0;
    for (const auto& e : entries_) {
        auto& a = by_name[e.name];
        ++a.launches;
        a.blocks += e.grid_dim;
        a.work += e.total_work;
        a.seconds += e.finish - e.start;
        total_work += e.total_work;
    }
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& x, const auto& y) { return x.second.work > y.second.work; });

    std::ostringstream os;
    os << std::left << std::setw(24) << "kernel" << std::right << std::setw(10) << "launches"
       << std::setw(12) << "blocks" << std::setw(14) << "work" << std::setw(9) << "share"
       << '\n';
    for (const auto& [name, a] : rows) {
        os << std::left << std::setw(24) << name << std::right << std::setw(10) << a.launches
           << std::setw(12) << a.blocks << std::setw(14) << std::scientific
           << std::setprecision(2) << a.work << std::fixed << std::setprecision(1)
           << std::setw(8) << (total_work > 0 ? 100.0 * a.work / total_work : 0.0) << "%\n";
    }
    if (!memory_events_.empty()) {
        os << "memory events:\n";
        for (const auto& e : memory_events_) {
            os << "  " << std::left << std::setw(16) << e.label << " phase=" << e.phase
               << " slabs=" << e.slabs << " retry_depth=" << e.retry_depth
               << " bytes_freed=" << e.bytes_freed << '\n';
        }
    }
    if (!fault_events_.empty()) {
        os << "fault events:\n";
        for (const auto& e : fault_events_) {
            os << "  " << std::left << std::setw(20) << e.label << " phase=" << e.phase
               << " group=" << e.group << " row=" << e.row << " table=" << e.table_size
               << " probes=" << e.probes << " retry=" << e.retry_depth << '\n';
        }
    }
    return os.str();
}

}  // namespace nsparse::sim
