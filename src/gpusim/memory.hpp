// Simulated device memory: an allocator with a hard capacity (throws
// DeviceOutOfMemory like a failing cudaMalloc), live/peak accounting for
// the paper's Figure 4, and RAII typed buffers.
//
// Buffer storage is ordinary host memory — what makes it "device" memory is
// that every byte is charged against the device capacity and every
// allocation costs simulated cudaMalloc time (charged to the owner Device's
// current phase, §IV-C observes this cost is considerable on Pascal).
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sparse/error.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

/// Tracks simulated device-memory usage. Allocation normally happens on
/// the simulated host thread between kernel launches, but since blocks
/// execute on a parallel executor (gpusim/executor.hpp) the accounting —
/// live/peak bytes and the malloc-time hooks that charge the Device's
/// malloc bucket — is guarded by a mutex, so a kernel functor allocating
/// scratch is safe rather than a silent data race. Note that the *order*
/// in which concurrent allocations land in the malloc bucket is not
/// defined; deterministic simulations must keep allocation on the host
/// thread (all in-tree kernels do).
class DeviceAllocator {
public:
    /// `on_alloc(bytes)` is invoked for every allocation so the Device can
    /// charge cudaMalloc time; `on_free()` likewise.
    using AllocHook = std::function<void(std::size_t)>;
    using FreeHook = std::function<void()>;

    explicit DeviceAllocator(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

    void set_hooks(AllocHook on_alloc, FreeHook on_free)
    {
        on_alloc_ = std::move(on_alloc);
        on_free_ = std::move(on_free);
    }

    /// Registers an allocation; throws DeviceOutOfMemory beyond capacity.
    void allocate(std::size_t bytes)
    {
        const std::scoped_lock lock(mu_);
        if (live_ + bytes > capacity_) {
            throw DeviceOutOfMemory("device out of memory: requested " + std::to_string(bytes) +
                                    " B with " + std::to_string(capacity_ - live_) +
                                    " B free of " + std::to_string(capacity_) + " B");
        }
        live_ += bytes;
        peak_ = std::max(peak_, live_);
        if (on_alloc_) { on_alloc_(bytes); }
    }

    void deallocate(std::size_t bytes) noexcept
    {
        const std::scoped_lock lock(mu_);
        live_ -= std::min(live_, bytes);
        if (on_free_) { on_free_(); }
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t live_bytes() const
    {
        const std::scoped_lock lock(mu_);
        return live_;
    }
    [[nodiscard]] std::size_t peak_bytes() const
    {
        const std::scoped_lock lock(mu_);
        return peak_;
    }

    /// Resets the peak-watermark to the current live amount (called at the
    /// start of a measured multiply).
    void reset_peak()
    {
        const std::scoped_lock lock(mu_);
        peak_ = live_;
    }

private:
    mutable std::mutex mu_;  ///< guards live/peak accounting and the hooks
    std::size_t capacity_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
    AllocHook on_alloc_;
    FreeHook on_free_;
};

/// RAII typed device buffer. Move-only.
template <typename T>
class DeviceBuffer {
public:
    DeviceBuffer() = default;

    DeviceBuffer(DeviceAllocator& alloc, std::size_t n) : alloc_(&alloc), data_(n)
    {
        alloc_->allocate(n * sizeof(T));
    }

    /// Allocates and fills from a host span.
    DeviceBuffer(DeviceAllocator& alloc, std::span<const T> host)
        : DeviceBuffer(alloc, host.size())
    {
        std::copy(host.begin(), host.end(), data_.begin());
    }

    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;

    DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
    DeviceBuffer& operator=(DeviceBuffer&& other) noexcept
    {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }

    ~DeviceBuffer() { release(); }

    void release() noexcept
    {
        if (alloc_ != nullptr) {
            alloc_->deallocate(data_.size() * sizeof(T));
            alloc_ = nullptr;
        }
        data_.clear();
        data_.shrink_to_fit();
    }

    [[nodiscard]] std::size_t size() const { return data_.size(); }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] T* data() { return data_.data(); }
    [[nodiscard]] const T* data() const { return data_.data(); }
    [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
    [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }
    [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

    void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

    /// Copies contents back to a host vector ("cudaMemcpy D2H").
    [[nodiscard]] std::vector<T> to_host() const { return data_; }

private:
    void swap(DeviceBuffer& other) noexcept
    {
        std::swap(alloc_, other.alloc_);
        std::swap(data_, other.data_);
    }

    DeviceAllocator* alloc_ = nullptr;
    std::vector<T> data_;
};

}  // namespace nsparse::sim
