// Simulated device memory: an allocator with a hard capacity (throws
// DeviceOutOfMemory like a failing cudaMalloc), live/peak accounting for
// the paper's Figure 4, and RAII typed buffers.
//
// Buffer storage is ordinary host memory — what makes it "device" memory is
// that every byte is charged against the device capacity and every
// allocation costs simulated cudaMalloc time (charged to the owner Device's
// current phase, §IV-C observes this cost is considerable on Pascal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "sparse/error.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

/// Deterministic allocation-fault injection: a plan installed on a
/// DeviceAllocator makes chosen allocations fail with DeviceOutOfMemory so
/// every OOM path is testable, not just the first upload that happens to
/// exceed capacity. All enabled conditions apply simultaneously, on top of
/// the real capacity check. Allocation indices are 0-based counts of
/// allocate() calls since the plan was installed, so a sweep over
/// [0, allocations()) of a clean run exercises every allocation site.
struct FaultPlan {
    /// Fail exactly the allocation with this index; -1 disables.
    std::int64_t fail_at_alloc = -1;

    /// Fail every allocation requesting more than this many bytes;
    /// 0 disables.
    std::size_t fail_above_bytes = 0;

    /// From allocation index `shrink_after_alloc` onward the effective
    /// capacity becomes min(capacity, shrink_to_bytes) — a device "losing"
    /// memory mid-run (e.g. another context claiming it). -1 disables.
    std::int64_t shrink_after_alloc = -1;
    std::size_t shrink_to_bytes = 0;

    /// Fail each allocation with this probability, drawn from a private
    /// minstd engine seeded with `seed` — deterministic per plan install.
    double fail_probability = 0.0;
    std::uint64_t seed = 0;
};

/// Tracks simulated device-memory usage. Allocation normally happens on
/// the simulated host thread between kernel launches, but since blocks
/// execute on a parallel executor (gpusim/executor.hpp) the accounting —
/// live/peak bytes and the malloc-time hooks that charge the Device's
/// malloc bucket — is guarded by a mutex, so a kernel functor allocating
/// scratch is safe rather than a silent data race. Note that the *order*
/// in which concurrent allocations land in the malloc bucket is not
/// defined; deterministic simulations must keep allocation on the host
/// thread (all in-tree kernels do).
class DeviceAllocator {
public:
    /// `on_alloc(bytes)` is invoked for every allocation so the Device can
    /// charge cudaMalloc time; `on_free()` likewise.
    using AllocHook = std::function<void(std::size_t)>;
    using FreeHook = std::function<void()>;

    explicit DeviceAllocator(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

    void set_hooks(AllocHook on_alloc, FreeHook on_free)
    {
        on_alloc_ = std::move(on_alloc);
        on_free_ = std::move(on_free);
    }

    /// Registers an allocation; throws DeviceOutOfMemory beyond capacity or
    /// when the installed FaultPlan injects a failure. Every call — also a
    /// failing one — consumes one allocation index.
    void allocate(std::size_t bytes)
    {
        const std::scoped_lock lock(mu_);
        const std::uint64_t idx = alloc_count_++;
        std::size_t cap = capacity_;
        if (plan_) {
            if (plan_->shrink_after_alloc >= 0 &&
                idx >= static_cast<std::uint64_t>(plan_->shrink_after_alloc)) {
                cap = std::min(cap, plan_->shrink_to_bytes);
            }
            const bool inject =
                (plan_->fail_at_alloc >= 0 &&
                 idx == static_cast<std::uint64_t>(plan_->fail_at_alloc)) ||
                (plan_->fail_above_bytes > 0 && bytes > plan_->fail_above_bytes) ||
                (plan_->fail_probability > 0.0 &&
                 std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
                     plan_->fail_probability);
            if (inject) {
                fail_locked(bytes, "injected device out of memory (fault plan, allocation #" +
                                       std::to_string(idx) + "): requested " +
                                       std::to_string(bytes) + " B");
            }
        }
        // Compare without `live_ + bytes`, which wraps for huge requests and
        // would admit an allocation that is larger than the whole device.
        if (live_ > cap || bytes > cap - live_) {
            fail_locked(bytes, "device out of memory: requested " + std::to_string(bytes) +
                                   " B with " +
                                   std::to_string(cap > live_ ? cap - live_ : 0) +
                                   " B free of " + std::to_string(cap) + " B");
        }
        live_ += bytes;
        peak_ = std::max(peak_, live_);
        if (on_alloc_) { on_alloc_(bytes); }
    }

    void deallocate(std::size_t bytes) noexcept
    {
        const std::scoped_lock lock(mu_);
        NSPARSE_ASSERT(bytes <= live_, "deallocate underflow: freeing more than is live");
        live_ -= std::min(live_, bytes);
        if (on_free_) { on_free_(); }
    }

    // --- fault injection -------------------------------------------------

    /// Installs a fault plan and restarts the allocation index / RNG.
    void set_fault_plan(const FaultPlan& plan)
    {
        const std::scoped_lock lock(mu_);
        plan_ = plan;
        alloc_count_ = 0;
        rng_.seed(static_cast<std::minstd_rand::result_type>(plan.seed + 1));
    }

    /// Removes any installed plan (allocation counting continues).
    void clear_fault_plan()
    {
        const std::scoped_lock lock(mu_);
        plan_.reset();
    }

    /// allocate() calls since construction or the last set_fault_plan().
    [[nodiscard]] std::uint64_t allocations() const
    {
        const std::scoped_lock lock(mu_);
        return alloc_count_;
    }

    /// Allocations that threw (capacity and injected failures alike).
    [[nodiscard]] std::uint64_t failed_allocations() const
    {
        const std::scoped_lock lock(mu_);
        return failed_allocs_;
    }

    /// Live bytes at the moment of the most recent failed allocation —
    /// what an OOM handler can reclaim by unwinding (0 if none failed yet).
    [[nodiscard]] std::size_t last_oom_live_bytes() const
    {
        const std::scoped_lock lock(mu_);
        return last_oom_live_;
    }

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t live_bytes() const
    {
        const std::scoped_lock lock(mu_);
        return live_;
    }
    [[nodiscard]] std::size_t peak_bytes() const
    {
        const std::scoped_lock lock(mu_);
        return peak_;
    }

    /// Resets the peak-watermark to the current live amount (called at the
    /// start of a measured multiply).
    void reset_peak()
    {
        const std::scoped_lock lock(mu_);
        peak_ = live_;
    }

private:
    /// Shared failure path: records observability state, then throws.
    [[noreturn]] void fail_locked(std::size_t bytes, std::string msg)
    {
        (void)bytes;
        ++failed_allocs_;
        last_oom_live_ = live_;
        throw DeviceOutOfMemory(std::move(msg));
    }

    mutable std::mutex mu_;  ///< guards live/peak accounting and the hooks
    std::size_t capacity_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
    AllocHook on_alloc_;
    FreeHook on_free_;
    std::optional<FaultPlan> plan_;
    std::uint64_t alloc_count_ = 0;
    std::uint64_t failed_allocs_ = 0;
    std::size_t last_oom_live_ = 0;
    std::minstd_rand rng_;
};

/// RAII typed device buffer. Move-only.
template <typename T>
class DeviceBuffer {
public:
    DeviceBuffer() = default;

    /// Charges the allocator *before* committing host storage, so a
    /// rejected allocation throws without touching host memory.
    DeviceBuffer(DeviceAllocator& alloc, std::size_t n)
    {
        alloc.allocate(n * sizeof(T));
        alloc_ = &alloc;
        charged_ = n * sizeof(T);
        try {
            data_.resize(n);
        } catch (...) {
            alloc.deallocate(n * sizeof(T));
            alloc_ = nullptr;
            charged_ = 0;
            throw;
        }
    }

    /// Allocates and fills from a host span.
    DeviceBuffer(DeviceAllocator& alloc, std::span<const T> host)
        : DeviceBuffer(alloc, host.size())
    {
        std::copy(host.begin(), host.end(), data_.begin());
    }

    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;

    DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
    DeviceBuffer& operator=(DeviceBuffer&& other) noexcept
    {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }

    ~DeviceBuffer() { release(); }

    void release() noexcept
    {
        if (alloc_ != nullptr) {
            alloc_->deallocate(charged_);
            alloc_ = nullptr;
        }
        charged_ = 0;
        data_.clear();
        data_.shrink_to_fit();
    }

    [[nodiscard]] std::size_t size() const { return data_.size(); }

    /// Elements the underlying allocation can hold. Equals size() unless
    /// reshape() shrank the logical view; the charge against the device
    /// stays at this capacity either way (a sub-allocating pool keeps the
    /// whole block resident).
    [[nodiscard]] std::size_t capacity_elems() const { return charged_ / sizeof(T); }

    /// Resizes the logical view within the existing allocation — no device
    /// charge changes and no reallocation happens (`n` must fit the
    /// capacity). Grown tail elements are value-initialized, not stale.
    void reshape(std::size_t n)
    {
        NSPARSE_ASSERT(n * sizeof(T) <= charged_, "reshape beyond buffer capacity");
        if (data_.capacity() < n) { data_.reserve(charged_ / sizeof(T)); }
        data_.resize(n);
    }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] T* data() { return data_.data(); }
    [[nodiscard]] const T* data() const { return data_.data(); }
    [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
    [[nodiscard]] std::span<const T> span() const { return {data_.data(), data_.size()}; }
    [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
    [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

    void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

    /// Copies contents back to a host vector ("cudaMemcpy D2H").
    [[nodiscard]] std::vector<T> to_host() const { return data_; }

    /// Moves the contents to a host vector and releases the device
    /// allocation in one step ("cudaMemcpy D2H + cudaFree" without the
    /// host-side copy). The buffer is empty afterwards.
    [[nodiscard]] std::vector<T> take_host()
    {
        std::vector<T> out = std::move(data_);
        if (alloc_ != nullptr) {
            alloc_->deallocate(charged_);
            alloc_ = nullptr;
        }
        charged_ = 0;
        data_.clear();
        data_.shrink_to_fit();
        return out;
    }

private:
    void swap(DeviceBuffer& other) noexcept
    {
        std::swap(alloc_, other.alloc_);
        std::swap(data_, other.data_);
        std::swap(charged_, other.charged_);
    }

    DeviceAllocator* alloc_ = nullptr;
    std::size_t charged_ = 0;  ///< bytes charged against the allocator
    std::vector<T> data_;
};

}  // namespace nsparse::sim
