// Cross-product scratch reuse for batched execution.
//
// §IV-C observes cudaMalloc cost is considerable on Pascal; when many small
// products run back to back, the grouping permutation, the per-row product
// counts and the row-nnz workspace are re-allocated at the same sizes over
// and over. The pool keeps released buffers on small per-tag free lists and
// hands them back on an exact-size match, so a pooled take costs no
// simulated cudaMalloc (the allocation is still live and charged — like a
// real sub-allocating memory pool, the bytes stay resident between
// products). A size mismatch falls through to a fresh allocation, so
// mixed-size batches stay correct and merely amortize less.
//
// Contents of a reused buffer are stale by design: every in-tree consumer
// fully (re)writes its scratch before reading it. The pool is not
// thread-safe; takes and puts happen on the issuing host thread, like
// allocation itself.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpusim/memory.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

class ScratchPool {
public:
    /// Buffers retained per tag before put() starts releasing for real
    /// (bounds pool growth on mixed-size batches).
    static constexpr std::size_t kMaxPerTag = 8;

    /// Returns a buffer of exactly `n` index_t elements: a cached
    /// exact-size buffer when one is free (a *hit* — no simulated
    /// cudaMalloc), otherwise a fresh allocation from `alloc` (a *miss*).
    [[nodiscard]] DeviceBuffer<index_t> take(const std::string& tag, DeviceAllocator& alloc,
                                             std::size_t n)
    {
        auto& list = cache_[tag];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (list[i].size() == n) {
                DeviceBuffer<index_t> buf = std::move(list[i]);
                list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
                ++hits_;
                return buf;
            }
        }
        ++misses_;
        return DeviceBuffer<index_t>(alloc, n);
    }

    /// Returns a buffer to the pool for later reuse; beyond kMaxPerTag the
    /// oldest cached buffer of the tag is released (simulated cudaFree).
    void put(const std::string& tag, DeviceBuffer<index_t> buf)
    {
        if (buf.empty()) { return; }
        auto& list = cache_[tag];
        list.push_back(std::move(buf));
        if (list.size() > kMaxPerTag) { list.erase(list.begin()); }
    }

    /// Releases every cached buffer (e.g. before an OOM retry, so the pool
    /// does not hold memory the retry needs).
    void clear() { cache_.clear(); }

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

private:
    std::unordered_map<std::string, std::vector<DeviceBuffer<index_t>>> cache_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace nsparse::sim
