// Cross-product scratch reuse for batched execution.
//
// §IV-C observes cudaMalloc cost is considerable on Pascal; when many small
// products run back to back, the grouping permutation, the per-row product
// counts and the row-nnz workspace are re-allocated at the same sizes over
// and over. The pool keeps released buffers on small per-tag free lists and
// hands them back on an exact-size match, so a pooled take costs no
// simulated cudaMalloc (the allocation is still live and charged — like a
// real sub-allocating memory pool, the bytes stay resident between
// products). A size mismatch falls through to a fresh allocation, so
// mixed-size batches stay correct and merely amortize less.
//
// Contents of a reused buffer are stale by design: every in-tree consumer
// fully (re)writes its scratch before reading it. The pool is not
// thread-safe; takes and puts happen on the issuing host thread, like
// allocation itself.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpusim/memory.hpp"
#include "sparse/types.hpp"

namespace nsparse::sim {

class ScratchPool {
public:
    /// Buffers retained per tag before put() starts releasing for real
    /// (bounds pool growth on mixed-size batches).
    static constexpr std::size_t kMaxPerTag = 8;

    /// Slack tolerated by a near-miss reuse: a cached buffer up to 25%
    /// larger than the request is reshaped down and handed back instead of
    /// paying a fresh simulated cudaMalloc. Bounded so a huge stale buffer
    /// never camps on a tiny request's charge.
    static constexpr std::size_t kSlackNum = 1;
    static constexpr std::size_t kSlackDen = 4;

    /// Returns a buffer of exactly `n` index_t elements: a cached buffer
    /// whose allocation fits `n` exactly when one is free, else the
    /// smallest cached buffer within the bounded slack (both a *hit* — no
    /// simulated cudaMalloc), otherwise a fresh allocation from `alloc`
    /// (a *miss*). Reused buffers are reshaped to exactly `n` elements so
    /// consumers that iterate `buf.size()` never see a stale tail.
    [[nodiscard]] DeviceBuffer<index_t> take(const std::string& tag, DeviceAllocator& alloc,
                                             std::size_t n)
    {
        auto& list = cache_[tag];
        std::size_t best = list.size();
        for (std::size_t i = 0; i < list.size(); ++i) {
            const std::size_t cap = list[i].capacity_elems();
            if (cap == n) {
                best = i;
                break;  // exact match always wins (preserves pre-slack behaviour)
            }
            if (cap > n && cap - n <= n * kSlackNum / kSlackDen &&
                (best == list.size() || cap < list[best].capacity_elems())) {
                best = i;
            }
        }
        if (best < list.size()) {
            DeviceBuffer<index_t> buf = std::move(list[best]);
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(best));
            if (buf.size() != n) { buf.reshape(n); }
            ++hits_;
            return buf;
        }
        ++misses_;
        return DeviceBuffer<index_t>(alloc, n);
    }

    /// Returns a buffer to the pool for later reuse; beyond kMaxPerTag the
    /// oldest cached buffer of the tag is released (simulated cudaFree).
    void put(const std::string& tag, DeviceBuffer<index_t> buf)
    {
        if (buf.empty()) { return; }
        auto& list = cache_[tag];
        list.push_back(std::move(buf));
        if (list.size() > kMaxPerTag) { list.erase(list.begin()); }
    }

    /// Releases every cached buffer (e.g. before an OOM retry, so the pool
    /// does not hold memory the retry needs).
    void clear() { cache_.clear(); }

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

private:
    std::unordered_map<std::string, std::vector<DeviceBuffer<index_t>>> cache_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace nsparse::sim
