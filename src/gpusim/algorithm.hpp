// Common result types and the uniform entry-point signature every SpGEMM
// implementation (the paper's algorithm and the three baseline libraries)
// exposes, so benchmarks and tests can sweep algorithms generically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "sparse/csr.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {

/// Measurement record of one C = A*B execution on the simulated device.
struct SpgemmStats {
    wide_t intermediate_products = 0;
    wide_t nnz_c = 0;
    double seconds = 0.0;        ///< total simulated time
    double setup_seconds = 0.0;  ///< grouping / binning / workspace prep
    double count_seconds = 0.0;  ///< symbolic phase
    double calc_seconds = 0.0;   ///< numeric phase (incl. sort/compact)
    double estimate_seconds = 0.0;  ///< estimation-based planning phase
    double malloc_seconds = 0.0; ///< cudaMalloc/cudaFree (Fig. 5/6 bucket)
    /// Host wall-clock of the whole multiply (hash_spgemm measures it for
    /// both backends). On the simulated backend this is simulator overhead,
    /// not a modelled quantity; on the native backend it IS the metric —
    /// there `seconds` and the per-phase buckets only reflect the simulated
    /// allocation charges, not kernel time (core/backend.hpp).
    double wall_seconds = 0.0;
    std::size_t peak_bytes = 0;  ///< device peak incl. inputs and output

    // Memory-pressure fallback observability (hash_spgemm row slabs).
    int fallback_slabs = 0;      ///< slabs C was assembled from (0 = unchunked)
    int fallback_retries = 0;    ///< slab-size halvings before completion
    std::size_t fallback_bytes_freed = 0;  ///< bytes reclaimed by the OOM unwind

    // Kernel-fault containment observability (hash_spgemm per-row retries).
    int faulted_rows = 0;        ///< rows whose first kernel attempt faulted
    int row_retries = 0;         ///< group-0 retry executions across those rows
    int host_fallback_rows = 0;  ///< rows recomputed by the host reference recourse

    // Session recovery-ladder observability (nsparse::Session; zero when
    // the multiply ran through the direct entry points).
    int replans = 0;         ///< estimated→exact replans the ladder performed
    int host_recourse = 0;   ///< 1 when the whole product fell back to the host

    // Estimation-based planning observability (Options::plan_mode).
    int estimated_rows = 0;      ///< rows planned from the sampled model, not counted
    int mispredicted_rows = 0;   ///< estimated rows whose planned capacity proved wrong
    /// Modelled symbolic work-cycles the skipped exact pass would have
    /// spent on the rows planned from the model (device work cycles, i.e.
    /// cost-model currency summed over lanes, not wall-clock).
    double symbolic_cycles_saved = 0.0;

    /// The paper's metric: FLOPS of squaring = 2 * intermediate products
    /// divided by execution time.
    [[nodiscard]] double gflops() const
    {
        return seconds <= 0.0 ? 0.0
                              : 2.0 * static_cast<double>(intermediate_products) / seconds / 1e9;
    }
};

template <ValueType T>
struct SpgemmOutput {
    CsrMatrix<T> matrix;
    SpgemmStats stats;
};

/// Collects phase totals from the device timeline into stats (phases named
/// "setup" / "count" / "calc" / "estimate" plus the device malloc bucket).
inline void fill_stats_from_device(SpgemmStats& s, const sim::Device& dev)
{
    s.setup_seconds = dev.timeline().phase("setup");
    s.count_seconds = dev.timeline().phase("count");
    s.calc_seconds = dev.timeline().phase("calc");
    s.estimate_seconds = dev.timeline().phase("estimate");
    s.malloc_seconds = dev.timeline().phase(sim::Device::kMallocPhase);
    s.seconds = dev.elapsed();
    s.peak_bytes = dev.allocator().peak_bytes();
}

/// Uniform callable type for sweeping algorithms in tests/benches.
template <ValueType T>
using SpgemmFn =
    std::function<SpgemmOutput<T>(sim::Device&, const CsrMatrix<T>&, const CsrMatrix<T>&)>;

template <ValueType T>
struct NamedAlgorithm {
    std::string name;
    SpgemmFn<T> fn;
};

}  // namespace nsparse
