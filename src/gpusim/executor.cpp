#include "gpusim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "gpusim/worker_pool.hpp"

namespace nsparse::sim {

namespace {

std::atomic<bool> g_quiet{false};

}  // namespace

void set_warnings_quiet(bool quiet) { g_quiet.store(quiet, std::memory_order_relaxed); }

bool warnings_quiet()
{
    static const bool env_quiet = [] {
        const char* v = std::getenv("NSPARSE_QUIET");
        return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
    }();
    return env_quiet || g_quiet.load(std::memory_order_relaxed);
}

namespace {

/// Blocks are handed to workers in fixed-size chunks (like a dynamic
/// OpenMP schedule): big enough to amortise the atomic fetch, small enough
/// to balance the skewed per-block work of SpGEMM kernels.
constexpr index_t kChunk = 16;

constexpr index_t kNoError = std::numeric_limits<index_t>::max();

void run_block(index_t b, const LaunchConfig& cfg, const CostModel& cost,
               std::span<BlockCost> blocks, const std::function<void(BlockCtx&)>& fn)
{
    BlockCtx ctx(b, cfg, cost);
    fn(ctx);
    BlockCost bc = ctx.cost();
    bc.work += cfg.block_dim * cost.block_prologue_per_thread;
    bc.span += cost.block_prologue_span;
    blocks[to_size(b)] = bc;
}

/// Shared state of one parallel launch. Held via shared_ptr so chunk
/// tasks dequeued after run() returned (possible only once the cursor is
/// exhausted) never touch freed memory. The cost/fn references stay valid
/// for any task that claims a chunk: claiming implies its blocks are not
/// yet counted, so run() is still blocked in wait().
struct RunState {
    RunState(const LaunchConfig& c, const CostModel& m, std::span<BlockCost> b,
             const std::function<void(BlockCtx&)>& f)
        : cfg(c), cost(m), blocks(b), fn(f)
    {
    }

    const LaunchConfig cfg;
    const CostModel& cost;
    const std::span<BlockCost> blocks;
    const std::function<void(BlockCtx&)>& fn;
    std::atomic<index_t> cursor{0};
    std::atomic<index_t> first_bad{kNoError};
    std::exception_ptr error;
    std::mutex error_mu;
    std::atomic<index_t> completed{0};
    Completion done;
};

/// Pulls chunks off the cursor until the grid is exhausted. Exceptions
/// must not escape a chunk: remember the error of the failing block with
/// the lowest index — blocks below a recorded failure keep executing, so
/// the surfaced error does not depend on which thread observed its
/// failure first. The thread that completes the final block fires `done`.
void drain(RunState& st)
{
    const index_t grid = st.cfg.grid_dim;
    for (;;) {
        const index_t begin = st.cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= grid) { return; }
        const index_t end = std::min(grid, begin + kChunk);
        for (index_t b = begin; b < end; ++b) {
            if (b > st.first_bad.load(std::memory_order_relaxed)) { continue; }
            try {
                run_block(b, st.cfg, st.cost, st.blocks, st.fn);
            } catch (...) {
                const std::scoped_lock lock(st.error_mu);
                if (b < st.first_bad.load(std::memory_order_relaxed)) {
                    st.first_bad.store(b, std::memory_order_relaxed);
                    st.error = std::current_exception();
                }
            }
        }
        const index_t n = end - begin;
        // acq_rel: the final fetch_add observes the whole RMW chain, so
        // every block write (and recorded error) happens-before done.set().
        if (st.completed.fetch_add(n, std::memory_order_acq_rel) + n == grid) {
            st.done.set();
        }
    }
}

}  // namespace

int BlockExecutor::resolve_threads(int requested)
{
    static const int hw = [] {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : static_cast<int>(n);
    }();
    if (requested < 0) {
        static std::atomic<bool> warned{false};
        if (!warnings_quiet() && !warned.exchange(true)) {
            std::fprintf(stderr,
                         "nsparse: executor_threads/NSPARSE_EXECUTOR_THREADS=%d is negative; "
                         "using all %d hardware threads instead\n",
                         requested, hw);
        }
        return hw;
    }
    if (requested > WorkerPool::kMaxWorkers) {
        static std::atomic<bool> warned{false};
        if (!warnings_quiet() && !warned.exchange(true)) {
            std::fprintf(stderr,
                         "nsparse: executor_threads/NSPARSE_EXECUTOR_THREADS=%d exceeds the "
                         "pool ceiling; clamping to %d\n",
                         requested, WorkerPool::kMaxWorkers);
        }
        return WorkerPool::kMaxWorkers;
    }
    return requested > 0 ? requested : hw;
}

void BlockExecutor::run(const LaunchConfig& cfg, const CostModel& cost, int threads,
                        std::span<BlockCost> blocks, const std::function<void(BlockCtx&)>& fn)
{
    const index_t grid = cfg.grid_dim;
    const int nt = static_cast<int>(
        std::min<index_t>(static_cast<index_t>(resolve_threads(threads)),
                          std::max<index_t>(grid, 1)));

    // Sequential path: one thread requested, or a grid too small for a
    // second worker to ever receive a chunk.
    if (nt <= 1 || grid <= kChunk) {
        for (index_t b = 0; b < grid; ++b) { run_block(b, cfg, cost, blocks, fn); }
        return;
    }

    // Parallel path: chunk tasks on the persistent pool. The calling
    // thread drains the cursor itself — completion never depends on a
    // still-queued helper — then helps with other queued work while
    // waiting out straggler chunks.
    auto& pool = WorkerPool::instance();
    pool.ensure_workers(nt - 1);

    auto st = std::make_shared<RunState>(cfg, cost, blocks, fn);
    const index_t n_chunks = (grid + kChunk - 1) / kChunk;
    const int helpers = static_cast<int>(
        std::min<index_t>(static_cast<index_t>(nt - 1), n_chunks - 1));
    for (int t = 0; t < helpers; ++t) {
        pool.submit([st] { drain(*st); });
    }
    drain(*st);
    pool.wait(st->done);

    // Take the exception out of the shared state before rethrowing: a
    // straggler task dequeued later still releases its RunState reference,
    // and that release must not be the one destroying an exception object
    // this thread is reading (the exception refcount lives in
    // uninstrumented libstdc++, invisible to TSan).
    if (st->error) { std::rethrow_exception(std::exchange(st->error, nullptr)); }
}

}  // namespace nsparse::sim
