#include "gpusim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace nsparse::sim {

namespace {

/// Blocks are handed to workers in fixed-size chunks (like a dynamic
/// OpenMP schedule): big enough to amortise the atomic fetch, small enough
/// to balance the skewed per-block work of SpGEMM kernels.
constexpr index_t kChunk = 16;

void run_block(index_t b, const LaunchConfig& cfg, const CostModel& cost,
               std::span<BlockCost> blocks, const std::function<void(BlockCtx&)>& fn)
{
    BlockCtx ctx(b, cfg, cost);
    fn(ctx);
    BlockCost bc = ctx.cost();
    bc.work += cfg.block_dim * cost.block_prologue_per_thread;
    bc.span += cost.block_prologue_span;
    blocks[to_size(b)] = bc;
}

}  // namespace

int BlockExecutor::resolve_threads(int requested)
{
    if (requested > 0) { return requested; }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void BlockExecutor::run(const LaunchConfig& cfg, const CostModel& cost, int threads,
                        std::span<BlockCost> blocks, const std::function<void(BlockCtx&)>& fn)
{
    const index_t grid = cfg.grid_dim;
    const int nt = static_cast<int>(
        std::min<index_t>(static_cast<index_t>(resolve_threads(threads)),
                          std::max<index_t>(grid, 1)));

    // Sequential path: one thread requested, or a grid too small for a
    // second worker to ever receive a chunk.
    if (nt <= 1 || grid <= kChunk) {
        for (index_t b = 0; b < grid; ++b) { run_block(b, cfg, cost, blocks, fn); }
        return;
    }

    // Parallel path: plain std::thread workers pulling chunks off an
    // atomic cursor (not OpenMP — uninstrumented OpenMP runtimes hide
    // their barriers from ThreadSanitizer, which breaks `ctest -L tsan`).
    //
    // Exceptions must not escape a worker. Remember the error of the
    // failing block with the lowest index — blocks below a recorded
    // failure keep executing, so the surfaced error does not depend on
    // which thread observed its failure first — and rethrow after join.
    constexpr index_t kNoError = std::numeric_limits<index_t>::max();
    std::atomic<index_t> cursor{0};
    std::atomic<index_t> first_bad{kNoError};
    std::exception_ptr error;
    std::mutex error_mu;

    const auto worker = [&] {
        for (;;) {
            const index_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
            if (begin >= grid) { return; }
            const index_t end = std::min(grid, begin + kChunk);
            for (index_t b = begin; b < end; ++b) {
                if (b > first_bad.load(std::memory_order_relaxed)) { continue; }
                try {
                    run_block(b, cfg, cost, blocks, fn);
                } catch (...) {
                    const std::scoped_lock lock(error_mu);
                    if (b < first_bad.load(std::memory_order_relaxed)) {
                        first_bad.store(b, std::memory_order_relaxed);
                        error = std::current_exception();
                    }
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(to_size(nt - 1));
    for (int t = 1; t < nt; ++t) { pool.emplace_back(worker); }
    worker();  // the launching thread is worker 0
    for (auto& th : pool) { th.join(); }

    if (error) { std::rethrow_exception(error); }
}

}  // namespace nsparse::sim
