// Persistent host worker pool for the simulator's execution engine.
//
// The seed executed every Device::launch on freshly spawned std::threads
// and tore them down again before launch() returned. Real SpGEMM launch
// streams are dominated by *tiny* kernels (per-group row batches, often
// < 10 rows — §III-E of the paper), so the spawn/join overhead swamped
// whatever parallelism the blocks offered. This pool is created once per
// process, kept warm across launches, and shared by
//
//   * BlockExecutor::run       — block-chunk tasks of a single launch,
//   * Device::launch           — whole-launch tasks for stream overlap,
//   * core parallel host loops — e.g. the group_rows classify/scatter.
//
// Scheduling is a FIFO condition-variable queue with two task classes:
//
//   * `leaf` tasks never wait on other pool work (block chunks, host
//     parallel_chunks). They may be run by anyone — dedicated workers or
//     threads "helping" from inside WorkerPool::wait().
//   * `blocking` tasks may wait on the completion of a task submitted
//     *earlier* (a stream launch waiting on its same-stream predecessor).
//     They run ONLY on dedicated worker threads, never via help-stealing:
//     a thread already inside launch N's execution must not steal launch
//     N+1 of the same stream, or it would block on a completion that its
//     own stack frame is responsible for setting. Submitters of blocking
//     tasks must first ensure_workers(>= 1).
//
// With that split, FIFO dequeue gives deadlock freedom: when a worker
// executes a blocking task, its predecessor was dequeued earlier — either
// finished, or being executed by a thread that only ever waits on leaf
// work (which helpers and self-draining callers always retire). Threads
// that must block on a Completion call WorkerPool::wait(), which runs
// queued leaf tasks while waiting so an undersized pool still makes
// progress.
//
// Like the executor, the pool deliberately uses std::thread + mutex +
// condition_variable rather than OpenMP: uninstrumented OpenMP runtimes
// hide their barriers from ThreadSanitizer, which would break the
// `ctest -L tsan` gate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nsparse::sim {

/// One-shot completion event: set() exactly once, observed by any number
/// of waiters. The mutex hand-off makes every write sequenced before
/// set() visible to code sequenced after a successful wait()/done().
class Completion {
public:
    void set()
    {
        // Notify while holding the mutex: a waiter may destroy this
        // Completion as soon as it observes done_, so the notify must not
        // touch cv_ after the flag becomes visible.
        const std::scoped_lock lock(mu_);
        done_ = true;
        cv_.notify_all();
    }

    [[nodiscard]] bool done() const
    {
        const std::scoped_lock lock(mu_);
        return done_;
    }

    void wait()
    {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return done_; });
    }

    /// Returns whether the event fired within `ms` milliseconds.
    bool wait_for_ms(int ms)
    {
        std::unique_lock lock(mu_);
        return cv_.wait_for(lock, std::chrono::milliseconds(ms), [&] { return done_; });
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
};

class WorkerPool {
public:
    using Task = std::function<void()>;

    /// Hard ceiling on pool size; requests beyond it are clamped (see
    /// BlockExecutor::resolve_threads for the matching user-facing
    /// warning).
    static constexpr int kMaxWorkers = 256;

    /// The process-lifetime pool every launch submits to. Starts with
    /// zero workers; grows on demand via ensure_workers() and joins them
    /// at process exit.
    static WorkerPool& instance();

    /// Standalone pool for unit tests; `workers` threads are spawned
    /// immediately (clamped to [0, kMaxWorkers]).
    explicit WorkerPool(int workers = 0);

    /// Drains every queued task, then joins all workers.
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// Grows the pool to at least `target` workers (never shrinks;
    /// clamped to kMaxWorkers; negative is a no-op). Thread counts above
    /// hardware_concurrency are honoured — determinism tests rely on
    /// exercising real multi-threading even on single-core hosts.
    void ensure_workers(int target);

    [[nodiscard]] int workers() const;

    /// `leaf` tasks never wait on other pool work and may be help-stolen;
    /// `blocking` tasks may wait on earlier submissions and only ever run
    /// on dedicated workers (see the file comment for the deadlock
    /// argument).
    enum class TaskKind { leaf, blocking };

    /// Enqueues a task. Tasks must capture their own errors; an exception
    /// escaping a task is swallowed by the pool (last-resort; every
    /// in-tree task records errors into its own shared state). Blocking
    /// tasks require at least one dedicated worker (ensure_workers).
    void submit(Task task, TaskKind kind = TaskKind::leaf);

    /// Dequeues and runs one *leaf* task on the calling thread. Returns
    /// false when no leaf task was queued.
    bool try_run_one();

    /// Blocks until `event` fires, running queued leaf tasks on the
    /// calling thread while waiting so the caller contributes a worker
    /// instead of idling. Never executes blocking tasks (they may depend
    /// on the very frame that is waiting).
    void wait(Completion& event);

    /// Tasks finished so far (observability; includes helped tasks).
    [[nodiscard]] std::uint64_t tasks_executed() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

private:
    void worker_loop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Task> leaf_queue_;
    std::deque<Task> blocking_queue_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
    std::atomic<std::uint64_t> executed_{0};
};

/// Splits [0, n) into up to `threads` contiguous chunks and runs
/// fn(chunk_index, begin, end) for each concurrently on the process pool
/// (the calling thread executes chunk 0 and then helps). The chunk
/// boundaries depend only on (n, threads); callers that need results
/// independent of the thread count must make per-chunk outputs
/// order-insensitive (e.g. reduce per-chunk partials in chunk order).
/// A chunk exception is rethrown on the caller; when several chunks
/// throw, the lowest chunk index wins.
void parallel_chunks(std::int64_t n, int threads,
                     const std::function<void(int, std::int64_t, std::int64_t)>& fn);

}  // namespace nsparse::sim
