// Static description of the simulated GPU.
//
// Defaults describe the NVIDIA Tesla P100 (PCI-e) the paper evaluates on:
// 56 SMs x 64 cores at 1.328 GHz, 64 KB shared memory per SM with a 48 KB
// per-thread-block limit, warps of 32, at most 1024 threads / 32 thread
// blocks / 2048 threads per SM, 16 GB device memory at 732 GB/s.
//
// `memory_capacity` is configurable because the benchmarks run scaled-down
// matrices: the Table III out-of-memory behaviour reproduces when the
// device memory is scaled by the same factor as the matrices.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nsparse::sim {

struct DeviceSpec {
    int num_sms = 56;
    int cores_per_sm = 64;
    double clock_ghz = 1.328;
    std::size_t shared_mem_per_sm = 64 * 1024;
    std::size_t max_shared_per_block = 48 * 1024;
    int warp_size = 32;
    int max_threads_per_block = 1024;
    int max_blocks_per_sm = 32;
    int max_threads_per_sm = 2048;
    std::size_t memory_capacity = std::size_t{16} * 1024 * 1024 * 1024;
    double mem_bandwidth_gbps = 732.0;

    /// Fraction of peak issue rate that memory-irregular SpGEMM kernels
    /// sustain. This is the single absolute-scale calibration knob mapping
    /// simulated work-cycles to seconds (see EXPERIMENTS.md §calibration);
    /// relative results between algorithms do not depend on it.
    double efficiency = 0.13;

    [[nodiscard]] double clock_hz() const { return clock_ghz * 1e9; }

    /// Work-retire rate of one SM in work-cycles per second.
    [[nodiscard]] double sm_rate() const
    {
        return static_cast<double>(cores_per_sm) * clock_hz() * efficiency;
    }

    /// Retire-rate cap of a single simulated thread.
    [[nodiscard]] double thread_rate() const { return clock_hz() * efficiency; }

    [[nodiscard]] static DeviceSpec pascal_p100() { return DeviceSpec{}; }

    /// Kepler Tesla K40: the previous-generation card (the paper notes
    /// cudaMalloc got *more* expensive on Pascal; the spec differences
    /// also shrink every Table-I-style table). 15 SMs x 192 cores.
    [[nodiscard]] static DeviceSpec kepler_k40()
    {
        DeviceSpec s;
        s.num_sms = 15;
        s.cores_per_sm = 192;
        s.clock_ghz = 0.745;
        s.shared_mem_per_sm = 48 * 1024;
        s.max_shared_per_block = 48 * 1024;
        s.max_blocks_per_sm = 16;
        s.memory_capacity = std::size_t{12} * 1024 * 1024 * 1024;
        s.mem_bandwidth_gbps = 288.0;
        return s;
    }

    /// Volta Tesla V100 (the paper's §VI future work asks how the
    /// algorithm carries to other processors): 80 SMs, up to 96 KB shared
    /// memory per block — the derived group table grows one level.
    [[nodiscard]] static DeviceSpec volta_v100()
    {
        DeviceSpec s;
        s.num_sms = 80;
        s.cores_per_sm = 64;
        s.clock_ghz = 1.53;
        s.shared_mem_per_sm = 96 * 1024;
        s.max_shared_per_block = 96 * 1024;
        s.memory_capacity = std::size_t{16} * 1024 * 1024 * 1024;
        s.mem_bandwidth_gbps = 900.0;
        return s;
    }

    /// P100 with device memory (and allocation-latency scale) reduced by
    /// `scale` — used when benchmarking matrices generated at 1/scale of
    /// the paper's sizes.
    [[nodiscard]] static DeviceSpec pascal_p100_scaled(double mem_scale)
    {
        DeviceSpec s;
        if (mem_scale > 1.0) {
            s.memory_capacity =
                static_cast<std::size_t>(static_cast<double>(s.memory_capacity) / mem_scale);
        }
        return s;
    }
};

}  // namespace nsparse::sim
