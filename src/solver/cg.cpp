#include "solver/cg.hpp"

#include <algorithm>

namespace nsparse::solver {

CgResult conjugate_gradient(const CsrMatrix<double>& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opt,
                            const Preconditioner& precond)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "cg: matrix must be square");
    const auto n = to_size(a.rows);
    NSPARSE_EXPECTS(b.size() == n && x.size() == n, "cg: vector size mismatch");

    std::vector<double> r(n);
    std::vector<double> z(n);
    std::vector<double> p(n);
    std::vector<double> ap(n);

    spmv(a, std::span<const double>(x.data(), n), std::span<double>(r));
    for (std::size_t i = 0; i < n; ++i) { r[i] = b[i] - r[i]; }

    const double bnorm = std::max(norm2(std::span<const double>(b)), 1e-300);

    const auto apply_precond = [&] {
        if (precond) {
            std::fill(z.begin(), z.end(), 0.0);
            precond(std::span<const double>(r), std::span<double>(z));
        } else {
            std::copy(r.begin(), r.end(), z.begin());
        }
    };

    apply_precond();
    std::copy(z.begin(), z.end(), p.begin());
    double rz = dot(std::span<const double>(r), std::span<const double>(z));

    CgResult result;
    for (int it = 0; it < opt.max_iterations; ++it) {
        result.relative_residual = norm2(std::span<const double>(r)) / bnorm;
        if (result.relative_residual < opt.rel_tolerance) {
            result.converged = true;
            return result;
        }
        spmv(a, std::span<const double>(p.data(), n), std::span<double>(ap));
        const double pap = dot(std::span<const double>(p), std::span<const double>(ap));
        if (pap <= 0.0) { break; }  // not SPD (or breakdown)
        const double alpha = rz / pap;
        axpy(alpha, std::span<const double>(p), std::span<double>(x));
        axpy(-alpha, std::span<const double>(ap), std::span<double>(r));
        apply_precond();
        const double rz_new = dot(std::span<const double>(r), std::span<const double>(z));
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i) { p[i] = z[i] + beta * p[i]; }
        ++result.iterations;
    }
    result.relative_residual =
        norm2(std::span<const double>(r)) / bnorm;
    result.converged = result.relative_residual < opt.rel_tolerance;
    return result;
}

}  // namespace nsparse::solver
