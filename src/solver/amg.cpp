#include "solver/amg.hpp"

#include <algorithm>
#include <cmath>

#include "service/session.hpp"

namespace nsparse::solver {

SpgemmFn<double> session_spgemm(Session& session)
{
    return [&session](sim::Device& /*dev*/, const CsrMatrix<double>& a,
                      const CsrMatrix<double>& b) {
        auto res = session.multiply(a, b);
        if (!res.ok()) { std::rethrow_exception(res.error); }
        return std::move(res.out);
    };
}

CsrMatrix<double> strength_graph(const CsrMatrix<double>& a, double theta)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "strength_graph: matrix must be square");
    const auto d = diagonal(a);
    CsrMatrix<double> s;
    s.rows = a.rows;
    s.cols = a.cols;
    s.rpt.assign(to_size(a.rows) + 1, 0);
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            const index_t j = a.col[to_size(k)];
            const double v = a.val[to_size(k)];
            const double bound =
                theta * std::sqrt(std::abs(d[to_size(i)]) * std::abs(d[to_size(j)]));
            if (i == j || std::abs(v) >= bound) {
                s.col.push_back(j);
                s.val.push_back(v);
            }
        }
        s.rpt[to_size(i) + 1] = to_index(s.col.size());
    }
    s.validate();
    return s;
}

CsrMatrix<double> aggregate(const CsrMatrix<double>& strength)
{
    const index_t n = strength.rows;
    constexpr index_t kUnassigned = -1;
    std::vector<index_t> agg(to_size(n), kUnassigned);
    index_t n_agg = 0;

    // Pass 1: a node whose whole strong neighbourhood is unassigned roots a
    // new aggregate containing that neighbourhood.
    for (index_t i = 0; i < n; ++i) {
        if (agg[to_size(i)] != kUnassigned) { continue; }
        bool free_nbhd = true;
        for (const index_t j : strength.row_cols(i)) {
            if (agg[to_size(j)] != kUnassigned) {
                free_nbhd = false;
                break;
            }
        }
        if (!free_nbhd) { continue; }
        agg[to_size(i)] = n_agg;
        for (const index_t j : strength.row_cols(i)) { agg[to_size(j)] = n_agg; }
        ++n_agg;
    }
    // Pass 2: attach leftovers to any aggregated strong neighbour.
    for (index_t i = 0; i < n; ++i) {
        if (agg[to_size(i)] != kUnassigned) { continue; }
        for (const index_t j : strength.row_cols(i)) {
            if (agg[to_size(j)] != kUnassigned) {
                agg[to_size(i)] = agg[to_size(j)];
                break;
            }
        }
    }
    // Pass 3: isolated nodes become singleton aggregates.
    for (index_t i = 0; i < n; ++i) {
        if (agg[to_size(i)] == kUnassigned) { agg[to_size(i)] = n_agg++; }
    }

    CsrMatrix<double> t;
    t.rows = n;
    t.cols = std::max<index_t>(n_agg, 1);
    t.rpt.resize(to_size(n) + 1);
    t.col.resize(to_size(n));
    t.val.assign(to_size(n), 1.0);
    for (index_t i = 0; i <= n; ++i) { t.rpt[to_size(i)] = i; }
    for (index_t i = 0; i < n; ++i) { t.col[to_size(i)] = agg[to_size(i)]; }
    t.validate();
    return t;
}

AmgHierarchy::AmgHierarchy(sim::Device& dev, const CsrMatrix<double>& a, const AmgOptions& opt)
    : opt_(opt)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "AMG needs a square operator");
    if (!opt_.spgemm) {
        opt_.spgemm = [](sim::Device& d, const CsrMatrix<double>& x,
                         const CsrMatrix<double>& y) { return hash_spgemm<double>(d, x, y); };
    }
    CsrMatrix<double> current = a;
    current.sort_rows();
    const double nnz0 = std::max<double>(1.0, static_cast<double>(a.nnz()));

    while (true) {
        AmgLevel level;
        level.a = current;
        level.inv_diag.resize(to_size(current.rows), 0.0);
        const auto d = diagonal(current);
        for (std::size_t i = 0; i < d.size(); ++i) {
            level.inv_diag[i] = d[i] != 0.0 ? 1.0 / d[i] : 0.0;
        }
        stats_.operator_complexity += static_cast<double>(current.nnz()) / nnz0;
        levels_.push_back(std::move(level));
        ++stats_.levels;

        if (current.rows <= opt_.coarse_size ||
            to_index(levels_.size()) >= opt_.max_levels) {
            break;
        }

        // --- aggregation-based prolongation ---
        const auto strength = strength_graph(current, opt_.strength_theta);
        CsrMatrix<double> p = aggregate(strength);
        if (p.cols >= current.rows) { break; }  // coarsening stalled

        if (opt_.smoothed_aggregation) {
            // P = (I - w D^-1 A) T  ->  T - w * (D^-1 A) * T  (one SpGEMM)
            CsrMatrix<double> dinv_a = current;
            std::vector<double> dinv(levels_.back().inv_diag);
            scale_rows(dinv_a, std::span<const double>(dinv));
            const auto at = opt_.spgemm(dev, dinv_a, p);
            stats_.total_spgemm_products += at.stats.intermediate_products;
            stats_.spgemm_seconds += at.stats.seconds;
            p = csr_add(p, at.matrix, 1.0, -opt_.jacobi_omega);
        }

        // --- Galerkin product A_c = (P^T) (A P): two SpGEMMs ---
        const auto r = transpose(p);
        const auto ap = opt_.spgemm(dev, current, p);
        const auto ac = opt_.spgemm(dev, r, ap.matrix);
        stats_.total_spgemm_products +=
            ap.stats.intermediate_products + ac.stats.intermediate_products;
        stats_.spgemm_seconds += ap.stats.seconds + ac.stats.seconds;

        levels_.back().p = std::move(p);
        levels_.back().r = r;
        current = ac.matrix;
    }
}

void AmgHierarchy::cycle(std::size_t level, std::span<const double> b,
                         std::span<double> x) const
{
    const AmgLevel& lv = levels_[level];
    const auto n = to_size(lv.a.rows);
    std::vector<double> tmp(n);

    const auto jacobi = [&](int sweeps) {
        for (int s = 0; s < sweeps; ++s) {
            spmv(lv.a, std::span<const double>(x.data(), n), std::span<double>(tmp));
            for (std::size_t i = 0; i < n; ++i) {
                x[i] += opt_.jacobi_omega * lv.inv_diag[i] * (b[i] - tmp[i]);
            }
        }
    };

    if (level + 1 == levels_.size()) {
        // Coarsest: a few strong Jacobi sweeps stand in for a direct solve.
        jacobi(20);
        return;
    }

    jacobi(opt_.pre_smooth);

    // restrict residual
    spmv(lv.a, std::span<const double>(x.data(), n), std::span<double>(tmp));
    for (std::size_t i = 0; i < n; ++i) { tmp[i] = b[i] - tmp[i]; }
    const auto nc = to_size(lv.p.cols);
    std::vector<double> bc(nc);
    std::vector<double> xc(nc, 0.0);
    spmv(lv.r, std::span<const double>(tmp), std::span<double>(bc));

    cycle(level + 1, std::span<const double>(bc), std::span<double>(xc));

    // prolongate + correct
    spmv(lv.p, std::span<const double>(xc), std::span<double>(tmp));
    for (std::size_t i = 0; i < n; ++i) { x[i] += tmp[i]; }

    jacobi(opt_.post_smooth);
}

void AmgHierarchy::v_cycle(std::span<const double> b, std::span<double> x) const
{
    NSPARSE_EXPECTS(!levels_.empty(), "empty hierarchy");
    NSPARSE_EXPECTS(b.size() == to_size(levels_.front().a.rows), "v_cycle: size mismatch");
    cycle(0, b, x);
}

}  // namespace nsparse::solver
