// Smoothed-aggregation algebraic multigrid built on the paper's SpGEMM.
//
// The paper motivates SpGEMM with AMG (§I; [1] Bell/Dalton/Olson) and
// names "solvers and real world applications" as future work (§VI). The
// dominant setup cost of AMG is exactly SpGEMM: smoothing the tentative
// prolongation (P = (I - w D^-1 A) T) and the Galerkin triple product
// (A_c = R (A P)) — both run here through nsparse::hash_spgemm on a shared
// simulated device, so AMG setup doubles as an application-level SpGEMM
// workload with rectangular, non-square-pattern products.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/spgemm.hpp"
#include "gpusim/algorithm.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/transpose.hpp"

namespace nsparse {
class Session;
}

namespace nsparse::solver {

struct AmgOptions {
    /// SpGEMM engine used for prolongation smoothing and the Galerkin
    /// products; defaults to the paper's hash SpGEMM. Swappable so the
    /// application benchmark can compare the baseline libraries inside the
    /// paper's motivating workload.
    SpgemmFn<double> spgemm;

    index_t max_levels = 10;
    index_t coarse_size = 64;      ///< stop coarsening below this many rows
    double strength_theta = 0.25;  ///< strength-of-connection threshold
    double jacobi_omega = 0.666;   ///< prolongation smoother + cycle smoother weight
    int pre_smooth = 1;
    int post_smooth = 1;
    bool smoothed_aggregation = true;  ///< false: plain (unsmoothed) aggregation
};

struct AmgLevel {
    CsrMatrix<double> a;            ///< operator on this level
    CsrMatrix<double> p;            ///< prolongation to this level's fine grid
    CsrMatrix<double> r;            ///< restriction (P^T)
    std::vector<double> inv_diag;   ///< Jacobi smoother data
};

/// Statistics of the hierarchy build — how much SpGEMM work the setup did.
struct AmgSetupStats {
    int levels = 0;
    wide_t total_spgemm_products = 0;
    double spgemm_seconds = 0.0;  ///< simulated device time in SpGEMM calls
    double operator_complexity = 0.0;  ///< sum nnz(A_l) / nnz(A_0)
};

/// Algebraic multigrid hierarchy; apply as a V-cycle preconditioner.
class AmgHierarchy {
public:
    /// Builds the hierarchy; every SpGEMM runs on `dev`.
    AmgHierarchy(sim::Device& dev, const CsrMatrix<double>& a, const AmgOptions& opt = {});

    /// One V-cycle: x <- x + M^-1 (b - A x) approximately solving A x = b.
    void v_cycle(std::span<const double> b, std::span<double> x) const;

    [[nodiscard]] const AmgSetupStats& stats() const { return stats_; }
    [[nodiscard]] const std::vector<AmgLevel>& levels() const { return levels_; }

private:
    void cycle(std::size_t level, std::span<const double> b, std::span<double> x) const;

    std::vector<AmgLevel> levels_;
    AmgOptions opt_;
    AmgSetupStats stats_;
};

/// Strength-of-connection filter: keeps a_ij with
/// |a_ij| >= theta * sqrt(|a_ii| |a_jj|)  (classical SA strength).
[[nodiscard]] CsrMatrix<double> strength_graph(const CsrMatrix<double>& a, double theta);

/// Greedy aggregation over the strength graph; returns the tentative
/// piecewise-constant prolongation T (n_fine x n_coarse).
[[nodiscard]] CsrMatrix<double> aggregate(const CsrMatrix<double>& strength);

/// Adapts a service-layer Session into AmgOptions::spgemm, so every setup
/// SpGEMM (prolongation smoothing and the Galerkin triple product) runs
/// through admission, the recovery ladder and — when enabled — the operand
/// cache. The Galerkin products repeat operands across levels (A P shares A
/// with the smoothing product's D^-1 A pattern; R (A P) reuses R = P^T
/// every cycle rebuild), which is exactly the warm-plan workload the cache
/// targets. The Device& handed to the callable is ignored: the session owns
/// its device, and the returned stats are drawn from it. Requests that do
/// not complete rethrow the session's captured error.
[[nodiscard]] SpgemmFn<double> session_spgemm(Session& session);

}  // namespace nsparse::solver
