// Conjugate gradients, optionally preconditioned with an AMG V-cycle —
// the solver context the paper's SpGEMM accelerates (§I/§VI).
#pragma once

#include <functional>
#include <vector>

#include "sparse/csr_ops.hpp"

namespace nsparse::solver {

struct CgOptions {
    int max_iterations = 500;
    double rel_tolerance = 1e-8;
};

struct CgResult {
    int iterations = 0;
    double relative_residual = 0.0;
    bool converged = false;
};

/// z = M^-1 r; identity when empty.
using Preconditioner = std::function<void(std::span<const double>, std::span<double>)>;

/// Solves A x = b for SPD A; x holds the initial guess on entry.
CgResult conjugate_gradient(const CsrMatrix<double>& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opt = {},
                            const Preconditioner& precond = {});

}  // namespace nsparse::solver
