// CSR transpose (used by property tests: (B^T A^T)^T == A B) and
// symmetrisation helpers used by the generators.
#pragma once

#include <numeric>
#include <vector>

#include "sparse/csr.hpp"

namespace nsparse {

/// Returns A^T in CSR with sorted rows (counting-sort based, O(nnz + n)).
template <ValueType T>
[[nodiscard]] CsrMatrix<T> transpose(const CsrMatrix<T>& a)
{
    CsrMatrix<T> t;
    t.rows = a.cols;
    t.cols = a.rows;
    t.rpt.assign(to_size(a.cols) + 1, 0);
    for (const index_t c : a.col) { ++t.rpt[to_size(c) + 1]; }
    std::partial_sum(t.rpt.begin(), t.rpt.end(), t.rpt.begin());

    t.col.resize(to_size(a.nnz()));
    t.val.resize(to_size(a.nnz()));
    std::vector<index_t> cursor(t.rpt.begin(), t.rpt.end() - 1);
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            const index_t c = a.col[to_size(k)];
            const index_t dst = cursor[to_size(c)]++;
            t.col[to_size(dst)] = i;
            t.val[to_size(dst)] = a.val[to_size(k)];
        }
    }
    t.validate();
    return t;
}

/// Returns A + A^T with duplicate positions accumulated; rows sorted.
/// Used to symmetrise generator output (graph matrices are symmetric).
template <ValueType T>
[[nodiscard]] CsrMatrix<T> symmetrize(const CsrMatrix<T>& a)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "symmetrize requires a square matrix");
    const CsrMatrix<T> t = transpose(a);
    CsrMatrix<T> out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.rpt.assign(to_size(a.rows) + 1, 0);
    // Merge the sorted row of t with the (sorted) row of a.
    CsrMatrix<T> as = a;
    as.sort_rows();
    for (index_t i = 0; i < a.rows; ++i) {
        auto ca = as.row_cols(i);
        auto va = as.row_vals(i);
        auto cb = t.row_cols(i);
        auto vb = t.row_vals(i);
        std::size_t x = 0;
        std::size_t y = 0;
        while (x < ca.size() || y < cb.size()) {
            if (y == cb.size() || (x < ca.size() && ca[x] < cb[y])) {
                out.col.push_back(ca[x]);
                out.val.push_back(va[x]);
                ++x;
            } else if (x == ca.size() || cb[y] < ca[x]) {
                out.col.push_back(cb[y]);
                out.val.push_back(vb[y]);
                ++y;
            } else {
                out.col.push_back(ca[x]);
                out.val.push_back(va[x] + vb[y]);
                ++x;
                ++y;
            }
        }
        out.rpt[to_size(i) + 1] = to_index(out.col.size());
    }
    out.validate();
    return out;
}

}  // namespace nsparse
