#include "sparse/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"

namespace nsparse {

namespace {

std::string lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

struct Header {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

Header parse_header(const std::string& line)
{
    std::istringstream is(line);
    std::string banner;
    std::string object;
    std::string format;
    std::string field;
    std::string symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket") { throw ParseError("missing %%MatrixMarket banner"); }
    if (lower(object) != "matrix") { throw ParseError("unsupported MatrixMarket object: " + object); }
    if (lower(format) != "coordinate") {
        throw ParseError("only coordinate format is supported, got: " + format);
    }
    Header h;
    const std::string f = lower(field);
    if (f == "pattern") {
        h.pattern = true;
    } else if (f != "real" && f != "integer" && f != "double") {
        throw ParseError("unsupported MatrixMarket field: " + field);
    }
    const std::string s = lower(symmetry);
    if (s == "symmetric") {
        h.symmetric = true;
    } else if (s == "skew-symmetric") {
        h.symmetric = true;
        h.skew = true;
    } else if (s != "general") {
        throw ParseError("unsupported MatrixMarket symmetry: " + symmetry);
    }
    return h;
}

}  // namespace

CsrMatrix<double> read_matrix_market(std::istream& in)
{
    std::string line;
    if (!std::getline(in, line)) { throw ParseError("empty MatrixMarket input"); }
    const Header h = parse_header(line);

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') { break; }
    }
    std::istringstream sz(line);
    long long rows = 0;
    long long cols = 0;
    long long entries = 0;
    if (!(sz >> rows >> cols >> entries)) { throw ParseError("malformed size line: " + line); }
    if (rows < 0 || cols < 0 || entries < 0) { throw ParseError("negative size in header"); }

    CooMatrix<double> coo;
    coo.rows = to_index(rows);
    coo.cols = to_index(cols);
    coo.row.reserve(to_size(entries));
    coo.col.reserve(to_size(entries));
    coo.val.reserve(to_size(entries));

    for (long long k = 0; k < entries; ++k) {
        long long r = 0;
        long long c = 0;
        double v = 1.0;
        if (!(in >> r >> c)) { throw ParseError("unexpected end of entries at " + std::to_string(k)); }
        if (!h.pattern && !(in >> v)) { throw ParseError("missing value at entry " + std::to_string(k)); }
        if (r < 1 || r > rows || c < 1 || c > cols) {
            throw ParseError("entry index out of range at " + std::to_string(k));
        }
        coo.row.push_back(to_index(r - 1));
        coo.col.push_back(to_index(c - 1));
        coo.val.push_back(v);
        if (h.symmetric && r != c) {
            coo.row.push_back(to_index(c - 1));
            coo.col.push_back(to_index(r - 1));
            coo.val.push_back(h.skew ? -v : v);
        }
    }
    coo.compress();
    return to_csr(coo);
}

CsrMatrix<double> read_matrix_market_file(const std::string& path)
{
    std::ifstream f(path);
    if (!f) { throw ParseError("cannot open MatrixMarket file: " + path); }
    return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
    out.precision(17);
    for (index_t i = 0; i < m.rows; ++i) {
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            out << (i + 1) << ' ' << (m.col[to_size(k)] + 1) << ' ' << m.val[to_size(k)] << '\n';
        }
    }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& m)
{
    std::ofstream f(path);
    if (!f) { throw ParseError("cannot open file for writing: " + path); }
    write_matrix_market(f, m);
}

}  // namespace nsparse
