#include "sparse/io_matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "sparse/coo.hpp"

namespace nsparse {

namespace {

std::string lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

struct Header {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

Header parse_header(const std::string& line, long long lineno)
{
    std::istringstream is(line);
    std::string banner;
    std::string object;
    std::string format;
    std::string field;
    std::string symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket") {
        throw ParseError("missing %%MatrixMarket banner", lineno);
    }
    if (lower(object) != "matrix") {
        throw ParseError("unsupported MatrixMarket object: " + object, lineno);
    }
    if (lower(format) != "coordinate") {
        throw ParseError("only coordinate format is supported, got: " + format, lineno);
    }
    Header h;
    const std::string f = lower(field);
    if (f == "pattern") {
        h.pattern = true;
    } else if (f != "real" && f != "integer" && f != "double") {
        throw ParseError("unsupported MatrixMarket field: " + field, lineno);
    }
    const std::string s = lower(symmetry);
    if (s == "symmetric") {
        h.symmetric = true;
    } else if (s == "skew-symmetric") {
        h.symmetric = true;
        h.skew = true;
    } else if (s != "general") {
        throw ParseError("unsupported MatrixMarket symmetry: " + symmetry, lineno);
    }
    return h;
}

/// True when the line holds only whitespace.
bool blank(const std::string& line)
{
    return std::all_of(line.begin(), line.end(),
                       [](unsigned char c) { return std::isspace(c) != 0; });
}

}  // namespace

CsrMatrix<double> read_matrix_market(std::istream& in)
{
    long long lineno = 0;
    std::string line;
    // getline with Windows-newline tolerance: .mtx files from the Florida
    // collection come with either line ending.
    const auto read_line = [&]() -> bool {
        if (!std::getline(in, line)) { return false; }
        ++lineno;
        if (!line.empty() && line.back() == '\r') { line.pop_back(); }
        return true;
    };

    if (!read_line()) { throw ParseError("empty MatrixMarket input", lineno); }
    const Header h = parse_header(line, lineno);

    // Skip comments and blank lines up to the size line.
    bool have_size = false;
    while (read_line()) {
        if (line.empty() || line[0] == '%' || blank(line)) { continue; }
        have_size = true;
        break;
    }
    if (!have_size) { throw ParseError("missing size line", lineno); }
    long long rows = 0;
    long long cols = 0;
    long long entries = 0;
    {
        std::istringstream sz(line);
        std::string extra;
        if (!(sz >> rows >> cols >> entries)) {
            throw ParseError("malformed size line: " + line, lineno);
        }
        if (sz >> extra) {
            throw ParseError("trailing token on size line: " + extra, lineno);
        }
    }
    if (rows < 0 || cols < 0 || entries < 0) {
        throw ParseError("negative size in header", lineno);
    }
    constexpr long long kIndexMax = std::numeric_limits<index_t>::max();
    if (rows > kIndexMax || cols > kIndexMax) {
        throw ParseError("matrix dimensions exceed the 32-bit index range", lineno);
    }

    CooMatrix<double> coo;
    coo.rows = to_index(rows);
    coo.cols = to_index(cols);
    // Reserve from the declared count but cap it: a corrupt count must not
    // become a giant up-front allocation before the first entry is read.
    const auto reserve = to_size(std::min<long long>(entries, 1LL << 20));
    coo.row.reserve(reserve);
    coo.col.reserve(reserve);
    coo.val.reserve(reserve);

    for (long long k = 0; k < entries;) {
        if (!read_line()) {
            throw ParseError("unexpected end of input: " + std::to_string(k) + " of " +
                                 std::to_string(entries) + " entries read",
                             lineno);
        }
        if (line.empty() || blank(line)) { continue; }
        std::istringstream is(line);
        long long r = 0;
        long long c = 0;
        double v = 1.0;
        if (!(is >> r >> c)) {
            throw ParseError("malformed entry (expected 'row col" +
                                 std::string(h.pattern ? "" : " value") + "'): " + line,
                             lineno);
        }
        if (!h.pattern && !(is >> v)) {
            throw ParseError("missing or non-numeric value: " + line, lineno);
        }
        if (r < 1 || r > rows || c < 1 || c > cols) {
            throw ParseError("entry index (" + std::to_string(r) + ", " + std::to_string(c) +
                                 ") out of range for " + std::to_string(rows) + "x" +
                                 std::to_string(cols),
                             lineno);
        }
        coo.row.push_back(to_index(r - 1));
        coo.col.push_back(to_index(c - 1));
        coo.val.push_back(v);
        if (h.symmetric && r != c) {
            coo.row.push_back(to_index(c - 1));
            coo.col.push_back(to_index(r - 1));
            coo.val.push_back(h.skew ? -v : v);
        }
        ++k;
    }
    coo.compress();
    return to_csr(coo);
}

CsrMatrix<double> read_matrix_market_file(const std::string& path)
{
    std::ifstream f(path);
    if (!f) { throw ParseError("cannot open MatrixMarket file: " + path); }
    return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
    out.precision(17);
    for (index_t i = 0; i < m.rows; ++i) {
        for (index_t k = m.rpt[to_size(i)]; k < m.rpt[to_size(i) + 1]; ++k) {
            out << (i + 1) << ' ' << (m.col[to_size(k)] + 1) << ' ' << m.val[to_size(k)] << '\n';
        }
    }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& m)
{
    std::ofstream f(path);
    if (!f) { throw ParseError("cannot open file for writing: " + path); }
    write_matrix_market(f, m);
}

}  // namespace nsparse
