// Small dense-matrix bridge used by tests: converting tiny CSR matrices to
// dense form gives an independent O(n^3) multiplication oracle.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace nsparse {

/// Row-major dense matrix of doubles (tests only; not performance code).
struct DenseMatrix {
    index_t rows = 0;
    index_t cols = 0;
    std::vector<double> data;  ///< rows*cols, row major

    [[nodiscard]] double& at(index_t i, index_t j)
    {
        return data[to_size(i) * to_size(cols) + to_size(j)];
    }
    [[nodiscard]] double at(index_t i, index_t j) const
    {
        return data[to_size(i) * to_size(cols) + to_size(j)];
    }
};

template <ValueType T>
[[nodiscard]] DenseMatrix to_dense(const CsrMatrix<T>& a)
{
    DenseMatrix d;
    d.rows = a.rows;
    d.cols = a.cols;
    d.data.assign(to_size(a.rows) * to_size(a.cols), 0.0);
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            // += rather than =: CSR input may carry duplicates.
            d.at(i, a.col[to_size(k)]) += static_cast<double>(a.val[to_size(k)]);
        }
    }
    return d;
}

[[nodiscard]] inline DenseMatrix dense_multiply(const DenseMatrix& a, const DenseMatrix& b)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    DenseMatrix c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.data.assign(to_size(a.rows) * to_size(b.cols), 0.0);
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = 0; k < a.cols; ++k) {
            const double av = a.at(i, k);
            if (av == 0.0) { continue; }
            for (index_t j = 0; j < b.cols; ++j) { c.at(i, j) += av * b.at(k, j); }
        }
    }
    return c;
}

/// Dense -> CSR dropping exact zeros; rows come out sorted.
template <ValueType T>
[[nodiscard]] CsrMatrix<T> from_dense(const DenseMatrix& d, double drop_tol = 0.0)
{
    CsrMatrix<T> m;
    m.rows = d.rows;
    m.cols = d.cols;
    m.rpt.assign(to_size(d.rows) + 1, 0);
    for (index_t i = 0; i < d.rows; ++i) {
        for (index_t j = 0; j < d.cols; ++j) {
            const double v = d.at(i, j);
            if (std::abs(v) > drop_tol) {
                m.col.push_back(j);
                m.val.push_back(static_cast<T>(v));
            }
        }
        m.rpt[to_size(i) + 1] = to_index(m.col.size());
    }
    m.validate();
    return m;
}

}  // namespace nsparse
