#include "sparse/stats.hpp"

#include <iomanip>
#include <sstream>

namespace nsparse {

namespace {
std::string with_commas(wide_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0 && *it != '-') { out.push_back(','); }
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}
}  // namespace

std::string format_stats_header()
{
    std::ostringstream os;
    os << std::left << std::setw(18) << "Name" << std::right << std::setw(12) << "Row"
       << std::setw(14) << "Non-zero" << std::setw(10) << "Nnz/row" << std::setw(14)
       << "Max nnz/row" << std::setw(18) << "Interm. of A^2" << std::setw(16) << "Nnz of A^2";
    return os.str();
}

std::string format_stats_row(const MatrixStats& s)
{
    std::ostringstream os;
    os << std::left << std::setw(18) << s.name << std::right << std::setw(12)
       << with_commas(s.rows) << std::setw(14) << with_commas(s.nnz) << std::setw(10)
       << std::fixed << std::setprecision(1) << s.nnz_per_row << std::setw(14)
       << with_commas(s.max_nnz_per_row) << std::setw(18) << with_commas(s.intermediate_products)
       << std::setw(16) << with_commas(s.nnz_of_square);
    return os.str();
}

}  // namespace nsparse
