// Sequential reference SpGEMM (Gustavson's row-by-row algorithm) and the
// intermediate-product count.
//
// This is the "Algorithm 1" of the paper, implemented with a dense
// accumulator per row. It is the correctness oracle for every GPU-model
// algorithm in this repository and is also used by tests and the dataset
// statistics of Table II.
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace nsparse {

/// Number of intermediate products of row i of C = A*B
/// (paper Algorithm 2): sum over nonzeros a_ik of nnz(b_k*).
template <ValueType T>
[[nodiscard]] wide_t row_intermediate_products(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                               index_t i)
{
    wide_t n = 0;
    for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
        const index_t k = a.col[to_size(j)];
        n += b.rpt[to_size(k) + 1] - b.rpt[to_size(k)];
    }
    return n;
}

/// Total number of intermediate products of A*B (the "Intermediate product
/// of A^2" column of Table II when b == a). The paper's FLOPS metric is
/// 2 * this / time.
template <ValueType T>
[[nodiscard]] wide_t total_intermediate_products(const CsrMatrix<T>& a, const CsrMatrix<T>& b)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    wide_t n = 0;
    for (index_t i = 0; i < a.rows; ++i) { n += row_intermediate_products(a, b, i); }
    return n;
}

/// Per-row intermediate-product counts (32-bit; throws if a row overflows).
template <ValueType T>
[[nodiscard]] std::vector<index_t> intermediate_products_per_row(const CsrMatrix<T>& a,
                                                                 const CsrMatrix<T>& b)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    std::vector<index_t> n(to_size(a.rows));
    for (index_t i = 0; i < a.rows; ++i) { n[to_size(i)] = to_index(row_intermediate_products(a, b, i)); }
    return n;
}

/// Sequential Gustavson SpGEMM with a dense accumulator; output rows are
/// sorted by column index. Complexity O(intermediate products + nnz(C) log).
template <ValueType T>
[[nodiscard]] CsrMatrix<T> reference_spgemm(const CsrMatrix<T>& a, const CsrMatrix<T>& b)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    CsrMatrix<T> c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.rpt.assign(to_size(a.rows) + 1, 0);

    std::vector<T> acc(to_size(b.cols), T{0});
    std::vector<bool> occupied(to_size(b.cols), false);
    std::vector<index_t> touched;

    for (index_t i = 0; i < a.rows; ++i) {
        touched.clear();
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t k = a.col[to_size(j)];
            const T av = a.val[to_size(j)];
            for (index_t l = b.rpt[to_size(k)]; l < b.rpt[to_size(k) + 1]; ++l) {
                const index_t cj = b.col[to_size(l)];
                if (!occupied[to_size(cj)]) {
                    occupied[to_size(cj)] = true;
                    acc[to_size(cj)] = T{0};
                    touched.push_back(cj);
                }
                acc[to_size(cj)] += av * b.val[to_size(l)];
            }
        }
        std::sort(touched.begin(), touched.end());
        for (const index_t cj : touched) {
            c.col.push_back(cj);
            c.val.push_back(acc[to_size(cj)]);
            occupied[to_size(cj)] = false;
        }
        c.rpt[to_size(i) + 1] = to_index(c.col.size());
    }
    c.validate();
    return c;
}

/// Per-row nnz of C = A*B without computing values (symbolic reference).
template <ValueType T>
[[nodiscard]] std::vector<index_t> reference_row_nnz(const CsrMatrix<T>& a, const CsrMatrix<T>& b)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    std::vector<index_t> nnz(to_size(a.rows), 0);
    std::vector<bool> occupied(to_size(b.cols), false);
    std::vector<index_t> touched;
    for (index_t i = 0; i < a.rows; ++i) {
        touched.clear();
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t k = a.col[to_size(j)];
            for (index_t l = b.rpt[to_size(k)]; l < b.rpt[to_size(k) + 1]; ++l) {
                const index_t cj = b.col[to_size(l)];
                if (!occupied[to_size(cj)]) {
                    occupied[to_size(cj)] = true;
                    touched.push_back(cj);
                }
            }
        }
        nnz[to_size(i)] = to_index(touched.size());
        for (const index_t cj : touched) { occupied[to_size(cj)] = false; }
    }
    return nnz;
}

}  // namespace nsparse
