// Up-front CSR input validation (Options::validate_inputs).
//
// Every SpGEMM entry point indexes `b.rpt[a.col[j]]` deep inside a kernel,
// so a corrupt input (out-of-range column, non-monotone row pointers,
// mismatched array sizes) turns into out-of-bounds reads far from the
// caller. This helper is shared by the hash implementation and the three
// baselines: with validation enabled, every documented corrupt-CSR shape
// throws a PreconditionError *naming the violated invariant* before any
// kernel touches the data.
//
// Invariant identifiers (stable, machine-readable via
// PreconditionError::invariant()):
//   dims_non_negative  — rows/cols >= 0
//   rpt_size           — rpt.size() == rows + 1
//   rpt_front_zero     — rpt.front() == 0
//   rpt_monotone       — rpt non-decreasing
//   col_size           — col.size() == rpt.back()
//   val_size           — val.size() == col.size()
//   col_in_range       — every col in [0, cols)
//   rows_sorted        — strictly increasing columns per row (no duplicates)
//   inner_dims_agree   — a.cols == b.rows
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace nsparse {

namespace detail {
[[noreturn]] inline void throw_invariant(const char* which, const std::string& invariant,
                                         const std::string& what)
{
    throw PreconditionError("invalid input matrix " + std::string(which) + ": " + what +
                                " (invariant: " + invariant + ")",
                            invariant);
}
}  // namespace detail

/// Checks the structural CSR invariants of one input matrix; throws a
/// PreconditionError naming the violated invariant. `which` labels the
/// matrix in messages ("A"/"B"). With `require_sorted`, rows must have
/// strictly increasing column indices (which also rules out duplicates).
template <ValueType T>
void validate_csr_input(const CsrMatrix<T>& m, const char* which, bool require_sorted = true)
{
    if (m.rows < 0 || m.cols < 0) {
        detail::throw_invariant(which, "dims_non_negative",
                                "negative dimension " + std::to_string(m.rows) + "x" +
                                    std::to_string(m.cols));
    }
    if (m.rpt.size() != to_size(m.rows) + 1) {
        detail::throw_invariant(which, "rpt_size",
                                "rpt has " + std::to_string(m.rpt.size()) +
                                    " entries, expected rows+1 = " +
                                    std::to_string(to_size(m.rows) + 1));
    }
    if (m.rpt.front() != 0) {
        detail::throw_invariant(which, "rpt_front_zero",
                                "rpt[0] = " + std::to_string(m.rpt.front()) + ", expected 0");
    }
    for (std::size_t i = 1; i < m.rpt.size(); ++i) {
        if (m.rpt[i] < m.rpt[i - 1]) {
            detail::throw_invariant(which, "rpt_monotone",
                                    "rpt decreases at row " + std::to_string(i - 1) + " (" +
                                        std::to_string(m.rpt[i - 1]) + " -> " +
                                        std::to_string(m.rpt[i]) + ")");
        }
    }
    if (m.col.size() != to_size(m.rpt.back())) {
        detail::throw_invariant(which, "col_size",
                                "col has " + std::to_string(m.col.size()) +
                                    " entries but rpt.back() = " +
                                    std::to_string(m.rpt.back()));
    }
    if (m.val.size() != m.col.size()) {
        detail::throw_invariant(which, "val_size",
                                "val has " + std::to_string(m.val.size()) +
                                    " entries but col has " + std::to_string(m.col.size()));
    }
    for (std::size_t k = 0; k < m.col.size(); ++k) {
        if (m.col[k] < 0 || m.col[k] >= m.cols) {
            detail::throw_invariant(which, "col_in_range",
                                    "col[" + std::to_string(k) + "] = " +
                                        std::to_string(m.col[k]) + " outside [0, " +
                                        std::to_string(m.cols) + ")");
        }
    }
    if (require_sorted) {
        for (index_t i = 0; i < m.rows; ++i) {
            const auto cs = m.row_cols(i);
            for (std::size_t k = 1; k < cs.size(); ++k) {
                if (cs[k] <= cs[k - 1]) {
                    detail::throw_invariant(
                        which, "rows_sorted",
                        "row " + std::to_string(i) + " is not strictly increasing at entry " +
                            std::to_string(k) + " (" + std::to_string(cs[k - 1]) + " then " +
                            std::to_string(cs[k]) + ")");
                }
            }
        }
    }
}

/// Validates both SpGEMM operands plus the inner-dimension agreement. The
/// shared pre-kernel gate behind Options::validate_inputs (and the
/// baselines' validate flag).
template <ValueType T>
void validate_spgemm_inputs(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                            bool require_sorted = true)
{
    validate_csr_input(a, "A", require_sorted);
    validate_csr_input(b, "B", require_sorted);
    if (a.cols != b.rows) {
        throw PreconditionError("inner dimensions disagree: A is " + std::to_string(a.rows) +
                                    "x" + std::to_string(a.cols) + ", B is " +
                                    std::to_string(b.rows) + "x" + std::to_string(b.cols) +
                                    " (invariant: inner_dims_agree)",
                                "inner_dims_agree");
    }
}

}  // namespace nsparse
