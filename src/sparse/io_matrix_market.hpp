// MatrixMarket (.mtx) I/O.
//
// The paper evaluates on University-of-Florida collection matrices, which
// are distributed in this format. The benchmarks default to synthetic
// analogues (no network in this environment), but any real .mtx file can be
// dropped in via the NSPARSE_MATRIX_DIR environment variable — the loaders
// here handle the `coordinate real/integer/pattern general/symmetric`
// subset that covers the whole evaluation set.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace nsparse {

/// Reads a MatrixMarket stream into CSR (rows sorted, duplicates folded,
/// symmetric storage expanded). Throws ParseError on malformed input.
CsrMatrix<double> read_matrix_market(std::istream& in);

/// File variant; throws ParseError when the file cannot be opened.
CsrMatrix<double> read_matrix_market_file(const std::string& path);

/// Writes CSR as `coordinate real general` (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix<double>& m);

void write_matrix_market_file(const std::string& path, const CsrMatrix<double>& m);

/// Converts a double CSR matrix to another value type (float benchmarks).
template <ValueType T>
[[nodiscard]] CsrMatrix<T> convert_values(const CsrMatrix<double>& m)
{
    CsrMatrix<T> out;
    out.rows = m.rows;
    out.cols = m.cols;
    out.rpt = m.rpt;
    out.col = m.col;
    out.val.reserve(m.val.size());
    for (const double v : m.val) { out.val.push_back(static_cast<T>(v)); }
    return out;
}

}  // namespace nsparse
