// Host-side CSR linear-algebra utilities used by the solver substrate:
// SpMV, matrix addition, diagonal extraction and scaling. These are the
// cheap O(nnz) companions of SpGEMM in an AMG setup — the paper's point is
// that SpGEMM dominates, so these run as plain host code.
#pragma once

#include <cmath>
#include <concepts>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"

namespace nsparse {

/// y = A x  (plain CSR SpMV).
template <ValueType T>
void spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y)
{
    NSPARSE_EXPECTS(x.size() == to_size(a.cols), "spmv: x size mismatch");
    NSPARSE_EXPECTS(y.size() == to_size(a.rows), "spmv: y size mismatch");
    for (index_t i = 0; i < a.rows; ++i) {
        T acc{0};
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            acc += a.val[to_size(k)] * x[to_size(a.col[to_size(k)])];
        }
        y[to_size(i)] = acc;
    }
}

/// C = alpha*A + beta*B with sorted-row inputs; result rows sorted.
template <ValueType T>
[[nodiscard]] CsrMatrix<T> csr_add(const CsrMatrix<T>& a, const CsrMatrix<T>& b, T alpha = T{1},
                                   T beta = T{1})
{
    NSPARSE_EXPECTS(a.rows == b.rows && a.cols == b.cols, "csr_add: shape mismatch");
    NSPARSE_EXPECTS(a.has_sorted_rows() && b.has_sorted_rows(),
                    "csr_add: inputs must have sorted rows");
    CsrMatrix<T> c;
    c.rows = a.rows;
    c.cols = a.cols;
    c.rpt.assign(to_size(a.rows) + 1, 0);
    c.col.reserve(a.col.size() + b.col.size());
    c.val.reserve(a.col.size() + b.col.size());
    for (index_t i = 0; i < a.rows; ++i) {
        auto ca = a.row_cols(i);
        auto va = a.row_vals(i);
        auto cb = b.row_cols(i);
        auto vb = b.row_vals(i);
        std::size_t x = 0;
        std::size_t y = 0;
        while (x < ca.size() || y < cb.size()) {
            if (y == cb.size() || (x < ca.size() && ca[x] < cb[y])) {
                c.col.push_back(ca[x]);
                c.val.push_back(alpha * va[x]);
                ++x;
            } else if (x == ca.size() || cb[y] < ca[x]) {
                c.col.push_back(cb[y]);
                c.val.push_back(beta * vb[y]);
                ++y;
            } else {
                c.col.push_back(ca[x]);
                c.val.push_back(alpha * va[x] + beta * vb[y]);
                ++x;
                ++y;
            }
        }
        c.rpt[to_size(i) + 1] = to_index(c.col.size());
    }
    c.validate();
    return c;
}

/// Copies rows [r0, r1) of `a` into a standalone CSR matrix of the same
/// column dimension, row pointers rebased to 0. Used by the row-slab OOM
/// fallback of `hash_spgemm` to multiply a slab of A at a time.
template <ValueType T>
[[nodiscard]] CsrMatrix<T> slice_rows(const CsrMatrix<T>& a, index_t r0, index_t r1)
{
    NSPARSE_EXPECTS(r0 >= 0 && r0 <= r1 && r1 <= a.rows, "slice_rows: bad row range");
    CsrMatrix<T> s;
    s.rows = r1 - r0;
    s.cols = a.cols;
    const index_t base = a.rpt[to_size(r0)];
    s.rpt.resize(to_size(s.rows) + 1);
    for (index_t i = 0; i <= s.rows; ++i) {
        s.rpt[to_size(i)] = a.rpt[to_size(r0 + i)] - base;
    }
    s.col.assign(a.col.begin() + base, a.col.begin() + a.rpt[to_size(r1)]);
    s.val.assign(a.val.begin() + base, a.val.begin() + a.rpt[to_size(r1)]);
    return s;
}

/// Appends the rows of `part` below `c` (vertical concatenation; the
/// column counts must agree, or `c` must still be empty). Works for any
/// combination of destination/source row-pointer widths — the sharded
/// merge concatenates 32-bit shard results into either a 32-bit or a
/// 64-bit destination. A 32-bit destination whose combined nnz would
/// cross the index range throws IndexOverflow (callers that cannot bound
/// the total up front merge into a WideCsrMatrix instead).
template <ValueType T, std::integral P, std::integral Q>
void append_rows(CsrMatrix<T, P>& c, const CsrMatrix<T, Q>& part)
{
    if (c.rows == 0 && c.col.empty()) { c.cols = part.cols; }
    NSPARSE_EXPECTS(c.cols == part.cols, "append_rows: column count mismatch");
    const wide_t base = c.nnz();
    c.rpt.reserve(c.rpt.size() + to_size(part.rows));
    for (index_t i = 1; i <= part.rows; ++i) {
        const wide_t v = base + part.rpt[to_size(i)];
        if (!std::in_range<P>(v)) {
            throw IndexOverflow(
                "append_rows: combined nnz exceeds the destination row-pointer range "
                "(merge into a WideCsrMatrix for 64-bit row pointers)",
                c.rows + i - 1, v);
        }
        c.rpt.push_back(static_cast<P>(v));
    }
    c.col.insert(c.col.end(), part.col.begin(), part.col.end());
    c.val.insert(c.val.end(), part.val.begin(), part.val.end());
    c.rows += part.rows;
}

/// Diagonal of a square matrix (zeros where absent).
template <ValueType T>
[[nodiscard]] std::vector<T> diagonal(const CsrMatrix<T>& a)
{
    NSPARSE_EXPECTS(a.rows == a.cols, "diagonal: matrix must be square");
    std::vector<T> d(to_size(a.rows), T{0});
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            if (a.col[to_size(k)] == i) { d[to_size(i)] = a.val[to_size(k)]; }
        }
    }
    return d;
}

/// Left-scales rows: A <- diag(s) * A.
template <ValueType T>
void scale_rows(CsrMatrix<T>& a, std::span<const T> s)
{
    NSPARSE_EXPECTS(s.size() == to_size(a.rows), "scale_rows: size mismatch");
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            a.val[to_size(k)] *= s[to_size(i)];
        }
    }
}

// --- small vector helpers (solver substrate) ---------------------------

template <ValueType T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y)
{
    NSPARSE_EXPECTS(x.size() == y.size(), "dot: size mismatch");
    T s{0};
    for (std::size_t i = 0; i < x.size(); ++i) { s += x[i] * y[i]; }
    return s;
}

template <ValueType T>
[[nodiscard]] double norm2(std::span<const T> x)
{
    double s = 0.0;
    for (const T v : x) { s += static_cast<double>(v) * static_cast<double>(v); }
    return std::sqrt(s);
}

/// y += alpha * x
template <ValueType T>
void axpy(T alpha, std::span<const T> x, std::span<T> y)
{
    NSPARSE_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) { y[i] += alpha * x[i]; }
}

}  // namespace nsparse
