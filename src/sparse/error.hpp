// Error handling: a structured exception taxonomy plus contract macros.
//
// Following the C++ Core Guidelines (E.2, I.6): preconditions are checked
// with NSPARSE_EXPECTS and throw on violation so callers can test error
// paths; invariants that indicate library bugs use NSPARSE_ASSERT and abort
// in debug builds.
//
// The taxonomy carries machine-readable context so callers can react
// programmatically instead of parsing messages:
//   PreconditionError  — caller broke a documented contract; names the
//                        violated invariant (`invariant()`)
//   ParseError         — malformed external data; carries the input line
//                        number (`line()`) when known
//   DeviceOutOfMemory  — simulated device capacity exhausted; reports how
//                        far the row-slab degradation got
//   KernelFault        — a kernel-level fault (hash-table saturation, nnz
//                        mismatch) that the per-row containment layer could
//                        not absorb; carries phase/group/row/table context
//   AdmissionRejected  — the session front end refused a request up front
//                        because not even the deepest slab degradation can
//                        fit it; carries the byte accounting of the refusal
//   DeadlineExceeded   — a per-request budget (simulated seconds or host
//                        wall-clock) expired; the request was cancelled at
//                        a kernel boundary and the device stays reusable
//   OperationCancelled — the caller cancelled the request cooperatively;
//                        like DeadlineExceeded, the device stays reusable
//   IndexOverflow      — a row-pointer scan crossed the representable
//                        index range (nnz(C) past 2^31 with 32-bit row
//                        pointers); carries the row and the running total
//                        so planners can shard or escalate to 64-bit
//   ShardFailed        — one shard of a sharded multiply exhausted its
//                        recovery ladder; names the shard, the device it
//                        last ran on and nests the causing exception
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

namespace nsparse {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad dimensions, unsorted
/// input where sorted is required, ...). `invariant()` names the violated
/// invariant with a stable machine-readable identifier ("col_in_range",
/// "rpt_monotone", ...) when the check site provided one.
class PreconditionError : public Error {
public:
    using Error::Error;

    PreconditionError(const std::string& msg, std::string invariant)
        : Error(msg), invariant_(std::move(invariant))
    {
    }

    [[nodiscard]] const std::string& invariant() const { return invariant_; }

private:
    std::string invariant_;
};

/// Malformed external data (MatrixMarket parse failures etc.). `line()` is
/// the 1-based input line the parser rejected, or -1 when no line applies
/// (e.g. a file that cannot be opened).
class ParseError : public Error {
public:
    using Error::Error;

    ParseError(const std::string& msg, long long line)
        : Error(msg + " (line " + std::to_string(line) + ")"), line_(line)
    {
    }

    [[nodiscard]] long long line() const { return line_; }

private:
    long long line_ = -1;
};

/// The simulated device ran out of memory. Benchmarks catch this to print
/// the "-" entries of the paper's Table III. When the row-slab fallback of
/// `hash_spgemm` gives up, the exception additionally reports how far the
/// degradation got: `slab_level()` is the number of row slabs in flight
/// when the final attempt failed (0 = the unchunked multiply) and
/// `retry_depth()` how often the slab size was halved.
class DeviceOutOfMemory : public Error {
public:
    using Error::Error;

    DeviceOutOfMemory(const std::string& msg, int slab_level, int retry_depth)
        : Error(msg), slab_level_(slab_level), retry_depth_(retry_depth)
    {
    }

    [[nodiscard]] int slab_level() const { return slab_level_; }
    [[nodiscard]] int retry_depth() const { return retry_depth_; }

private:
    int slab_level_ = 0;
    int retry_depth_ = 0;
};

/// A kernel-level fault the per-row containment layer could not absorb:
/// hash-table saturation that survived every group-0 retry, or a numeric
/// row whose nonzero count disagrees with the symbolic phase even on the
/// host recourse path. Carries the faulting context so callers (and the
/// capacity benchmarks, which must not mistake this for an OOM floor) can
/// report it precisely.
class KernelFault : public Error {
public:
    KernelFault(const std::string& msg, std::string phase, int group, std::int64_t row,
                std::int64_t table_size, int probes, int retries = 0)
        : Error(msg + " [phase=" + phase + " group=" + std::to_string(group) +
                " row=" + std::to_string(row) + " table_size=" + std::to_string(table_size) +
                " probes=" + std::to_string(probes) + " retries=" + std::to_string(retries) +
                "]"),
          phase_(std::move(phase)), group_(group), row_(row), table_size_(table_size),
          probes_(probes), retries_(retries)
    {
    }

    /// Device phase that faulted ("count", "calc", ...).
    [[nodiscard]] const std::string& phase() const { return phase_; }
    /// Table-I group id of the faulting kernel; -1 = not group-assigned.
    [[nodiscard]] int group() const { return group_; }
    /// Output row the fault occurred on; -1 = not row-specific.
    [[nodiscard]] std::int64_t row() const { return row_; }
    /// Hash-table entries of the faulting attempt; 0 = no table involved.
    [[nodiscard]] std::int64_t table_size() const { return table_size_; }
    /// Probe count observed at the fault (table_size for a saturated scan).
    [[nodiscard]] int probes() const { return probes_; }
    /// Group-0 retries performed before surfacing.
    [[nodiscard]] int retries() const { return retries_; }

private:
    std::string phase_;
    int group_ = -1;
    std::int64_t row_ = -1;
    std::int64_t table_size_ = 0;
    int probes_ = 0;
    int retries_ = 0;
};

/// The session front end rejected a request synchronously: admission
/// control predicted that the multiply cannot fit the live device capacity
/// even at the deepest row-slab degradation, so no cycles were burned into
/// a doomed OOM spiral. Carries the byte accounting of the refusal:
/// `required_bytes()` is the floor the deepest slab level still needs
/// (dominated by the B operand, which stays resident in every slab),
/// `available_bytes()` the free capacity at admission time and
/// `deepest_slab_level()` the slab count the refusal is based on.
class AdmissionRejected : public Error {
public:
    AdmissionRejected(const std::string& msg, std::size_t required_bytes,
                      std::size_t available_bytes, int deepest_slab_level)
        : Error(msg + " [required=" + std::to_string(required_bytes) +
                " B available=" + std::to_string(available_bytes) +
                " B deepest_slab_level=" + std::to_string(deepest_slab_level) + "]"),
          required_bytes_(required_bytes), available_bytes_(available_bytes),
          deepest_slab_level_(deepest_slab_level)
    {
    }

    [[nodiscard]] std::size_t required_bytes() const { return required_bytes_; }
    [[nodiscard]] std::size_t available_bytes() const { return available_bytes_; }
    [[nodiscard]] int deepest_slab_level() const { return deepest_slab_level_; }

private:
    std::size_t required_bytes_ = 0;
    std::size_t available_bytes_ = 0;
    int deepest_slab_level_ = 0;
};

/// A per-request budget expired. The cancellation token threaded through
/// `sim::Device::launch` stops the request at the next kernel boundary, so
/// the device, its streams and the scratch pool remain reusable for the
/// next request. `stage()` names where the budget ran out (a device phase
/// like "count"/"calc", or a recovery-ladder stage like "slab"),
/// `elapsed_seconds()` how much of the budgeted quantity was consumed and
/// `wall_clock()` whether the host wall-clock budget tripped (true) or the
/// simulated-seconds budget (false).
class DeadlineExceeded : public Error {
public:
    DeadlineExceeded(const std::string& msg, std::string stage, double elapsed_seconds,
                     bool wall_clock)
        : Error(msg + " [stage=" + stage + " elapsed=" + std::to_string(elapsed_seconds) +
                (wall_clock ? "s wall]" : "s simulated]")),
          stage_(std::move(stage)), elapsed_seconds_(elapsed_seconds), wall_clock_(wall_clock)
    {
    }

    [[nodiscard]] const std::string& stage() const { return stage_; }
    [[nodiscard]] double elapsed_seconds() const { return elapsed_seconds_; }
    [[nodiscard]] bool wall_clock() const { return wall_clock_; }

private:
    std::string stage_;
    double elapsed_seconds_ = 0.0;
    bool wall_clock_ = false;
};

/// The caller cancelled the request cooperatively (Session::cancel or a
/// token the caller armed). Like DeadlineExceeded, the cancellation takes
/// effect at a kernel boundary and leaves the device reusable. `stage()`
/// names where the request was when the cancellation landed and `reason()`
/// echoes the caller-supplied cancellation reason.
class OperationCancelled : public Error {
public:
    OperationCancelled(const std::string& msg, std::string stage, std::string reason)
        : Error(msg + " [stage=" + stage + (reason.empty() ? "" : " reason=" + reason) + "]"),
          stage_(std::move(stage)), reason_(std::move(reason))
    {
    }

    [[nodiscard]] const std::string& stage() const { return stage_; }
    [[nodiscard]] const std::string& reason() const { return reason_; }

private:
    std::string stage_;
    std::string reason_;
};

/// A row-pointer scan crossed the representable index range: the running
/// nnz total exceeded the width the output row pointers are stored in
/// (32-bit `index_t` on the default path — the large-graph products of
/// Table III can cross 2^31 intermediate nonzeros). `row()` is the output
/// row whose count pushed the total over and `running_total()` the total
/// at that row. The sharded execution layer catches the risk up front and
/// escalates to 64-bit row pointers instead of surfacing this.
class IndexOverflow : public Error {
public:
    IndexOverflow(const std::string& msg, std::int64_t row, std::int64_t running_total)
        : Error(msg + " [row=" + std::to_string(row) +
                " running_total=" + std::to_string(running_total) + "]"),
          row_(row), running_total_(running_total)
    {
    }

    /// Output row whose count pushed the running total past the limit.
    [[nodiscard]] std::int64_t row() const { return row_; }
    /// Running nnz total at that row (the first unrepresentable value).
    [[nodiscard]] std::int64_t running_total() const { return running_total_; }

private:
    std::int64_t row_ = -1;
    std::int64_t running_total_ = 0;
};

/// One shard of a sharded multiply failed after its whole recovery ladder
/// (replan → sub-split → host recourse → requeue on another device) was
/// exhausted. `shard()` is the shard index, `device()` the device the
/// final attempt ran on and `cause()` the nested exception of that
/// attempt. Sibling shards are unaffected; with fail-fast off, every
/// failed shard is reported in its own result slot instead of throwing.
class ShardFailed : public Error {
public:
    ShardFailed(const std::string& msg, int shard, int device, std::exception_ptr cause)
        : Error(msg + " [shard=" + std::to_string(shard) +
                " device=" + std::to_string(device) + "]"),
          shard_(shard), device_(device), cause_(std::move(cause))
    {
    }

    [[nodiscard]] int shard() const { return shard_; }
    [[nodiscard]] int device() const { return device_; }
    /// The exception that exhausted the shard's ladder (may be null when
    /// the failure was synthesized, e.g. a cancelled never-started shard).
    [[nodiscard]] const std::exception_ptr& cause() const { return cause_; }

private:
    int shard_ = -1;
    int device_ = -1;
    std::exception_ptr cause_;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const char* file, int line)
{
    throw PreconditionError(std::string("precondition failed: ") + msg + " [" + expr + "] at " +
                            file + ":" + std::to_string(line));
}

[[noreturn]] inline void assert_fail(const char* expr, const char* msg, const char* file,
                                     int line) noexcept
{
    std::fprintf(stderr, "nsparse assertion failed: %s [%s] at %s:%d\n", msg, expr, file, line);
    std::abort();
}
}  // namespace detail

}  // namespace nsparse

#define NSPARSE_EXPECTS(cond, msg)                                                      \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::nsparse::detail::throw_precondition(#cond, (msg), __FILE__, __LINE__);    \
        }                                                                               \
    } while (false)

#define NSPARSE_ENSURES(cond, msg) NSPARSE_EXPECTS(cond, msg)

// Internal invariant check: violations are library bugs, not caller errors,
// so they abort in debug builds (where NDEBUG is unset) and compile to
// nothing in release builds — like the standard assert, but with a message.
#ifndef NDEBUG
#define NSPARSE_ASSERT(cond, msg)                                                       \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::nsparse::detail::assert_fail(#cond, (msg), __FILE__, __LINE__);           \
        }                                                                               \
    } while (false)
#else
#define NSPARSE_ASSERT(cond, msg) ((void)0)
#endif
