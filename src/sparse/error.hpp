// Error handling: a small exception hierarchy plus contract macros.
//
// Following the C++ Core Guidelines (E.2, I.6): preconditions are checked
// with NSPARSE_EXPECTS and throw on violation so callers can test error
// paths; invariants that indicate library bugs use NSPARSE_ASSERT and abort
// in debug builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nsparse {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad dimensions, unsorted
/// input where sorted is required, ...).
class PreconditionError : public Error {
public:
    using Error::Error;
};

/// Malformed external data (MatrixMarket parse failures etc.).
class ParseError : public Error {
public:
    using Error::Error;
};

/// The simulated device ran out of memory. Benchmarks catch this to print
/// the "-" entries of the paper's Table III. When the row-slab fallback of
/// `hash_spgemm` gives up, the exception additionally reports how far the
/// degradation got: `slab_level()` is the number of row slabs in flight
/// when the final attempt failed (0 = the unchunked multiply) and
/// `retry_depth()` how often the slab size was halved.
class DeviceOutOfMemory : public Error {
public:
    using Error::Error;

    DeviceOutOfMemory(const std::string& msg, int slab_level, int retry_depth)
        : Error(msg), slab_level_(slab_level), retry_depth_(retry_depth)
    {
    }

    [[nodiscard]] int slab_level() const { return slab_level_; }
    [[nodiscard]] int retry_depth() const { return retry_depth_; }

private:
    int slab_level_ = 0;
    int retry_depth_ = 0;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const char* file, int line)
{
    throw PreconditionError(std::string("precondition failed: ") + msg + " [" + expr + "] at " +
                            file + ":" + std::to_string(line));
}

[[noreturn]] inline void assert_fail(const char* expr, const char* msg, const char* file,
                                     int line) noexcept
{
    std::fprintf(stderr, "nsparse assertion failed: %s [%s] at %s:%d\n", msg, expr, file, line);
    std::abort();
}
}  // namespace detail

}  // namespace nsparse

#define NSPARSE_EXPECTS(cond, msg)                                                      \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::nsparse::detail::throw_precondition(#cond, (msg), __FILE__, __LINE__);    \
        }                                                                               \
    } while (false)

#define NSPARSE_ENSURES(cond, msg) NSPARSE_EXPECTS(cond, msg)

// Internal invariant check: violations are library bugs, not caller errors,
// so they abort in debug builds (where NDEBUG is unset) and compile to
// nothing in release builds — like the standard assert, but with a message.
#ifndef NDEBUG
#define NSPARSE_ASSERT(cond, msg)                                                       \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::nsparse::detail::assert_fail(#cond, (msg), __FILE__, __LINE__);           \
        }                                                                               \
    } while (false)
#else
#define NSPARSE_ASSERT(cond, msg) ((void)0)
#endif
