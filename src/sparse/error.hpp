// Error handling: a small exception hierarchy plus contract macros.
//
// Following the C++ Core Guidelines (E.2, I.6): preconditions are checked
// with NSPARSE_EXPECTS and throw on violation so callers can test error
// paths; invariants that indicate library bugs use NSPARSE_ASSERT and abort
// in debug builds.
#pragma once

#include <stdexcept>
#include <string>

namespace nsparse {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad dimensions, unsorted
/// input where sorted is required, ...).
class PreconditionError : public Error {
public:
    using Error::Error;
};

/// Malformed external data (MatrixMarket parse failures etc.).
class ParseError : public Error {
public:
    using Error::Error;
};

/// The simulated device ran out of memory. Benchmarks catch this to print
/// the "-" entries of the paper's Table III.
class DeviceOutOfMemory : public Error {
public:
    using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const char* file, int line)
{
    throw PreconditionError(std::string("precondition failed: ") + msg + " [" + expr + "] at " +
                            file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace nsparse

#define NSPARSE_EXPECTS(cond, msg)                                                      \
    do {                                                                                \
        if (!(cond)) {                                                                  \
            ::nsparse::detail::throw_precondition(#cond, (msg), __FILE__, __LINE__);    \
        }                                                                               \
    } while (false)

#define NSPARSE_ENSURES(cond, msg) NSPARSE_EXPECTS(cond, msg)
