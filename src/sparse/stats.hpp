// Matrix statistics in the shape of the paper's Table II:
// rows, nnz, mean/max nnz-per-row, intermediate products of A^2, nnz(A^2).
#pragma once

#include <string>

#include "sparse/csr.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {

struct MatrixStats {
    std::string name;
    index_t rows = 0;
    index_t cols = 0;
    wide_t nnz = 0;
    double nnz_per_row = 0.0;
    index_t max_nnz_per_row = 0;
    wide_t intermediate_products = 0;  ///< of A*A (Table II column 6)
    wide_t nnz_of_square = 0;          ///< nnz(A^2)  (Table II column 7)
};

/// Structural statistics only (cheap; no squaring).
template <ValueType T>
[[nodiscard]] MatrixStats basic_stats(const CsrMatrix<T>& a, std::string name = {})
{
    MatrixStats s;
    s.name = std::move(name);
    s.rows = a.rows;
    s.cols = a.cols;
    s.nnz = a.nnz();
    s.nnz_per_row = a.rows == 0 ? 0.0
                                : static_cast<double>(a.nnz()) / static_cast<double>(a.rows);
    for (index_t i = 0; i < a.rows; ++i) { s.max_nnz_per_row = std::max(s.max_nnz_per_row, a.row_nnz(i)); }
    return s;
}

/// Full Table II row, including the A^2 columns (runs a symbolic square).
template <ValueType T>
[[nodiscard]] MatrixStats table2_stats(const CsrMatrix<T>& a, std::string name = {})
{
    MatrixStats s = basic_stats(a, std::move(name));
    if (a.rows == a.cols) {
        s.intermediate_products = total_intermediate_products(a, a);
        wide_t nnzc = 0;
        for (const index_t n : reference_row_nnz(a, a)) { nnzc += n; }
        s.nnz_of_square = nnzc;
    }
    return s;
}

/// Fixed-width one-line rendering used by bench_table2_datasets.
[[nodiscard]] std::string format_stats_row(const MatrixStats& s);

/// Header matching format_stats_row.
[[nodiscard]] std::string format_stats_header();

}  // namespace nsparse
