// Coordinate (COO) sparse matrix container and CSR<->COO conversion.
//
// COO is the paper's second background format (§II-A) and the working
// representation of the ESC baseline's expansion phase: one
// (row, col, value) triple per intermediate product.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace nsparse {

/// COO sparse matrix as structure-of-arrays. May contain duplicate
/// (row, col) entries; `compress()` folds them.
template <ValueType T>
struct CooMatrix {
    index_t rows = 0;
    index_t cols = 0;
    std::vector<index_t> row;
    std::vector<index_t> col;
    std::vector<T> val;

    [[nodiscard]] std::size_t nnz() const { return row.size(); }

    void validate() const
    {
        NSPARSE_EXPECTS(rows >= 0 && cols >= 0, "negative matrix dimension");
        NSPARSE_EXPECTS(row.size() == col.size() && col.size() == val.size(),
                        "COO arrays must have equal length");
        for (std::size_t k = 0; k < row.size(); ++k) {
            NSPARSE_EXPECTS(row[k] >= 0 && row[k] < rows, "COO row index out of range");
            NSPARSE_EXPECTS(col[k] >= 0 && col[k] < cols, "COO column index out of range");
        }
    }

    /// Sorts triples by (row, col). Stable so duplicate accumulation order
    /// is reproducible.
    void sort()
    {
        std::vector<std::size_t> perm(row.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::stable_sort(perm.begin(), perm.end(), [this](std::size_t a, std::size_t b) {
            return row[a] != row[b] ? row[a] < row[b] : col[a] < col[b];
        });
        apply_permutation(perm);
    }

    /// Sorts and accumulates duplicate (row, col) entries into one triple.
    void compress()
    {
        sort();
        std::size_t out = 0;
        for (std::size_t k = 0; k < row.size(); ++k) {
            if (out > 0 && row[out - 1] == row[k] && col[out - 1] == col[k]) {
                val[out - 1] += val[k];
            } else {
                row[out] = row[k];
                col[out] = col[k];
                val[out] = val[k];
                ++out;
            }
        }
        row.resize(out);
        col.resize(out);
        val.resize(out);
    }

private:
    void apply_permutation(const std::vector<std::size_t>& perm)
    {
        std::vector<index_t> r(perm.size());
        std::vector<index_t> c(perm.size());
        std::vector<T> v(perm.size());
        for (std::size_t k = 0; k < perm.size(); ++k) {
            r[k] = row[perm[k]];
            c[k] = col[perm[k]];
            v[k] = val[perm[k]];
        }
        row = std::move(r);
        col = std::move(c);
        val = std::move(v);
    }
};

/// CSR -> COO expansion.
template <ValueType T>
[[nodiscard]] CooMatrix<T> to_coo(const CsrMatrix<T>& a)
{
    CooMatrix<T> out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.row.reserve(to_size(a.nnz()));
    for (index_t i = 0; i < a.rows; ++i) {
        for (index_t k = a.rpt[to_size(i)]; k < a.rpt[to_size(i) + 1]; ++k) {
            out.row.push_back(i);
        }
    }
    out.col = a.col;
    out.val = a.val;
    return out;
}

/// COO -> CSR. Requires triples sorted by row (column order within a row is
/// preserved); duplicates are kept as-is — call `compress()` first if the
/// output must be canonical.
template <ValueType T>
[[nodiscard]] CsrMatrix<T> to_csr(const CooMatrix<T>& a)
{
    NSPARSE_EXPECTS(std::is_sorted(a.row.begin(), a.row.end()), "COO must be sorted by row");
    CsrMatrix<T> out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.rpt.assign(to_size(a.rows) + 1, 0);
    for (const index_t r : a.row) { ++out.rpt[to_size(r) + 1]; }
    std::partial_sum(out.rpt.begin(), out.rpt.end(), out.rpt.begin());
    out.col = a.col;
    out.val = a.val;
    out.validate();
    return out;
}

}  // namespace nsparse
