// Approximate matrix comparison used by every cross-algorithm test.
//
// Different SpGEMM algorithms accumulate intermediate products in different
// orders, so values agree only up to floating-point rounding; the
// comparison is structural-exact and value-approximate with a
// magnitude-aware tolerance.
#pragma once

#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "sparse/csr.hpp"

namespace nsparse {

/// Result of an approximate comparison: empty optional means "equal".
template <ValueType T>
[[nodiscard]] std::optional<std::string> compare_csr(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                                     double rel_tol = 1e-5,
                                                     double abs_tol = 1e-30)
{
    const auto fail = [](const std::string& s) { return std::optional<std::string>(s); };
    if (a.rows != b.rows || a.cols != b.cols) { return fail("shape mismatch"); }
    if (a.rpt != b.rpt) {
        for (std::size_t i = 0; i + 1 < a.rpt.size(); ++i) {
            if (a.rpt[i + 1] - a.rpt[i] != b.rpt[i + 1] - b.rpt[i]) {
                std::ostringstream os;
                os << "row " << i << " nnz mismatch: " << (a.rpt[i + 1] - a.rpt[i]) << " vs "
                   << (b.rpt[i + 1] - b.rpt[i]);
                return fail(os.str());
            }
        }
        return fail("rpt mismatch");
    }
    if (a.col != b.col) {
        for (std::size_t k = 0; k < a.col.size(); ++k) {
            if (a.col[k] != b.col[k]) {
                std::ostringstream os;
                os << "col mismatch at nz " << k << ": " << a.col[k] << " vs " << b.col[k];
                return fail(os.str());
            }
        }
    }
    for (std::size_t k = 0; k < a.val.size(); ++k) {
        const double x = static_cast<double>(a.val[k]);
        const double y = static_cast<double>(b.val[k]);
        const double scale = std::max(std::abs(x), std::abs(y));
        if (std::abs(x - y) > abs_tol + rel_tol * scale) {
            std::ostringstream os;
            os << "value mismatch at nz " << k << " (col " << a.col[k] << "): " << x << " vs "
               << y;
            return fail(os.str());
        }
    }
    return std::nullopt;
}

/// Convenience predicate form of compare_csr.
template <ValueType T>
[[nodiscard]] bool approx_equal(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                double rel_tol = 1e-5)
{
    return !compare_csr(a, b, rel_tol).has_value();
}

}  // namespace nsparse
