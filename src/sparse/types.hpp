// Fundamental scalar/index types and conversion helpers shared by every
// module in the library.
//
// The paper's CUDA implementation (nsparse) uses 32-bit signed indices for
// row pointers and column indices; we follow it so that hash-table sentinel
// values (-1) and packed 64-bit sort keys behave identically.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "sparse/error.hpp"

namespace nsparse {

/// Index type used for row pointers, column indices and row counts.
using index_t = std::int32_t;

/// Widened type for nnz-products that can overflow 32 bits
/// (e.g. Table II lists 2,078,631,615 intermediate products for cage15).
using wide_t = std::int64_t;

/// Value types accepted by every kernel in the library.
template <typename T>
concept ValueType = std::same_as<T, float> || std::same_as<T, double>;

/// Checked narrowing from any integral to index_t.
template <std::integral I>
[[nodiscard]] constexpr index_t to_index(I v)
{
    NSPARSE_EXPECTS(std::in_range<index_t>(v), "index overflow: value does not fit in index_t");
    return static_cast<index_t>(v);
}

/// Checked conversion from a (possibly signed) integral to std::size_t.
template <std::integral I>
[[nodiscard]] constexpr std::size_t to_size(I v)
{
    if constexpr (std::is_signed_v<I>) {
        NSPARSE_EXPECTS(v >= 0, "negative value converted to size");
    }
    return static_cast<std::size_t>(v);
}

/// Sentinel marking an empty hash-table slot (column indices are >= 0).
inline constexpr index_t kEmptySlot = -1;

}  // namespace nsparse
