// Compressed Sparse Row (CSR) matrix container.
//
// CSR is the input and output format of every SpGEMM algorithm in this
// library, exactly as in the paper (§II-A): a row-pointer array `rpt` of
// length rows+1, and per-nonzero column-index (`col`) and value (`val`)
// arrays of length nnz.
//
// The row-pointer width is a template parameter (the OpSparse hybrid):
// kernels and column indices stay 32-bit (`index_t`, matching the CUDA
// implementation's sentinels and packed sort keys), while matrices whose
// nnz crosses 2^31 — the Table-III large-graph products — use
// `WideCsrMatrix` (64-bit `wide_t` row pointers). Per-row counts always
// fit `index_t` because a row holds at most `cols` nonzeros.
#pragma once

#include <algorithm>
#include <concepts>
#include <numeric>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace nsparse {

/// CSR sparse matrix with row pointers of integral type P. Invariants
/// (checked by `validate()`):
///  * rpt.size() == rows + 1, rpt.front() == 0, rpt.back() == nnz
///  * rpt is non-decreasing
///  * col.size() == val.size() == nnz, all col in [0, cols)
/// Column indices within a row are *not* required to be sorted by the
/// container itself; algorithms that need sorted rows say so and
/// `sort_rows()` / `has_sorted_rows()` are provided.
template <ValueType T, std::integral P = index_t>
struct CsrMatrix {
    index_t rows = 0;
    index_t cols = 0;
    std::vector<P> rpt;        ///< row pointers, size rows+1
    std::vector<index_t> col;  ///< column indices, size nnz
    std::vector<T> val;        ///< values, size nnz

    CsrMatrix() : rpt(1, 0) {}

    CsrMatrix(index_t rows_, index_t cols_, std::vector<P> rpt_, std::vector<index_t> col_,
              std::vector<T> val_)
        : rows(rows_), cols(cols_), rpt(std::move(rpt_)), col(std::move(col_)),
          val(std::move(val_))
    {
        validate();
    }

    /// Empty matrix of the given shape (all-zero, nnz == 0).
    static CsrMatrix zero(index_t rows_, index_t cols_)
    {
        CsrMatrix m;
        m.rows = rows_;
        m.cols = cols_;
        m.rpt.assign(to_size(rows_) + 1, 0);
        return m;
    }

    /// Identity matrix of order n.
    static CsrMatrix identity(index_t n)
    {
        CsrMatrix m;
        m.rows = m.cols = n;
        m.rpt.resize(to_size(n) + 1);
        std::iota(m.rpt.begin(), m.rpt.end(), P{0});
        m.col.resize(to_size(n));
        std::iota(m.col.begin(), m.col.end(), index_t{0});
        m.val.assign(to_size(n), T{1});
        return m;
    }

    [[nodiscard]] P nnz() const { return rpt.empty() ? 0 : rpt.back(); }

    [[nodiscard]] index_t row_nnz(index_t i) const
    {
        return static_cast<index_t>(rpt[to_size(i) + 1] - rpt[to_size(i)]);
    }

    [[nodiscard]] std::span<const index_t> row_cols(index_t i) const
    {
        return {col.data() + rpt[to_size(i)], to_size(row_nnz(i))};
    }

    [[nodiscard]] std::span<const T> row_vals(index_t i) const
    {
        return {val.data() + rpt[to_size(i)], to_size(row_nnz(i))};
    }

    /// Number of bytes the CSR arrays occupy (the figure-4 accounting uses
    /// this for inputs/outputs resident on the simulated device).
    [[nodiscard]] std::size_t byte_size() const
    {
        return rpt.size() * sizeof(P) + col.size() * sizeof(index_t) + val.size() * sizeof(T);
    }

    /// Throws PreconditionError when a structural invariant is broken.
    void validate() const
    {
        NSPARSE_EXPECTS(rows >= 0 && cols >= 0, "negative matrix dimension");
        NSPARSE_EXPECTS(rpt.size() == to_size(rows) + 1, "rpt size must be rows+1");
        NSPARSE_EXPECTS(rpt.front() == 0, "rpt must start at 0");
        NSPARSE_EXPECTS(std::is_sorted(rpt.begin(), rpt.end()), "rpt must be non-decreasing");
        NSPARSE_EXPECTS(col.size() == to_size(rpt.back()), "col size must equal nnz");
        NSPARSE_EXPECTS(val.size() == col.size(), "val size must equal col size");
        NSPARSE_EXPECTS(std::all_of(col.begin(), col.end(),
                                    [this](index_t c) { return c >= 0 && c < cols; }),
                        "column index out of range");
    }

    /// True when every row's column indices are strictly increasing
    /// (implies no duplicate entries).
    [[nodiscard]] bool has_sorted_rows() const
    {
        for (index_t i = 0; i < rows; ++i) {
            const auto cs = row_cols(i);
            for (std::size_t k = 1; k < cs.size(); ++k) {
                if (cs[k] <= cs[k - 1]) { return false; }
            }
        }
        return true;
    }

    /// Sorts every row by column index (stable pairing with values).
    void sort_rows()
    {
        std::vector<index_t> perm;
        std::vector<index_t> ctmp;
        std::vector<T> vtmp;
        for (index_t i = 0; i < rows; ++i) {
            const std::size_t b = to_size(rpt[to_size(i)]);
            const std::size_t n = to_size(row_nnz(i));
            if (n < 2) { continue; }
            perm.resize(n);
            std::iota(perm.begin(), perm.end(), index_t{0});
            std::sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
                return col[b + to_size(x)] < col[b + to_size(y)];
            });
            ctmp.resize(n);
            vtmp.resize(n);
            for (std::size_t k = 0; k < n; ++k) {
                ctmp[k] = col[b + to_size(perm[k])];
                vtmp[k] = val[b + to_size(perm[k])];
            }
            std::copy(ctmp.begin(), ctmp.end(), col.begin() + static_cast<std::ptrdiff_t>(b));
            std::copy(vtmp.begin(), vtmp.end(), val.begin() + static_cast<std::ptrdiff_t>(b));
        }
    }

    /// Structural + numerical exact equality (useful after sort_rows()).
    friend bool operator==(const CsrMatrix& a, const CsrMatrix& b)
    {
        return a.rows == b.rows && a.cols == b.cols && a.rpt == b.rpt && a.col == b.col &&
               a.val == b.val;
    }
};

/// CSR with 64-bit row pointers: the escalation target of products whose
/// nnz crosses the 32-bit index range (kernels and column indices stay
/// 32-bit — the OpSparse hybrid).
template <ValueType T>
using WideCsrMatrix = CsrMatrix<T, wide_t>;

}  // namespace nsparse
