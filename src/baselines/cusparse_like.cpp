#include "baselines/cusparse_like.hpp"

#include <cmath>
#include <vector>

#include "baselines/common.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/numeric.hpp"
#include "core/symbolic.hpp"
#include "sparse/validate.hpp"

namespace nsparse::baseline {

namespace {

/// Rows per thread block (one warp per row, 128-thread blocks).
constexpr index_t kRowsPerBlock = 4;
constexpr int kBlockDim = 128;

/// Shared symbolic table entries per warp/row: 48 KB / 4 rows / 4 B.
constexpr index_t kSymTable = 3000;

/// Shared numeric table entries per warp/row: 48 KB / 4 rows / (4+vs) B.
template <ValueType T>
constexpr index_t numeric_table_size()
{
    return to_index(std::size_t{48 * 1024} / to_size(kRowsPerBlock) /
                    (sizeof(index_t) + sizeof(T)));
}

}  // namespace

template <ValueType T>
SpgemmOutput<T> cusparse_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                int executor_threads, bool validate_inputs)
{
    if (validate_inputs) { validate_spgemm_inputs(a, b); }
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    dev.set_executor_threads(executor_threads);
    dev.reset_measurement();

    // Modulus hashing (the paper's §III-D contrasts its pow2 bit-ops with
    // this) — functionally identical distribution, costlier per probe.
    const core::ElemCosts ec_sym =
        core::ElemCosts::make(dev.cost_model(), false, sizeof(T), /*pow2_tables=*/false);
    const core::ElemCosts ec_num =
        core::ElemCosts::make(dev.cost_model(), true, sizeof(T), /*pow2_tables=*/false);

    SpgemmOutput<T> out;
    wide_t total_products = 0;
    sim::DeviceCsr<T> c;

    {
        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);

        sim::DeviceBuffer<index_t> row_nnz(dev.allocator(), to_size(a.rows));
        row_nnz.fill(0);
        std::vector<index_t> rpt;
        sim::DeviceBuffer<index_t> products;

        {
            // ---- count phase (no setup/grouping: single kernel shape) ----
            auto count_phase = dev.phase_scope("count");
            products = count_products(dev, da, db);
            for (std::size_t i = 0; i < products.size(); ++i) {
                total_products += products[i];
            }

            sim::DeviceBuffer<index_t> fail(dev.allocator(), to_size(a.rows));
            fail.fill(0);
            // csrgemm's row analysis sizes the shared tables from the
            // global maximum row size — coarse, matrix-wide adaptivity
            // (per-row grouping is exactly what it lacks vs the proposal).
            index_t max_products = 0;
            for (std::size_t i = 0; i < products.size(); ++i) {
                max_products = std::max(max_products, products[i]);
            }
            const index_t sym_table = std::min<index_t>(
                kSymTable, std::max<index_t>(32, core::next_pow2(2 * max_products)));
            const index_t grid =
                a.rows == 0 ? 0 : (a.rows + kRowsPerBlock - 1) / kRowsPerBlock;
            dev.launch(dev.default_stream(),
                       {grid, kBlockDim,
                        to_size(kRowsPerBlock) * to_size(sym_table) * sizeof(index_t)},
                       "cusparse_count",
                       [&](sim::BlockCtx& blk) {
                           auto tables = blk.shared_alloc<index_t>(to_size(kRowsPerBlock) *
                                                                   to_size(sym_table));
                           std::fill(tables.begin(), tables.end(), kEmptySlot);
                           // Tables are cleaned lazily: only slots the row
                           // touched are re-initialised (cost charged with
                           // the fill below), so tiny rows do not pay for
                           // the full 3000-entry table.
                           double block_span = 0.0;
                           double block_work = 0.0;
                           for (index_t w = 0; w < kRowsPerBlock; ++w) {
                               const index_t i = blk.block_idx() * kRowsPerBlock + w;
                               if (i >= a.rows) { break; }
                               auto table = tables.subspan(
                                   to_size(w) * to_size(sym_table), to_size(sym_table));
                               std::vector<double> warp(1, 0.0);
                               const index_t nz = core::detail::count_row_hashed(
                                   da, db, i, table, /*pow2=*/false, ec_sym,
                                   ec_sym.probe_shared, ec_sym.insert_shared, warp, 32);
                               if (nz < 0) {
                                   fail[to_size(i)] = 1;
                               } else {
                                   row_nnz[to_size(i)] = nz;
                               }
                               // lazy cleanup of touched slots
                               const double touched =
                                   static_cast<double>(nz < 0 ? sym_table : nz);
                               warp[0] += touched / 32.0 * 2.0;
                               block_span = std::max(block_span, warp[0]);
                               block_work += warp[0] * 32.0;
                           }
                           blk.charge_work_span(block_work, block_span);
                       });
            dev.synchronize();

            // Global-memory fallback: every saturated row gets a table
            // sized by its product count (extra memory + random traffic).
            std::vector<index_t> failed;
            for (index_t i = 0; i < a.rows; ++i) {
                if (fail[to_size(i)] != 0) { failed.push_back(i); }
            }
            if (!failed.empty()) {
                std::vector<std::size_t> offs(failed.size() + 1, 0);
                for (std::size_t r = 0; r < failed.size(); ++r) {
                    offs[r + 1] = offs[r] +
                                  to_size(core::next_pow2(products[to_size(failed[r])]));
                }
                sim::DeviceBuffer<index_t> gtab(dev.allocator(), offs.back());
                gtab.fill(kEmptySlot);
                dev.launch(dev.default_stream(), {to_index(failed.size()), 32, 0},
                           "cusparse_count_global",
                           [&](sim::BlockCtx& blk) {
                               const auto r = to_size(blk.block_idx());
                               const index_t i = failed[r];
                               auto table = gtab.span().subspan(offs[r], offs[r + 1] - offs[r]);
                               blk.global_write(
                                   32, sizeof(index_t), sim::MemPattern::kCoalesced,
                                   static_cast<double>(table.size()) / 32.0);
                               std::vector<double> warp(1, 0.0);
                               const index_t nz = core::detail::count_row_hashed(
                                   da, db, i, table, /*pow2=*/false, ec_sym,
                                   ec_sym.probe_global, ec_sym.insert_global, warp, 32);
                               if (nz < 0) {
                                   // csrgemm has no second fallback: a
                                   // saturated product-sized table means
                                   // the input lied about its structure.
                                   throw KernelFault(
                                       "cusparse global fallback table saturated", "count",
                                       /*group=*/-1, i,
                                       static_cast<std::int64_t>(table.size()),
                                       static_cast<int>(table.size()));
                               }
                               row_nnz[to_size(i)] = nz;
                               blk.charge_work_span(warp[0] * 32.0, warp[0]);
                           });
                dev.synchronize();
            }
            rpt = exclusive_scan(dev, row_nnz);
        }

        c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, rpt.back());
        std::copy(rpt.begin(), rpt.end(), c.rpt.data());

        {
            // ---- numeric phase. csrgemm keeps an internal unsorted-
            // column workspace the size of C's column array and permutes
            // into the user's buffers at the end — the extra allocation
            // Figure 4 normalises against. (The simulation writes the
            // final sorted row directly; the workspace buffer and the
            // permute kernel below model the memory and traffic.) ----
            auto calc_phase = dev.phase_scope("calc");
            sim::DeviceBuffer<index_t> col_workspace(dev.allocator(), to_size(rpt.back()));
            auto& ctmp = c;

            index_t max_nnz = 0;
            for (std::size_t i = 0; i < to_size(a.rows); ++i) {
                max_nnz = std::max(max_nnz, row_nnz[i]);
            }
            const index_t tnum = std::min<index_t>(
                numeric_table_size<T>(),
                std::max<index_t>(16, core::next_pow2(2 * std::max<index_t>(1, max_nnz))));
            // Route rows: shared path when the known nnz fits the table.
            std::vector<index_t> shared_rows;
            std::vector<index_t> global_rows;
            for (index_t i = 0; i < a.rows; ++i) {
                (row_nnz[to_size(i)] <= tnum ? shared_rows : global_rows).push_back(i);
            }

            if (!shared_rows.empty()) {
                const auto n = to_index(shared_rows.size());
                const index_t grid = (n + kRowsPerBlock - 1) / kRowsPerBlock;
                dev.launch(dev.default_stream(),
                           {grid, kBlockDim,
                            to_size(kRowsPerBlock) * to_size(tnum) *
                                (sizeof(index_t) + sizeof(T))},
                           "cusparse_calc",
                           [&, n](sim::BlockCtx& blk) {
                               auto keys = blk.shared_alloc<index_t>(to_size(kRowsPerBlock) *
                                                                     to_size(tnum));
                               auto vals = blk.shared_alloc<T>(to_size(kRowsPerBlock) *
                                                               to_size(tnum));
                               std::fill(keys.begin(), keys.end(), kEmptySlot);
                               // lazy per-row cleanup, charged in the loop
                               double block_span = 0.0;
                               double block_work = 0.0;
                               for (index_t w = 0; w < kRowsPerBlock; ++w) {
                                   const index_t idx = blk.block_idx() * kRowsPerBlock + w;
                                   if (idx >= n) { break; }
                                   const index_t i = shared_rows[to_size(idx)];
                                   auto k = keys.subspan(to_size(w) * to_size(tnum),
                                                         to_size(tnum));
                                   auto v = vals.subspan(to_size(w) * to_size(tnum),
                                                         to_size(tnum));
                                   std::vector<double> warp(1, 0.0);
                                   if (!core::detail::fill_row_hashed(
                                           da, db, i, k, v, /*pow2=*/false, ec_num,
                                           ec_num.probe_shared, ec_num.insert_shared,
                                           ec_num.accum_shared, warp, 32)) {
                                       throw KernelFault(
                                           "cusparse shared numeric table saturated",
                                           "calc", /*group=*/-1, i,
                                           static_cast<std::int64_t>(tnum),
                                           static_cast<int>(tnum));
                                   }
                                   const auto [ew, es] = core::detail::emit_row<T>(
                                       k, v, ctmp, i, dev.cost_model(), true, 32);
                                   const double cleanup =
                                       static_cast<double>(row_nnz[to_size(i)]) / 32.0 * 2.0;
                                   block_span = std::max(block_span, warp[0] + es + cleanup);
                                   block_work += (warp[0] + cleanup) * 32.0 + ew;
                               }
                               blk.charge_work_span(block_work, block_span);
                           });
            }
            // Declared outside the conditional: the (possibly asynchronous)
            // cusparse_calc_global task reads these until the synchronize
            // below joins it.
            std::vector<std::size_t> offs;
            sim::DeviceBuffer<index_t> gkeys;
            sim::DeviceBuffer<T> gvals;
            if (!global_rows.empty()) {
                offs.assign(global_rows.size() + 1, 0);
                for (std::size_t r = 0; r < global_rows.size(); ++r) {
                    offs[r + 1] =
                        offs[r] + to_size(core::next_pow2(
                                      std::max<index_t>(1, row_nnz[to_size(global_rows[r])]) *
                                      2));
                }
                gkeys = sim::DeviceBuffer<index_t>(dev.allocator(), offs.back());
                gvals = sim::DeviceBuffer<T>(dev.allocator(), offs.back());
                gkeys.fill(kEmptySlot);
                dev.launch(dev.default_stream(), {to_index(global_rows.size()), 32, 0},
                           "cusparse_calc_global",
                           [&](sim::BlockCtx& blk) {
                               const auto r = to_size(blk.block_idx());
                               const index_t i = global_rows[r];
                               auto k = gkeys.span().subspan(offs[r], offs[r + 1] - offs[r]);
                               auto v = gvals.span().subspan(offs[r], offs[r + 1] - offs[r]);
                               blk.global_write(32, sizeof(index_t),
                                                sim::MemPattern::kCoalesced,
                                                static_cast<double>(k.size()) / 32.0);
                               std::vector<double> warp(1, 0.0);
                               if (!core::detail::fill_row_hashed(
                                       da, db, i, k, v, /*pow2=*/false, ec_num,
                                       ec_num.probe_global, ec_num.insert_global,
                                       ec_num.accum_global, warp, 32)) {
                                   throw KernelFault(
                                       "cusparse global numeric table saturated", "calc",
                                       /*group=*/-1, i,
                                       static_cast<std::int64_t>(k.size()),
                                       static_cast<int>(k.size()));
                               }
                               const auto [ew, es] = core::detail::emit_row<T>(
                                   k, v, ctmp, i, dev.cost_model(), false, 32);
                               blk.charge_work_span(warp[0] * 32.0 + ew, warp[0] + es);
                           });
            }
            dev.synchronize();

            // Permute workspace columns -> final output order.
            const index_t nnz_c = rpt.back();
            constexpr int kBlock = 256;
            const index_t grid =
                nnz_c == 0 ? 0 : (nnz_c + kBlock - 1) / kBlock;
            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "cusparse_permute",
                       [&](sim::BlockCtx& blk) {
                           const index_t begin = blk.block_idx() * kBlock;
                           const index_t end = std::min(nnz_c, begin + kBlock);
                           const int lanes = static_cast<int>(end - begin);
                           if (lanes <= 0) { return; }
                           blk.global_read(lanes, sizeof(index_t),
                                           sim::MemPattern::kCoalesced);
                           blk.global_write(lanes, sizeof(index_t),
                                            sim::MemPattern::kCoalesced);
                       });
            dev.synchronize();
        }
    }

    out.matrix = c.download();
    out.stats.intermediate_products = total_products;
    out.stats.nnz_c = out.matrix.nnz();
    fill_stats_from_device(out.stats, dev);
    return out;
}

template SpgemmOutput<float> cusparse_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                    const CsrMatrix<float>&, int, bool);
template SpgemmOutput<double> cusparse_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                      const CsrMatrix<double>&, int, bool);

}  // namespace nsparse::baseline
