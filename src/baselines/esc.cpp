#include "baselines/esc.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>

#include "baselines/common.hpp"
#include "sparse/validate.hpp"

namespace nsparse::baseline {

namespace {

/// Packed 64-bit (row, col) sort key.
[[nodiscard]] inline std::uint64_t pack_key(index_t row, index_t col)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32U) |
           static_cast<std::uint32_t>(col);
}

/// One LSD radix pass (histogram + scatter kernels) over the key/value
/// triple buffers; functional byte-bucket scatter, cost charged as the two
/// streaming kernels with a random scatter write.
template <ValueType T>
void radix_pass(sim::Device& dev, sim::DeviceBuffer<std::uint64_t>& keys_in,
                sim::DeviceBuffer<T>& vals_in, sim::DeviceBuffer<std::uint64_t>& keys_out,
                sim::DeviceBuffer<T>& vals_out, int shift)
{
    const std::size_t n = keys_in.size();
    constexpr int kBlock = 256;
    constexpr std::size_t kItemsPerBlock = 8 * kBlock;  // thrust-style tiling
    const index_t grid =
        n == 0 ? 0 : to_index((n + kItemsPerBlock - 1) / kItemsPerBlock);

    std::array<std::size_t, 256> hist{};
    for (std::size_t k = 0; k < n; ++k) {
        ++hist[static_cast<std::size_t>((keys_in[k] >> shift) & 0xffU)];
    }
    std::array<std::size_t, 256> pos{};
    std::size_t run = 0;
    for (std::size_t d = 0; d < 256; ++d) {
        pos[d] = run;
        run += hist[d];
    }

    dev.launch(dev.default_stream(), {grid, kBlock, 256 * sizeof(index_t)}, "radix_histogram",
               [&](sim::BlockCtx& blk) {
                   const std::size_t begin = to_size(blk.block_idx()) * kItemsPerBlock;
                   const double items =
                       static_cast<double>(std::min(n, begin + kItemsPerBlock) - begin);
                   if (items <= 0) { return; }
                   const double per_lane = items / kBlock;
                   blk.global_read(kBlock, sizeof(std::uint64_t), sim::MemPattern::kCoalesced,
                                   per_lane);
                   blk.atomic_shared(kBlock, per_lane);
                   blk.int_ops(kBlock, 2.0 * per_lane);
               });
    dev.launch(dev.default_stream(), {grid, kBlock, 256 * sizeof(index_t)}, "radix_scatter",
               [&](sim::BlockCtx& blk) {
                   const std::size_t begin = to_size(blk.block_idx()) * kItemsPerBlock;
                   const double items =
                       static_cast<double>(std::min(n, begin + kItemsPerBlock) - begin);
                   if (items <= 0) { return; }
                   const double per_lane = items / kBlock;
                   blk.global_read(kBlock, sizeof(std::uint64_t) + sizeof(T),
                                   sim::MemPattern::kCoalesced, per_lane);
                   blk.global_write(kBlock, sizeof(std::uint64_t) + sizeof(T),
                                    sim::MemPattern::kRandom, per_lane);
                   blk.int_ops(kBlock, 3.0 * per_lane);
               });
    // Functional scatter (sequential, stable).
    for (std::size_t k = 0; k < n; ++k) {
        const auto d = static_cast<std::size_t>((keys_in[k] >> shift) & 0xffU);
        keys_out[pos[d]] = keys_in[k];
        vals_out[pos[d]] = vals_in[k];
        ++pos[d];
    }
    dev.synchronize();
}

}  // namespace

template <ValueType T>
SpgemmOutput<T> esc_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                           int executor_threads, bool validate_inputs)
{
    if (validate_inputs) { validate_spgemm_inputs(a, b); }
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    dev.set_executor_threads(executor_threads);
    dev.reset_measurement();

    SpgemmOutput<T> out;
    wide_t total_products = 0;
    sim::DeviceCsr<T> c;

    {
        auto setup = dev.phase_scope("setup");
        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);
        auto products = count_products(dev, da, db);
        const auto expand_off = exclusive_scan_wide(dev, products);
        total_products = expand_off.back();
        const auto n_prod = to_size(total_products);

        // The ESC working set: triple list + radix double buffer. This is
        // the allocation that fails for cage15/wb-edu in Table III.
        sim::DeviceBuffer<std::uint64_t> keys(dev.allocator(), n_prod);
        sim::DeviceBuffer<T> vals(dev.allocator(), n_prod);
        sim::DeviceBuffer<std::uint64_t> keys_tmp(dev.allocator(), n_prod);
        sim::DeviceBuffer<T> vals_tmp(dev.allocator(), n_prod);

        {
            // ---- expansion (charged to "count") ----
            auto expand_phase = dev.phase_scope("count");
            constexpr int kBlock = 256;
            const index_t grid =
                a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "esc_expand",
                       [&](sim::BlockCtx& blk) {
                           const index_t begin = blk.block_idx() * kBlock;
                           const index_t end = std::min(a.rows, begin + kBlock);
                           double n_elems = 0.0;
                           for (index_t i = begin; i < end; ++i) {
                               auto cursor = expand_off[to_size(i)];
                               for (index_t j = da.rpt[to_size(i)];
                                    j < da.rpt[to_size(i) + 1]; ++j) {
                                   const index_t d = da.col[to_size(j)];
                                   const T av = da.val[to_size(j)];
                                   for (index_t k = db.rpt[to_size(d)];
                                        k < db.rpt[to_size(d) + 1]; ++k) {
                                       keys[to_size(cursor)] =
                                           pack_key(i, db.col[to_size(k)]);
                                       vals[to_size(cursor)] = av * db.val[to_size(k)];
                                       ++cursor;
                                       n_elems += 1.0;
                                   }
                               }
                           }
                           const int lanes = static_cast<int>(end - begin);
                           if (lanes <= 0) { return; }
                           const auto& m = blk.model();
                           // CUSP's expansion assigns threads to products
                           // evenly (gather offsets via binary search), so
                           // the kernel is balanced: span = work / threads.
                           const double per_elem =
                               m.global_cost(sizeof(index_t) + sizeof(T),
                                             sim::MemPattern::kCoalesced) +
                               m.global_cost(sizeof(std::uint64_t) + sizeof(T),
                                             sim::MemPattern::kCoalesced) +
                               m.flop + 4.0 * m.int_op;
                           blk.charge_work_span(n_elems * per_elem,
                                                n_elems * per_elem / blk.block_dim());
                           blk.add_global_bytes(n_elems * (sizeof(std::uint64_t) + sizeof(T)));
                       });
            dev.synchronize();
        }

        {
            // ---- sort + contraction (charged to "calc") ----
            auto calc_phase = dev.phase_scope("calc");

            const int row_bits =
                a.rows <= 1 ? 1 : static_cast<int>(std::bit_width(to_size(a.rows - 1)));
            const int col_bits =
                b.cols <= 1 ? 1 : static_cast<int>(std::bit_width(to_size(b.cols - 1)));
            const int passes_col = (col_bits + 7) / 8;
            const int passes_row = (row_bits + 7) / 8;
            // LSD over the column byte(s) then the row byte(s).
            int pass = 0;
            for (int p = 0; p < passes_col + passes_row; ++p, ++pass) {
                const int shift = p < passes_col ? 8 * p : 32 + 8 * (p - passes_col);
                if (pass % 2 == 0) {
                    radix_pass(dev, keys, vals, keys_tmp, vals_tmp, shift);
                } else {
                    radix_pass(dev, keys_tmp, vals_tmp, keys, vals, shift);
                }
            }
            auto& skeys = (pass % 2 == 0) ? keys : keys_tmp;
            auto& svals = (pass % 2 == 0) ? vals : vals_tmp;

            // Contraction: flag run heads, segmented-sum values.
            sim::DeviceBuffer<index_t> row_nnz(dev.allocator(), to_size(a.rows));
            row_nnz.fill(0);
            constexpr int kBlock = 256;
            const index_t grid =
                n_prod == 0 ? 0 : to_index((n_prod + kBlock - 1) / to_size(kBlock));
            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "esc_contract_count",
                       [&](sim::BlockCtx& blk) {
                           const std::size_t begin = to_size(blk.block_idx()) * kBlock;
                           const std::size_t end = std::min(n_prod, begin + kBlock);
                           const int lanes = static_cast<int>(end - begin);
                           if (lanes <= 0) { return; }
                           for (std::size_t k = begin; k < end; ++k) {
                               if (k == 0 || skeys[k] != skeys[k - 1]) {
                                   const auto row =
                                       static_cast<index_t>(skeys[k] >> 32U);
                                   // atomicAdd: blocks may share a row at
                                   // their boundary
                                   std::atomic_ref<index_t>(row_nnz[to_size(row)])
                                       .fetch_add(1, std::memory_order_relaxed);
                               }
                           }
                           blk.global_read(lanes, sizeof(std::uint64_t),
                                           sim::MemPattern::kCoalesced);
                           blk.atomic_global(lanes, 0.3);
                           blk.int_ops(lanes, 2.0);
                       });
            dev.synchronize();

            const auto rpt = exclusive_scan(dev, row_nnz);
            c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, rpt.back());
            std::copy(rpt.begin(), rpt.end(), c.rpt.data());

            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "esc_contract_write",
                       [&](sim::BlockCtx& blk) {
                           const std::size_t begin = to_size(blk.block_idx()) * kBlock;
                           const std::size_t end = std::min(n_prod, begin + kBlock);
                           const int lanes = static_cast<int>(end - begin);
                           if (lanes <= 0) { return; }
                           blk.global_read(lanes, sizeof(std::uint64_t) + sizeof(T),
                                           sim::MemPattern::kCoalesced);
                           blk.flops(lanes, 1.0);
                           blk.global_write(lanes, sizeof(index_t) + sizeof(T),
                                            sim::MemPattern::kCoalesced, 0.5);
                       });
            // Functional contraction (sequential over the sorted triples).
            {
                index_t w = -1;
                for (std::size_t k = 0; k < n_prod; ++k) {
                    if (k == 0 || skeys[k] != skeys[k - 1]) {
                        ++w;
                        c.col[to_size(w)] = static_cast<index_t>(skeys[k] & 0xffffffffU);
                        c.val[to_size(w)] = svals[k];
                    } else {
                        c.val[to_size(w)] += svals[k];
                    }
                }
            }
            dev.synchronize();
        }
    }

    out.matrix = c.download();
    out.stats.intermediate_products = total_products;
    out.stats.nnz_c = out.matrix.nnz();
    fill_stats_from_device(out.stats, dev);
    return out;
}

template SpgemmOutput<float> esc_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                               const CsrMatrix<float>&, int, bool);
template SpgemmOutput<double> esc_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                 const CsrMatrix<double>&, int, bool);

}  // namespace nsparse::baseline
