// BHSPARSE-style SpGEMM (Liu & Vinter, IPDPS'14; the paper's "BHSPARSE"
// baseline, related work §V ¶3).
//
// Rows are assigned to bins by their *upper-bound* nonzero count (the
// intermediate-product count) and each bin uses the algorithm that suits
// its size: the heap method for short rows, bitonic ESC in shared memory
// for medium rows, and iterative merge-path in global memory for the
// largest rows. Output is first computed into a CSR allocated at the
// upper bound and compacted afterwards — the allocation that makes
// BHSPARSE run out of memory on cage15/wb-edu in Table III while giving it
// good load balance (and the best baseline numbers) on irregular graphs.
#pragma once

#include "gpusim/algorithm.hpp"

namespace nsparse::baseline {

/// `executor_threads` selects how many host threads run the simulated
/// blocks (0 = hardware_concurrency, 1 = sequential); results and
/// simulated cycles are identical for every value. `validate_inputs`
/// checks both CSR inputs up front (shared validator; throws a
/// PreconditionError naming the violated invariant).
template <ValueType T>
SpgemmOutput<T> bhsparse_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                int executor_threads = 0, bool validate_inputs = false);

extern template SpgemmOutput<float> bhsparse_spgemm<float>(sim::Device&,
                                                           const CsrMatrix<float>&,
                                                           const CsrMatrix<float>&, int, bool);
extern template SpgemmOutput<double> bhsparse_spgemm<double>(sim::Device&,
                                                             const CsrMatrix<double>&,
                                                             const CsrMatrix<double>&, int,
                                                             bool);

}  // namespace nsparse::baseline
