#include "baselines/bhsparse.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "baselines/common.hpp"
#include "sparse/validate.hpp"

namespace nsparse::baseline {

namespace {

/// Bin boundaries by upper-bound (intermediate-product) row size. A
/// condensed version of Liu's 37 bins: what matters for the measured
/// behaviour is which *method* a row gets.
enum class Method { kEmpty, kCopy, kHeap, kBitonicEsc, kMergePath };

struct Bin {
    Method method;
    index_t max_ub;  ///< inclusive upper bound of this bin; -1 = unbounded
    int block_size;  ///< threads per simulated block
    index_t rows_per_block;
};

const std::vector<Bin>& bins()
{
    static const std::vector<Bin> b = {
        {Method::kEmpty, 0, 64, 64},
        {Method::kCopy, 1, 128, 128},
        {Method::kHeap, 64, 128, 128},        // one thread per row, serial heap
        {Method::kBitonicEsc, 512, 128, 1},   // one block per row, shared ESC
        {Method::kBitonicEsc, 2048, 256, 1},
        {Method::kMergePath, -1, 256, 1},     // global-memory merge
    };
    return b;
}

int bin_of(index_t ub)
{
    for (std::size_t k = 0; k < bins().size(); ++k) {
        if (bins()[k].max_ub < 0 || ub <= bins()[k].max_ub) { return static_cast<int>(k); }
    }
    return static_cast<int>(bins().size() - 1);
}

/// Functionally computes row i of C into `cols`/`vals` (sorted, combined)
/// and returns the number of intermediate products consumed.
template <ValueType T>
index_t compute_row(const sim::DeviceCsr<T>& a, const sim::DeviceCsr<T>& b, index_t i,
                    std::vector<index_t>& cols, std::vector<T>& vals)
{
    // Expansion + sort + combine: the functional outcome of the heap /
    // bitonic-ESC / merge-path methods is identical.
    std::vector<std::pair<index_t, T>> prods;
    for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
        const index_t d = a.col[to_size(j)];
        const T av = a.val[to_size(j)];
        for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
            prods.emplace_back(b.col[to_size(k)], av * b.val[to_size(k)]);
        }
    }
    std::sort(prods.begin(), prods.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    cols.clear();
    vals.clear();
    for (const auto& [cj, v] : prods) {
        if (!cols.empty() && cols.back() == cj) {
            vals.back() += v;
        } else {
            cols.push_back(cj);
            vals.push_back(v);
        }
    }
    return to_index(prods.size());
}

}  // namespace

template <ValueType T>
SpgemmOutput<T> bhsparse_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                int executor_threads, bool validate_inputs)
{
    if (validate_inputs) { validate_spgemm_inputs(a, b); }
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    dev.set_executor_threads(executor_threads);
    dev.reset_measurement();

    SpgemmOutput<T> out;
    wide_t total_products = 0;
    sim::DeviceCsr<T> c;

    {
        sim::DeviceBuffer<index_t> products;
        std::vector<std::vector<index_t>> bin_rows(bins().size());
        std::vector<wide_t> ub_off;

        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);

        {
            // ---- setup: upper bounds + binning ----
            auto setup = dev.phase_scope("setup");
            products = count_products(dev, da, db);
            for (std::size_t i = 0; i < products.size(); ++i) {
                total_products += products[i];
            }
            // Binning kernel: classify + scatter (like nsparse grouping but
            // by upper bound).
            constexpr int kBlock = 256;
            const index_t grid = a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "bh_binning",
                       [&](sim::BlockCtx& blk) {
                           const index_t begin = blk.block_idx() * kBlock;
                           const int lanes = static_cast<int>(
                               std::min(a.rows, begin + kBlock) - begin);
                           if (lanes <= 0) { return; }
                           blk.global_read(lanes, sizeof(index_t),
                                           sim::MemPattern::kCoalesced);
                           blk.int_ops(lanes, 8.0);
                           blk.atomic_global(lanes, 1.0);
                           blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kRandom);
                       });
            for (index_t i = 0; i < a.rows; ++i) {
                bin_rows[to_size(bin_of(products[to_size(i)]))].push_back(i);
            }
            // Upper-bound output offsets (rows keep their natural order).
            ub_off.assign(to_size(a.rows) + 1, 0);
            for (index_t i = 0; i < a.rows; ++i) {
                ub_off[to_size(i) + 1] = ub_off[to_size(i)] + products[to_size(i)];
            }
            dev.synchronize();
        }

        // Upper-bound CSR: THE BHSPARSE allocation (col+val at the total
        // intermediate-product count).
        sim::DeviceBuffer<index_t> ub_col(dev.allocator(), to_size(total_products));
        sim::DeviceBuffer<T> ub_val(dev.allocator(), to_size(total_products));
        sim::DeviceBuffer<index_t> row_nnz(dev.allocator(), to_size(a.rows));
        row_nnz.fill(0);

        // Iterative merge-path needs a ping-pong buffer covering the rows
        // of its bin (merging cannot run in place).
        wide_t merge_ub = 0;
        for (const index_t i : bin_rows.back()) { merge_ub += products[to_size(i)]; }
        sim::DeviceBuffer<index_t> merge_tmp_col(dev.allocator(), to_size(merge_ub));
        sim::DeviceBuffer<T> merge_tmp_val(dev.allocator(), to_size(merge_ub));

        {
            // ---- calc: per-bin kernels (one-phase: values computed
            // directly at the upper bound) ----
            auto calc = dev.phase_scope("calc");
            const auto& m = dev.cost_model();

            for (std::size_t bi = 0; bi < bins().size(); ++bi) {
                const Bin& bin = bins()[bi];
                const auto& rows = bin_rows[bi];
                if (rows.empty() || bin.method == Method::kEmpty) { continue; }
                const auto n = to_index(rows.size());
                const index_t grid = (n + bin.rows_per_block - 1) / bin.rows_per_block;
                const sim::Stream stream = dev.create_stream();  // bins run concurrently
                const std::size_t smem =
                    bin.method == Method::kBitonicEsc
                        ? to_size(bin.max_ub) * (sizeof(index_t) + sizeof(T))
                        : 0;
                dev.launch(stream, {grid, bin.block_size, smem}, "bh_bin",
                           [&, bi, n, bin](sim::BlockCtx& blk) {
                               std::vector<index_t> cols;
                               std::vector<T> vals;
                               double block_span = 0.0;
                               double block_work = 0.0;
                               for (index_t r = 0; r < bin.rows_per_block; ++r) {
                                   const index_t idx =
                                       blk.block_idx() * bin.rows_per_block + r;
                                   if (idx >= n) { break; }
                                   const index_t i = bin_rows[bi][to_size(idx)];
                                   const index_t runs = da.row_nnz(i);
                                   const index_t ub = compute_row(da, db, i, cols, vals);
                                   row_nnz[to_size(i)] = to_index(cols.size());
                                   const auto base = to_size(ub_off[to_size(i)]);
                                   for (std::size_t s = 0; s < cols.size(); ++s) {
                                       ub_col[base + s] = cols[s];
                                       ub_val[base + s] = vals[s];
                                   }
                                   // Cost per method. Thread-per-row bins
                                   // (copy/heap) access memory per-thread:
                                   // neighbouring lanes stream *different*
                                   // rows, so reads/writes are uncoalesced.
                                   const bool per_thread = bin.rows_per_block > 1;
                                   const double nd = static_cast<double>(ub);
                                   // Expansion gathers scatter when the
                                   // source B rows are short: each thread
                                   // fetches from a different row, unlike
                                   // nsparse's warp-per-row streaming.
                                   const bool scattered =
                                       per_thread ||
                                       nd < 16.0 * static_cast<double>(std::max<index_t>(
                                                       1, runs));
                                   const double read = m.global_cost(
                                       sizeof(index_t) + sizeof(T),
                                       scattered ? sim::MemPattern::kRandom
                                                 : sim::MemPattern::kCoalesced);
                                   const double write = m.global_cost(
                                       sizeof(index_t) + sizeof(T),
                                       per_thread ? sim::MemPattern::kRandom
                                                  : sim::MemPattern::kCoalesced);
                                   const double logn =
                                       std::log2(std::max(2.0, nd));
                                   double work = 0.0;
                                   double span = 0.0;
                                   switch (bin.method) {
                                       case Method::kCopy:
                                           work = read + write;
                                           span = work;
                                           break;
                                       case Method::kHeap: {
                                           // serial per-thread heap merge:
                                           // the heap has the BIN's size
                                           // (64 entries) and cannot live
                                           // in registers or shared memory,
                                           // so each sift level is 2
                                           // dependent local-memory (DRAM)
                                           // accesses
                                           const double levels = std::log2(
                                               static_cast<double>(bin.max_ub));
                                           work = nd * (read + levels *
                                                              (2.0 * m.global_random +
                                                               m.int_op) +
                                                        m.flop) +
                                                  nd * write;
                                           span = work;  // one thread
                                           break;
                                       }
                                       case Method::kBitonicEsc: {
                                           // expand + bitonic sort + scan +
                                           // compact, block-parallel. A
                                           // compare-exchange is 2 shared
                                           // reads + 2 conditional writes,
                                           // ~4x a rank comparison.
                                           // compare-exchange = 2 reads +
                                           // 2 conditional writes, plus a
                                           // block barrier per stage: ~8x
                                           // a rank comparison
                                           const double sort = nd * logn * logn * 8.0 *
                                                               m.sort_compare_shared;
                                           work = nd * (read + m.flop) + sort +
                                                  nd * (2.0 * m.shared_access) + nd * write;
                                           span = work / bin.block_size +
                                                  logn * logn * m.barrier;
                                           break;
                                       }
                                       case Method::kMergePath: {
                                           // iterative pairwise merging of
                                           // the row's nnzA(row) sorted
                                           // runs: log2(runs) streaming
                                           // (coalesced) passes over all
                                           // products
                                           const double passes = std::max(
                                               1.0, std::ceil(std::log2(std::max(
                                                        2.0, static_cast<double>(runs)))));
                                           const double stream_cost = m.global_cost(
                                               sizeof(index_t) + sizeof(T),
                                               sim::MemPattern::kCoalesced);
                                           work = nd * (read + m.flop) +
                                                  nd * passes * (2.0 * stream_cost + m.int_op) +
                                                  nd * write;
                                           span = work / bin.block_size;
                                           break;
                                       }
                                       case Method::kEmpty: break;
                                   }
                                   if (bin.rows_per_block > 1) {
                                       // thread-per-row bins: rows run in
                                       // parallel lanes
                                       block_span = std::max(block_span, span);
                                       block_work += work;
                                   } else {
                                       block_span += span;
                                       block_work += work;
                                   }
                               }
                               blk.charge_work_span(block_work, block_span);
                           });
            }
            dev.synchronize();

            // Compaction: row pointers + copy upper-bound rows into the
            // final CSR.
            const auto rpt = exclusive_scan(dev, row_nnz);
            c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, rpt.back());
            std::copy(rpt.begin(), rpt.end(), c.rpt.data());
            constexpr int kBlock = 256;
            const index_t grid = a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
            dev.launch(dev.default_stream(), {grid, kBlock, 0}, "bh_compact",
                       [&](sim::BlockCtx& blk) {
                           const index_t begin = blk.block_idx() * kBlock;
                           const index_t end = std::min(a.rows, begin + kBlock);
                           double moved = 0.0;
                           for (index_t i = begin; i < end; ++i) {
                               const auto src = to_size(ub_off[to_size(i)]);
                               const auto dst = to_size(c.rpt[to_size(i)]);
                               const auto len = to_size(row_nnz[to_size(i)]);
                               for (std::size_t s = 0; s < len; ++s) {
                                   c.col[dst + s] = ub_col[src + s];
                                   c.val[dst + s] = ub_val[src + s];
                               }
                               moved += static_cast<double>(len);
                           }
                           const int lanes = static_cast<int>(end - begin);
                           if (lanes <= 0) { return; }
                           const double per =
                               m.global_cost(sizeof(index_t) + sizeof(T),
                                             sim::MemPattern::kCoalesced) *
                               2.0;
                           blk.charge_work_span(moved * per, moved * per / blk.block_dim());
                       });
            dev.synchronize();
        }
    }

    out.matrix = c.download();
    out.stats.intermediate_products = total_products;
    out.stats.nnz_c = out.matrix.nnz();
    fill_stats_from_device(out.stats, dev);
    return out;
}

template SpgemmOutput<float> bhsparse_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                    const CsrMatrix<float>&, int, bool);
template SpgemmOutput<double> bhsparse_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                      const CsrMatrix<double>&, int, bool);

}  // namespace nsparse::baseline
