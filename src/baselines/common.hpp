// Helpers shared by the baseline SpGEMM implementations (each library in
// the paper has its own row-analysis step; the kernels here model the
// common streaming parts).
#pragma once

#include <limits>
#include <numeric>
#include <vector>

#include "gpusim/algorithm.hpp"
#include "gpusim/device_csr.hpp"

namespace nsparse::baseline {

/// Per-row intermediate-product upper bound (every baseline needs it: ESC
/// for the expansion size, cuSPARSE for fallback sizing, BHSPARSE for its
/// bins and upper-bound allocation).
template <ValueType T>
inline sim::DeviceBuffer<index_t> count_products(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                                 const sim::DeviceCsr<T>& b)
{
    sim::DeviceBuffer<index_t> products(dev.allocator(), to_size(a.rows));
    constexpr int kBlock = 256;
    const index_t grid = a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "count_products",
               [&](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kBlock;
                   const index_t end = std::min(a.rows, begin + kBlock);
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   double nnz_seen = 0.0;
                   for (index_t i = begin; i < end; ++i) {
                       wide_t n = 0;
                       for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
                           const index_t d = a.col[to_size(j)];
                           n += b.rpt[to_size(d) + 1] - b.rpt[to_size(d)];
                       }
                       products[to_size(i)] = to_index(n);
                       nnz_seen += static_cast<double>(a.row_nnz(i));
                   }
                   const auto& m = blk.model();
                   const double per_nnz =
                       m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                       m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom);
                   blk.global_read(lanes, 2 * sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.charge_work_span(nnz_seen * per_nnz, nnz_seen / lanes * per_nnz);
                   blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
               });
    dev.synchronize();
    return products;
}

/// Exclusive scan of per-row counts into row pointers, charged as a device
/// scan kernel (functional result computed host-side).
inline std::vector<index_t> exclusive_scan(sim::Device& dev,
                                           const sim::DeviceBuffer<index_t>& counts)
{
    const auto rows = to_index(counts.size());
    std::vector<index_t> rpt(to_size(rows) + 1, 0);
    // Same overflow discipline as core scan_row_pointers: accumulate wide,
    // fail loudly with the same typed IndexOverflow instead of wrapping
    // 32-bit row pointers (the baselines have no 64-bit escalation path).
    wide_t running = 0;
    for (index_t i = 0; i < rows; ++i) {
        running += counts[to_size(i)];
        if (running > std::numeric_limits<index_t>::max()) {
            throw IndexOverflow(
                "scanned counts exceed the 32-bit index range: row pointers cannot be "
                "represented by this baseline",
                i, running);
        }
        rpt[to_size(i) + 1] = static_cast<index_t>(running);
    }
    constexpr int kBlock = 256;
    const index_t grid = rows == 0 ? 0 : (rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "scan", [&](sim::BlockCtx& blk) {
        const index_t begin = blk.block_idx() * kBlock;
        const int lanes = static_cast<int>(std::min(rows, begin + kBlock) - begin);
        if (lanes <= 0) { return; }
        blk.global_read(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
        blk.shared_op(lanes, 16.0);
        blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
    });
    dev.synchronize();
    return rpt;
}

/// 64-bit wide exclusive scan for the ESC expansion offsets (the total
/// number of intermediate products can exceed 2^31).
inline std::vector<wide_t> exclusive_scan_wide(sim::Device& dev,
                                               const sim::DeviceBuffer<index_t>& counts)
{
    const auto rows = to_index(counts.size());
    std::vector<wide_t> off(to_size(rows) + 1, 0);
    for (index_t i = 0; i < rows; ++i) {
        off[to_size(i) + 1] = off[to_size(i)] + counts[to_size(i)];
    }
    constexpr int kBlock = 256;
    const index_t grid = rows == 0 ? 0 : (rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "scan_wide", [&](sim::BlockCtx& blk) {
        const index_t begin = blk.block_idx() * kBlock;
        const int lanes = static_cast<int>(std::min(rows, begin + kBlock) - begin);
        if (lanes <= 0) { return; }
        blk.global_read(lanes, sizeof(wide_t), sim::MemPattern::kCoalesced);
        blk.shared_op(lanes, 16.0);
        blk.global_write(lanes, sizeof(wide_t), sim::MemPattern::kCoalesced);
    });
    dev.synchronize();
    return off;
}

}  // namespace nsparse::baseline
