// ESC (Expansion / Sorting / Contraction) SpGEMM — the algorithm of the
// CUSP library (Bell, Dalton, Olson; paper §II-B and §IV baseline "CUSP").
//
// Every intermediate product is materialised as a (row, col, value) triple,
// the triple list is radix-sorted by packed (row, col) key, and runs of
// equal keys are contracted into output nonzeros. Throughput is therefore
// almost independent of the matrix (the paper's "CUSP achieves constant
// performance for all matrices") and memory grows with the number of
// intermediate products — which is why CUSP cannot run cage15/wb-edu in
// Table III.
#pragma once

#include "gpusim/algorithm.hpp"

namespace nsparse::baseline {

/// `executor_threads` selects how many host threads run the simulated
/// blocks (0 = hardware_concurrency, 1 = sequential); results and
/// simulated cycles are identical for every value. `validate_inputs`
/// checks both CSR inputs up front (shared validator; throws a
/// PreconditionError naming the violated invariant).
template <ValueType T>
SpgemmOutput<T> esc_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                           int executor_threads = 0, bool validate_inputs = false);

extern template SpgemmOutput<float> esc_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                      const CsrMatrix<float>&, int, bool);
extern template SpgemmOutput<double> esc_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                        const CsrMatrix<double>&, int, bool);

}  // namespace nsparse::baseline
