// cuSPARSE-style two-phase hash SpGEMM (Demouth, GTC 2012; the paper's
// "cuSPARSE" baseline and related work §V ¶1).
//
// One warp per row for *all* rows — no grouping — with a fixed-size shared
// hash table per warp and a global-memory fallback for rows that do not
// fit ("this algorithm causes many random global memory access and do not
// efficiently utilize fast shared memory"). Uses true-modulus hashing
// (not power-of-two bit-ops). The missing row grouping is what makes it
// collapse on skewed matrices (webbase, cit-Patents) while staying strong
// on regular ones, exactly as the paper's Figures 2-3 show.
#pragma once

#include "gpusim/algorithm.hpp"

namespace nsparse::baseline {

/// `executor_threads` selects how many host threads run the simulated
/// blocks (0 = hardware_concurrency, 1 = sequential); results and
/// simulated cycles are identical for every value. `validate_inputs`
/// checks both CSR inputs up front (shared validator; throws a
/// PreconditionError naming the violated invariant).
template <ValueType T>
SpgemmOutput<T> cusparse_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                int executor_threads = 0, bool validate_inputs = false);

extern template SpgemmOutput<float> cusparse_spgemm<float>(sim::Device&,
                                                           const CsrMatrix<float>&,
                                                           const CsrMatrix<float>&, int, bool);
extern template SpgemmOutput<double> cusparse_spgemm<double>(sim::Device&,
                                                             const CsrMatrix<double>&,
                                                             const CsrMatrix<double>&, int,
                                                             bool);

}  // namespace nsparse::baseline
