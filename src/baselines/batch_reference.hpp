// Loop-of-singles batch reference: multiplies each product with an
// independent hash_spgemm call on a FRESH device, exactly as a caller
// without the batched API would. This is the differential oracle for the
// batch test battery (core::spgemm_batch must match it byte for byte,
// product by product) and the "no batching" side of bench_batch — it pays
// a full allocator lifecycle and sequential schedule per product, which is
// precisely the overhead spgemm_batch amortizes.
#pragma once

#include <exception>
#include <span>
#include <string>
#include <vector>

#include "core/spgemm.hpp"
#include "gpusim/algorithm.hpp"

namespace nsparse::baseline {

template <ValueType T>
struct BatchReferenceItem {
    SpgemmOutput<T> out;
    std::exception_ptr error;   ///< null when the product succeeded
    std::string error_message;  ///< what() of the captured error
    [[nodiscard]] bool ok() const { return error == nullptr; }
};

template <ValueType T>
struct BatchReferenceOutput {
    std::vector<BatchReferenceItem<T>> items;
    double total_seconds = 0.0;  ///< summed per-product simulated seconds
    int failed = 0;
};

/// Runs hash_spgemm per product on its own device built by `make_device`
/// (e.g. []{ return sim::Device(sim::DeviceSpec::pascal_p100()); }), so
/// products share nothing — no scratch pool, no overlap, fresh peak/
/// timeline per product. Errors are captured per item like spgemm_batch's
/// contained mode, making the two outputs directly comparable.
template <ValueType T, typename MakeDevice>
BatchReferenceOutput<T> batch_reference(MakeDevice&& make_device,
                                        std::span<const CsrMatrix<T>* const> as,
                                        std::span<const CsrMatrix<T>* const> bs,
                                        const core::Options& opt = {})
{
    NSPARSE_EXPECTS(as.size() == bs.size(), "batch A and B lists must have equal length");
    BatchReferenceOutput<T> ref;
    ref.items.resize(as.size());
    for (std::size_t k = 0; k < as.size(); ++k) {
        auto& slot = ref.items[k];
        try {
            sim::Device dev = make_device();
            slot.out = hash_spgemm<T>(dev, *as[k], *bs[k], opt);
            ref.total_seconds += slot.out.stats.seconds;
        } catch (const Error& e) {
            slot.error = std::current_exception();
            slot.error_message = e.what();
            ++ref.failed;
        }
    }
    return ref;
}

/// Convenience overload for pointer vectors.
template <ValueType T, typename MakeDevice>
BatchReferenceOutput<T> batch_reference(MakeDevice&& make_device,
                                        const std::vector<const CsrMatrix<T>*>& as,
                                        const std::vector<const CsrMatrix<T>*>& bs,
                                        const core::Options& opt = {})
{
    return batch_reference<T>(static_cast<MakeDevice&&>(make_device),
                              std::span<const CsrMatrix<T>* const>(as),
                              std::span<const CsrMatrix<T>* const>(bs), opt);
}

}  // namespace nsparse::baseline
