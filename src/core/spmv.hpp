// Simulated-device SpMV (y = A x), the background kernel of §II-A: the
// paper frames SpGEMM relative to the well-understood SpMV. Included so
// iterative-solver workloads can run entirely on the simulated device and
// as a simple reference point for the cost model.
//
// Adaptive CSR-vector scheme: one warp per row when the mean row is long
// enough to occupy it, otherwise one thread per row (the standard
// CSR-scalar/CSR-vector split of Bell & Garland [5]).
#pragma once

#include <cmath>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"

namespace nsparse {

struct SpmvStats {
    double seconds = 0.0;         ///< total incl. upload + allocation
    double kernel_seconds = 0.0;  ///< the SpMV kernel alone (what iterative
                                  ///< solvers amortize uploads over)
    double gflops = 0.0;          ///< 2*nnz / kernel time
};

template <ValueType T>
SpmvStats spmv_device(sim::Device& dev, const CsrMatrix<T>& a, std::span<const T> x,
                      std::span<T> y)
{
    NSPARSE_EXPECTS(x.size() == to_size(a.cols), "spmv: x size mismatch");
    NSPARSE_EXPECTS(y.size() == to_size(a.rows), "spmv: y size mismatch");
    dev.reset_measurement();

    const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
    sim::DeviceBuffer<T> dx(dev.allocator(), x);
    sim::DeviceBuffer<T> dy(dev.allocator(), y.size());

    const double mean_row = a.rows == 0
                                ? 0.0
                                : static_cast<double>(a.nnz()) / static_cast<double>(a.rows);
    const bool vector_kernel = mean_row >= 8.0;
    constexpr int kBlock = 256;
    const index_t rows_per_block = vector_kernel ? kBlock / 32 : kBlock;
    const index_t grid =
        a.rows == 0 ? 0 : (a.rows + rows_per_block - 1) / rows_per_block;

    {
        auto phase = dev.phase_scope("calc");
        dev.launch(dev.default_stream(), {grid, kBlock, 0},
                   vector_kernel ? "spmv_csr_vector" : "spmv_csr_scalar",
                   [&](sim::BlockCtx& blk) {
                       const index_t begin = blk.block_idx() * rows_per_block;
                       const index_t end = std::min(a.rows, begin + rows_per_block);
                       const auto& m = blk.model();
                       double block_work = 0.0;
                       double block_span = 0.0;
                       for (index_t i = begin; i < end; ++i) {
                           T acc{0};
                           const index_t len = da.row_nnz(i);
                           for (index_t k = da.rpt[to_size(i)]; k < da.rpt[to_size(i) + 1];
                                ++k) {
                               acc += da.val[to_size(k)] *
                                      dx[to_size(da.col[to_size(k)])];
                           }
                           dy[to_size(i)] = acc;
                           // per element: col+val streamed, x gathered, fma
                           const double per_elem =
                               m.global_cost(sizeof(index_t) + sizeof(T),
                                             sim::MemPattern::kCoalesced) +
                               m.global_cost(sizeof(T), sim::MemPattern::kRandom) + 2.0 * m.flop;
                           const double row_work = static_cast<double>(len) * per_elem;
                           block_work += row_work;
                           if (vector_kernel) {
                               // 32 lanes share the row; spans overlap
                               block_span = std::max(
                                   block_span,
                                   std::ceil(static_cast<double>(len) / 32.0) * per_elem +
                                       5.0 * m.warp_shuffle);
                           } else {
                               block_span = std::max(block_span, row_work);
                           }
                       }
                       blk.charge_work_span(block_work, block_span);
                   });
    }

    std::copy(dy.span().begin(), dy.span().end(), y.begin());
    SpmvStats s;
    s.seconds = dev.elapsed();
    s.kernel_seconds = dev.timeline().phase("calc");
    s.gflops = s.kernel_seconds > 0
                   ? 2.0 * static_cast<double>(a.nnz()) / s.kernel_seconds / 1e9
                   : 0.0;
    return s;
}

}  // namespace nsparse
