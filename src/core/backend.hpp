// Execution backends of the hash SpGEMM pipeline.
//
// The same symbolic/numeric algorithm (Options, planning modes, fault
// containment, the OOM recovery ladder) runs on either of two backends:
//
//   * kSimulated — the paper reproduction: kernels execute as block
//     functors on the virtual Pascal device and every result is charged
//     simulated cycles (gpusim/). This is the default and the backend all
//     figure/table benchmarks model.
//   * kNative — the kernels run directly on the host worker pool
//     (sim::WorkerPool) with thread-private hash tables; the metric is
//     wall-clock, not simulated cycles (core/backend_native.hpp).
//
// Both backends produce byte-identical CSR output for every plan mode and
// thread count — the backend only decides *how fast* and *what the timing
// stats mean*, never what C contains.
#pragma once

#include <optional>
#include <string_view>

namespace nsparse::core {

enum class BackendKind {
    kSimulated,  ///< virtual Pascal device, simulated cycles (the paper)
    kNative,     ///< host threads, wall-clock performance
};

[[nodiscard]] constexpr const char* to_string(BackendKind b)
{
    switch (b) {
    case BackendKind::kSimulated: return "simulated";
    case BackendKind::kNative: return "native";
    }
    return "unknown";
}

/// Parses a backend name ("simulated" / "native", as printed by to_string);
/// nullopt on anything else so callers can report the bad value themselves
/// (bench flags, env overrides).
[[nodiscard]] constexpr std::optional<BackendKind> parse_backend(std::string_view name)
{
    if (name == "simulated") { return BackendKind::kSimulated; }
    if (name == "native") { return BackendKind::kNative; }
    return std::nullopt;
}

}  // namespace nsparse::core
