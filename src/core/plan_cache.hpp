// Reusable per-operand-pair planning artifacts (the service layer's
// operand cache, ROADMAP "plan/operand caching + QoS").
//
// The pipeline's planning work — per-row product counts (kernel 1), the
// exact row-nnz histogram (symbolic phase), the numeric grouping
// permutation (kernel 6) and the fitted estimation model — is a pure
// function of the operand pair (A, B) and a few grouping knobs. Repeated
// operands (A^k chains, AMG Galerkin triple products) re-derive all of it
// from scratch on every call; these structs let a caller capture the
// artifacts from one multiply and hand them back to a later one, which
// then skips the corresponding kernels. The warm run is byte-identical to
// the cold run by construction: every reused artifact equals what the
// skipped kernel would have recomputed, and the estimation path is
// byte-identical for *any* plan (core/numeric_estimated.hpp repairs
// mispredictions bit-identically), so a model fitted on an earlier request
// is as good as a freshly sampled one.
#pragma once

#include <cstddef>
#include <vector>

#include "core/estimator.hpp"
#include "gpusim/device_csr.hpp"
#include "sparse/types.hpp"

namespace nsparse::core::detail {

/// Host-side planning artifacts of one (A, B) pair. Which fields are
/// present depends on the plan mode that captured them: exact runs fill
/// the row-nnz histogram and the numeric grouping, estimated/hybrid runs
/// fill the model (and the histogram, which is exact by the end of the
/// repair pipeline). All fields are pattern+value derived — the owner
/// keys them by a content fingerprint of both operands.
struct CachedPlanArtifacts {
    /// Kernel-1 output: per-row intermediate products of A*B.
    std::vector<index_t> products;
    wide_t total_products = 0;

    /// Exact per-row nnz of C (the symbolic phase's result). A warm exact
    /// run skips the symbolic grouping + count entirely.
    std::vector<index_t> row_nnz;
    bool has_row_nnz = false;

    /// Numeric grouping of the exact path (permutation + group offsets),
    /// valid only when the consumer's pwarp knobs match the captured ones
    /// (the policy derivation depends on them).
    std::vector<index_t> num_perm;
    std::vector<index_t> num_offsets;
    int grouping_pwarp_width = 0;
    bool grouping_use_pwarp = true;
    bool has_grouping = false;

    /// Fitted estimation model (estimated/hybrid capture). A warm
    /// estimated run skips the sampling pass and classifies every row
    /// from this model.
    NnzEstimateModel model;
    bool has_model = false;

    [[nodiscard]] std::size_t byte_size() const
    {
        return (products.size() + row_nnz.size() + num_perm.size() + num_offsets.size()) *
                   sizeof(index_t) +
               sizeof(CachedPlanArtifacts) + model.buckets.size() * sizeof(EstimateBucket);
    }
};

/// What one multiply attempt may consume and produce, threaded through
/// multiply_attempt as a defaulted parameter so every existing caller is
/// a cold run. `warm` artifacts are consulted (fields gated by their
/// has_* flags and knob match); `capture` is filled on a successful
/// attempt so the owner can insert it into its cache. The resident
/// pointers stand in for the H2D uploads of A / B; they must outlive the
/// attempt and match the host matrices bit-for-bit (the owner keys them
/// by content fingerprint).
template <ValueType T>
struct AttemptCache {
    const CachedPlanArtifacts* warm = nullptr;
    CachedPlanArtifacts* capture = nullptr;
    const sim::DeviceCsr<T>* resident_a = nullptr;
    const sim::DeviceCsr<T>* resident_b = nullptr;

    [[nodiscard]] bool any() const
    {
        return warm != nullptr || capture != nullptr || resident_a != nullptr ||
               resident_b != nullptr;
    }
};

}  // namespace nsparse::core::detail
