// Estimation-based symbolic planning (OCEAN-style: "Fast Estimation-Based
// SpGEMM on GPU").
//
// Instead of counting every output row exactly, the planner samples a
// small deterministic subset of rows, counts those exactly on per-row
// global tables (charged to the "estimate" trace phase), and fits a
// two-part model of the compression ratio nnz(C_i)/products_i:
//   - per log2(products) bucket, the empirical mean and spread of the
//     sampled ratios (rows with similar product counts collide similarly);
//   - a birthday-style hash-collision model with an effective column
//     universe fitted from the largest sampled row, used to extrapolate to
//     buckets the sample did not reach (hub rows).
// The model predicts every unsampled row's nnz, a padded planning capacity
// (mean + 2 sigma of its bucket) and a confidence score. Underestimates
// are absorbed bit-identically downstream by the group-0 retry safety net
// (core/numeric_estimated.hpp), so the plan never has to be right — only
// cheap and usually right.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <vector>

#include "core/fault.hpp"
#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/options.hpp"
#include "core/symbolic.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"

namespace nsparse::core {

/// One log2(products) bucket of the sampled ratio distribution.
struct EstimateBucket {
    int samples = 0;
    double mean_ratio = 0.0;  ///< mean nnz/products of the sampled rows
    double m2 = 0.0;          ///< Welford sum of squared deviations
    double confidence = 0.0;  ///< 0..1; grows with samples, shrinks with spread

    [[nodiscard]] double sigma() const
    {
        return samples <= 0 ? 0.0 : std::sqrt(m2 / static_cast<double>(samples));
    }
};

/// The fitted sample + hash-collision model.
struct NnzEstimateModel {
    static constexpr int kBuckets = 33;  ///< index = bit_width(products) in [1, 32]
    std::vector<EstimateBucket> buckets =
        std::vector<EstimateBucket>(static_cast<std::size_t>(kBuckets));
    double effective_cols = 1.0;    ///< fitted column universe of the collision model
    double global_mean_ratio = 1.0; ///< sample-weighted mean ratio
    double global_confidence = 0.0; ///< sample-weighted mean bucket confidence
    double cost_per_product = 0.0;  ///< sampled symbolic work-cycles per product
    HashTableStats probe_stats;     ///< collision evidence from the sample pass
    /// Largest nnz a numeric shared-memory table holds (set by the planner
    /// from the device spec). A row whose padded prediction exceeds it runs
    /// on a per-row global table regardless, where the quadratic emit sort
    /// dwarfs the linear table scan — so such rows get the exact-safe
    /// *storage* capacity min(products, cols) instead of a padded guess
    /// (a hub-row misprediction would double the most expensive rows in
    /// the matrix), while plan_nnz() keeps their table prediction-sized.
    index_t shared_nnz_limit = std::numeric_limits<index_t>::max();

    /// Predicted output nnz of a row with `products` intermediate products.
    [[nodiscard]] double predict(index_t products) const;
    /// Padded (mean + `sigmas` sigma / extrapolation-scaled) nnz
    /// prediction, unclamped.
    [[nodiscard]] double padded_nnz(index_t products, double sigmas = 2.0) const;
    /// Pad *storage* reserved for the row, clamped to [1, min(products, cols)]:
    /// the 3-sigma padded prediction (storage overflow costs a full row
    /// recompute; slack only costs memory), or the no-risk bound above
    /// shared_nnz_limit.
    [[nodiscard]] index_t capacity(index_t products, index_t cols) const;
    /// Planning nnz used for numeric grouping and hash-table sizing: the
    /// padded prediction (doubled above shared_nnz_limit, where a bigger
    /// global table is cheap insurance), clamped like capacity. Always
    /// <= capacity(), so a row whose planned table held its keys can still
    /// overflow storage only below the shared limit — never on hub rows.
    [[nodiscard]] index_t plan_nnz(index_t products, index_t cols) const;
    /// Confidence of the prediction for this product count (0..1).
    [[nodiscard]] double confidence(index_t products) const;
};

/// Deterministically picks the rows the estimator counts exactly: a jittered
/// stride over the product-bearing rows plus the largest-product hub row.
/// Returns sorted unique row indices; empty when no row has products.
[[nodiscard]] std::vector<index_t> choose_sample_rows(std::span<const index_t> products,
                                                      double sample_rate);

/// Fits the bucket + collision model from exactly counted sample rows.
/// `sample_work_cycles` is the total simulated work the sample pass charged,
/// used to calibrate cost_per_product (and through it symbolic_cycles_saved).
[[nodiscard]] NnzEstimateModel fit_nnz_model(std::span<const index_t> sample_rows,
                                             std::span<const index_t> sample_products,
                                             std::span<const index_t> sample_nnz,
                                             double sample_work_cycles,
                                             const HashTableStats& probe_stats);

namespace detail {

/// Global table size for a one-off exact row count: room for every distinct
/// column (<= min(products, cols)) at load factor <= 0.5, clamped to >= 1
/// entry (the zero-size guard of the planner, see hash_slot).
[[nodiscard]] inline index_t estimate_count_table(index_t products, index_t cols)
{
    const index_t need = std::max<index_t>(1, std::min(products, cols));
    const index_t base = next_pow2(need);
    return base >= (index_t{1} << 30) ? base : base * 2;
}

}  // namespace detail

/// Result of one contained exact-count pass over an explicit row list.
struct CountRowsOutcome {
    PhaseFaults faults;
    double work_cycles = 0.0;      ///< total kernel work charged (cost-model cycles)
    HashTableStats probe_stats;    ///< merged probe tally across the counted rows
};

/// Counts `rows` exactly on per-row global tables, writing nnz into the
/// host-side `nnz_out[row]`. Mirrors the group-0 containment contract of
/// symbolic_phase: rows listed in `inject` fault on the first attempt,
/// saturated rows retry on doubling tables (bounded by opt.max_row_retries),
/// stragglers fall back to the host count. Charged to the device's current
/// phase under `kernel_name`.
template <ValueType T>
CountRowsOutcome count_rows_contained(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                      const sim::DeviceCsr<T>& b,
                                      std::span<const index_t> rows,
                                      std::span<const index_t> products,
                                      std::span<index_t> nnz_out, const Options& opt,
                                      const std::vector<std::uint8_t>& inject,
                                      const char* kernel_name)
{
    CountRowsOutcome out;
    if (rows.empty()) { return out; }
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/false, sizeof(T));

    std::vector<index_t> pending;
    int attempt = 0;  // 0 = the first (injectable) attempt, then doubling retries
    std::vector<index_t> current(rows.begin(), rows.end());
    while (!current.empty() && attempt <= opt.max_row_retries) {
        // Symbolic tables are keys only, so most rows count in shared
        // memory at the same probe costs as the symbolic pass this stands
        // in for; oversized tables go to per-launch global arenas. Rows
        // are bucketed by table size — one launch per size, with block
        // size and declared shared bytes matched to the table, so small
        // sampled rows pack densely on the SMs instead of every row
        // claiming a worst-case block.
        const std::size_t n = current.size();
        std::vector<std::uint8_t> still(n, 0);
        // Per-row (= per-block) outputs so the executor threads never share
        // a cell: counts, work tallies and probe statistics all reduce
        // host-side in row order afterwards.
        std::vector<double> row_work(n, 0.0);
        std::vector<HashTableStats> row_probes(n);
        std::vector<index_t> tsizes(n);
        std::map<index_t, std::vector<std::size_t>> buckets;  // table size -> positions
        for (std::size_t r = 0; r < n; ++r) {
            const index_t base =
                detail::estimate_count_table(products[to_size(current[r])], b.cols);
            tsizes[r] = detail::retry_table_size(base, attempt);
            buckets[tsizes[r]].push_back(r);
        }
        // One arena (single allocation) backs every oversized table of the
        // attempt; each global bucket gets a base offset into it.
        std::map<index_t, std::size_t> arena_base;  // table size -> base offset
        std::size_t arena_total = 0;
        for (const auto& [tsize, pos] : buckets) {
            if (to_size(tsize) * sizeof(index_t) > dev.spec().max_shared_per_block) {
                arena_base[tsize] = arena_total;
                arena_total += pos.size() * to_size(tsize);
            }
        }
        sim::DeviceBuffer<index_t> arena;
        if (arena_total > 0) {
            arena = sim::DeviceBuffer<index_t>(dev.allocator(), arena_total);
            arena.fill(kEmptySlot);
        }
        for (const auto& [tsize, pos] : buckets) {
            const std::size_t bytes = to_size(tsize) * sizeof(index_t);
            const bool sh = !arena_base.contains(tsize);
            const std::size_t base = sh ? 0 : arena_base[tsize];
            const int block = std::clamp(static_cast<int>(tsize / 4), 64,
                                         dev.spec().max_threads_per_block);
            const int warps = std::max(1, block / dev.spec().warp_size);
            const sim::Stream stream =
                opt.use_streams ? dev.create_stream() : dev.default_stream();
            dev.launch(stream, {to_index(pos.size()), block, sh ? bytes : 0}, kernel_name,
                       [&, &pos = pos, tsize = tsize, block, warps, sh, base,
                        attempt](sim::BlockCtx& blk) {
                           const auto q = to_size(blk.block_idx());
                           const std::size_t r = pos[q];
                           const index_t i = current[r];
                           if (attempt == 0 && !inject.empty() && inject[to_size(i)] != 0) {
                               still[r] = 1;
                               return;
                           }
                           std::span<index_t> table;
                           if (sh) {
                               table = blk.shared_alloc<index_t>(to_size(tsize));
                               std::fill(table.begin(), table.end(), kEmptySlot);
                               blk.shared_op(block, std::ceil(static_cast<double>(tsize) /
                                                              block));
                           } else {
                               table = arena.span().subspan(base + q * to_size(tsize),
                                                            to_size(tsize));
                               blk.global_write(block, sizeof(index_t),
                                                sim::MemPattern::kCoalesced,
                                                std::ceil(static_cast<double>(tsize) /
                                                          block));
                           }
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           const index_t nz = detail::count_row_hashed(
                               a, b, i, table, true, ec,
                               sh ? ec.probe_shared : ec.probe_global,
                               sh ? ec.insert_shared : ec.insert_global, warp_cycles,
                               dev.spec().warp_size, &row_probes[r]);
                           if (nz < 0) {
                               still[r] = 1;
                           } else {
                               nnz_out[to_size(i)] = nz;
                           }
                           const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                               dev.cost_model().barrier;
                           const double work = detail::sum(warp_cycles) * 32.0;
                           row_work[r] = work;
                           blk.charge_work_span(work, detail::max_of(warp_cycles) + tail);
                       });
        }
        dev.synchronize();
        for (std::size_t r = 0; r < n; ++r) {
            out.work_cycles += row_work[r];
            out.probe_stats.operations += row_probes[r].operations;
            out.probe_stats.probes += row_probes[r].probes;
            out.probe_stats.inserts += row_probes[r].inserts;
        }
        if (attempt > 0) { out.faults.row_retries += static_cast<int>(n); }
        std::vector<index_t> next;
        for (std::size_t r = 0; r < n; ++r) {
            if (still[r] == 0) { continue; }
            next.push_back(current[r]);
            if (attempt == 0) {
                ++out.faults.faulted_rows;
                dev.record_fault_event("estimate_count_fault", 0, current[r], tsizes[r],
                                       static_cast<int>(tsizes[r]), 0);
            } else {
                dev.record_fault_event("estimate_count_retry", 0, current[r], tsizes[r],
                                       static_cast<int>(tsizes[r]), attempt);
            }
        }
        current = std::move(next);
        ++attempt;
    }

    // Host reference recourse: count the remaining rows directly.
    for (const index_t i : current) {
        std::vector<index_t> cols;
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t d = a.col[to_size(j)];
            for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
                cols.push_back(b.col[to_size(k)]);
            }
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        nnz_out[to_size(i)] = to_index(cols.size());
        ++out.faults.host_fallback_rows;
        dev.record_fault_event("estimate_host_count", 0, i, 0, 0, attempt);
    }
    return out;
}

/// The estimation-based row plan of one multiply: a planned output capacity
/// per row plus which of those are exact counts vs model predictions.
struct RowPlan {
    std::vector<index_t> capacity;     ///< pad storage reserved per row
    std::vector<index_t> plan_nnz;     ///< grouping / table-sizing nnz (<= capacity)
    std::vector<std::uint8_t> exact;   ///< 1 = capacity is the exact nnz
    std::vector<index_t> lowconf;      ///< hybrid: rows still needing an exact count
    NnzEstimateModel model;
    int sampled_rows = 0;
    int estimated_rows = 0;            ///< rows planned from the model
    double symbolic_cycles_saved = 0.0;
    PhaseFaults sample_faults;         ///< containment tally of the sample pass
};

/// Samples, fits the model and classifies every row (run under the
/// "estimate" phase). Rows in `lowconf` still carry capacity 0 / exact 0:
/// the caller counts them under the shrunken symbolic pass (so the cost
/// lands in the "count" bucket like the pass it replaces) and marks them
/// exact. Product-free rows are exact by construction.
template <ValueType T>
RowPlan build_row_plan(sim::Device& dev, const sim::DeviceCsr<T>& a, const sim::DeviceCsr<T>& b,
                       const sim::DeviceBuffer<index_t>& products, const Options& opt)
{
    RowPlan plan;
    const auto rows = to_size(a.rows);
    plan.capacity.assign(rows, 0);
    plan.plan_nnz.assign(rows, 0);
    plan.exact.assign(rows, 0);

    const std::span<const index_t> prod(products.data(), rows);
    const std::vector<index_t> sample = choose_sample_rows(prod, opt.estimate_sample_rate);
    plan.sampled_rows = static_cast<int>(sample.size());

    // Exact counts for the sample (honours symbolic fault injection like
    // the pass it stands in for; injected sampled rows flow through the
    // same containment retries and still calibrate the model).
    const std::vector<std::uint8_t> inject =
        detail::inject_flags(opt.inject_symbolic_row_faults, a.rows);
    const CountRowsOutcome counted = count_rows_contained(
        dev, a, b, sample, prod, std::span<index_t>(plan.capacity), opt, inject,
        "estimate_sample");
    plan.sample_faults = counted.faults;

    std::vector<index_t> sample_products(sample.size());
    std::vector<index_t> sample_nnz(sample.size());
    for (std::size_t s = 0; s < sample.size(); ++s) {
        sample_products[s] = prod[to_size(sample[s])];
        sample_nnz[s] = plan.capacity[to_size(sample[s])];
        plan.plan_nnz[to_size(sample[s])] = sample_nnz[s];
        plan.exact[to_size(sample[s])] = 1;
    }
    plan.model = fit_nnz_model(sample, sample_products, sample_nnz, counted.work_cycles,
                               counted.probe_stats);
    // The numeric grouping's shared/global boundary: rows predicted past
    // the largest shared table land in the per-row-global group 0.
    plan.model.shared_nnz_limit =
        GroupingPolicy::numeric(dev.spec(), sizeof(T), opt.pwarp_width, opt.use_pwarp)
            .max_shared_table;

    const bool hybrid = opt.plan_mode == PlanMode::kHybrid;
    wide_t estimated_products = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        if (plan.exact[to_size(i)] != 0) { continue; }
        const index_t p = prod[to_size(i)];
        if (p <= 0) {
            // No products, no output: exact without counting anything.
            plan.exact[to_size(i)] = 1;
            continue;
        }
        if (hybrid && plan.model.confidence(p) < opt.estimate_confidence) {
            plan.lowconf.push_back(i);
            continue;
        }
        plan.capacity[to_size(i)] = plan.model.capacity(p, b.cols);
        plan.plan_nnz[to_size(i)] = plan.model.plan_nnz(p, b.cols);
        ++plan.estimated_rows;
        estimated_products += p;
    }
    plan.symbolic_cycles_saved =
        plan.model.cost_per_product * static_cast<double>(estimated_products);
    return plan;
}

/// Plans every row from an already-fitted model without re-sampling (the
/// operand cache's warm estimated path): no exact count pass runs, so
/// sampled_rows is 0 and every product-bearing row is either planned from
/// the model or (hybrid, low confidence) queued for the caller's shrunken
/// exact count — the same downstream contract as build_row_plan. The
/// shared/global boundary is re-derived from the *current* options, so a
/// model captured under different pwarp knobs still classifies correctly.
/// Output is byte-identical to a sampled plan because the repair pipeline
/// absorbs any plan bit-identically; only the estimation stats differ.
template <ValueType T>
RowPlan build_row_plan_from_model(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                  const sim::DeviceCsr<T>& b,
                                  const sim::DeviceBuffer<index_t>& products,
                                  const Options& opt, const NnzEstimateModel& model)
{
    RowPlan plan;
    const auto rows = to_size(a.rows);
    plan.capacity.assign(rows, 0);
    plan.plan_nnz.assign(rows, 0);
    plan.exact.assign(rows, 0);
    plan.model = model;
    plan.model.shared_nnz_limit =
        GroupingPolicy::numeric(dev.spec(), sizeof(T), opt.pwarp_width, opt.use_pwarp)
            .max_shared_table;

    const std::span<const index_t> prod(products.data(), rows);
    const bool hybrid = opt.plan_mode == PlanMode::kHybrid;
    wide_t estimated_products = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        const index_t p = prod[to_size(i)];
        if (p <= 0) {
            plan.exact[to_size(i)] = 1;
            continue;
        }
        if (hybrid && plan.model.confidence(p) < opt.estimate_confidence) {
            plan.lowconf.push_back(i);
            continue;
        }
        plan.capacity[to_size(i)] = plan.model.capacity(p, b.cols);
        plan.plan_nnz[to_size(i)] = plan.model.plan_nnz(p, b.cols);
        ++plan.estimated_rows;
        estimated_products += p;
    }
    plan.symbolic_cycles_saved =
        plan.model.cost_per_product * static_cast<double>(estimated_products);
    return plan;
}

}  // namespace nsparse::core
