#include "core/estimator.hpp"

#include <bit>

namespace nsparse::core {

namespace {

/// Deterministic 64-bit mixer (splitmix64 finalizer) for the sample-row
/// jitter: no RNG state, same picks on every platform and call site.
std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Bucket index of a product count: bit_width(products), clamped.
int bucket_of(index_t products)
{
    const int w = static_cast<int>(
        std::bit_width(static_cast<std::uint32_t>(std::max<index_t>(products, 1))));
    return std::min(w, NnzEstimateModel::kBuckets - 1);
}

/// Expected distinct count of `p` draws from a universe of `c` columns
/// (the birthday / hash-collision model): c * (1 - (1 - 1/c)^p).
double expected_distinct(double p, double c)
{
    if (c <= 1.0) { return std::min(p, 1.0); }
    return c * (1.0 - std::exp(p * std::log1p(-1.0 / c)));
}

}  // namespace

std::vector<index_t> choose_sample_rows(std::span<const index_t> products, double sample_rate)
{
    std::vector<index_t> all_bearing;
    wide_t total_products = 0;
    for (std::size_t i = 0; i < products.size(); ++i) {
        if (products[i] <= 0) { continue; }
        all_bearing.push_back(to_index(i));
        total_products += products[i];
    }
    if (all_bearing.empty()) { return {}; }

    // Span cap: sampled rows are counted exactly, and a count's span grows
    // with the row's products — one giant row would gate the whole sample
    // pass on its own latency, the very cost estimation exists to dodge.
    // Rows above the cap are left to the collision-model extrapolation
    // (their storage comes from the no-risk capacity bound anyway).
    const index_t cap = std::max<index_t>(
        2048, to_index(16 * (total_products / static_cast<wide_t>(all_bearing.size()))));
    std::vector<index_t> bearing;
    index_t hub = -1;  // largest row still under the span cap
    wide_t hub_products = 0;
    for (const index_t i : all_bearing) {
        if (products[to_size(i)] > cap) { continue; }
        bearing.push_back(i);
        if (products[to_size(i)] > hub_products) {
            hub_products = products[to_size(i)];
            hub = i;
        }
    }
    if (bearing.empty()) {
        // Pathological: every row exceeds the cap. Sample the smallest row
        // so the model still has one observation.
        index_t smallest = all_bearing.front();
        for (const index_t i : all_bearing) {
            if (products[to_size(i)] < products[to_size(smallest)]) { smallest = i; }
        }
        return {smallest};
    }

    const double rate = std::clamp(sample_rate, 1e-6, 1.0);
    const auto n_bearing = bearing.size();
    // At least 8 samples (when available) so the buckets have something to
    // average; never more than the population.
    const std::size_t want = std::min(
        n_bearing,
        std::max<std::size_t>(8, static_cast<std::size_t>(
                                     std::ceil(rate * static_cast<double>(n_bearing)))));

    std::vector<index_t> picked;
    picked.reserve(want + 1);
    // Jittered stride over the product-bearing rows: stratified like a
    // plain stride (every region of the matrix contributes) but the
    // per-stratum offset breaks alignment with periodic structure.
    const double stride = static_cast<double>(n_bearing) / static_cast<double>(want);
    for (std::size_t s = 0; s < want; ++s) {
        const auto lo = static_cast<std::size_t>(stride * static_cast<double>(s));
        const auto hi = std::min(
            n_bearing, static_cast<std::size_t>(stride * static_cast<double>(s + 1)));
        const std::size_t width = hi > lo ? hi - lo : 1;
        const std::size_t off = static_cast<std::size_t>(mix64(s) % width);
        picked.push_back(bearing[std::min(lo + off, n_bearing - 1)]);
    }
    // The hub row dominates the scaling footprint and the worst bucket:
    // always pin it into the sample.
    if (hub >= 0) { picked.push_back(hub); }
    std::sort(picked.begin(), picked.end());
    picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
    return picked;
}

double NnzEstimateModel::predict(index_t products) const
{
    if (products <= 0) { return 0.0; }
    const EstimateBucket& bkt = buckets[static_cast<std::size_t>(bucket_of(products))];
    const double p = static_cast<double>(products);
    if (bkt.samples > 0) { return std::min(bkt.mean_ratio * p, p); }
    // Unsampled bucket: extrapolate with the fitted collision model.
    return std::min(expected_distinct(p, effective_cols), p);
}

double NnzEstimateModel::padded_nnz(index_t products, double sigmas) const
{
    const EstimateBucket& bkt = buckets[static_cast<std::size_t>(bucket_of(products))];
    const double p = static_cast<double>(products);
    if (bkt.samples > 0) {
        // Mean + `sigmas` sigma of the bucket's sampled ratios: an upper
        // bound the group-0 retry only has to rescue the tail from.
        return std::min(bkt.mean_ratio + sigmas * bkt.sigma(), 1.0) * p;
    }
    return (1.0 + 0.125 * sigmas) * expected_distinct(p, effective_cols);
}

index_t NnzEstimateModel::capacity(index_t products, index_t cols) const
{
    if (products <= 0) { return 0; }
    const double bound = static_cast<double>(std::min(products, cols));
    if (predict(products) > static_cast<double>(shared_nnz_limit)) {
        // Predicted-global row: pad storage is cheap relative to a full
        // recompute of a hub row, so reserve the no-risk upper bound —
        // plan_nnz() keeps the actual hash table prediction-sized.
        return std::max<index_t>(1, std::min(products, cols));
    }
    // Storage pad is wider (3 sigma) than the table pad: a bigger slot in
    // pad storage costs nothing but memory, while a capacity overflow costs
    // a full row recompute. Clamp to >= 1: an estimated-empty row that
    // turns out non-empty must still get a real hash table (see the
    // hash_slot zero-size guard).
    return std::max<index_t>(
        1, static_cast<index_t>(std::min(std::ceil(padded_nnz(products, 3.0)), bound)));
}

index_t NnzEstimateModel::plan_nnz(index_t products, index_t cols) const
{
    if (products <= 0) { return 0; }
    const double base = predict(products);
    const double bound = static_cast<double>(std::min(products, cols));
    if (base > static_cast<double>(shared_nnz_limit)) {
        // Predicted-global row: it sits in the per-row-global group no
        // matter what, and a larger table there only costs a linear
        // init/scan — double the 2-sigma pad so a prediction miss
        // saturates far less often (a hub recompute is the most expensive
        // rescue).
        return std::max<index_t>(
            1, static_cast<index_t>(std::min(std::ceil(2.0 * padded_nnz(products)), bound)));
    }
    // Predicted-shared row: padding must not push it across the
    // shared/global boundary — that swaps a cheap shared-table kernel for
    // a global-table one on every boundary row, which costs far more than
    // the occasional saturate-and-rewrite it avoids. Cap at the largest
    // shared level; the group-0 retry absorbs the tail.
    const double padded = std::min(padded_nnz(products),
                                   static_cast<double>(shared_nnz_limit));
    return std::max<index_t>(
        1, static_cast<index_t>(std::min(std::ceil(padded), bound)));
}

double NnzEstimateModel::confidence(index_t products) const
{
    if (products <= 0) { return 1.0; }
    const EstimateBucket& bkt = buckets[static_cast<std::size_t>(bucket_of(products))];
    if (bkt.samples > 0) { return bkt.confidence; }
    // Extrapolation is worth much less than observation.
    return 0.25 * global_confidence;
}

NnzEstimateModel fit_nnz_model(std::span<const index_t> sample_rows,
                               std::span<const index_t> sample_products,
                               std::span<const index_t> sample_nnz,
                               double sample_work_cycles, const HashTableStats& probe_stats)
{
    NSPARSE_EXPECTS(sample_rows.size() == sample_products.size() &&
                        sample_rows.size() == sample_nnz.size(),
                    "sample spans must have equal length");
    NnzEstimateModel m;
    m.probe_stats = probe_stats;
    if (sample_rows.empty()) { return m; }

    // Per-bucket running mean/variance of the ratios (Welford).
    wide_t total_products = 0;
    double ratio_sum = 0.0;
    index_t max_products = 0;
    index_t max_products_nnz = 0;
    for (std::size_t s = 0; s < sample_rows.size(); ++s) {
        const index_t p = sample_products[s];
        if (p <= 0) { continue; }
        total_products += p;
        const double ratio =
            static_cast<double>(sample_nnz[s]) / static_cast<double>(p);
        ratio_sum += ratio;
        EstimateBucket& bkt = m.buckets[static_cast<std::size_t>(bucket_of(p))];
        ++bkt.samples;
        const double delta = ratio - bkt.mean_ratio;
        bkt.mean_ratio += delta / static_cast<double>(bkt.samples);
        bkt.m2 += delta * (ratio - bkt.mean_ratio);
        if (p > max_products) {
            max_products = p;
            max_products_nnz = sample_nnz[s];
        }
    }
    if (total_products == 0) { return m; }
    m.global_mean_ratio = ratio_sum / static_cast<double>(sample_rows.size());
    m.cost_per_product = sample_work_cycles / static_cast<double>(total_products);

    // Per-bucket confidence: more samples and a tighter spread both help.
    double conf_sum = 0.0;
    int sampled_buckets_weight = 0;
    for (EstimateBucket& bkt : m.buckets) {
        if (bkt.samples == 0) { continue; }
        const double n = static_cast<double>(bkt.samples);
        const double cv = bkt.mean_ratio > 0.0 ? bkt.sigma() / bkt.mean_ratio : 0.0;
        bkt.confidence = (n / (n + 2.0)) / (1.0 + cv);
        conf_sum += bkt.confidence * n;
        sampled_buckets_weight += bkt.samples;
    }
    m.global_confidence =
        sampled_buckets_weight > 0 ? conf_sum / static_cast<double>(sampled_buckets_weight)
                                   : 0.0;

    // Fit the collision model's effective column universe from the most
    // informative sample (largest products): the smallest c with
    // expected_distinct(p, c) >= observed nnz. Monotone in c -> bisection.
    {
        const double p = static_cast<double>(max_products);
        const double nz = static_cast<double>(std::max<index_t>(max_products_nnz, 1));
        double lo = nz;          // c >= nnz always
        double hi = nz * 1e6;    // effectively "no collisions"
        if (expected_distinct(p, lo) >= nz) {
            m.effective_cols = lo;
        } else {
            for (int it = 0; it < 60; ++it) {
                const double mid = 0.5 * (lo + hi);
                if (expected_distinct(p, mid) >= nz) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            m.effective_cols = hi;
        }
    }
    return m;
}

}  // namespace nsparse::core
