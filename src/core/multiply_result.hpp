// Result of one multiply attempt, shared by the simulated pipeline
// (core/spgemm_impl.hpp) and the native backend (core/backend_native.hpp).
#pragma once

#include "sparse/csr.hpp"

namespace nsparse::core::detail {

/// Matrix + per-row product total of one multiply attempt.
template <ValueType T>
struct MultiplyResult {
    CsrMatrix<T> matrix;
    wide_t products = 0;
};

}  // namespace nsparse::core::detail
