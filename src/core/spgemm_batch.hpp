// Batched SpGEMM: many independent products C_k = A_k * B_k against ONE
// simulated device and the process-lifetime worker pool.
//
// Rationale: the paper's multi-stream optimisation (§III-B, §V-B x1.3)
// overlaps the per-group kernels of a single product; a batch of small
// products leaves even more of the device idle. spgemm_batch lifts the
// same idea one level up: each product in a wave issues its kernels on a
// private simulated stream inside a device batch-capture window, the
// window is scheduled as a whole (independent products overlap, each
// product's own host joins stay ordered via per-item epochs), and the
// grouping/count scratch buffers are pooled across products so repeated
// same-size allocations skip the considerable Pascal cudaMalloc cost
// (§IV-C).
//
// Results are bit-identical to N independent hash_spgemm calls — for
// every executor thread count, stream setting and batch_streams value —
// because the functional work still executes in host issue order; only
// the simulated schedule overlaps.
//
// Error semantics: malformed batches (null pointers, CSR invariant
// violations under validate_inputs, inner-dimension mismatches) throw a
// PreconditionError up front naming the offending product index. Runtime
// failures (OOM that survives the row-slab fallback, kernel faults that
// survive containment, nnz overflow) are captured per product in its
// result slot — neighbouring products complete unaffected — unless
// Options::batch_fail_fast is set, in which case the first failing
// product (lowest index) rethrows.
#pragma once

#include <cstdint>
#include <exception>
#include <span>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "gpusim/algorithm.hpp"

namespace nsparse::core {

/// How busy one simulated stream was across the batch's capture windows.
struct BatchStreamOccupancy {
    int stream_id = 0;
    std::uint64_t kernels = 0;
    double busy_seconds = 0.0;
    /// busy_seconds / total window makespan (0 when the batch was empty).
    double occupancy = 0.0;
};

/// Roll-up over the whole batch.
struct BatchStats {
    int products = 0;  ///< batch size
    int failed = 0;    ///< products whose result slot carries an error
    int waves = 0;     ///< capture windows (ceil(products / batch_streams))

    wide_t total_intermediate_products = 0;
    wide_t total_nnz_c = 0;

    double seconds = 0.0;           ///< total simulated time (windows + malloc)
    double makespan_seconds = 0.0;  ///< summed capture-window makespans
    double malloc_seconds = 0.0;    ///< summed cudaMalloc/cudaFree time
    std::size_t peak_bytes = 0;     ///< max per-product device peak

    // Summed per-product fallback / fault counters.
    int fallback_slabs = 0;
    int fallback_retries = 0;
    int faulted_rows = 0;
    int row_retries = 0;
    int host_fallback_rows = 0;

    // Summed estimation-planning counters (zero under exact planning).
    int estimated_rows = 0;
    int mispredicted_rows = 0;

    // Session recovery-ladder roll-up (zero through core::spgemm_batch;
    // filled by Session::multiply_batch).
    int replans = 0;            ///< summed estimated→exact replans
    int host_recourse_products = 0;  ///< products completed by host recourse
    int rejected = 0;           ///< products refused by admission control
    int cancelled = 0;          ///< products stopped by cooperative cancellation
    int deadline_exceeded = 0;  ///< products stopped by an expired budget

    // Scratch-pool effectiveness (0/0 when batch_scratch_reuse is off).
    std::uint64_t scratch_hits = 0;
    std::uint64_t scratch_misses = 0;

    /// Per simulated stream: kernels, busy time and occupancy relative to
    /// the summed window makespan. Sorted by stream id.
    std::vector<BatchStreamOccupancy> stream_occupancy;

    /// The paper's throughput metric over the whole batch.
    [[nodiscard]] double gflops() const
    {
        return seconds <= 0.0
                   ? 0.0
                   : 2.0 * static_cast<double>(total_intermediate_products) / seconds / 1e9;
    }
};

/// One product's result: either a matrix + stats (ok()) or a captured
/// error. The per-item timing fields are derived from the batch window
/// schedule: seconds = the item's kernel busy time + its malloc share
/// (not a wall-clock share of the overlapped window).
template <ValueType T>
struct BatchItemOutput {
    SpgemmOutput<T> out;
    std::exception_ptr error;   ///< null when the product succeeded
    std::string error_message;  ///< "batch product k: ..." when it failed
    [[nodiscard]] bool ok() const { return error == nullptr; }
};

template <ValueType T>
struct SpgemmBatchOutput {
    std::vector<BatchItemOutput<T>> items;  ///< one per product, input order
    BatchStats stats;
};

/// Multiplies as[k] * bs[k] for every k on one device. The spans must have
/// equal length; duplicate pointers are fine (products are independent).
/// Knobs: Options::batch_streams (products overlapped per wave),
/// Options::batch_scratch_reuse, Options::batch_fail_fast, plus every
/// single-product knob (streams, pwarp, slab fallback, fault injection...).
template <ValueType T>
SpgemmBatchOutput<T> spgemm_batch(sim::Device& dev, std::span<const CsrMatrix<T>* const> as,
                                  std::span<const CsrMatrix<T>* const> bs,
                                  const core::Options& opt = {});

extern template SpgemmBatchOutput<float>
spgemm_batch<float>(sim::Device&, std::span<const CsrMatrix<float>* const>,
                    std::span<const CsrMatrix<float>* const>, const core::Options&);
extern template SpgemmBatchOutput<double>
spgemm_batch<double>(sim::Device&, std::span<const CsrMatrix<double>* const>,
                     std::span<const CsrMatrix<double>* const>, const core::Options&);

/// Convenience overload for pointer vectors (template deduction cannot see
/// through the vector -> span conversion).
template <ValueType T>
SpgemmBatchOutput<T> spgemm_batch(sim::Device& dev, const std::vector<const CsrMatrix<T>*>& as,
                                  const std::vector<const CsrMatrix<T>*>& bs,
                                  const core::Options& opt = {})
{
    return spgemm_batch<T>(dev, std::span<const CsrMatrix<T>* const>(as),
                           std::span<const CsrMatrix<T>* const>(bs), opt);
}

}  // namespace nsparse::core
