// Internal implementation of the hash SpGEMM pipeline, shared by the
// single-product entry point (core/spgemm.cpp) and the batched entry point
// (core/spgemm_batch.cpp): per-row product counting (kernel 1), the row
// pointer scan (kernel 4), one full multiply attempt and the row-slab OOM
// degradation. Not part of the public API — include core/spgemm.hpp or
// core/spgemm_batch.hpp instead.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/backend_native.hpp"
#include "core/estimator.hpp"
#include "core/grouping.hpp"
#include "core/memory_estimator.hpp"
#include "core/multiply_result.hpp"
#include "core/numeric.hpp"
#include "core/numeric_estimated.hpp"
#include "core/options.hpp"
#include "core/plan_cache.hpp"
#include "core/scratch.hpp"
#include "core/symbolic.hpp"
#include "gpusim/algorithm.hpp"
#include "gpusim/device_csr.hpp"
#include "gpusim/scratch_pool.hpp"
#include "sparse/csr_ops.hpp"

namespace nsparse::core::detail {

/// Kernel (1): per-row intermediate-product counts (paper Algorithm 2).
template <ValueType T>
sim::DeviceBuffer<index_t> count_products(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                          const sim::DeviceCsr<T>& b)
{
    auto products = take_index_scratch(dev, "products", to_size(a.rows));
    constexpr int kBlock = 256;
    const index_t grid = a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "count_products",
               [&](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kBlock;
                   const index_t end = std::min(a.rows, begin + kBlock);
                   double nnz_seen = 0.0;
                   for (index_t i = begin; i < end; ++i) {
                       wide_t n = 0;
                       for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
                           const index_t d = a.col[to_size(j)];
                           n += b.rpt[to_size(d) + 1] - b.rpt[to_size(d)];
                       }
                       products[to_size(i)] = to_index(n);
                       nnz_seen += static_cast<double>(a.row_nnz(i));
                   }
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   const auto& m = blk.model();
                   // per row: rptA pair; per nonzero: colA + rptB pair
                   blk.global_read(lanes, 2 * sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.charge_work_span(
                       nnz_seen * (m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                                   m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom)),
                       nnz_seen / lanes *
                           (m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                            m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom)));
                   blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
               });
    dev.synchronize();
    return products;
}

/// Kernel (4): exclusive scan of the per-row nnz into row pointers.
/// Functionally done host-side; charged as a device scan. The row-pointer
/// width P is a template parameter (the OpSparse hybrid): the default
/// 32-bit path throws a typed IndexOverflow when the running total crosses
/// the index range; a wide_t instantiation never overflows in practice and
/// carries the Table-III large-graph products past 2^31 nnz.
template <std::integral P = index_t>
inline void scan_row_pointers(sim::Device& dev, const sim::DeviceBuffer<index_t>& row_nnz,
                              std::vector<P>& rpt)
{
    const auto rows = to_index(row_nnz.size());
    rpt.assign(to_size(rows) + 1, 0);
    // Accumulate in wide_t: nnz(C) can exceed 32 bits even when every row
    // fits (the large-graph workloads of Table III). Overflow must fail
    // loudly with a typed error, not wrap into negative row pointers.
    wide_t running = 0;
    for (index_t i = 0; i < rows; ++i) {
        running += row_nnz[to_size(i)];
        if (!std::in_range<P>(running)) {
            throw IndexOverflow(
                "nnz(C) exceeds the row-pointer index range: the output row pointers "
                "cannot be represented (escalate to 64-bit row pointers or shard the rows)",
                i, running);
        }
        rpt[to_size(i) + 1] = static_cast<P>(running);
    }
    constexpr int kBlock = 256;
    const index_t grid = rows == 0 ? 0 : (rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "scan_rpt", [&](sim::BlockCtx& blk) {
        const index_t begin = blk.block_idx() * kBlock;
        const int lanes = static_cast<int>(std::min(rows, begin + kBlock) - begin);
        if (lanes <= 0) { return; }
        blk.global_read(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
        blk.shared_op(lanes, 16.0);  // log-depth block scan
        blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
    });
    dev.synchronize();
}

/// One full multiply (the paper's unchunked algorithm). Throws
/// DeviceOutOfMemory when any allocation fails; every device-side
/// temporary is released by RAII during unwinding, so the allocator's
/// live bytes return to their pre-call value on both paths (pooled
/// workspaces returned to the scratch pool stay live inside the pool, by
/// design). Timing stats are snapshot while C is still device-resident —
/// the final free is not part of the measured multiply, matching the other
/// engines. Under batch capture the timeline-derived timing fields are
/// meaningless and are overwritten by the batch layer from the window
/// schedule.
template <ValueType T>
MultiplyResult<T> multiply_attempt_exact(sim::Device& dev, const CsrMatrix<T>& a,
                                         const CsrMatrix<T>& b, const core::Options& opt,
                                         SpgemmStats& stats,
                                         const AttemptCache<T>& cache = {})
{
    MultiplyResult<T> out;
    sim::DeviceCsr<T> c;
    wide_t total_products = 0;

    {
        // ---- setup: upload, count products (1), group rows (2) ----
        // Cache-resident operands stand in for the uploads; cached product
        // counts stand in for kernel 1 (byte-identical: the kernel is a
        // pure function of the pair).
        auto phase = dev.phase_scope("setup");
        sim::DeviceCsr<T> owned_a;
        sim::DeviceCsr<T> owned_b;
        const sim::DeviceCsr<T>* da = cache.resident_a;
        const sim::DeviceCsr<T>* db = cache.resident_b;
        if (da == nullptr) {
            owned_a = sim::DeviceCsr<T>::upload(dev.allocator(), a);
            da = &owned_a;
        }
        if (db == nullptr) {
            owned_b = sim::DeviceCsr<T>::upload(dev.allocator(), b);
            db = &owned_b;
        }
        sim::DeviceBuffer<index_t> products;
        if (cache.warm != nullptr) {
            products = take_index_scratch(dev, "products", to_size(a.rows));
            std::copy(cache.warm->products.begin(), cache.warm->products.end(),
                      products.data());
            total_products = cache.warm->total_products;
        } else {
            products = count_products(dev, *da, *db);
            for (std::size_t i = 0; i < products.size(); ++i) {
                total_products += products[i];
            }
        }

        auto row_nnz = take_index_scratch(dev, "row_nnz", to_size(a.rows));
        const bool warm_nnz = cache.warm != nullptr && cache.warm->has_row_nnz;
        if (warm_nnz) {
            // ---- warm path: the cached histogram IS the symbolic result;
            // skip symbolic grouping and the count pass entirely ----
            std::copy(cache.warm->row_nnz.begin(), cache.warm->row_nnz.end(),
                      row_nnz.data());
        } else {
            const auto sym_policy =
                core::GroupingPolicy::symbolic(dev.spec(), opt.pwarp_width, opt.use_pwarp);
            auto sym_groups = core::group_rows(dev, sym_policy, products);
            row_nnz.fill(0);
            {
                // ---- count: symbolic phase (3) ----
                auto count_phase = dev.phase_scope("count");
                const core::PhaseFaults pf = core::symbolic_phase(
                    dev, *da, *db, sym_policy, sym_groups, products, row_nnz, opt);
                stats.faulted_rows += pf.faulted_rows;
                stats.row_retries += pf.row_retries;
                stats.host_fallback_rows += pf.host_fallback_rows;
            }
            put_index_scratch(dev, "grouping_perm", std::move(sym_groups.permutation));
        }

        // ---- row pointers (4) + output allocation (5) ----
        std::vector<index_t> rpt;
        {
            auto count_phase = dev.phase_scope("count");
            scan_row_pointers(dev, row_nnz, rpt);
        }
        const index_t nnz_c = rpt.back();
        c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, nnz_c);
        std::copy(rpt.begin(), rpt.end(), c.rpt.data());

        // ---- regroup by output nnz (6) ----
        const auto num_policy = core::GroupingPolicy::numeric(dev.spec(), sizeof(T),
                                                              opt.pwarp_width, opt.use_pwarp);
        core::GroupedRows num_groups;
        const bool adopt_grouping =
            warm_nnz && cache.warm->has_grouping &&
            cache.warm->grouping_pwarp_width == opt.pwarp_width &&
            cache.warm->grouping_use_pwarp == opt.use_pwarp;
        if (adopt_grouping) {
            // The cached permutation equals what group_rows would scatter
            // from the identical row_nnz under the identical policy.
            num_groups.permutation =
                take_index_scratch(dev, "grouping_perm", cache.warm->num_perm.size());
            std::copy(cache.warm->num_perm.begin(), cache.warm->num_perm.end(),
                      num_groups.permutation.data());
            num_groups.offsets = cache.warm->num_offsets;
        } else {
            num_groups = core::group_rows(dev, num_policy, row_nnz);
        }

        {
            // ---- calc: numeric phase (7) ----
            auto calc_phase = dev.phase_scope("calc");
            const core::PhaseFaults pf =
                core::numeric_phase(dev, *da, *db, num_policy, num_groups, row_nnz, c, opt);
            stats.faulted_rows += pf.faulted_rows;
            stats.row_retries += pf.row_retries;
            stats.host_fallback_rows += pf.host_fallback_rows;
        }

        if (cache.capture != nullptr) {
            auto& cap = *cache.capture;
            cap.products.assign(products.data(), products.data() + products.size());
            cap.total_products = total_products;
            cap.row_nnz.assign(row_nnz.data(), row_nnz.data() + row_nnz.size());
            cap.has_row_nnz = true;
            cap.num_perm.assign(num_groups.permutation.data(),
                                num_groups.permutation.data() +
                                    num_groups.permutation.size());
            cap.num_offsets = num_groups.offsets;
            cap.grouping_pwarp_width = opt.pwarp_width;
            cap.grouping_use_pwarp = opt.use_pwarp;
            cap.has_grouping = true;
        }

        // Hand the per-product workspaces back for the next product (pool
        // installed only during batched execution; no-ops otherwise). An
        // exception skips this, releasing them by RAII instead.
        put_index_scratch(dev, "products", std::move(products));
        put_index_scratch(dev, "row_nnz", std::move(row_nnz));
        put_index_scratch(dev, "grouping_perm", std::move(num_groups.permutation));
    }

    // Stats before the moving download: take_download releases C's device
    // allocation, and that free must not be charged to the measured run.
    fill_stats_from_device(stats, dev);
    out.matrix = c.take_download();
    out.products = total_products;
    return out;
}

/// One full multiply under estimation-based planning (Options::plan_mode
/// kEstimated / kHybrid): the exact symbolic pass is replaced by the
/// sampled row plan ("estimate" phase) — shrunk to the low-confidence rows
/// in hybrid mode ("count" phase, like the pass it stands in for) — and
/// the numeric phase writes into capacity-padded storage that is scanned,
/// compacted and repaired into the final CSR (core/numeric_estimated.hpp).
/// Output is byte-identical to multiply_attempt_exact; only the trace
/// phases, the simulated cycle totals and the estimation stats differ.
template <ValueType T>
MultiplyResult<T> multiply_attempt_estimated(sim::Device& dev, const CsrMatrix<T>& a,
                                             const CsrMatrix<T>& b, const core::Options& opt,
                                             SpgemmStats& stats,
                                             const AttemptCache<T>& cache = {})
{
    MultiplyResult<T> out;
    sim::DeviceCsr<T> c;
    wide_t total_products = 0;

    {
        // ---- setup: upload + product counts (1), as in the exact path ----
        auto phase = dev.phase_scope("setup");
        sim::DeviceCsr<T> owned_a;
        sim::DeviceCsr<T> owned_b;
        const sim::DeviceCsr<T>* pda = cache.resident_a;
        const sim::DeviceCsr<T>* pdb = cache.resident_b;
        if (pda == nullptr) {
            owned_a = sim::DeviceCsr<T>::upload(dev.allocator(), a);
            pda = &owned_a;
        }
        if (pdb == nullptr) {
            owned_b = sim::DeviceCsr<T>::upload(dev.allocator(), b);
            pdb = &owned_b;
        }
        const sim::DeviceCsr<T>& da = *pda;
        const sim::DeviceCsr<T>& db = *pdb;
        sim::DeviceBuffer<index_t> products;
        if (cache.warm != nullptr) {
            products = take_index_scratch(dev, "products", to_size(a.rows));
            std::copy(cache.warm->products.begin(), cache.warm->products.end(),
                      products.data());
            total_products = cache.warm->total_products;
        } else {
            products = count_products(dev, da, db);
            for (std::size_t i = 0; i < products.size(); ++i) {
                total_products += products[i];
            }
        }

        // ---- estimate: sample, fit, classify (replaces grouping+count);
        // a cached model skips the sampling pass and classifies every row
        // directly (re-sampling would only refit what is already fitted) ----
        core::RowPlan plan;
        auto capacity = take_index_scratch(dev, "capacity", to_size(a.rows));
        std::vector<index_t> cap_rpt;
        const bool warm_model = cache.warm != nullptr && cache.warm->has_model;
        {
            auto est_phase = dev.phase_scope("estimate");
            if (warm_model) {
                plan = core::build_row_plan_from_model(dev, da, db, products, opt,
                                                       cache.warm->model);
            } else {
                plan = core::build_row_plan(dev, da, db, products, opt);
                stats.faulted_rows += plan.sample_faults.faulted_rows;
                stats.row_retries += plan.sample_faults.row_retries;
                stats.host_fallback_rows += plan.sample_faults.host_fallback_rows;
            }
        }

        // ---- count (hybrid only): exact-count the low-confidence rows ----
        if (!plan.lowconf.empty()) {
            auto count_phase = dev.phase_scope("count");
            const std::span<const index_t> prod(products.data(), to_size(a.rows));
            const core::CountRowsOutcome counted = core::count_rows_contained(
                dev, da, db, plan.lowconf, prod, std::span<index_t>(plan.capacity), opt,
                inject_flags(opt.inject_symbolic_row_faults, a.rows), "symbolic_lowconf");
            for (const index_t i : plan.lowconf) {
                plan.exact[to_size(i)] = 1;
                plan.plan_nnz[to_size(i)] = plan.capacity[to_size(i)];
            }
            stats.faulted_rows += counted.faults.faulted_rows;
            stats.row_retries += counted.faults.row_retries;
            stats.host_fallback_rows += counted.faults.host_fallback_rows;
        }

        // ---- padded capacity scan + pad storage (planning overhead) ----
        {
            auto est_phase = dev.phase_scope("estimate");
            std::copy(plan.capacity.begin(), plan.capacity.end(), capacity.data());
            scan_row_pointers(dev, capacity, cap_rpt);
        }
        sim::DeviceBuffer<index_t> pad_col(dev.allocator(), to_size(cap_rpt.back()));
        sim::DeviceBuffer<T> pad_val(dev.allocator(), to_size(cap_rpt.back()));

        auto row_nnz = take_index_scratch(dev, "row_nnz", to_size(a.rows));
        row_nnz.fill(0);

        // ---- regroup by planning nnz (6): the prediction, not the
        // deliberately generous hub storage capacity, decides which
        // numeric kernel a row runs on. The capacity scratch already
        // served its scan, so it carries the grouping metric now ----
        const auto num_policy = core::GroupingPolicy::numeric(dev.spec(), sizeof(T),
                                                              opt.pwarp_width, opt.use_pwarp);
        std::copy(plan.plan_nnz.begin(), plan.plan_nnz.end(), capacity.data());
        auto num_groups = core::group_rows(dev, num_policy, capacity);

        core::EstimatedNumericOutcome nout;
        {
            // ---- calc: padded numeric (7), scan, compact, rewrite ----
            auto calc_phase = dev.phase_scope("calc");
            std::vector<std::uint8_t> in_pad;
            nout = core::numeric_phase_estimated(dev, da, db, num_policy, num_groups,
                                                 plan.capacity, plan.plan_nnz, cap_rpt,
                                                 pad_col, pad_val, products, plan.exact,
                                                 row_nnz, in_pad, opt);
            stats.faulted_rows += nout.faults.faulted_rows;
            stats.row_retries += nout.faults.row_retries;
            stats.host_fallback_rows += nout.faults.host_fallback_rows;

            std::vector<index_t> rpt;
            scan_row_pointers(dev, row_nnz, rpt);
            c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, rpt.back());
            std::copy(rpt.begin(), rpt.end(), c.rpt.data());
            core::compact_padded_rows(dev, cap_rpt, pad_col, pad_val, in_pad, c);
            // Release pad storage before the rewrite arenas allocate: the
            // peak of the padded pipeline stays one storage generation wide.
            pad_col = sim::DeviceBuffer<index_t>();
            pad_val = sim::DeviceBuffer<T>();

            const core::PhaseFaults rw = core::rewrite_rows_estimated(
                dev, da, db, nout.rewrite_rows, row_nnz, c, opt);
            stats.row_retries += rw.row_retries;
            stats.host_fallback_rows += rw.host_fallback_rows;
        }

        stats.estimated_rows += plan.estimated_rows;
        stats.mispredicted_rows += nout.mispredicted_rows;
        stats.symbolic_cycles_saved += plan.symbolic_cycles_saved;

        if (cache.capture != nullptr) {
            // row_nnz holds the *repaired* per-row nnz by now (it produced
            // C's row pointers), so the capture is exact — a later exact-
            // mode warm run can adopt it just like an exact capture. The
            // numeric grouping of this path keys on plan_nnz, not row_nnz,
            // so it is not transferable (has_grouping stays false).
            auto& cap = *cache.capture;
            cap.products.assign(products.data(), products.data() + products.size());
            cap.total_products = total_products;
            cap.row_nnz.assign(row_nnz.data(), row_nnz.data() + row_nnz.size());
            cap.has_row_nnz = true;
            cap.model = plan.model;
            cap.has_model = true;
        }

        put_index_scratch(dev, "products", std::move(products));
        put_index_scratch(dev, "row_nnz", std::move(row_nnz));
        put_index_scratch(dev, "capacity", std::move(capacity));
        put_index_scratch(dev, "grouping_perm", std::move(num_groups.permutation));
    }

    // Stats before the moving download: take_download releases C's device
    // allocation, and that free must not be charged to the measured run.
    fill_stats_from_device(stats, dev);
    out.matrix = c.take_download();
    out.products = total_products;
    return out;
}

/// Backend and planning-mode dispatch: one multiply attempt under the
/// options' backend and plan mode. All paths share the OOM / row-slab
/// degradation below (the native backend charges the same allocator), and
/// produce byte-identical C for every combination (core/backend.hpp).
/// `cache` threads warm/capture plan artifacts and resident operands
/// through the simulated paths (service operand cache); the default keeps
/// every existing caller a cold run. The native backend plans its own way
/// and ignores the cache — byte-identity across backends is unaffected.
template <ValueType T>
MultiplyResult<T> multiply_attempt(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                   const core::Options& opt, SpgemmStats& stats,
                                   const AttemptCache<T>& cache = {})
{
    if (opt.backend == core::BackendKind::kNative) {
        return multiply_attempt_native(dev, a, b, opt, stats);
    }
    if (opt.plan_mode != core::PlanMode::kExact) {
        return multiply_attempt_estimated(dev, a, b, opt, stats, cache);
    }
    return multiply_attempt_exact(dev, a, b, opt, stats, cache);
}

/// Row-slab degradation: multiplies k contiguous row slabs of A against B
/// and assembles C host-side, halving the slab size (bounded by
/// opt.max_slab_retries) whenever a slab itself runs out of memory. The
/// assembled C is bit-identical to the unchunked result because every
/// output row is a function of its A row and B alone.
template <ValueType T>
MultiplyResult<T> multiply_slabbed(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                   const core::Options& opt, std::size_t live_floor,
                                   SpgemmStats& stats)
{
    auto& alloc = dev.allocator();
    const std::size_t budget =
        alloc.capacity() > live_floor ? alloc.capacity() - live_floor : 0;
    index_t slabs = core::plan_row_slabs(a, b, budget, dev.spec());
    if (slabs == 0) {
        throw DeviceOutOfMemory("device out of memory: B (" + std::to_string(b.byte_size()) +
                                    " B) alone exceeds the free capacity (" +
                                    std::to_string(budget) + " B); row slabbing cannot help",
                                /*slab_level=*/std::max(opt.force_slabs, 1),
                                /*retry_depth=*/0);
    }
    // Entered after an OOM (or forced): one slab would just repeat the
    // failed attempt, so degrade to at least two.
    slabs = std::max<index_t>({slabs, 2, opt.force_slabs});

    MultiplyResult<T> res;
    res.matrix.rows = 0;
    res.matrix.cols = b.cols;
    index_t slab_rows = std::max<index_t>(1, (a.rows + slabs - 1) / slabs);
    index_t row0 = 0;
    int retries = 0;
    int done = 0;
    while (row0 < a.rows) {
        const index_t r1 = std::min<index_t>(a.rows, row0 + slab_rows);
        // Snapshot the stats before the attempt: an abandoned slab attempt
        // must not leak its fault/estimation tallies into the final stats,
        // or the clean-run invariant row_retries == mispredicted_rows
        // breaks after a recovered slab retry.
        const SpgemmStats before_attempt = stats;
        try {
            auto part = multiply_attempt(dev, slice_rows(a, row0, r1), b, opt, stats);
            append_rows(res.matrix, part.matrix);
            res.products += part.products;
            row0 = r1;
            ++done;
        } catch (const DeviceOutOfMemory&) {
            stats = before_attempt;
            const index_t level = (a.rows + slab_rows - 1) / slab_rows;
            if (slab_rows <= 1 || retries >= opt.max_slab_retries) {
                throw DeviceOutOfMemory(
                    "device out of memory despite row-slab fallback: slab of " +
                        std::to_string(slab_rows) + " row(s) still does not fit after " +
                        std::to_string(retries) + " slab halvings (capacity " +
                        std::to_string(alloc.capacity()) + " B)",
                    static_cast<int>(level), retries);
            }
            ++retries;
            slab_rows = std::max<index_t>(1, slab_rows / 2);
            const std::size_t at_oom = alloc.last_oom_live_bytes();
            dev.record_memory_event("slab_retry",
                                    at_oom > live_floor ? at_oom - live_floor : 0,
                                    static_cast<int>((a.rows + slab_rows - 1) / slab_rows),
                                    retries);
        }
    }
    stats.fallback_slabs = done;
    stats.fallback_retries = retries;
    return res;
}

/// Fault/estimation tallies of an abandoned attempt do not describe the
/// rerun that produces the output; start them over before degrading.
inline void reset_fault_tallies(SpgemmStats& s)
{
    s.faulted_rows = 0;
    s.row_retries = 0;
    s.host_fallback_rows = 0;
    s.estimated_rows = 0;
    s.mispredicted_rows = 0;
    s.symbolic_cycles_saved = 0.0;
}

/// The escalation chain shared by hash_spgemm, spgemm_batch and the
/// session layer: forced slabs run slabbed directly; otherwise one
/// unchunked attempt, and on OOM (with slab_fallback enabled) the
/// recorded degradation to row slabs. `on_slab_fallback(freed)` runs after
/// the OOM bookkeeping and before the slabbed rerun — the batch layer
/// drops its pooled scratch there so the retry does not compete with
/// buffers held for completed products.
template <ValueType T>
MultiplyResult<T> multiply_with_fallback(
    sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b, const core::Options& opt,
    std::size_t live_floor, SpgemmStats& stats,
    const std::function<void(std::size_t)>& on_slab_fallback = {})
{
    if (opt.force_slabs > 0) {
        return multiply_slabbed(dev, a, b, opt, live_floor, stats);
    }
    try {
        return multiply_attempt(dev, a, b, opt, stats);
    } catch (const DeviceOutOfMemory&) {
        if (!opt.slab_fallback) { throw; }
        // The unwind above released every attempt-local buffer; record how
        // much that freed, then degrade to row slabs.
        const std::size_t at_oom = dev.allocator().last_oom_live_bytes();
        const std::size_t freed = at_oom > live_floor ? at_oom - live_floor : 0;
        stats.fallback_bytes_freed = freed;
        dev.record_memory_event("slab_fallback", freed, 0, 0);
        reset_fault_tallies(stats);
        if (on_slab_fallback) { on_slab_fallback(freed); }
        return multiply_slabbed(dev, a, b, opt, live_floor, stats);
    }
}

}  // namespace nsparse::core::detail
