// Public entry point of the paper's SpGEMM algorithm (the nsparse
// contribution): two-phase hash SpGEMM with row grouping, PWARP/TB thread
// assignments, shared-memory hash tables with global fallback, and
// multi-stream per-group kernel launches.
//
// Flow (paper Figure 1):
//   (1) count intermediate products per row          [phase "setup"]
//   (2) group rows by product count                  [phase "setup"]
//   (3) count nnz of each output row (hash tables)   [phase "count"]
//   (4) row pointers of C by exclusive scan          [phase "count"]
//   (5) allocate C                                   [malloc bucket]
//   (6) regroup rows by output nnz                   [phase "setup"]
//   (7) compute values, gather, sort                 [phase "calc"]
//
// When the simulated device cannot hold the working set the multiply
// degrades instead of failing: the attempt unwinds (RAII releases every
// temporary), A is split into contiguous row slabs sized by
// core::plan_row_slabs, and the slabs are multiplied against the resident
// B and assembled host-side — bit-identical to the unchunked result,
// because each output row depends only on its A row and B. Slab sizes
// halve on repeated OOM (bounded by Options::max_slab_retries) before a
// structured DeviceOutOfMemory carrying slab_level()/retry_depth()
// surfaces. Options::slab_fallback = false restores the strict
// throw-on-OOM behaviour (the baselines' only mode — the algorithm's
// whole point is that their OOM happens much earlier).
#pragma once

#include "core/options.hpp"
#include "gpusim/algorithm.hpp"

namespace nsparse {

/// Runs C = A*B on the simulated device with the paper's algorithm.
/// A.cols must equal B.rows. The returned matrix has sorted rows.
template <ValueType T>
SpgemmOutput<T> hash_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                            const core::Options& opt = {});

extern template SpgemmOutput<float> hash_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                       const CsrMatrix<float>&,
                                                       const core::Options&);
extern template SpgemmOutput<double> hash_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                         const CsrMatrix<double>&,
                                                         const core::Options&);

/// Convenience host-level API: creates a default P100 device internally and
/// returns just the product matrix. This is the "I just want to multiply"
/// quickstart entry point.
template <ValueType T>
CsrMatrix<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                      const core::Options& opt = {});

extern template CsrMatrix<float> multiply<float>(const CsrMatrix<float>&,
                                                 const CsrMatrix<float>&, const core::Options&);
extern template CsrMatrix<double> multiply<double>(const CsrMatrix<double>&,
                                                   const CsrMatrix<double>&,
                                                   const core::Options&);

}  // namespace nsparse
