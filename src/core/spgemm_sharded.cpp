#include "core/spgemm_sharded.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "core/spgemm_impl.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"
#include "sparse/validate.hpp"

namespace nsparse::core {

const char* to_string(ShardStage stage)
{
    switch (stage) {
    case ShardStage::kPlanned: return "planned";
    case ShardStage::kExactReplan: return "exact_replan";
    case ShardStage::kSlab: return "slab";
    case ShardStage::kHostRecourse: return "host_recourse";
    case ShardStage::kFailed: return "failed";
    }
    return "unknown";
}

namespace {

/// Global → shard-local row indices for the fault-injection hooks; rows
/// outside the shard are dropped (they belong to sibling shards).
std::vector<index_t> localize_rows(const std::vector<index_t>& rows, const ShardRange& range)
{
    std::vector<index_t> local;
    for (const index_t r : rows) {
        if (r >= range.row_begin && r < range.row_end) {
            local.push_back(r - range.row_begin);
        }
    }
    return local;
}

/// One shard's whole life on one device: arm the shard budgets, run the
/// recovery ladder (planned attempt → estimated→exact replan → row-slab
/// sub-split → host recourse), and capture any terminal error into the
/// shard's stats slot instead of letting it escape — sibling shards on
/// other devices must never observe it. Returns true on success;
/// `requeueable` reports whether a failure may be retried on another
/// device (budget expiries are terminal: the budget is the shard's, not
/// the device's).
template <ValueType T>
bool run_one_shard(sim::Device& dev, int device_id, const ShardRange& range,
                   const CsrMatrix<T>& a, const CsrMatrix<T>& b, const ShardOptions& sopt,
                   ShardStats& st, core::detail::MultiplyResult<T>& out, SpgemmStats& stats,
                   bool& requeueable)
{
    st.device_id = device_id;
    out = {};
    stats = {};
    requeueable = false;

    const CsrMatrix<T> as = slice_rows(a, range.row_begin, range.row_end);
    core::Options opt = sopt.options;
    opt.inject_symbolic_row_faults = localize_rows(opt.inject_symbolic_row_faults, range);
    opt.inject_numeric_row_faults = localize_rows(opt.inject_numeric_row_faults, range);

    sim::CancelToken token;
    token.arm_sim_deadline(sopt.shard_sim_seconds);
    token.arm_wall_budget_ms(sopt.shard_wall_ms);
    dev.set_cancel_token(&token);
    dev.set_executor_threads(opt.executor_threads);
    dev.reset_measurement();
    const std::size_t live_floor = dev.allocator().live_bytes();

    // External (session-level) cancellation, then the shard's own budgets.
    // Checked between ladder stages and host-recourse chunks; kernels in
    // flight finish (cooperative cancellation), siblings keep running.
    const auto check_budget = [&](ShardStage stage) {
        if (sopt.cancel != nullptr) {
            switch (sopt.cancel->should_cancel_async()) {
            case sim::CancelCause::kNone:
            case sim::CancelCause::kSimDeadline: break;
            case sim::CancelCause::kUser:
                throw OperationCancelled("sharded run cancelled between ladder stages",
                                         to_string(stage), sopt.cancel->reason());
            case sim::CancelCause::kWallDeadline:
                throw DeadlineExceeded("wall-clock budget exceeded between ladder stages",
                                       to_string(stage),
                                       sopt.cancel->wall_elapsed_seconds(),
                                       /*wall_clock=*/true);
            }
        }
        const double sim_elapsed = dev.elapsed();
        switch (token.should_cancel(sim_elapsed)) {
        case sim::CancelCause::kNone: return;
        case sim::CancelCause::kUser:
            throw OperationCancelled("shard cancelled between ladder stages",
                                     to_string(stage), token.reason());
        case sim::CancelCause::kSimDeadline:
            throw DeadlineExceeded("shard simulated-time budget exceeded", to_string(stage),
                                   sim_elapsed, /*wall_clock=*/false);
        case sim::CancelCause::kWallDeadline:
            throw DeadlineExceeded("shard wall-clock budget exceeded", to_string(stage),
                                   token.wall_elapsed_seconds(), /*wall_clock=*/true);
        }
    };
    const auto note_oom = [&] {
        ++st.faults;
        const std::size_t at_oom = dev.allocator().last_oom_live_bytes();
        const std::size_t freed = at_oom > live_floor ? at_oom - live_floor : 0;
        stats.fallback_bytes_freed = freed;
        dev.record_memory_event("slab_fallback", freed, 0, 0);
        core::detail::reset_fault_tallies(stats);
    };

    try {
        bool have = false;
        bool want_replan = false;
        const bool slab_first = opt.force_slabs > 0;
        bool want_slab = slab_first;
        bool want_host = false;
        const bool estimated_plan = opt.plan_mode != core::PlanMode::kExact;

        // ---- rung: planned attempt --------------------------------------
        if (!want_slab) {
            st.final_stage = ShardStage::kPlanned;
            check_budget(ShardStage::kPlanned);
            try {
                out = core::detail::multiply_attempt(dev, as, b, opt, stats);
                have = true;
            } catch (const DeviceOutOfMemory&) {
                note_oom();
                if (estimated_plan && sopt.exact_replan) {
                    want_replan = true;
                } else if (sopt.slab_fallback) {
                    want_slab = true;
                } else if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                ++st.faults;
                core::detail::reset_fault_tallies(stats);
                // A kernel fault is not a memory shortage: sub-splitting
                // would refault the same row, so skip straight past slabs.
                if (estimated_plan && sopt.exact_replan) {
                    want_replan = true;
                } else if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- rung: estimated→exact replan -------------------------------
        if (!have && want_replan) {
            st.final_stage = ShardStage::kExactReplan;
            ++st.retries;
            stats.replans += 1;
            check_budget(ShardStage::kExactReplan);
            core::Options exact_opt = opt;
            exact_opt.plan_mode = core::PlanMode::kExact;
            try {
                out = core::detail::multiply_attempt(dev, as, b, exact_opt, stats);
                have = true;
            } catch (const DeviceOutOfMemory&) {
                note_oom();
                if (sopt.slab_fallback) {
                    want_slab = true;
                } else if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                ++st.faults;
                core::detail::reset_fault_tallies(stats);
                if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- rung: row-slab sub-split -----------------------------------
        if (!have && want_slab) {
            st.final_stage = ShardStage::kSlab;
            if (!slab_first) { ++st.retries; }
            check_budget(ShardStage::kSlab);
            try {
                out = core::detail::multiply_slabbed(dev, as, b, opt, live_floor, stats);
                have = true;
                st.resplits = stats.fallback_slabs;
            } catch (const DeviceOutOfMemory&) {
                note_oom();
                if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            } catch (const KernelFault&) {
                ++st.faults;
                core::detail::reset_fault_tallies(stats);
                if (sopt.host_recourse) {
                    want_host = true;
                } else {
                    throw;
                }
            }
        }

        // ---- rung: whole-shard host recourse ----------------------------
        if (!have && want_host) {
            st.final_stage = ShardStage::kHostRecourse;
            ++st.retries;
            out.matrix.rows = 0;
            out.matrix.cols = b.cols;
            out.matrix.rpt.assign(1, 0);
            // Chunked so cancellation and the shard budgets still bite.
            const index_t chunk =
                std::max<index_t>(1, std::max<index_t>(as.rows / 16, 1024));
            for (index_t r0 = 0; r0 < as.rows; r0 += chunk) {
                check_budget(ShardStage::kHostRecourse);
                const index_t r1 = std::min<index_t>(as.rows, r0 + chunk);
                append_rows(out.matrix, reference_spgemm(slice_rows(as, r0, r1), b));
            }
            out.products = total_intermediate_products(as, b);
            stats.host_recourse = 1;
            stats.host_fallback_rows += static_cast<int>(as.rows);
            fill_stats_from_device(stats, dev);
            have = true;
        }

        NSPARSE_ASSERT(have, "shard ladder exited without a result or an exception");
        stats.intermediate_products = out.products;
        stats.nnz_c = out.matrix.nnz();
        st.sim_seconds = dev.elapsed();
        st.error = nullptr;
        st.error_message.clear();
        dev.set_cancel_token(nullptr);
        return true;
    } catch (const OperationCancelled& e) {
        st.error = std::current_exception();
        st.error_message = e.what();
    } catch (const DeadlineExceeded& e) {
        st.error = std::current_exception();
        st.error_message = e.what();
    } catch (const std::exception& e) {
        st.error = std::current_exception();
        st.error_message = e.what();
        requeueable = true;
    } catch (...) {
        st.error = std::current_exception();
        st.error_message = "unknown shard error";
        requeueable = true;
    }
    st.final_stage = ShardStage::kFailed;
    st.sim_seconds = dev.elapsed();
    // Joins abandoned in-flight launches and detaches the token; the
    // device stays usable for its next shard.
    dev.reclaim();
    return false;
}

}  // namespace

template <ValueType T>
ShardedOutput<T> spgemm_sharded(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                const ShardOptions& sopt)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    validate_shard_options(sopt);
    if (sopt.options.validate_inputs) { validate_spgemm_inputs(a, b); }

    ShardedOutput<T> out;
    const ShardPlan plan = plan_row_shards(a, b, sopt);
    const int n_shards = plan.count();
    const int n_devices = sopt.devices;
    out.sharded.devices = n_devices;
    out.sharded.shards = n_shards;
    if (n_shards == 0) {
        out.matrix = CsrMatrix<T>::zero(0, b.cols);
        return out;
    }

    std::vector<std::unique_ptr<sim::Device>> devs;
    devs.reserve(to_size(n_devices));
    for (int d = 0; d < n_devices; ++d) {
        devs.push_back(std::make_unique<sim::Device>(sopt.device_spec, sopt.cost_model));
        if (sopt.record_trace) { devs.back()->enable_trace(); }
        if (sopt.configure_device) { sopt.configure_device(d, *devs.back()); }
    }

    out.shards.resize(to_size(n_shards));
    std::vector<core::detail::MultiplyResult<T>> parts(to_size(n_shards));
    std::vector<SpgemmStats> pstats(to_size(n_shards));
    std::vector<char> requeueable(to_size(n_shards), 0);
    for (int s = 0; s < n_shards; ++s) {
        out.shards[to_size(s)].shard = s;
        out.shards[to_size(s)].row_begin = plan.shards[to_size(s)].row_begin;
        out.shards[to_size(s)].row_end = plan.shards[to_size(s)].row_end;
    }

    const auto run_shard = [&](int s, int device_id) {
        bool rq = false;
        run_one_shard(*devs[to_size(device_id)], device_id, plan.shards[to_size(s)], a, b,
                      sopt, out.shards[to_size(s)], parts[to_size(s)], pstats[to_size(s)],
                      rq);
        requeueable[to_size(s)] = rq ? 1 : 0;
    };

    // ---- concurrent pass: static round-robin shard → device -------------
    // Driver d runs shards d, d+D, d+2D... sequentially on device d. The
    // static assignment (not work stealing) keeps every per-shard stat —
    // device_id, sim_seconds, the makespan — deterministic, so the
    // fault-injection and byte-identity tests hold for every thread count.
    if (n_devices == 1 || n_shards == 1) {
        for (int s = 0; s < n_shards; ++s) { run_shard(s, s % n_devices); }
    } else {
        auto& pool = sim::WorkerPool::instance();
        // Drivers are blocking tasks (they wait on their device's launch
        // completions); reserve a driver slot per device *plus* the leaf /
        // launch workers one device's executor needs, so nested blocking
        // launch tasks always find a dedicated worker (the pool's FIFO
        // deadlock-freedom argument).
        const int nt = sim::BlockExecutor::resolve_threads(sopt.options.executor_threads);
        pool.ensure_workers(n_devices + std::max(1, nt));
        std::atomic<int> remaining{n_devices};
        sim::Completion done;
        for (int d = 0; d < n_devices; ++d) {
            pool.submit(
                [&, d] {
                    for (int s = d; s < n_shards; s += n_devices) { run_shard(s, d); }
                    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                        done.set();
                    }
                },
                sim::WorkerPool::TaskKind::blocking);
        }
        pool.wait(done);
    }

    // ---- requeue pass: re-dispatch exhausted shards ----------------------
    // Sequential, in shard order, onto the next device round-robin — a
    // fault pinned to one device (an injected FaultPlan, a shrunken
    // allocator) must not kill the shard while healthy siblings exist.
    for (int s = 0; s < n_shards; ++s) {
        auto& st = out.shards[to_size(s)];
        for (int r = 1; !st.ok() && requeueable[to_size(s)] != 0 && r <= sopt.max_requeues;
             ++r) {
            st.requeues = r;
            ++out.sharded.requeues;
            run_shard(s, (s % n_devices + r) % n_devices);
            // run_shard resets st.device_id/final_stage; restore the
            // requeue count it does not own.
            st.requeues = r;
        }
    }

    // ---- roll-up ---------------------------------------------------------
    std::vector<double> device_seconds(to_size(n_devices), 0.0);
    for (const auto& st : out.shards) {
        out.sharded.faults += st.faults;
        if (!st.ok()) { ++out.sharded.failed_shards; }
        device_seconds[to_size(st.device_id)] += st.sim_seconds;
    }
    out.sharded.makespan_seconds =
        *std::max_element(device_seconds.begin(), device_seconds.end());

    if (out.sharded.failed_shards > 0 && sopt.fail_fast) {
        for (const auto& st : out.shards) {
            if (!st.ok()) {
                throw ShardFailed("shard recovery ladder exhausted: " + st.error_message,
                                  st.shard, st.device_id, st.error);
            }
        }
    }

    if (out.sharded.failed_shards == 0) {
        for (int s = 0; s < n_shards; ++s) {
            const auto& ps = pstats[to_size(s)];
            out.stats.intermediate_products += ps.intermediate_products;
            out.stats.seconds += ps.seconds;
            out.stats.setup_seconds += ps.setup_seconds;
            out.stats.count_seconds += ps.count_seconds;
            out.stats.calc_seconds += ps.calc_seconds;
            out.stats.estimate_seconds += ps.estimate_seconds;
            out.stats.malloc_seconds += ps.malloc_seconds;
            out.stats.peak_bytes = std::max(out.stats.peak_bytes, ps.peak_bytes);
            out.stats.fallback_slabs += ps.fallback_slabs;
            out.stats.fallback_retries += ps.fallback_retries;
            out.stats.fallback_bytes_freed += ps.fallback_bytes_freed;
            out.stats.faulted_rows += ps.faulted_rows;
            out.stats.row_retries += ps.row_retries;
            out.stats.host_fallback_rows += ps.host_fallback_rows;
            out.stats.replans += ps.replans;
            out.stats.host_recourse += ps.host_recourse;
            out.stats.estimated_rows += ps.estimated_rows;
            out.stats.mispredicted_rows += ps.mispredicted_rows;
            out.stats.symbolic_cycles_saved += ps.symbolic_cycles_saved;
        }

        // ---- merge, escalating the row-pointer width when needed --------
        wide_t total_nnz = 0;
        for (const auto& part : parts) { total_nnz += part.matrix.nnz(); }
        if (total_nnz > sopt.index_limit) {
            out.escalated_64bit = true;
            out.sharded.escalated_64bit = true;
            // The widening's cost: rows+1 pointers grow from index_t to
            // wide_t. Annotated on device 0 so the roll-up trace carries it.
            devs[0]->record_memory_event(
                "shard_escalate_64bit",
                (to_size(a.rows) + 1) * (sizeof(wide_t) - sizeof(index_t)), n_shards, 0);
            out.wide_matrix.rows = 0;
            out.wide_matrix.cols = b.cols;
            for (auto& part : parts) { append_rows(out.wide_matrix, part.matrix); }
            out.stats.nnz_c = out.wide_matrix.nnz();
        } else {
            out.matrix.rows = 0;
            out.matrix.cols = b.cols;
            for (auto& part : parts) { append_rows(out.matrix, part.matrix); }
            out.stats.nnz_c = out.matrix.nnz();
        }
    }

    if (sopt.record_trace) {
        for (int d = 0; d < n_devices; ++d) { out.trace.absorb(devs[to_size(d)]->trace(), d); }
    }
    return out;
}

template ShardedOutput<float> spgemm_sharded<float>(const CsrMatrix<float>&,
                                                    const CsrMatrix<float>&,
                                                    const ShardOptions&);
template ShardedOutput<double> spgemm_sharded<double>(const CsrMatrix<double>&,
                                                      const CsrMatrix<double>&,
                                                      const ShardOptions&);

}  // namespace nsparse::core
