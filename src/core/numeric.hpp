// Numeric phase: compute the values of the output matrix (paper §III-C,
// flow steps (6)-(7)).
//
// Three sub-steps per row, all on the row's hash table: (1) accumulate
// values into a (key, value) table — same hashing as the symbolic phase
// plus an atomicAdd per product; (2) gather the occupied slots; (3) sort
// by column index with the paper's counting-rank scheme (each nonzero's
// position = number of smaller column indices in the table) and write to
// the output CSR. Rows grouped by their now-known nnz; group 0 rows use
// per-row global-memory tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"
#include "sparse/error.hpp"

namespace nsparse::core {

namespace detail {

/// Functionally accumulates row i's products into the (keys, values)
/// table, tracking per-worker cycles like count_row_hashed. Returns false
/// (leaving the row incomplete) if the table saturates — the caller
/// captures the row for the fault-containment retry path.
template <ValueType T>
[[nodiscard]] inline bool fill_row_hashed(const sim::DeviceCsr<T>& a,
                                          const sim::DeviceCsr<T>& b, index_t i,
                                          std::span<index_t> keys, std::span<T> values,
                                          bool pow2, const ElemCosts& ec, double probe_cost,
                                          double insert_cost, double accum_cost,
                                          std::span<double> lane_cycles, int lane_div)
{
    const index_t a_begin = a.rpt[to_size(i)];
    const index_t a_end = a.rpt[to_size(i) + 1];
    const auto lanes = static_cast<index_t>(lane_cycles.size());
    for (index_t j = a_begin; j < a_end; ++j) {
        const auto lane = to_size((j - a_begin) % lanes);
        const index_t d = a.col[to_size(j)];
        const T av = a.val[to_size(j)];
        const index_t b_begin = b.rpt[to_size(d)];
        const index_t b_end = b.rpt[to_size(d) + 1];
        const index_t len = b_end - b_begin;
        double elem_cycles = 0.0;
        bool full = false;
        for (index_t k = b_begin; k < b_end; ++k) {
            const ProbeResult r =
                hash_accumulate(keys, values, b.col[to_size(k)], av * b.val[to_size(k)], pow2);
            if (r.full) {
                // Charge the fruitless full-table scan, then bail out.
                elem_cycles += ec.elem_b + static_cast<double>(r.probes) * probe_cost;
                full = true;
                break;
            }
            elem_cycles += ec.elem_b + static_cast<double>(r.probes) * probe_cost + accum_cost +
                           (r.inserted ? insert_cost : 0.0);
        }
        const double rounds = lane_div <= 1
                                  ? static_cast<double>(len)
                                  : std::ceil(static_cast<double>(len) /
                                              static_cast<double>(lane_div));
        const double avg_elem = len == 0 ? 0.0 : elem_cycles / static_cast<double>(len);
        // read_a is a broadcast scalar load: once per worker, not per lane
        lane_cycles[lane] += ec.read_a / static_cast<double>(std::max(lane_div, 1)) +
                             rounds * avg_elem;
        if (full) { return false; }
    }
    return true;
}

/// Gather + counting-rank sort + write of one finished row table; returns
/// the (work, span) cycles of these steps. `workers` = parallel threads
/// available for this row.
///
/// If the gathered nonzero count disagrees with the row pointers (fill
/// faulted, or the symbolic count was wrong), nothing is written; with
/// `nnz_mismatch` set the flag is raised and the costs still returned
/// (fault-containment capture), otherwise a KernelFault is thrown.
template <ValueType T>
[[nodiscard]] inline std::pair<double, double> emit_row(std::span<const index_t> keys,
                                                        std::span<const T> values,
                                                        sim::DeviceCsr<T>& c, index_t i,
                                                        const sim::CostModel& m, bool shared,
                                                        int workers,
                                                        bool* nnz_mismatch = nullptr)
{
    std::vector<std::pair<index_t, T>> row;
    for (std::size_t s = 0; s < keys.size(); ++s) {
        if (keys[s] != kEmptySlot) { row.emplace_back(keys[s], values[s]); }
    }
    std::sort(row.begin(), row.end());
    const index_t base = c.rpt[to_size(i)];
    const bool mismatch = to_index(row.size()) != c.rpt[to_size(i) + 1] - base;
    if (mismatch && nnz_mismatch == nullptr) {
        throw KernelFault("numeric nnz disagrees with symbolic count", "calc", /*group=*/-1,
                          i, static_cast<std::int64_t>(keys.size()), /*probes=*/0);
    }
    if (mismatch) {
        *nnz_mismatch = true;
    } else {
        for (std::size_t s = 0; s < row.size(); ++s) {
            c.col[to_size(base) + s] = row[s].first;
            c.val[to_size(base) + s] = row[s].second;
        }
    }

    const double tsize = static_cast<double>(keys.size());
    const double nnz = static_cast<double>(row.size());
    // Gather streams the table once (coalesced when global); the rank
    // counting re-reads the same row's entries over and over, which on
    // hardware is served from L2, not DRAM.
    const double scan_access =
        shared ? m.shared_access
               : m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced);
    const double rank_cmp = shared ? m.sort_compare_shared : m.sort_compare_global;
    const double w = static_cast<double>(workers);
    const double write =
        m.global_cost(sizeof(index_t) + sizeof(T), sim::MemPattern::kCoalesced);
    const double work = tsize * scan_access + nnz * nnz * rank_cmp + nnz * write;
    const double span = std::ceil(tsize / w) * scan_access +
                        std::ceil(nnz / w) * nnz * rank_cmp + std::ceil(nnz / w) * write;
    return {work, span};
}

}  // namespace detail

/// Launches the numeric kernels for every group; fills c.col / c.val
/// (c.rpt must already hold the row pointers from the symbolic phase).
/// Returns the tally of contained per-row faults (zero on a clean run).
template <ValueType T>
PhaseFaults numeric_phase(sim::Device& dev, const sim::DeviceCsr<T>& a,
                          const sim::DeviceCsr<T>& b, const GroupingPolicy& policy,
                          const GroupedRows& grouped,
                          const sim::DeviceBuffer<index_t>& row_nnz, sim::DeviceCsr<T>& c,
                          const Options& opt)
{
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/true, sizeof(T));
    const sim::CostModel& m = dev.cost_model();
    const index_t* perm = grouped.permutation.data();

    // Per-row fault capture (see symbolic_phase): block-disjoint writes of
    // group id + 1 and the saturated/mismatched table size.
    const std::vector<std::uint8_t> inject =
        detail::inject_flags(opt.inject_numeric_row_faults, a.rows);
    std::vector<index_t> fault_group(to_size(a.rows), 0);
    std::vector<index_t> fault_table(to_size(a.rows), 0);

    // Group 0 global tables: one arena, per-row next_pow2(2*nnz) entries.
    sim::DeviceBuffer<index_t> g0_keys;
    sim::DeviceBuffer<T> g0_vals;
    std::vector<std::size_t> g0_offs;
    {
        const index_t g0 = grouped.group_size(0);
        if (g0 > 0) {
            g0_offs.assign(to_size(g0) + 1, 0);
            for (index_t r = 0; r < g0; ++r) {
                const index_t i = perm[to_size(grouped.offsets[0] + r)];
                g0_offs[to_size(r) + 1] =
                    g0_offs[to_size(r)] +
                    to_size(next_pow2(std::max<index_t>(1, row_nnz[to_size(i)]) * 2));
            }
            g0_keys = sim::DeviceBuffer<index_t>(dev.allocator(), g0_offs.back());
            g0_vals = sim::DeviceBuffer<T>(dev.allocator(), g0_offs.back());
            g0_keys.fill(kEmptySlot);
        }
    }

    for (const GroupInfo& g : policy.groups) {
        const index_t size = grouped.group_size(g.id);
        if (size == 0) { continue; }
        const sim::Stream stream = opt.use_streams ? dev.create_stream() : dev.default_stream();
        const index_t group_begin = grouped.offsets[to_size(g.id)];

        if (g.assignment == Assignment::kPwarpRow) {
            const int pw = policy.pwarp_width;
            const auto max_rows_by_smem =
                to_index(dev.spec().max_shared_per_block /
                         (to_size(g.table_size) * (sizeof(index_t) + sizeof(T))));
            const index_t rows_per_block =
                std::min<index_t>(g.block_size / pw, max_rows_by_smem);
            const int block_dim = static_cast<int>(rows_per_block) * pw;
            const index_t grid = (size + rows_per_block - 1) / rows_per_block;
            const std::size_t smem = to_size(rows_per_block) * to_size(g.table_size) *
                                     (sizeof(index_t) + sizeof(T));
            dev.launch(stream, {grid, block_dim, smem}, "numeric_pwarp",
                       [&, group_begin, size, rows_per_block, pw, tsize = g.table_size,
                        gid = g.id](sim::BlockCtx& blk) {
                           auto keys = blk.shared_alloc<index_t>(to_size(rows_per_block) *
                                                                 to_size(tsize));
                           auto vals = blk.shared_alloc<T>(to_size(rows_per_block) *
                                                           to_size(tsize));
                           std::fill(keys.begin(), keys.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(), static_cast<double>(tsize) / pw);
                           double block_span = 0.0;
                           double block_work = 0.0;
                           std::vector<double> lane(static_cast<std::size_t>(pw));
                           for (index_t r = 0; r < rows_per_block; ++r) {
                               const index_t idx = blk.block_idx() * rows_per_block + r;
                               if (idx >= size) { break; }
                               const index_t i = perm[to_size(group_begin + idx)];
                               if (!inject.empty() && inject[to_size(i)] != 0) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   continue;
                               }
                               std::fill(lane.begin(), lane.end(), 0.0);
                               auto k = keys.subspan(to_size(r) * to_size(tsize),
                                                     to_size(tsize));
                               auto v = vals.subspan(to_size(r) * to_size(tsize),
                                                     to_size(tsize));
                               if (!detail::fill_row_hashed(a, b, i, k, v, true, ec,
                                                            ec.probe_shared,
                                                            ec.insert_shared,
                                                            ec.accum_shared, lane, 1)) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   block_work += detail::sum(lane);
                                   continue;
                               }
                               bool mismatch = false;
                               const auto [ew, es] = detail::emit_row<T>(
                                   k, v, c, i, m, /*shared=*/true, pw, &mismatch);
                               if (mismatch) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                               }
                               block_span = std::max(block_span, detail::max_of(lane) + es);
                               block_work += detail::sum(lane) + ew;
                           }
                           blk.charge_work_span(block_work, block_span);
                       });
            continue;
        }

        if (!g.global_table) {
            const index_t tsize = g.table_size;
            const std::size_t smem = to_size(tsize) * (sizeof(index_t) + sizeof(T));
            const int warps = g.block_size / dev.spec().warp_size;
            dev.launch(stream, {size, g.block_size, smem}, "numeric_tb",
                       [&, group_begin, tsize, warps, gid = g.id](sim::BlockCtx& blk) {
                           const index_t i = perm[to_size(group_begin + blk.block_idx())];
                           if (!inject.empty() && inject[to_size(i)] != 0) {
                               fault_group[to_size(i)] = gid + 1;
                               fault_table[to_size(i)] = tsize;
                               return;
                           }
                           auto keys = blk.shared_alloc<index_t>(to_size(tsize));
                           auto vals = blk.shared_alloc<T>(to_size(tsize));
                           std::fill(keys.begin(), keys.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(),
                                         std::ceil(static_cast<double>(tsize) /
                                                   blk.block_dim()));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                        ec.probe_shared, ec.insert_shared,
                                                        ec.accum_shared, warp_cycles,
                                                        dev.spec().warp_size)) {
                               fault_group[to_size(i)] = gid + 1;
                               fault_table[to_size(i)] = tsize;
                               blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                    detail::max_of(warp_cycles));
                               return;
                           }
                           bool mismatch = false;
                           const auto [ew, es] = detail::emit_row<T>(
                               keys, vals, c, i, m, /*shared=*/true, blk.block_dim(),
                               &mismatch);
                           if (mismatch) {
                               fault_group[to_size(i)] = gid + 1;
                               fault_table[to_size(i)] = tsize;
                           }
                           const double tail = dev.cost_model().barrier * 2.0;
                           // per-lane warp times -> full SIMT work is 32x
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                                detail::max_of(warp_cycles) + es + tail);
                       });
            continue;
        }

        // Group 0: per-row global tables.
        const int block = dev.spec().max_threads_per_block;
        const int warps = block / dev.spec().warp_size;
        dev.launch(stream, {size, block, 0}, "numeric_global",
                   [&, group_begin, warps, block, gid = g.id](sim::BlockCtx& blk) {
                       const auto r = to_size(blk.block_idx());
                       const index_t i = perm[to_size(group_begin) + r];
                       const auto tsize = to_index(g0_offs[r + 1] - g0_offs[r]);
                       if (!inject.empty() && inject[to_size(i)] != 0) {
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                           return;
                       }
                       auto keys = g0_keys.span().subspan(g0_offs[r],
                                                          g0_offs[r + 1] - g0_offs[r]);
                       auto vals = g0_vals.span().subspan(g0_offs[r],
                                                          g0_offs[r + 1] - g0_offs[r]);
                       blk.global_write(block, sizeof(index_t), sim::MemPattern::kCoalesced,
                                        std::ceil(static_cast<double>(keys.size()) / block));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                    ec.probe_global, ec.insert_global,
                                                    ec.accum_global, warp_cycles,
                                                    dev.spec().warp_size)) {
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                detail::max_of(warp_cycles));
                           return;
                       }
                       bool mismatch = false;
                       const auto [ew, es] = detail::emit_row<T>(keys, vals, c, i, m,
                                                                 /*shared=*/false, block,
                                                                 &mismatch);
                       if (mismatch) {
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                       }
                       const double tail = dev.cost_model().barrier * 2.0;
                       blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                            detail::max_of(warp_cycles) + es + tail);
                   });
    }
    dev.synchronize();

    // --- fault containment: retry captured rows on the group-0 path -------
    PhaseFaults pf;
    std::vector<index_t> pending;
    for (index_t i = 0; i < a.rows; ++i) {
        if (fault_group[to_size(i)] == 0) { continue; }
        pending.push_back(i);
        dev.record_fault_event("numeric_row_fault", fault_group[to_size(i)] - 1, i,
                               fault_table[to_size(i)],
                               static_cast<int>(fault_table[to_size(i)]), 0);
    }
    pf.faulted_rows = static_cast<int>(pending.size());

    int attempt = 0;
    while (!pending.empty() && attempt < opt.max_row_retries) {
        // One arena; per-row table = the group-0 sizing doubled per attempt.
        std::vector<std::size_t> offs(pending.size() + 1, 0);
        for (std::size_t r = 0; r < pending.size(); ++r) {
            const index_t base =
                next_pow2(std::max<index_t>(1, row_nnz[to_size(pending[r])]) * 2);
            offs[r + 1] = offs[r] + to_size(detail::retry_table_size(base, attempt));
        }
        sim::DeviceBuffer<index_t> keys_arena(dev.allocator(), offs.back());
        sim::DeviceBuffer<T> vals_arena(dev.allocator(), offs.back());
        keys_arena.fill(kEmptySlot);
        std::vector<std::uint8_t> still(pending.size(), 0);
        const int block = dev.spec().max_threads_per_block;
        const int warps = block / dev.spec().warp_size;
        dev.launch(dev.default_stream(), {to_index(pending.size()), block, 0},
                   "numeric_global_retry", [&, warps, block](sim::BlockCtx& blk) {
                       const auto r = to_size(blk.block_idx());
                       const index_t i = pending[r];
                       auto keys = keys_arena.span().subspan(offs[r], offs[r + 1] - offs[r]);
                       auto vals = vals_arena.span().subspan(offs[r], offs[r + 1] - offs[r]);
                       blk.global_write(block, sizeof(index_t), sim::MemPattern::kCoalesced,
                                        std::ceil(static_cast<double>(keys.size()) / block));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                    ec.probe_global, ec.insert_global,
                                                    ec.accum_global, warp_cycles,
                                                    dev.spec().warp_size)) {
                           still[r] = 1;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                detail::max_of(warp_cycles));
                           return;
                       }
                       bool mismatch = false;
                       const auto [ew, es] = detail::emit_row<T>(keys, vals, c, i, m,
                                                                 /*shared=*/false, block,
                                                                 &mismatch);
                       if (mismatch) { still[r] = 1; }
                       const double tail = dev.cost_model().barrier * 2.0;
                       blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                            detail::max_of(warp_cycles) + es + tail);
                   });
        dev.synchronize();
        pf.row_retries += static_cast<int>(pending.size());
        for (std::size_t r = 0; r < pending.size(); ++r) {
            dev.record_fault_event("numeric_row_retry", 0, pending[r],
                                   to_index(offs[r + 1] - offs[r]),
                                   static_cast<int>(offs[r + 1] - offs[r]), attempt + 1);
        }
        std::vector<index_t> next;
        for (std::size_t r = 0; r < pending.size(); ++r) {
            if (still[r] != 0) { next.push_back(pending[r]); }
        }
        pending = std::move(next);
        ++attempt;
    }

    // Host reference recourse: accumulate the row in traversal order (the
    // same order hash_accumulate applies additions, so the values are
    // bit-identical), then write it sorted by column.
    for (const index_t i : pending) {
        std::unordered_map<index_t, T> acc;
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t d = a.col[to_size(j)];
            const T av = a.val[to_size(j)];
            for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
                acc[b.col[to_size(k)]] += av * b.val[to_size(k)];
            }
        }
        std::vector<std::pair<index_t, T>> row(acc.begin(), acc.end());
        std::sort(row.begin(), row.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        const index_t base = c.rpt[to_size(i)];
        if (to_index(row.size()) != c.rpt[to_size(i) + 1] - base) {
            throw KernelFault("host recourse nnz disagrees with row pointers", "calc",
                              /*group=*/0, i, /*table_size=*/0, /*probes=*/0, attempt);
        }
        for (std::size_t s = 0; s < row.size(); ++s) {
            c.col[to_size(base) + s] = row[s].first;
            c.val[to_size(base) + s] = row[s].second;
        }
        ++pf.host_fallback_rows;
        dev.record_fault_event("numeric_host_row", 0, i, 0, 0, attempt);
    }
    return pf;
}

}  // namespace nsparse::core
