// Multi-device row-sharded SpGEMM with shard-level fault isolation and
// automatic 64-bit row-pointer escalation (the ROADMAP's "64-bit scale-out
// + multi-device row sharding" item).
//
// A is partitioned into contiguous row shards (core/shard_plan.hpp); each
// shard multiplies against the whole of B on one of several fresh
// `sim::Device` instances, scheduled concurrently over the shared
// `sim::WorkerPool`. The merged output is byte-identical to single-device
// `hash_spgemm` for any (shard count × device count × thread count),
// because every output row is a function of its A row and B alone and the
// host-side merge concatenates shards in shard-index order.
//
// Robustness is the headline:
//   * Each shard runs under its own recovery ladder — planned attempt →
//     estimated→exact replan → row-slab sub-split → host recourse — so an
//     OOM, KernelFault or injected allocation fault in one shard is
//     captured into that shard's ShardStats slot and never aborts its
//     siblings.
//   * A ladder-exhausted shard is requeued (ShardOptions::max_requeues)
//     onto the next device before it is surfaced; only then does it fail,
//     as a structured ShardFailed — thrown for the lowest failed shard
//     under fail_fast, collected per-slot (the spgemm_batch convention)
//     otherwise. Deadline/cancellation failures are terminal (no requeue).
//   * Products whose merged nnz crosses ShardOptions::index_limit (2^31
//     by default) escalate to 64-bit row pointers automatically — the
//     OpSparse hybrid: shard kernels stay 32-bit, the merged `rpt` widens
//     to wide_t — annotated as a `shard_escalate_64bit` event in the
//     stats and the rolled-up trace instead of throwing IndexOverflow.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "core/shard_plan.hpp"
#include "gpusim/algorithm.hpp"
#include "gpusim/trace.hpp"

namespace nsparse::core {

/// Where a shard's ladder ended (mirrors the session's RecoveryStage,
/// without a service dependency).
enum class ShardStage : int {
    kPlanned = 0,   ///< the attempt under Options::plan_mode succeeded
    kExactReplan,   ///< recovered by the estimated→exact replan
    kSlab,          ///< recovered by the row-slab sub-split
    kHostRecourse,  ///< recovered by the whole-shard host reference
    kFailed,        ///< every permitted rung (and requeue) failed
};

[[nodiscard]] const char* to_string(ShardStage stage);

/// One shard's fate: fault/retry accounting, the device that produced the
/// final result, and the captured error when the ladder was exhausted.
struct ShardStats {
    int shard = -1;           ///< shard index (plan order)
    index_t row_begin = 0;    ///< first row of A covered by this shard
    index_t row_end = 0;      ///< one past the last row
    int device_id = -1;       ///< device of the final (or last failed) attempt
    int faults = 0;           ///< OOM / kernel faults captured by the ladder
    int retries = 0;          ///< ladder rungs run beyond the first attempt
    int resplits = 0;         ///< row slabs the sub-split assembled (0 = none)
    int requeues = 0;         ///< re-dispatches onto another device
    ShardStage final_stage = ShardStage::kPlanned;
    /// Simulated seconds of the final attempt on its device — a
    /// deterministic function of the shard content, independent of which
    /// device ran it or how many host threads executed it.
    double sim_seconds = 0.0;
    std::exception_ptr error;   ///< null when the shard completed
    std::string error_message;  ///< what() of the captured error

    [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// Run-level roll-up of the sharded execution.
struct ShardedStats {
    int devices = 0;        ///< devices the run was scheduled onto
    int shards = 0;         ///< shards the plan produced
    int failed_shards = 0;  ///< shards whose ladder (and requeues) failed
    int requeues = 0;       ///< total cross-device re-dispatches
    int faults = 0;         ///< total captured faults across shards
    bool escalated_64bit = false;  ///< merged rpt widened to 64-bit
    /// Max over devices of its summed per-shard simulated seconds — the
    /// multi-device makespan. Deterministic: shard→device assignment is
    /// static round-robin and requeue order is shard order.
    double makespan_seconds = 0.0;
};

/// The sharded multiply's result. Exactly one of `matrix` /
/// `wide_matrix` is populated on success, selected by `escalated_64bit`;
/// on any shard failure (fail_fast off) both stay empty and the per-shard
/// errors live in `shards`.
template <ValueType T>
struct ShardedOutput {
    CsrMatrix<T> matrix;            ///< 32-bit row pointers (the common case)
    WideCsrMatrix<T> wide_matrix;   ///< 64-bit row pointers when escalated
    bool escalated_64bit = false;
    /// Summed over shards (deterministic; `seconds` is total device-time,
    /// not wall-clock — see ShardedStats::makespan_seconds).
    SpgemmStats stats;
    ShardedStats sharded;
    std::vector<ShardStats> shards;
    /// Multi-device trace roll-up (ShardOptions::record_trace): every
    /// entry stamped with its device id, devices absorbed in id order.
    sim::Trace trace;

    [[nodiscard]] bool ok() const
    {
        for (const auto& s : shards) {
            if (!s.ok()) { return false; }
        }
        return true;
    }
};

/// Runs C = A*B sharded over multiple fresh simulated devices. A.cols
/// must equal B.rows; ShardOptions are validated up front
/// (PreconditionError). Runtime faults are contained per shard (see the
/// file comment); with fail_fast set, the lowest ladder-exhausted shard
/// throws ShardFailed instead of filling its slot.
template <ValueType T>
ShardedOutput<T> spgemm_sharded(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                const ShardOptions& sopt = {});

extern template ShardedOutput<float> spgemm_sharded<float>(const CsrMatrix<float>&,
                                                           const CsrMatrix<float>&,
                                                           const ShardOptions&);
extern template ShardedOutput<double> spgemm_sharded<double>(const CsrMatrix<double>&,
                                                             const CsrMatrix<double>&,
                                                             const ShardOptions&);

}  // namespace nsparse::core
