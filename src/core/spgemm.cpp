#include "core/spgemm.hpp"

#include <utility>

#include "core/spgemm_impl.hpp"
#include "sparse/validate.hpp"

namespace nsparse {

template <ValueType T>
SpgemmOutput<T> hash_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                            const core::Options& opt)
{
    if (opt.validate_inputs) { validate_spgemm_inputs(a, b); }
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    dev.set_executor_threads(opt.executor_threads);
    dev.reset_measurement();
    const std::size_t live_floor = dev.allocator().live_bytes();

    SpgemmOutput<T> out;
    core::detail::MultiplyResult<T> res;
    if (opt.force_slabs > 0) {
        res = core::detail::multiply_slabbed(dev, a, b, opt, live_floor, out.stats);
    } else {
        try {
            res = core::detail::multiply_attempt(dev, a, b, opt, out.stats);
        } catch (const DeviceOutOfMemory&) {
            if (!opt.slab_fallback) { throw; }
            // The unwind above released every attempt-local buffer; record
            // how much that freed, then degrade to row slabs.
            const std::size_t at_oom = dev.allocator().last_oom_live_bytes();
            const std::size_t freed = at_oom > live_floor ? at_oom - live_floor : 0;
            out.stats.fallback_bytes_freed = freed;
            dev.record_memory_event("slab_fallback", freed, 0, 0);
            // Fault tallies of the abandoned attempt do not describe the
            // slabbed run that produces the output; start them over.
            out.stats.faulted_rows = 0;
            out.stats.row_retries = 0;
            out.stats.host_fallback_rows = 0;
            out.stats.estimated_rows = 0;
            out.stats.mispredicted_rows = 0;
            out.stats.symbolic_cycles_saved = 0.0;
            res = core::detail::multiply_slabbed(dev, a, b, opt, live_floor, out.stats);
        }
    }
    // Timing stats were snapshot by the last multiply_attempt while its
    // buffers were still device-resident (the seed's measurement window).
    out.matrix = std::move(res.matrix);
    out.stats.intermediate_products = res.products;
    out.stats.nnz_c = out.matrix.nnz();
    return out;
}

template <ValueType T>
CsrMatrix<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b, const core::Options& opt)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<T>(dev, a, b, opt).matrix;
}

template SpgemmOutput<float> hash_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                const CsrMatrix<float>&, const core::Options&);
template SpgemmOutput<double> hash_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                  const CsrMatrix<double>&,
                                                  const core::Options&);
template CsrMatrix<float> multiply<float>(const CsrMatrix<float>&, const CsrMatrix<float>&,
                                          const core::Options&);
template CsrMatrix<double> multiply<double>(const CsrMatrix<double>&, const CsrMatrix<double>&,
                                            const core::Options&);

}  // namespace nsparse
