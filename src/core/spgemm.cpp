#include "core/spgemm.hpp"

#include <limits>
#include <numeric>

#include "core/grouping.hpp"
#include "core/numeric.hpp"
#include "core/symbolic.hpp"
#include "gpusim/device_csr.hpp"

namespace nsparse {

namespace {

/// Kernel (1): per-row intermediate-product counts (paper Algorithm 2).
template <ValueType T>
sim::DeviceBuffer<index_t> count_products(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                          const sim::DeviceCsr<T>& b)
{
    sim::DeviceBuffer<index_t> products(dev.allocator(), to_size(a.rows));
    constexpr int kBlock = 256;
    const index_t grid = a.rows == 0 ? 0 : (a.rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "count_products",
               [&](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kBlock;
                   const index_t end = std::min(a.rows, begin + kBlock);
                   double nnz_seen = 0.0;
                   for (index_t i = begin; i < end; ++i) {
                       wide_t n = 0;
                       for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
                           const index_t d = a.col[to_size(j)];
                           n += b.rpt[to_size(d) + 1] - b.rpt[to_size(d)];
                       }
                       products[to_size(i)] = to_index(n);
                       nnz_seen += static_cast<double>(a.row_nnz(i));
                   }
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   const auto& m = blk.model();
                   // per row: rptA pair; per nonzero: colA + rptB pair
                   blk.global_read(lanes, 2 * sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.charge_work_span(
                       nnz_seen * (m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                                   m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom)),
                       nnz_seen / lanes *
                           (m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                            m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom)));
                   blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
               });
    dev.synchronize();
    return products;
}

/// Kernel (4): exclusive scan of the per-row nnz into row pointers.
/// Functionally done host-side; charged as a device scan.
void scan_row_pointers(sim::Device& dev, const sim::DeviceBuffer<index_t>& row_nnz,
                       std::vector<index_t>& rpt)
{
    const auto rows = to_index(row_nnz.size());
    rpt.assign(to_size(rows) + 1, 0);
    // Accumulate in wide_t: nnz(C) can exceed 32 bits even when every row
    // fits (the large-graph workloads of Table III). Overflow must fail
    // loudly, not wrap into negative row pointers.
    wide_t running = 0;
    for (index_t i = 0; i < rows; ++i) {
        running += row_nnz[to_size(i)];
        NSPARSE_ENSURES(running <= std::numeric_limits<index_t>::max(),
                        "nnz(C) exceeds the 32-bit index range: the output row pointers "
                        "cannot be represented (rebuild with a wider index_t)");
        rpt[to_size(i) + 1] = static_cast<index_t>(running);
    }
    constexpr int kBlock = 256;
    const index_t grid = rows == 0 ? 0 : (rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "scan_rpt", [&](sim::BlockCtx& blk) {
        const index_t begin = blk.block_idx() * kBlock;
        const int lanes = static_cast<int>(std::min(rows, begin + kBlock) - begin);
        if (lanes <= 0) { return; }
        blk.global_read(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
        blk.shared_op(lanes, 16.0);  // log-depth block scan
        blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
    });
    dev.synchronize();
}

}  // namespace

template <ValueType T>
SpgemmOutput<T> hash_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                            const core::Options& opt)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    dev.set_executor_threads(opt.executor_threads);
    dev.reset_measurement();

    SpgemmOutput<T> out;
    sim::DeviceCsr<T> c;
    wide_t total_products = 0;

    {
        // ---- setup: upload, count products (1), group rows (2) ----
        auto phase = dev.phase_scope("setup");
        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);
        auto products = count_products(dev, da, db);
        for (std::size_t i = 0; i < products.size(); ++i) { total_products += products[i]; }

        const auto sym_policy =
            core::GroupingPolicy::symbolic(dev.spec(), opt.pwarp_width, opt.use_pwarp);
        const auto sym_groups = core::group_rows(dev, sym_policy, products);

        sim::DeviceBuffer<index_t> row_nnz(dev.allocator(), to_size(a.rows));
        row_nnz.fill(0);

        {
            // ---- count: symbolic phase (3) ----
            auto count_phase = dev.phase_scope("count");
            core::symbolic_phase(dev, da, db, sym_policy, sym_groups, products, row_nnz, opt);
        }

        // ---- row pointers (4) + output allocation (5) ----
        std::vector<index_t> rpt;
        {
            auto count_phase = dev.phase_scope("count");
            scan_row_pointers(dev, row_nnz, rpt);
        }
        const index_t nnz_c = rpt.back();
        c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, nnz_c);
        std::copy(rpt.begin(), rpt.end(), c.rpt.data());

        // ---- regroup by output nnz (6) ----
        const auto num_policy = core::GroupingPolicy::numeric(dev.spec(), sizeof(T),
                                                              opt.pwarp_width, opt.use_pwarp);
        const auto num_groups = core::group_rows(dev, num_policy, row_nnz);

        {
            // ---- calc: numeric phase (7) ----
            auto calc_phase = dev.phase_scope("calc");
            core::numeric_phase(dev, da, db, num_policy, num_groups, row_nnz, c, opt);
        }
    }

    out.matrix = c.download();
    out.stats.intermediate_products = total_products;
    out.stats.nnz_c = out.matrix.nnz();
    fill_stats_from_device(out.stats, dev);
    return out;
}

template <ValueType T>
CsrMatrix<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b, const core::Options& opt)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<T>(dev, a, b, opt).matrix;
}

template SpgemmOutput<float> hash_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                const CsrMatrix<float>&, const core::Options&);
template SpgemmOutput<double> hash_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                  const CsrMatrix<double>&,
                                                  const core::Options&);
template CsrMatrix<float> multiply<float>(const CsrMatrix<float>&, const CsrMatrix<float>&,
                                          const core::Options&);
template CsrMatrix<double> multiply<double>(const CsrMatrix<double>&, const CsrMatrix<double>&,
                                            const core::Options&);

}  // namespace nsparse
