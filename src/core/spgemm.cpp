#include "core/spgemm.hpp"

#include <chrono>
#include <utility>

#include "core/spgemm_impl.hpp"
#include "gpusim/executor.hpp"
#include "sparse/validate.hpp"

namespace nsparse {

template <ValueType T>
SpgemmOutput<T> hash_spgemm(sim::Device& dev, const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                            const core::Options& opt)
{
    core::validate_options(opt);
    if (opt.validate_inputs) { validate_spgemm_inputs(a, b); }
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    if (opt.quiet) { sim::set_warnings_quiet(true); }
    dev.set_executor_threads(opt.executor_threads);
    dev.reset_measurement();
    const std::size_t live_floor = dev.allocator().live_bytes();

    SpgemmOutput<T> out;
    const auto wall_start = std::chrono::steady_clock::now();
    core::detail::MultiplyResult<T> res =
        core::detail::multiply_with_fallback(dev, a, b, opt, live_floor, out.stats);
    out.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    // Timing stats were snapshot by the last multiply_attempt while its
    // buffers were still device-resident (the seed's measurement window).
    out.matrix = std::move(res.matrix);
    out.stats.intermediate_products = res.products;
    out.stats.nnz_c = out.matrix.nnz();
    return out;
}

template <ValueType T>
CsrMatrix<T> multiply(const CsrMatrix<T>& a, const CsrMatrix<T>& b, const core::Options& opt)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<T>(dev, a, b, opt).matrix;
}

template SpgemmOutput<float> hash_spgemm<float>(sim::Device&, const CsrMatrix<float>&,
                                                const CsrMatrix<float>&, const core::Options&);
template SpgemmOutput<double> hash_spgemm<double>(sim::Device&, const CsrMatrix<double>&,
                                                  const CsrMatrix<double>&,
                                                  const core::Options&);
template CsrMatrix<float> multiply<float>(const CsrMatrix<float>&, const CsrMatrix<float>&,
                                          const core::Options&);
template CsrMatrix<double> multiply<double>(const CsrMatrix<double>&, const CsrMatrix<double>&,
                                            const core::Options&);

}  // namespace nsparse
