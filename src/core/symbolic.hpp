// Symbolic phase: count the number of nonzeros of each output row with
// hash tables (paper §III-B, Algorithms 3-5, flow steps (3)-(4)).
//
// Per row group the phase launches either the PWARP/ROW kernel (4 threads
// per row, 32-entry per-row shared tables) or the TB/ROW kernel (one
// thread block per row, group-sized shared table). Rows of group 0 first
// *attempt* the maximum shared table; rows that saturate it are recorded
// and re-counted with global-memory tables sized by their intermediate-
// product count ("most of rows complete in the first phase").
//
// Fault containment: a row whose table saturates where the grouping says
// it cannot (corrupt input, injected fault) is no longer a process-killing
// assertion. The kernels capture the row, the phase retries it on the
// group-0 global-table path with doubling tables (Options::max_row_retries
// attempts), and the host reference recourse recounts whatever remains.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/fault.hpp"
#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"
#include "sparse/error.hpp"

namespace nsparse::core {

namespace detail {

/// Functionally counts row i's distinct columns through `table` while
/// accumulating per-lane cycles; returns the nnz or -1 if the table
/// saturated. `lane_cycles` has one slot per parallel worker (pwarp lanes
/// or warps); `lane_div` is the intra-worker SIMD width (1 for pwarp lanes,
/// 32 for warps). A non-null `tally` collects the probe statistics the
/// estimation-based planner uses as collision evidence.
template <ValueType T>
[[nodiscard]] inline index_t count_row_hashed(const sim::DeviceCsr<T>& a,
                                              const sim::DeviceCsr<T>& b, index_t i,
                                              std::span<index_t> table, bool pow2,
                                              const ElemCosts& ec, double probe_cost,
                                              double insert_cost,
                                              std::span<double> lane_cycles, int lane_div,
                                              HashTableStats* tally = nullptr)
{
    index_t nz = 0;
    const index_t a_begin = a.rpt[to_size(i)];
    const index_t a_end = a.rpt[to_size(i) + 1];
    const auto lanes = static_cast<index_t>(lane_cycles.size());
    for (index_t j = a_begin; j < a_end; ++j) {
        const auto lane = to_size((j - a_begin) % lanes);
        const index_t d = a.col[to_size(j)];
        const index_t b_begin = b.rpt[to_size(d)];
        const index_t b_end = b.rpt[to_size(d) + 1];
        const index_t len = b_end - b_begin;
        double elem_cycles = 0.0;
        for (index_t k = b_begin; k < b_end; ++k) {
            const ProbeResult r = hash_insert_key(table, b.col[to_size(k)], pow2);
            if (tally != nullptr) { tally->observe(r); }
            if (r.full) { return -1; }
            elem_cycles += ec.elem_b + static_cast<double>(r.probes) * probe_cost +
                           (r.inserted ? insert_cost : 0.0);
            if (r.inserted) { ++nz; }
        }
        // Within a worker of `lane_div` SIMD lanes the row is strided:
        // critical path is the per-lane share, rounded up per stride round.
        const double rounds = lane_div <= 1
                                  ? static_cast<double>(len)
                                  : std::ceil(static_cast<double>(len) /
                                              static_cast<double>(lane_div));
        const double avg_elem =
            len == 0 ? 0.0 : elem_cycles / static_cast<double>(len);
        // read_a is a broadcast scalar load (colA + B row pointers): one
        // transaction per worker, not one per SIMT lane.
        lane_cycles[lane] += ec.read_a / static_cast<double>(std::max(lane_div, 1)) +
                             rounds * avg_elem;
    }
    return nz;
}

}  // namespace detail

/// Launches the symbolic kernels for every group; fills `row_nnz[i]` for
/// all rows. Group-0 fallback allocations are charged to the device's
/// current phase/malloc bucket. Returns the tally of contained per-row
/// faults (zero on a clean run).
template <ValueType T>
PhaseFaults symbolic_phase(sim::Device& dev, const sim::DeviceCsr<T>& a,
                           const sim::DeviceCsr<T>& b, const GroupingPolicy& policy,
                           const GroupedRows& grouped,
                           const sim::DeviceBuffer<index_t>& products,
                           sim::DeviceBuffer<index_t>& row_nnz, const Options& opt)
{
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/false, sizeof(T));
    const index_t* perm = grouped.permutation.data();

    // Per-row fault capture: kernels write their group id + 1 (and the
    // saturated table size) instead of aborting. Writes are block-disjoint
    // (each simulated block owns its rows), so this is executor-safe and
    // does not perturb the device allocation schedule.
    const std::vector<std::uint8_t> inject =
        detail::inject_flags(opt.inject_symbolic_row_faults, a.rows);
    std::vector<index_t> fault_group(to_size(a.rows), 0);
    std::vector<index_t> fault_table(to_size(a.rows), 0);

    // Group 0 shared-attempt failures, collected across blocks.
    sim::DeviceBuffer<index_t> fail_flags;
    index_t group0_size = 0;

    for (const GroupInfo& g : policy.groups) {
        const index_t size = grouped.group_size(g.id);
        if (size == 0) { continue; }
        const sim::Stream stream = opt.use_streams ? dev.create_stream() : dev.default_stream();
        const index_t group_begin = grouped.offsets[to_size(g.id)];

        if (g.assignment == Assignment::kPwarpRow) {
            const int pw = policy.pwarp_width;
            // Rows per block limited by both thread count and the shared
            // memory the per-row mini tables need (matters for pw < 4).
            const auto max_rows_by_smem = to_index(
                dev.spec().max_shared_per_block / (to_size(g.table_size) * sizeof(index_t)));
            const index_t rows_per_block =
                std::min<index_t>(g.block_size / pw, max_rows_by_smem);
            const int block_dim = static_cast<int>(rows_per_block) * pw;
            const index_t grid = (size + rows_per_block - 1) / rows_per_block;
            const std::size_t smem = to_size(rows_per_block) * to_size(g.table_size) *
                                     sizeof(index_t);
            dev.launch(stream, {grid, block_dim, smem}, "symbolic_pwarp",
                       [&, group_begin, size, rows_per_block, pw, tsize = g.table_size,
                        gid = g.id](sim::BlockCtx& blk) {
                           auto tables = blk.shared_alloc<index_t>(
                               to_size(rows_per_block) * to_size(tsize));
                           std::fill(tables.begin(), tables.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(),
                                         static_cast<double>(tsize) / pw);  // table init
                           double block_span = 0.0;
                           double block_work = 0.0;
                           std::vector<double> lane(static_cast<std::size_t>(pw));
                           for (index_t r = 0; r < rows_per_block; ++r) {
                               const index_t idx =
                                   blk.block_idx() * rows_per_block + r;
                               if (idx >= size) { break; }
                               const index_t i = perm[to_size(group_begin + idx)];
                               if (!inject.empty() && inject[to_size(i)] != 0) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   continue;
                               }
                               std::fill(lane.begin(), lane.end(), 0.0);
                               auto table = tables.subspan(to_size(r) * to_size(tsize),
                                                           to_size(tsize));
                               const index_t nz = detail::count_row_hashed(
                                   a, b, i, table, true, ec, ec.probe_shared,
                                   ec.insert_shared, lane, 1);
                               if (nz < 0) {
                                   // A pwarp table cannot saturate when the
                                   // grouping invariants hold; capture the
                                   // row instead of trusting them.
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   continue;
                               }
                               row_nnz[to_size(i)] = nz;
                               // pwarp-local shuffle reduce + one output write
                               const double tail =
                                   2.0 * dev.cost_model().warp_shuffle +
                                   dev.cost_model().global_coalesced;
                               block_span = std::max(block_span,
                                                     detail::max_of(lane) + tail);
                               block_work += detail::sum(lane) + pw * tail;
                           }
                           blk.charge_work_span(block_work, block_span);
                       });
            continue;
        }

        // TB/ROW groups. Group 0 runs the max-shared-table *attempt*.
        const bool attempt = g.global_table;
        const index_t tsize = attempt ? policy.max_shared_table : g.table_size;
        if (attempt) {
            fail_flags = sim::DeviceBuffer<index_t>(dev.allocator(), to_size(size));
            fail_flags.fill(0);
            group0_size = size;
        }
        const std::size_t smem = to_size(tsize) * sizeof(index_t);
        const int warps = g.block_size / dev.spec().warp_size;
        dev.launch(stream, {size, g.block_size, smem}, "symbolic_tb",
                   [&, group_begin, tsize, warps, attempt, gid = g.id](sim::BlockCtx& blk) {
                       const index_t i = perm[to_size(group_begin + blk.block_idx())];
                       if (!inject.empty() && inject[to_size(i)] != 0) {
                           // Injected fault on the first attempt: captured
                           // for the retry path, not the regular global
                           // pass (fail_flags stays 0 for attempt rows).
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                           return;
                       }
                       auto table = blk.shared_alloc<index_t>(to_size(tsize));
                       std::fill(table.begin(), table.end(), kEmptySlot);
                       blk.shared_op(blk.block_dim(),
                                     std::ceil(static_cast<double>(tsize) / blk.block_dim()));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       const index_t nz = detail::count_row_hashed(
                           a, b, i, table, true, ec, ec.probe_shared, ec.insert_shared,
                           warp_cycles, dev.spec().warp_size);
                       if (nz < 0 && attempt) {
                           // Saturated the max shared attempt: record for
                           // the global pass and stop (the paper: "records
                           // the row index, and immediately terminates its
                           // execution").
                           fail_flags[to_size(blk.block_idx())] = 1;
                       } else if (nz < 0) {
                           // A bounded group's table saturated, which the
                           // grouping invariants forbid: capture the row.
                           // (Previously an out-of-bounds fail_flags write.)
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                       } else {
                           row_nnz[to_size(i)] = nz;
                       }
                       const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                           dev.cost_model().barrier +
                                           dev.cost_model().global_coalesced;
                       // warp_cycles are per-lane times: all 32 SIMT lanes
                       // issue for that long, so work = 32x their sum.
                       blk.charge_work_span(
                           (detail::sum(warp_cycles) + warps * tail) * 32.0,
                           detail::max_of(warp_cycles) + tail);
                   });
    }
    dev.synchronize();

    // Global-table pass for the saturated group-0 rows.
    if (group0_size > 0) {
        const index_t group_begin = grouped.offsets[0];
        std::vector<index_t> failed;
        for (index_t r = 0; r < group0_size; ++r) {
            if (fail_flags[to_size(r)] != 0) {
                failed.push_back(perm[to_size(group_begin + r)]);
            }
        }
        fail_flags.release();
        if (!failed.empty()) {
            // One big buffer; per-row table sized next_pow2(products).
            std::vector<std::size_t> offs(failed.size() + 1, 0);
            for (std::size_t r = 0; r < failed.size(); ++r) {
                offs[r + 1] = offs[r] + to_size(next_pow2(products[to_size(failed[r])]));
            }
            sim::DeviceBuffer<index_t> tables(dev.allocator(), offs.back());
            tables.fill(kEmptySlot);
            const int block = dev.spec().max_threads_per_block;
            const int warps = block / dev.spec().warp_size;
            dev.launch(dev.default_stream(), {to_index(failed.size()), block, 0},
                       "symbolic_global",
                       [&, warps](sim::BlockCtx& blk) {
                           const auto r = to_size(blk.block_idx());
                           const index_t i = failed[r];
                           auto table = tables.span().subspan(offs[r], offs[r + 1] - offs[r]);
                           // init charged as global writes
                           blk.global_write(blk.block_dim(), sizeof(index_t),
                                            sim::MemPattern::kCoalesced,
                                            std::ceil(static_cast<double>(table.size()) /
                                                      blk.block_dim()));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           const index_t nz = detail::count_row_hashed(
                               a, b, i, table, true, ec, ec.probe_global, ec.insert_global,
                               warp_cycles, dev.spec().warp_size);
                           if (nz < 0) {
                               // products[] under-counted this row (corrupt
                               // input): capture for the retry path.
                               fault_group[to_size(i)] = 1;
                               fault_table[to_size(i)] =
                                   to_index(offs[r + 1] - offs[r]);
                           } else {
                               row_nnz[to_size(i)] = nz;
                           }
                           const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                               dev.cost_model().barrier;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                detail::max_of(warp_cycles) + tail);
                       });
            dev.synchronize();
        }
    }

    // --- fault containment: retry captured rows on the group-0 path -------
    PhaseFaults pf;
    std::vector<index_t> pending;
    for (index_t i = 0; i < a.rows; ++i) {
        if (fault_group[to_size(i)] == 0) { continue; }
        pending.push_back(i);
        dev.record_fault_event("symbolic_row_fault", fault_group[to_size(i)] - 1, i,
                               fault_table[to_size(i)],
                               static_cast<int>(fault_table[to_size(i)]), 0);
    }
    pf.faulted_rows = static_cast<int>(pending.size());

    int attempt = 0;
    while (!pending.empty() && attempt < opt.max_row_retries) {
        // One arena; per-row table = the group-0 sizing doubled per attempt.
        std::vector<std::size_t> offs(pending.size() + 1, 0);
        for (std::size_t r = 0; r < pending.size(); ++r) {
            const index_t base =
                next_pow2(std::max<index_t>(1, products[to_size(pending[r])]));
            offs[r + 1] = offs[r] + to_size(detail::retry_table_size(base, attempt));
        }
        sim::DeviceBuffer<index_t> tables(dev.allocator(), offs.back());
        tables.fill(kEmptySlot);
        std::vector<std::uint8_t> still(pending.size(), 0);
        const int block = dev.spec().max_threads_per_block;
        const int warps = block / dev.spec().warp_size;
        dev.launch(dev.default_stream(), {to_index(pending.size()), block, 0},
                   "symbolic_global_retry", [&, warps, block](sim::BlockCtx& blk) {
                       const auto r = to_size(blk.block_idx());
                       const index_t i = pending[r];
                       auto table = tables.span().subspan(offs[r], offs[r + 1] - offs[r]);
                       blk.global_write(block, sizeof(index_t), sim::MemPattern::kCoalesced,
                                        std::ceil(static_cast<double>(table.size()) / block));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       const index_t nz = detail::count_row_hashed(
                           a, b, i, table, true, ec, ec.probe_global, ec.insert_global,
                           warp_cycles, dev.spec().warp_size);
                       if (nz < 0) {
                           still[r] = 1;
                       } else {
                           row_nnz[to_size(i)] = nz;
                       }
                       const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                           dev.cost_model().barrier;
                       blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                            detail::max_of(warp_cycles) + tail);
                   });
        dev.synchronize();
        pf.row_retries += static_cast<int>(pending.size());
        for (std::size_t r = 0; r < pending.size(); ++r) {
            dev.record_fault_event("symbolic_row_retry", 0, pending[r],
                                   to_index(offs[r + 1] - offs[r]),
                                   static_cast<int>(offs[r + 1] - offs[r]), attempt + 1);
        }
        std::vector<index_t> next;
        for (std::size_t r = 0; r < pending.size(); ++r) {
            if (still[r] != 0) { next.push_back(pending[r]); }
        }
        pending = std::move(next);
        ++attempt;
    }

    // Host reference recourse: count a row's distinct columns directly.
    for (const index_t i : pending) {
        std::vector<index_t> cols;
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t d = a.col[to_size(j)];
            for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
                cols.push_back(b.col[to_size(k)]);
            }
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        row_nnz[to_size(i)] = to_index(cols.size());
        ++pf.host_fallback_rows;
        dev.record_fault_event("symbolic_host_row", 0, i, 0, 0, attempt);
    }
    return pf;
}

}  // namespace nsparse::core
