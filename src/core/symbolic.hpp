// Symbolic phase: count the number of nonzeros of each output row with
// hash tables (paper §III-B, Algorithms 3-5, flow steps (3)-(4)).
//
// Per row group the phase launches either the PWARP/ROW kernel (4 threads
// per row, 32-entry per-row shared tables) or the TB/ROW kernel (one
// thread block per row, group-sized shared table). Rows of group 0 first
// *attempt* the maximum shared table; rows that saturate it are recorded
// and re-counted with global-memory tables sized by their intermediate-
// product count ("most of rows complete in the first phase").
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"

namespace nsparse::core {

namespace detail {

/// Functionally counts row i's distinct columns through `table` while
/// accumulating per-lane cycles; returns the nnz or -1 if the table
/// saturated. `lane_cycles` has one slot per parallel worker (pwarp lanes
/// or warps); `lane_div` is the intra-worker SIMD width (1 for pwarp lanes,
/// 32 for warps).
template <ValueType T>
[[nodiscard]] inline index_t count_row_hashed(const sim::DeviceCsr<T>& a,
                                              const sim::DeviceCsr<T>& b, index_t i,
                                              std::span<index_t> table, bool pow2,
                                              const ElemCosts& ec, double probe_cost,
                                              double insert_cost,
                                              std::span<double> lane_cycles, int lane_div)
{
    index_t nz = 0;
    const index_t a_begin = a.rpt[to_size(i)];
    const index_t a_end = a.rpt[to_size(i) + 1];
    const auto lanes = static_cast<index_t>(lane_cycles.size());
    for (index_t j = a_begin; j < a_end; ++j) {
        const auto lane = to_size((j - a_begin) % lanes);
        const index_t d = a.col[to_size(j)];
        const index_t b_begin = b.rpt[to_size(d)];
        const index_t b_end = b.rpt[to_size(d) + 1];
        const index_t len = b_end - b_begin;
        double elem_cycles = 0.0;
        for (index_t k = b_begin; k < b_end; ++k) {
            const ProbeResult r = hash_insert_key(table, b.col[to_size(k)], pow2);
            if (r.full) { return -1; }
            elem_cycles += ec.elem_b + r.probes * probe_cost + (r.inserted ? insert_cost : 0.0);
            if (r.inserted) { ++nz; }
        }
        // Within a worker of `lane_div` SIMD lanes the row is strided:
        // critical path is the per-lane share, rounded up per stride round.
        const double rounds = lane_div <= 1
                                  ? static_cast<double>(len)
                                  : std::ceil(static_cast<double>(len) /
                                              static_cast<double>(lane_div));
        const double avg_elem =
            len == 0 ? 0.0 : elem_cycles / static_cast<double>(len);
        // read_a is a broadcast scalar load (colA + B row pointers): one
        // transaction per worker, not one per SIMT lane.
        lane_cycles[lane] += ec.read_a / static_cast<double>(std::max(lane_div, 1)) +
                             rounds * avg_elem;
    }
    return nz;
}

}  // namespace detail

/// Launches the symbolic kernels for every group; fills `row_nnz[i]` for
/// all rows. Group-0 fallback allocations are charged to the device's
/// current phase/malloc bucket.
template <ValueType T>
void symbolic_phase(sim::Device& dev, const sim::DeviceCsr<T>& a, const sim::DeviceCsr<T>& b,
                    const GroupingPolicy& policy, const GroupedRows& grouped,
                    const sim::DeviceBuffer<index_t>& products,
                    sim::DeviceBuffer<index_t>& row_nnz, const Options& opt)
{
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/false, sizeof(T));
    const index_t* perm = grouped.permutation.data();

    // Group 0 shared-attempt failures, collected across blocks.
    sim::DeviceBuffer<index_t> fail_flags;
    index_t group0_size = 0;

    for (const GroupInfo& g : policy.groups) {
        const index_t size = grouped.group_size(g.id);
        if (size == 0) { continue; }
        const sim::Stream stream = opt.use_streams ? dev.create_stream() : dev.default_stream();
        const index_t group_begin = grouped.offsets[to_size(g.id)];

        if (g.assignment == Assignment::kPwarpRow) {
            const int pw = policy.pwarp_width;
            // Rows per block limited by both thread count and the shared
            // memory the per-row mini tables need (matters for pw < 4).
            const auto max_rows_by_smem = to_index(
                dev.spec().max_shared_per_block / (to_size(g.table_size) * sizeof(index_t)));
            const index_t rows_per_block =
                std::min<index_t>(g.block_size / pw, max_rows_by_smem);
            const int block_dim = static_cast<int>(rows_per_block) * pw;
            const index_t grid = (size + rows_per_block - 1) / rows_per_block;
            const std::size_t smem = to_size(rows_per_block) * to_size(g.table_size) *
                                     sizeof(index_t);
            dev.launch(stream, {grid, block_dim, smem}, "symbolic_pwarp",
                       [&, group_begin, size, rows_per_block, pw, tsize = g.table_size](
                           sim::BlockCtx& blk) {
                           auto tables = blk.shared_alloc<index_t>(
                               to_size(rows_per_block) * to_size(tsize));
                           std::fill(tables.begin(), tables.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(),
                                         static_cast<double>(tsize) / pw);  // table init
                           double block_span = 0.0;
                           double block_work = 0.0;
                           std::vector<double> lane(static_cast<std::size_t>(pw));
                           for (index_t r = 0; r < rows_per_block; ++r) {
                               const index_t idx =
                                   blk.block_idx() * rows_per_block + r;
                               if (idx >= size) { break; }
                               const index_t i = perm[to_size(group_begin + idx)];
                               std::fill(lane.begin(), lane.end(), 0.0);
                               auto table = tables.subspan(to_size(r) * to_size(tsize),
                                                           to_size(tsize));
                               const index_t nz = detail::count_row_hashed(
                                   a, b, i, table, true, ec, ec.probe_shared,
                                   ec.insert_shared, lane, 1);
                               NSPARSE_ENSURES(nz >= 0, "pwarp table can never saturate");
                               row_nnz[to_size(i)] = nz;
                               // pwarp-local shuffle reduce + one output write
                               const double tail =
                                   2.0 * dev.cost_model().warp_shuffle +
                                   dev.cost_model().global_coalesced;
                               block_span = std::max(block_span,
                                                     detail::max_of(lane) + tail);
                               block_work += detail::sum(lane) + pw * tail;
                           }
                           blk.charge_work_span(block_work, block_span);
                       });
            continue;
        }

        // TB/ROW groups. Group 0 runs the max-shared-table *attempt*.
        const bool attempt = g.global_table;
        const index_t tsize = attempt ? policy.max_shared_table : g.table_size;
        if (attempt) {
            fail_flags = sim::DeviceBuffer<index_t>(dev.allocator(), to_size(size));
            fail_flags.fill(0);
            group0_size = size;
        }
        const std::size_t smem = to_size(tsize) * sizeof(index_t);
        const int warps = g.block_size / dev.spec().warp_size;
        dev.launch(stream, {size, g.block_size, smem}, "symbolic_tb",
                   [&, group_begin, tsize, warps, attempt](sim::BlockCtx& blk) {
                       const index_t i = perm[to_size(group_begin + blk.block_idx())];
                       auto table = blk.shared_alloc<index_t>(to_size(tsize));
                       std::fill(table.begin(), table.end(), kEmptySlot);
                       blk.shared_op(blk.block_dim(),
                                     std::ceil(static_cast<double>(tsize) / blk.block_dim()));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       const index_t nz = detail::count_row_hashed(
                           a, b, i, table, true, ec, ec.probe_shared, ec.insert_shared,
                           warp_cycles, dev.spec().warp_size);
                       if (nz < 0) {
                           // Saturated: record for the global pass and stop
                           // (the paper: "records the row index, and
                           // immediately terminates its execution").
                           fail_flags[to_size(blk.block_idx())] = 1;
                       } else {
                           row_nnz[to_size(i)] = nz;
                       }
                       const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                           dev.cost_model().barrier +
                                           dev.cost_model().global_coalesced;
                       // warp_cycles are per-lane times: all 32 SIMT lanes
                       // issue for that long, so work = 32x their sum.
                       blk.charge_work_span(
                           (detail::sum(warp_cycles) + warps * tail) * 32.0,
                           detail::max_of(warp_cycles) + tail);
                   });
    }
    dev.synchronize();

    // Global-table pass for the saturated group-0 rows.
    if (group0_size > 0) {
        const index_t group_begin = grouped.offsets[0];
        std::vector<index_t> failed;
        for (index_t r = 0; r < group0_size; ++r) {
            if (fail_flags[to_size(r)] != 0) {
                failed.push_back(perm[to_size(group_begin + r)]);
            }
        }
        fail_flags.release();
        if (!failed.empty()) {
            // One big buffer; per-row table sized next_pow2(products).
            std::vector<std::size_t> offs(failed.size() + 1, 0);
            for (std::size_t r = 0; r < failed.size(); ++r) {
                offs[r + 1] = offs[r] + to_size(next_pow2(products[to_size(failed[r])]));
            }
            sim::DeviceBuffer<index_t> tables(dev.allocator(), offs.back());
            tables.fill(kEmptySlot);
            const int block = dev.spec().max_threads_per_block;
            const int warps = block / dev.spec().warp_size;
            dev.launch(dev.default_stream(), {to_index(failed.size()), block, 0},
                       "symbolic_global",
                       [&, warps](sim::BlockCtx& blk) {
                           const auto r = to_size(blk.block_idx());
                           const index_t i = failed[r];
                           auto table = tables.span().subspan(offs[r], offs[r + 1] - offs[r]);
                           // init charged as global writes
                           blk.global_write(blk.block_dim(), sizeof(index_t),
                                            sim::MemPattern::kCoalesced,
                                            std::ceil(static_cast<double>(table.size()) /
                                                      blk.block_dim()));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           const index_t nz = detail::count_row_hashed(
                               a, b, i, table, true, ec, ec.probe_global, ec.insert_global,
                               warp_cycles, dev.spec().warp_size);
                           NSPARSE_ENSURES(nz >= 0, "global symbolic table saturated");
                           row_nnz[to_size(i)] = nz;
                           const double tail = 2.0 * dev.cost_model().warp_shuffle +
                                               dev.cost_model().barrier;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                detail::max_of(warp_cycles) + tail);
                       });
            dev.synchronize();
        }
    }
}

}  // namespace nsparse::core
