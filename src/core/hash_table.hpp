// Linear-probing hash table primitives (paper Algorithm 5).
//
// Column indices are inserted as keys into a table initialised to -1; the
// initial slot is (key * HASH_SCAL) mod table-size and collisions probe the
// next slot. Table sizes are powers of two so the modulus is a bit-and
// (§III-D: "the modulus operation is expensive, we utilize lightweight bit
// operations"); the cuSPARSE-like baseline deliberately uses true modulus
// so the ablation bench can quantify the difference.
//
// These helpers are *functional*: they mutate the table exactly as the GPU
// kernel would and report how many probes / whether an atomicCAS insert
// happened, so the calling kernel can charge the simulated cost.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "sparse/types.hpp"

namespace nsparse::core {

/// The multiplier the nsparse implementation uses.
inline constexpr std::uint32_t kHashScale = 107;

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] constexpr index_t next_pow2(index_t n)
{
    return to_index(std::bit_ceil(to_size(n < 1 ? 1 : n)));
}

/// Largest power of two <= n (n >= 1).
[[nodiscard]] constexpr index_t prev_pow2(index_t n)
{
    NSPARSE_EXPECTS(n >= 1, "prev_pow2 requires n >= 1");
    return to_index(std::bit_floor(to_size(n)));
}

struct ProbeResult {
    bool inserted = false;  ///< key was new and claimed a slot (atomicCAS)
    bool found = false;     ///< key already present
    bool full = false;      ///< table saturated: row must fall back (group 0)
    /// Slots inspected (cost: one table read each). 64-bit: adversarial
    /// worst-case rows composed with group-0 doubling retries accumulate
    /// probe totals past the 32-bit range.
    std::int64_t probes = 0;
};

/// Cumulative probe statistics across many hash operations — the
/// collision evidence the estimation-based planner samples. Totals are
/// 64-bit for the same reason as ProbeResult::probes: a full-suite tally
/// over adversarial rows overflows an int.
struct HashTableStats {
    std::int64_t operations = 0;  ///< inserts + lookups observed
    std::int64_t probes = 0;      ///< total slots inspected
    std::int64_t inserts = 0;     ///< operations that claimed a new slot

    void observe(const ProbeResult& r)
    {
        NSPARSE_ASSERT(r.probes >= 0, "negative probe count");
        ++operations;
        probes += r.probes;
        if (r.inserted) { ++inserts; }
        NSPARSE_ASSERT(probes >= 0, "probe tally overflowed");
    }

    /// Average probe-chain length (>= 1 on any non-empty tally).
    [[nodiscard]] double chain() const
    {
        return operations == 0 ? 1.0
                               : static_cast<double>(probes) / static_cast<double>(operations);
    }
};

[[nodiscard]] inline index_t hash_slot(index_t key, index_t table_size, bool pow2)
{
    // A zero-sized table would be UB here (bit-and with -1 reads out of
    // bounds upstream; modulus divides by zero). Planner output is clamped
    // to >= 1 entry; a violation is a library bug, not a caller error.
    NSPARSE_ASSERT(table_size >= 1, "hash_slot requires a non-empty table");
    const std::uint32_t h = static_cast<std::uint32_t>(key) * kHashScale;
    if (pow2) { return static_cast<index_t>(h & static_cast<std::uint32_t>(table_size - 1)); }
    return static_cast<index_t>(h % static_cast<std::uint32_t>(table_size));
}

/// Symbolic insert: keys only (counting distinct columns).
[[nodiscard]] inline ProbeResult hash_insert_key(std::span<index_t> table, index_t key,
                                                 bool pow2 = true)
{
    const auto tsize = to_index(table.size());
    index_t h = hash_slot(key, tsize, pow2);
    ProbeResult r;
    while (r.probes < tsize) {
        ++r.probes;
        if (table[to_size(h)] == key) {
            r.found = true;
            return r;
        }
        if (table[to_size(h)] == kEmptySlot) {
            table[to_size(h)] = key;  // atomicCAS succeeds (block-sequential)
            r.inserted = true;
            return r;
        }
        h = pow2 ? ((h + 1) & (tsize - 1)) : ((h + 1) % tsize);
    }
    r.full = true;
    return r;
}

/// Numeric insert: accumulate `value` under `key` ((key,value) table).
template <ValueType T>
[[nodiscard]] inline ProbeResult hash_accumulate(std::span<index_t> keys, std::span<T> values,
                                                 index_t key, T value, bool pow2 = true)
{
    NSPARSE_EXPECTS(keys.size() == values.size(), "key/value table size mismatch");
    const auto tsize = to_index(keys.size());
    index_t h = hash_slot(key, tsize, pow2);
    ProbeResult r;
    while (r.probes < tsize) {
        ++r.probes;
        if (keys[to_size(h)] == key) {
            values[to_size(h)] += value;  // atomicAdd
            r.found = true;
            return r;
        }
        if (keys[to_size(h)] == kEmptySlot) {
            keys[to_size(h)] = key;
            values[to_size(h)] = value;
            r.inserted = true;
            return r;
        }
        h = pow2 ? ((h + 1) & (tsize - 1)) : ((h + 1) % tsize);
    }
    r.full = true;
    return r;
}

}  // namespace nsparse::core
