// Pool-aware index-workspace helpers shared by the simulated pipeline
// (core/spgemm_impl.hpp) and the native backend (core/backend_native.hpp):
// per-product scratch (product counts, row nnz, grouping permutations) is
// taken from the device's ScratchPool when one is installed (batched
// execution / Session) so exact-size re-takes skip the simulated cudaMalloc
// cost, and handed back after the multiply.
#pragma once

#include <cstddef>
#include <utility>

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/scratch_pool.hpp"
#include "sparse/types.hpp"

namespace nsparse::core::detail {

/// Takes an index workspace from the device's scratch pool when one is
/// installed (batched execution), else allocates fresh.
inline sim::DeviceBuffer<index_t> take_index_scratch(sim::Device& dev, const char* tag,
                                                     std::size_t n)
{
    if (auto* pool = dev.scratch_pool()) { return pool->take(tag, dev.allocator(), n); }
    return sim::DeviceBuffer<index_t>(dev.allocator(), n);
}

/// Returns a workspace to the scratch pool (no-op without a pool — the
/// buffer is then freed by RAII as before).
inline void put_index_scratch(sim::Device& dev, const char* tag,
                              sim::DeviceBuffer<index_t>&& buf)
{
    if (auto* pool = dev.scratch_pool()) { pool->put(tag, std::move(buf)); }
}

}  // namespace nsparse::core::detail
