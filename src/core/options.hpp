// User-facing knobs of the hash SpGEMM algorithm. The defaults are the
// paper's configuration; the ablation benchmarks flip them to reproduce the
// §IV-C claims (streams: x1.3 on Circuit, PWARP/ROW: x3.1 on Epidemiology,
// partial-warp width sweep: 4 is best).
#pragma once

#include <string>
#include <vector>

#include "core/backend.hpp"
#include "sparse/error.hpp"
#include "sparse/types.hpp"

namespace nsparse::core {

/// How the per-row output sizes that drive grouping and table sizing are
/// obtained (flow steps (3)-(4)).
enum class PlanMode {
    /// The paper's exact symbolic pass counts every row (default).
    kExact,
    /// OCEAN-style estimation: a row sample plus a hash-collision model
    /// predict every row's nnz; no exact symbolic pass runs. Underestimated
    /// rows are absorbed bit-identically by the group-0 retry safety net.
    kEstimated,
    /// Like kEstimated, but rows whose prediction confidence falls below
    /// Options::estimate_confidence are counted exactly by a shrunken
    /// symbolic pass restricted to those rows.
    kHybrid,
};

struct Options {
    /// Where the pipeline executes: kSimulated runs every kernel on the
    /// virtual Pascal device and reports simulated cycles (the paper
    /// reproduction, the default); kNative runs the same hash kernels
    /// directly on the host worker pool with thread-private tables and
    /// wall-clock as the metric. Output is byte-identical either way for
    /// every plan mode and thread count (core/backend.hpp).
    BackendKind backend = BackendKind::kSimulated;

    /// Suppress the library's one-time stderr warnings (executor_threads
    /// clamping in sim::BlockExecutor::resolve_threads) for this run —
    /// benches writing JSON to stdout want a clean stderr too. The env
    /// variable NSPARSE_QUIET (non-empty, not "0") has the same effect
    /// process-wide. Quiet never changes resolved values, only reporting.
    bool quiet = false;

    /// Launch each row group's kernels on an own CUDA stream so small
    /// groups execute concurrently (§III-B: "launches multiple CUDA
    /// kernels with different CUDA streams for each group").
    bool use_streams = true;

    /// Use the PWARP/ROW assignment for short rows; when false those rows
    /// fall into the smallest TB/ROW group instead.
    bool use_pwarp = true;

    /// Threads per partial warp (the paper evaluated 1/2/4/8/16; 4 wins).
    int pwarp_width = 4;

    /// Host threads executing simulated thread blocks on the persistent
    /// worker pool (gpusim executor): 0 = hardware_concurrency, 1 =
    /// sequential (the seed's behaviour), negative/huge values are
    /// clamped with a warning. Values > 1 also overlap launches on
    /// different simulated streams and parallelise the group_rows host
    /// scatter. Results, simulated cycles and traces are bit-identical
    /// for every value; only host wall-clock changes.
    int executor_threads = 0;

    /// When the multiply runs out of device memory, retry it in row slabs
    /// sized by the memory estimator instead of failing (the paper's
    /// memory-saving algorithm completing where the baselines print "-",
    /// Table III). The assembled output is bit-identical to the unchunked
    /// result.
    bool slab_fallback = true;

    /// Bounded halvings of the slab size before the fallback gives up and
    /// surfaces a DeviceOutOfMemory that reports the slab level reached.
    int max_slab_retries = 8;

    /// Forces slabbed execution with at least this many row slabs without
    /// waiting for an OOM (testing / capacity benchmarks); 0 = only after
    /// an actual OOM.
    int force_slabs = 0;

    /// Bounded group-0 retries for rows whose hash kernel faulted
    /// (saturated table, injected fault): each retry re-runs the row on a
    /// per-row global table of doubled size. Rows still faulting after the
    /// last retry are recomputed by the host-side reference recourse. 0 =
    /// go straight to the host recourse.
    int max_row_retries = 3;

    /// Planning mode: exact symbolic counting (the paper), estimation-based
    /// planning, or the hybrid that re-counts only low-confidence rows.
    /// Every mode produces byte-identical output; only the simulated cost
    /// and the mispredict/retry statistics differ.
    PlanMode plan_mode = PlanMode::kExact;

    /// Fraction of the (product-bearing) rows the estimator samples with an
    /// exact count to calibrate its collision model. Must be positive
    /// (validate_options); values > 1 are clamped to 1; sampled rows always
    /// include the largest-product hub row.
    double estimate_sample_rate = 0.05;

    /// Hybrid mode: rows whose prediction confidence (0..1) is below this
    /// threshold are counted exactly instead of trusted. 0 trusts every
    /// prediction (equivalent to kEstimated); 1 re-counts everything.
    double estimate_confidence = 0.5;

    /// Check CSR invariants and sortedness of both inputs before any
    /// kernel runs (shared validator, also available to the baselines):
    /// corrupt inputs throw a PreconditionError naming the violated
    /// invariant instead of indexing out of bounds inside a kernel.
    bool validate_inputs = false;

    /// Test hooks: rows listed here fault on their *first* symbolic /
    /// numeric kernel attempt (as if their hash table saturated), driving
    /// the per-row retry and host-recourse paths deterministically.
    /// Out-of-range entries are ignored; retries are never injected.
    std::vector<index_t> inject_symbolic_row_faults;
    std::vector<index_t> inject_numeric_row_faults;

    // ---- batched execution (core::spgemm_batch) ----

    /// Products scheduled concurrently per batch wave: each product in a
    /// wave issues on a private simulated stream and the wave's kernels
    /// are scheduled as one window, so independent products overlap like
    /// the per-group streams of §III-B do within one product. 1 =
    /// sequential batched execution (still pools scratch); values < 1 are
    /// rejected by validate_options. Results are bit-identical for every
    /// value — only the simulated timing changes.
    int batch_streams = 4;

    /// Reuse grouping/product/row-nnz scratch buffers across the batch's
    /// products (sim::ScratchPool): exact-size re-takes skip the simulated
    /// cudaMalloc that §IV-C identifies as considerable on Pascal. Pooled
    /// buffers stay live between products; the pool is dropped (and its
    /// memory released) before any OOM slab retry and at batch end.
    bool batch_scratch_reuse = true;

    /// Rethrow the first failing product's error (lowest product index)
    /// instead of recording it in that product's result slot and
    /// continuing with the remaining products.
    bool batch_fail_fast = false;
};

/// Validates the Options contract shared by every public entry point
/// (hash_spgemm, spgemm_batch, Session): out-of-domain knobs raise a
/// PreconditionError naming the violated invariant instead of silently
/// misbehaving (a negative retry budget would disable containment, a
/// non-positive sample rate would divide the estimator by zero, zero batch
/// streams would hang the wave loop).
inline void validate_options(const Options& opt)
{
    if (opt.max_slab_retries < 0) {
        throw PreconditionError("Options::max_slab_retries must be non-negative (got " +
                                    std::to_string(opt.max_slab_retries) + ")",
                                "max_slab_retries_non_negative");
    }
    if (opt.max_row_retries < 0) {
        throw PreconditionError("Options::max_row_retries must be non-negative (got " +
                                    std::to_string(opt.max_row_retries) + ")",
                                "max_row_retries_non_negative");
    }
    // !(x > 0) rather than x <= 0: NaN must be rejected too.
    if (!(opt.estimate_sample_rate > 0.0)) {
        throw PreconditionError("Options::estimate_sample_rate must be positive (got " +
                                    std::to_string(opt.estimate_sample_rate) + ")",
                                "estimate_sample_rate_positive");
    }
    if (opt.batch_streams < 1) {
        throw PreconditionError("Options::batch_streams must be >= 1 (got " +
                                    std::to_string(opt.batch_streams) + ")",
                                "batch_streams_positive");
    }
}

}  // namespace nsparse::core
