// Per-row kernel fault containment shared by the symbolic and numeric
// phases (the robustness counterpart of the row-slab OOM fallback).
//
// A saturated hash table used to be a process-killing assertion; now the
// kernels *capture* the fault per row, the phase retries the captured rows
// on the group-0 global-table path with doubling table sizes (bounded by
// Options::max_row_retries), and rows that still fail are recomputed with
// the host-side reference recourse. PhaseFaults tallies what happened so
// SpgemmStats and the sim::Trace can surface it.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace nsparse::core {

/// Tally of contained kernel faults of one phase run; accumulated into
/// SpgemmStats.faulted_rows / row_retries / host_fallback_rows.
struct PhaseFaults {
    int faulted_rows = 0;        ///< rows whose first kernel attempt faulted
    int row_retries = 0;         ///< group-0 retry executions across those rows
    int host_fallback_rows = 0;  ///< rows recomputed by the host recourse

    PhaseFaults& operator+=(const PhaseFaults& o)
    {
        faulted_rows += o.faulted_rows;
        row_retries += o.row_retries;
        host_fallback_rows += o.host_fallback_rows;
        return *this;
    }
};

namespace detail {

/// Expands Options::inject_*_row_faults into a per-row flag vector. Empty
/// when no listed row is in [0, rows) — the common no-injection case costs
/// one emptiness check per row in the kernels.
inline std::vector<std::uint8_t> inject_flags(const std::vector<index_t>& rows_to_fault,
                                              index_t rows)
{
    std::vector<std::uint8_t> flags;
    for (const index_t i : rows_to_fault) {
        if (i < 0 || i >= rows) { continue; }
        if (flags.empty()) { flags.assign(to_size(rows), 0); }
        flags[to_size(i)] = 1;
    }
    return flags;
}

/// Table size of retry `attempt` (1-based) for a row with `count` entries
/// to hash: the group-0 base size doubled per attempt, capped well below
/// the index range.
[[nodiscard]] inline index_t retry_table_size(index_t base_pow2, int attempt)
{
    constexpr index_t kCap = index_t{1} << 30;
    index_t size = base_pow2;
    for (int s = 0; s < attempt; ++s) {
        if (size >= kCap / 2) { return kCap; }
        size *= 2;
    }
    return size;
}

}  // namespace detail

}  // namespace nsparse::core
