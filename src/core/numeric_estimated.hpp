// Numeric materialisation under estimation-based planning (Options::
// plan_mode != kExact).
//
// Without an exact symbolic pass the row pointers are not known up front,
// so the numeric kernels write each row into *padded* storage sized by the
// planned capacities (core/estimator.hpp), recording the actual nnz as a
// by-product. The exact row pointers are then scanned from those actuals,
// well-predicted rows are compacted into the final CSR with coalesced
// copies, and the mispredicted rest — rows that overflowed their capacity
// or saturated their planned table — is recomputed straight into the final
// CSR by the group-0 retry machinery of PR 3 (doubling global tables,
// bounded by Options::max_row_retries, host recourse after that).
//
// Byte-identity with exact planning holds because hash_accumulate adds
// values in traversal order for any table size and every emit sorts by
// column: the planned capacities only decide *where* a row is computed,
// never what it contains.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/estimator.hpp"
#include "core/fault.hpp"
#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "core/kernel_costs.hpp"
#include "core/numeric.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"
#include "sparse/error.hpp"

namespace nsparse::core {

namespace detail {

/// emit_row against padded storage: gathers/sorts the finished table like
/// emit_row, reports the actual nnz, and writes only when the row fits its
/// planned capacity (out spans). Returns the same (work, span) cycles as
/// emit_row — an overflowing row still paid for discovering the overflow.
template <ValueType T>
[[nodiscard]] inline std::pair<double, double> emit_row_padded(
    std::span<const index_t> keys, std::span<const T> values, std::span<index_t> out_col,
    std::span<T> out_val, const sim::CostModel& m, bool shared, int workers, index_t* actual)
{
    std::vector<std::pair<index_t, T>> row;
    for (std::size_t s = 0; s < keys.size(); ++s) {
        if (keys[s] != kEmptySlot) { row.emplace_back(keys[s], values[s]); }
    }
    std::sort(row.begin(), row.end());
    *actual = to_index(row.size());
    if (row.size() <= out_col.size()) {
        for (std::size_t s = 0; s < row.size(); ++s) {
            out_col[s] = row[s].first;
            out_val[s] = row[s].second;
        }
    }

    const double tsize = static_cast<double>(keys.size());
    const double nnz = static_cast<double>(row.size());
    const double scan_access =
        shared ? m.shared_access
               : m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced);
    const double rank_cmp = shared ? m.sort_compare_shared : m.sort_compare_global;
    const double w = static_cast<double>(workers);
    const double write =
        m.global_cost(sizeof(index_t) + sizeof(T), sim::MemPattern::kCoalesced);
    const double work = tsize * scan_access + nnz * nnz * rank_cmp + nnz * write;
    const double span = std::ceil(tsize / w) * scan_access +
                        std::ceil(nnz / w) * nnz * rank_cmp + std::ceil(nnz / w) * write;
    return {work, span};
}

}  // namespace detail

/// What the padded numeric phase established about every row.
struct EstimatedNumericOutcome {
    PhaseFaults faults;
    std::vector<index_t> rewrite_rows;  ///< rows absent from pad storage (ascending)
    int mispredicted_rows = 0;  ///< plan failed: capacity overflow or saturated table
};

/// Runs the padded numeric kernels grouped by planned capacity, repairs the
/// counts of captured rows, and leaves `row_nnz` exact for every row.
/// `in_pad[i]` = 1 when row i's final data sits in pad storage awaiting
/// compaction; the complement is returned as rewrite_rows.
template <ValueType T>
EstimatedNumericOutcome numeric_phase_estimated(
    sim::Device& dev, const sim::DeviceCsr<T>& a, const sim::DeviceCsr<T>& b,
    const GroupingPolicy& policy, const GroupedRows& grouped,
    const std::vector<index_t>& capacity, const std::vector<index_t>& plan_nnz,
    const std::vector<index_t>& cap_rpt, sim::DeviceBuffer<index_t>& pad_col,
    sim::DeviceBuffer<T>& pad_val, const sim::DeviceBuffer<index_t>& products,
    std::span<const std::uint8_t> exact, sim::DeviceBuffer<index_t>& row_nnz,
    std::vector<std::uint8_t>& in_pad, const Options& opt)
{
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/true, sizeof(T));
    const sim::CostModel& m = dev.cost_model();
    const index_t* perm = grouped.permutation.data();

    EstimatedNumericOutcome out;
    in_pad.assign(to_size(a.rows), 0);

    const std::vector<std::uint8_t> inject =
        detail::inject_flags(opt.inject_numeric_row_faults, a.rows);
    std::vector<index_t> fault_group(to_size(a.rows), 0);
    std::vector<index_t> fault_table(to_size(a.rows), 0);

    // Group 0: per-row global (key,value) tables sized from the planning
    // nnz (clamped >= 1 entry by the planner) — NOT from the storage
    // capacity, which is deliberately generous for hub rows.
    sim::DeviceBuffer<index_t> g0_keys;
    sim::DeviceBuffer<T> g0_vals;
    std::vector<std::size_t> g0_offs;
    {
        const index_t g0 = grouped.group_size(0);
        if (g0 > 0) {
            g0_offs.assign(to_size(g0) + 1, 0);
            for (index_t r = 0; r < g0; ++r) {
                const index_t i = perm[to_size(grouped.offsets[0] + r)];
                g0_offs[to_size(r) + 1] =
                    g0_offs[to_size(r)] +
                    to_size(next_pow2(std::max<index_t>(1, plan_nnz[to_size(i)]) * 2));
            }
            g0_keys = sim::DeviceBuffer<index_t>(dev.allocator(), g0_offs.back());
            g0_vals = sim::DeviceBuffer<T>(dev.allocator(), g0_offs.back());
            g0_keys.fill(kEmptySlot);
        }
    }

    // Pad-storage view of one row: the capacity-sized slot at cap_rpt[i].
    const auto pad_row_col = [&](index_t i) {
        return pad_col.span().subspan(to_size(cap_rpt[to_size(i)]),
                                      to_size(capacity[to_size(i)]));
    };
    const auto pad_row_val = [&](index_t i) {
        return pad_val.span().subspan(to_size(cap_rpt[to_size(i)]),
                                      to_size(capacity[to_size(i)]));
    };

    for (const GroupInfo& g : policy.groups) {
        const index_t size = grouped.group_size(g.id);
        if (size == 0) { continue; }
        const sim::Stream stream = opt.use_streams ? dev.create_stream() : dev.default_stream();
        const index_t group_begin = grouped.offsets[to_size(g.id)];

        if (g.assignment == Assignment::kPwarpRow) {
            const int pw = policy.pwarp_width;
            const auto max_rows_by_smem =
                to_index(dev.spec().max_shared_per_block /
                         (to_size(g.table_size) * (sizeof(index_t) + sizeof(T))));
            const index_t rows_per_block =
                std::min<index_t>(g.block_size / pw, max_rows_by_smem);
            const int block_dim = static_cast<int>(rows_per_block) * pw;
            const index_t grid = (size + rows_per_block - 1) / rows_per_block;
            const std::size_t smem = to_size(rows_per_block) * to_size(g.table_size) *
                                     (sizeof(index_t) + sizeof(T));
            dev.launch(stream, {grid, block_dim, smem}, "numeric_est_pwarp",
                       [&, group_begin, size, rows_per_block, pw, tsize = g.table_size,
                        gid = g.id](sim::BlockCtx& blk) {
                           auto keys = blk.shared_alloc<index_t>(to_size(rows_per_block) *
                                                                 to_size(tsize));
                           auto vals = blk.shared_alloc<T>(to_size(rows_per_block) *
                                                           to_size(tsize));
                           std::fill(keys.begin(), keys.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(), static_cast<double>(tsize) / pw);
                           double block_span = 0.0;
                           double block_work = 0.0;
                           std::vector<double> lane(static_cast<std::size_t>(pw));
                           for (index_t r = 0; r < rows_per_block; ++r) {
                               const index_t idx = blk.block_idx() * rows_per_block + r;
                               if (idx >= size) { break; }
                               const index_t i = perm[to_size(group_begin + idx)];
                               if (!inject.empty() && inject[to_size(i)] != 0) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   continue;
                               }
                               std::fill(lane.begin(), lane.end(), 0.0);
                               auto k = keys.subspan(to_size(r) * to_size(tsize),
                                                     to_size(tsize));
                               auto v = vals.subspan(to_size(r) * to_size(tsize),
                                                     to_size(tsize));
                               if (!detail::fill_row_hashed(a, b, i, k, v, true, ec,
                                                            ec.probe_shared,
                                                            ec.insert_shared,
                                                            ec.accum_shared, lane, 1)) {
                                   fault_group[to_size(i)] = gid + 1;
                                   fault_table[to_size(i)] = tsize;
                                   block_work += detail::sum(lane);
                                   continue;
                               }
                               index_t actual = 0;
                               const auto [ew, es] = detail::emit_row_padded<T>(
                                   k, v, pad_row_col(i), pad_row_val(i), m,
                                   /*shared=*/true, pw, &actual);
                               row_nnz[to_size(i)] = actual;
                               if (actual <= capacity[to_size(i)]) {
                                   in_pad[to_size(i)] = 1;
                               }
                               block_span = std::max(block_span, detail::max_of(lane) + es);
                               block_work += detail::sum(lane) + ew;
                           }
                           blk.charge_work_span(block_work, block_span);
                       });
            continue;
        }

        if (!g.global_table) {
            const index_t tsize = g.table_size;
            const std::size_t smem = to_size(tsize) * (sizeof(index_t) + sizeof(T));
            const int warps = g.block_size / dev.spec().warp_size;
            dev.launch(stream, {size, g.block_size, smem}, "numeric_est_tb",
                       [&, group_begin, tsize, warps, gid = g.id](sim::BlockCtx& blk) {
                           const index_t i = perm[to_size(group_begin + blk.block_idx())];
                           if (!inject.empty() && inject[to_size(i)] != 0) {
                               fault_group[to_size(i)] = gid + 1;
                               fault_table[to_size(i)] = tsize;
                               return;
                           }
                           auto keys = blk.shared_alloc<index_t>(to_size(tsize));
                           auto vals = blk.shared_alloc<T>(to_size(tsize));
                           std::fill(keys.begin(), keys.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(),
                                         std::ceil(static_cast<double>(tsize) /
                                                   blk.block_dim()));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                        ec.probe_shared, ec.insert_shared,
                                                        ec.accum_shared, warp_cycles,
                                                        dev.spec().warp_size)) {
                               fault_group[to_size(i)] = gid + 1;
                               fault_table[to_size(i)] = tsize;
                               blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                    detail::max_of(warp_cycles));
                               return;
                           }
                           index_t actual = 0;
                           const auto [ew, es] = detail::emit_row_padded<T>(
                               keys, vals, pad_row_col(i), pad_row_val(i), m,
                               /*shared=*/true, blk.block_dim(), &actual);
                           row_nnz[to_size(i)] = actual;
                           if (actual <= capacity[to_size(i)]) { in_pad[to_size(i)] = 1; }
                           const double tail = dev.cost_model().barrier * 2.0;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                                detail::max_of(warp_cycles) + es + tail);
                       });
            continue;
        }

        // Group 0: per-row global tables.
        const int block = dev.spec().max_threads_per_block;
        const int warps = block / dev.spec().warp_size;
        dev.launch(stream, {size, block, 0}, "numeric_est_global",
                   [&, group_begin, warps, block, gid = g.id](sim::BlockCtx& blk) {
                       const auto r = to_size(blk.block_idx());
                       const index_t i = perm[to_size(group_begin) + r];
                       const auto tsize = to_index(g0_offs[r + 1] - g0_offs[r]);
                       if (!inject.empty() && inject[to_size(i)] != 0) {
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                           return;
                       }
                       auto keys = g0_keys.span().subspan(g0_offs[r],
                                                          g0_offs[r + 1] - g0_offs[r]);
                       auto vals = g0_vals.span().subspan(g0_offs[r],
                                                          g0_offs[r + 1] - g0_offs[r]);
                       blk.global_write(block, sizeof(index_t), sim::MemPattern::kCoalesced,
                                        std::ceil(static_cast<double>(keys.size()) / block));
                       std::vector<double> warp_cycles(to_size(warps), 0.0);
                       if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                    ec.probe_global, ec.insert_global,
                                                    ec.accum_global, warp_cycles,
                                                    dev.spec().warp_size)) {
                           fault_group[to_size(i)] = gid + 1;
                           fault_table[to_size(i)] = tsize;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                detail::max_of(warp_cycles));
                           return;
                       }
                       index_t actual = 0;
                       const auto [ew, es] = detail::emit_row_padded<T>(
                           keys, vals, pad_row_col(i), pad_row_val(i), m,
                           /*shared=*/false, block, &actual);
                       row_nnz[to_size(i)] = actual;
                       if (actual <= capacity[to_size(i)]) { in_pad[to_size(i)] = 1; }
                       const double tail = dev.cost_model().barrier * 2.0;
                       blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                            detail::max_of(warp_cycles) + es + tail);
                   });
    }
    dev.synchronize();

    // Captured rows: actual nnz still unknown (fill skipped or saturated).
    std::vector<index_t> captured;
    std::vector<index_t> need_count;
    for (index_t i = 0; i < a.rows; ++i) {
        if (fault_group[to_size(i)] == 0) { continue; }
        captured.push_back(i);
        dev.record_fault_event("numeric_est_row_fault", fault_group[to_size(i)] - 1, i,
                               fault_table[to_size(i)],
                               static_cast<int>(fault_table[to_size(i)]), 0);
        if (exact[to_size(i)] != 0) {
            // The planned capacity *is* the exact count (sampled, re-counted
            // or product-free row): no repair needed, only a value rewrite.
            row_nnz[to_size(i)] = capacity[to_size(i)];
        } else {
            need_count.push_back(i);
        }
    }
    out.faults.faulted_rows = static_cast<int>(captured.size());

    // Count repair: exact-count the captured estimated rows so the row
    // pointer scan sees true nnz everywhere. Tables sized from products are
    // always sufficient, so this is one bounded pass (injection applies to
    // first attempts only, and these rows already consumed theirs).
    if (!need_count.empty()) {
        const std::span<const index_t> prod(products.data(), to_size(a.rows));
        const CountRowsOutcome repaired = count_rows_contained(
            dev, a, b, need_count, prod, std::span<index_t>(row_nnz.data(), row_nnz.size()),
            opt, /*inject=*/{}, "estimate_count_repair");
        out.faults.row_retries += repaired.faults.row_retries;
        out.faults.host_fallback_rows += repaired.faults.host_fallback_rows;
    }

    // Mispredict sweep: every estimated row the plan failed on its own
    // terms — storage overflow (true nnz > capacity) or a saturated planned
    // table — lands outside pad storage and needs the group-0 rewrite.
    // Fault-injected rows are containment events, not mispredictions.
    for (index_t i = 0; i < a.rows; ++i) {
        if (in_pad[to_size(i)] != 0) { continue; }
        out.rewrite_rows.push_back(i);
        const bool injected = !inject.empty() && inject[to_size(i)] != 0;
        if (exact[to_size(i)] == 0 && !injected) { ++out.mispredicted_rows; }
    }
    return out;
}

/// Copies the well-predicted rows from pad storage into the final CSR
/// (coalesced stream per row). Rows awaiting a rewrite are skipped.
template <ValueType T>
void compact_padded_rows(sim::Device& dev, const std::vector<index_t>& cap_rpt,
                         const sim::DeviceBuffer<index_t>& pad_col,
                         const sim::DeviceBuffer<T>& pad_val,
                         std::span<const std::uint8_t> in_pad, sim::DeviceCsr<T>& c)
{
    const index_t rows = c.rows;
    // Small tiles: many blocks per SM so the copy is bandwidth-bound on the
    // whole device instead of gated by the heaviest tile.
    constexpr int kRowsPerBlock = 32;
    constexpr int kBlock = 128;
    const index_t grid = rows == 0 ? 0 : (rows + kRowsPerBlock - 1) / kRowsPerBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "compact_rows",
               [&](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kRowsPerBlock;
                   const index_t end = std::min(rows, begin + kRowsPerBlock);
                   double elems = 0.0;
                   for (index_t i = begin; i < end; ++i) {
                       if (in_pad[to_size(i)] == 0) { continue; }
                       const index_t base = c.rpt[to_size(i)];
                       const index_t n = c.rpt[to_size(i) + 1] - base;
                       const auto src = to_size(cap_rpt[to_size(i)]);
                       for (index_t s = 0; s < n; ++s) {
                           c.col[to_size(base + s)] = pad_col[src + to_size(s)];
                           c.val[to_size(base + s)] = pad_val[src + to_size(s)];
                       }
                       elems += static_cast<double>(n);
                   }
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   const auto& mod = blk.model();
                   const double unit =
                       mod.global_cost(sizeof(index_t) + sizeof(T),
                                       sim::MemPattern::kCoalesced) *
                       2.0;  // read from pad + write to C
                   // per row: both rpt bounds; all threads stride the elements
                   blk.global_read(lanes, 2 * sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.charge_work_span(elems * unit, elems / kBlock * unit);
               });
    dev.synchronize();
}

/// Recomputes the mispredicted / faulted rows straight into the final CSR
/// (its row pointers are exact by now) on the group-0 retry path. Each
/// row's nnz is KNOWN exactly by this point, so most rescues run in a
/// shared table of next_pow2(nnz) entries — the same level the exact
/// planner would have picked — and only rows past the largest shared level
/// (or pushed there by retry doubling) pay for per-row global tables of
/// next_pow2(2 * nnz) entries. Tables double per bounded retry, host
/// recourse after that. Every execution tallies into row_retries — in a
/// clean run each mispredicted row costs exactly one retry here.
template <ValueType T>
PhaseFaults rewrite_rows_estimated(sim::Device& dev, const sim::DeviceCsr<T>& a,
                                   const sim::DeviceCsr<T>& b,
                                   const std::vector<index_t>& rows,
                                   const sim::DeviceBuffer<index_t>& row_nnz,
                                   sim::DeviceCsr<T>& c, const Options& opt)
{
    PhaseFaults pf;
    if (rows.empty()) { return pf; }
    const ElemCosts ec = ElemCosts::make(dev.cost_model(), /*numeric=*/true, sizeof(T));
    const sim::CostModel& m = dev.cost_model();
    const index_t max_shared =
        GroupingPolicy::numeric(dev.spec(), sizeof(T), opt.pwarp_width, opt.use_pwarp)
            .max_shared_table;

    std::vector<index_t> pending = rows;
    int attempt = 0;
    while (!pending.empty() && attempt < opt.max_row_retries) {
        std::vector<std::uint8_t> still(pending.size(), 0);
        std::vector<index_t> tsizes(pending.size(), 0);
        // Shared-eligible rows bucketed by table size (each launch declares
        // only the shared memory it really uses); the rest go to one
        // arena-backed global launch.
        std::map<index_t, std::vector<std::size_t>> shared_buckets;
        std::vector<std::size_t> global_rows;
        for (std::size_t r = 0; r < pending.size(); ++r) {
            const index_t nnz = std::max<index_t>(1, row_nnz[to_size(pending[r])]);
            const index_t ts = detail::retry_table_size(next_pow2(nnz), attempt);
            if (ts <= max_shared) {
                shared_buckets[ts].push_back(r);
                tsizes[r] = ts;
            } else {
                global_rows.push_back(r);
            }
        }

        for (auto& [bucket_tsize, bucket] : shared_buckets) {
            const std::size_t smem =
                to_size(bucket_tsize) * (sizeof(index_t) + sizeof(T));
            const int block = std::clamp(static_cast<int>(bucket_tsize / 4), 64,
                                         dev.spec().max_threads_per_block);
            const int warps = std::max(1, block / dev.spec().warp_size);
            const sim::Stream stream =
                opt.use_streams ? dev.create_stream() : dev.default_stream();
            dev.launch(stream, {to_index(bucket.size()), block, smem},
                       "numeric_est_rewrite",
                       [&, &bucket = bucket, tsize = bucket_tsize,
                        warps](sim::BlockCtx& blk) {
                           const std::size_t r = bucket[to_size(blk.block_idx())];
                           const index_t i = pending[r];
                           auto keys = blk.shared_alloc<index_t>(to_size(tsize));
                           auto vals = blk.shared_alloc<T>(to_size(tsize));
                           std::fill(keys.begin(), keys.end(), kEmptySlot);
                           blk.shared_op(blk.block_dim(),
                                         std::ceil(static_cast<double>(tsize) /
                                                   blk.block_dim()));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                        ec.probe_shared, ec.insert_shared,
                                                        ec.accum_shared, warp_cycles,
                                                        dev.spec().warp_size)) {
                               still[r] = 1;
                               blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                    detail::max_of(warp_cycles));
                               return;
                           }
                           bool mismatch = false;
                           const auto [ew, es] = detail::emit_row<T>(
                               keys, vals, c, i, m, /*shared=*/true, blk.block_dim(),
                               &mismatch);
                           if (mismatch) { still[r] = 1; }
                           const double tail = dev.cost_model().barrier * 2.0;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                                detail::max_of(warp_cycles) + es + tail);
                       });
        }

        sim::DeviceBuffer<index_t> keys_arena;
        sim::DeviceBuffer<T> vals_arena;
        if (!global_rows.empty()) {
            std::vector<std::size_t> offs(global_rows.size() + 1, 0);
            for (std::size_t q = 0; q < global_rows.size(); ++q) {
                const index_t base = next_pow2(
                    std::max<index_t>(1, row_nnz[to_size(pending[global_rows[q]])]) * 2);
                offs[q + 1] = offs[q] + to_size(detail::retry_table_size(base, attempt));
                tsizes[global_rows[q]] = to_index(offs[q + 1] - offs[q]);
            }
            keys_arena = sim::DeviceBuffer<index_t>(dev.allocator(), offs.back());
            vals_arena = sim::DeviceBuffer<T>(dev.allocator(), offs.back());
            keys_arena.fill(kEmptySlot);
            const int block = dev.spec().max_threads_per_block;
            const int warps = block / dev.spec().warp_size;
            const sim::Stream stream =
                opt.use_streams ? dev.create_stream() : dev.default_stream();
            dev.launch(stream, {to_index(global_rows.size()), block, 0},
                       "numeric_est_rewrite",
                       [&, offs = std::move(offs), warps, block](sim::BlockCtx& blk) {
                           const auto q = to_size(blk.block_idx());
                           const std::size_t r = global_rows[q];
                           const index_t i = pending[r];
                           auto keys =
                               keys_arena.span().subspan(offs[q], offs[q + 1] - offs[q]);
                           auto vals =
                               vals_arena.span().subspan(offs[q], offs[q + 1] - offs[q]);
                           blk.global_write(block, sizeof(index_t),
                                            sim::MemPattern::kCoalesced,
                                            std::ceil(static_cast<double>(keys.size()) /
                                                      block));
                           std::vector<double> warp_cycles(to_size(warps), 0.0);
                           if (!detail::fill_row_hashed(a, b, i, keys, vals, true, ec,
                                                        ec.probe_global, ec.insert_global,
                                                        ec.accum_global, warp_cycles,
                                                        dev.spec().warp_size)) {
                               still[r] = 1;
                               blk.charge_work_span(detail::sum(warp_cycles) * 32.0,
                                                    detail::max_of(warp_cycles));
                               return;
                           }
                           bool mismatch = false;
                           const auto [ew, es] = detail::emit_row<T>(keys, vals, c, i, m,
                                                                     /*shared=*/false,
                                                                     block, &mismatch);
                           if (mismatch) { still[r] = 1; }
                           const double tail = dev.cost_model().barrier * 2.0;
                           blk.charge_work_span(detail::sum(warp_cycles) * 32.0 + ew,
                                                detail::max_of(warp_cycles) + es + tail);
                       });
        }
        dev.synchronize();
        pf.row_retries += static_cast<int>(pending.size());
        for (std::size_t r = 0; r < pending.size(); ++r) {
            dev.record_fault_event("numeric_est_rewrite", 0, pending[r], tsizes[r],
                                   static_cast<int>(tsizes[r]), attempt + 1);
        }
        std::vector<index_t> next;
        for (std::size_t r = 0; r < pending.size(); ++r) {
            if (still[r] != 0) { next.push_back(pending[r]); }
        }
        pending = std::move(next);
        ++attempt;
    }

    // Host reference recourse: accumulate in traversal order (the order
    // hash_accumulate applies additions — bit-identical values), write
    // sorted by column.
    for (const index_t i : pending) {
        std::unordered_map<index_t, T> acc;
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t d = a.col[to_size(j)];
            const T av = a.val[to_size(j)];
            for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
                acc[b.col[to_size(k)]] += av * b.val[to_size(k)];
            }
        }
        std::vector<std::pair<index_t, T>> row(acc.begin(), acc.end());
        std::sort(row.begin(), row.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        const index_t base = c.rpt[to_size(i)];
        if (to_index(row.size()) != c.rpt[to_size(i) + 1] - base) {
            throw KernelFault("estimated rewrite nnz disagrees with repaired row pointers",
                              "calc", /*group=*/0, i, /*table_size=*/0, /*probes=*/0,
                              attempt);
        }
        for (std::size_t s = 0; s < row.size(); ++s) {
            c.col[to_size(base) + s] = row[s].first;
            c.val[to_size(base) + s] = row[s].second;
        }
        ++pf.host_fallback_rows;
        dev.record_fault_event("numeric_est_host_row", 0, i, 0, 0, attempt);
    }
    return pf;
}

}  // namespace nsparse::core
