// Predicts the peak device-memory footprint of hash_spgemm without
// running the numeric phase — the planning question the paper's
// memory-saving claim answers: "does this multiply fit on my GPU?"
//
// The prediction walks the same allocation schedule the driver performs
// (inputs, products, group permutations, row nnz, output CSR, the group-0
// global-table arenas) using a cheap symbolic pass for the exact per-row
// nnz. test_memory_estimator.cpp asserts it brackets the measured
// allocator peak tightly.
#pragma once

#include <algorithm>
#include <span>

#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse::core {

struct MemoryEstimate {
    std::size_t inputs = 0;          ///< A and B in CSR
    std::size_t output = 0;          ///< C in CSR
    std::size_t bookkeeping = 0;     ///< products, permutations, row nnz
    std::size_t symbolic_global = 0; ///< group-0 fallback key tables
    std::size_t numeric_global = 0;  ///< group-0 (key,value) tables
    std::size_t peak = 0;            ///< predicted allocator peak
    /// Largest single-row footprint (its output share plus its global-table
    /// arenas): the quantity a row-slab plan must budget for *on top of*
    /// the mean, or a dense hub row blows the first slab.
    std::size_t max_row = 0;
};

/// The allocation-schedule walk with the per-row output nnz supplied by the
/// caller: exact counts reproduce estimate_hash_spgemm_memory; the
/// estimation-based planner (core/estimator.hpp) feeds its sampled
/// predictions through the same walk to answer "will it fit?" without the
/// exact symbolic pass.
template <ValueType T>
[[nodiscard]] MemoryEstimate estimate_hash_spgemm_memory_from_nnz(
    const CsrMatrix<T>& a, const CsrMatrix<T>& b, std::span<const index_t> products,
    std::span<const index_t> nnz, const sim::DeviceSpec& spec = {})
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    NSPARSE_EXPECTS(products.size() == to_size(a.rows) && nnz.size() == to_size(a.rows),
                    "per-row spans must cover every row of A");
    const auto sym = GroupingPolicy::symbolic(spec);
    const auto num = GroupingPolicy::numeric(spec, sizeof(T));

    MemoryEstimate e;
    e.inputs = a.byte_size() + b.byte_size();

    const auto rows = to_size(a.rows);
    // products + symbolic permutation + row_nnz + numeric permutation
    e.bookkeeping = 4 * rows * sizeof(index_t);

    wide_t nnz_c = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        std::size_t row_bytes = to_size(nnz[to_size(i)]) * (sizeof(index_t) + sizeof(T));
        nnz_c += nnz[to_size(i)];
        // symbolic fallback: a group-0 row whose distinct-column count
        // saturates the largest shared table
        if (products[to_size(i)] > sym.max_shared_table &&
            nnz[to_size(i)] >= sym.max_shared_table) {
            const std::size_t t =
                to_size(next_pow2(products[to_size(i)])) * sizeof(index_t);
            e.symbolic_global += t;
            row_bytes += t;
        }
        if (nnz[to_size(i)] > num.max_shared_table) {
            const std::size_t t = to_size(next_pow2(std::max<index_t>(1, nnz[to_size(i)]) * 2)) *
                                  (sizeof(index_t) + sizeof(T));
            e.numeric_global += t;
            row_bytes += t;
        }
        e.max_row = std::max(e.max_row, row_bytes);
    }
    e.output = (rows + 1) * sizeof(index_t) +
               to_size(nnz_c) * (sizeof(index_t) + sizeof(T));

    // Symbolic-phase peak: everything before C exists, plus fail flags for
    // the group-0 attempt and the fallback tables.
    std::size_t group0_rows = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        if (products[to_size(i)] > sym.max_shared_table) { ++group0_rows; }
    }
    const std::size_t peak_symbolic = e.inputs + e.bookkeeping - rows * sizeof(index_t) +
                                      group0_rows * sizeof(index_t) + e.symbolic_global;
    // Numeric-phase peak: inputs + bookkeeping + C + numeric global arena.
    const std::size_t peak_numeric =
        e.inputs + e.bookkeeping + e.output + e.numeric_global;
    e.peak = std::max(peak_symbolic, peak_numeric);
    return e;
}

template <ValueType T>
[[nodiscard]] MemoryEstimate estimate_hash_spgemm_memory(const CsrMatrix<T>& a,
                                                         const CsrMatrix<T>& b,
                                                         const sim::DeviceSpec& spec = {})
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    const auto products = intermediate_products_per_row(a, b);
    const auto nnz = reference_row_nnz(a, b);
    return estimate_hash_spgemm_memory_from_nnz(a, b, products, nnz, spec);
}

/// Plans the row-slab split of the OOM fallback: the smallest slab count k
/// such that the estimated per-slab footprint fits `budget_bytes`. B stays
/// resident for every slab; everything else (A's slab, bookkeeping, the
/// slab's share of C and of the global-table arenas) scales roughly with
/// 1/k. The mean alone is not enough: one dense hub row can put nearly the
/// whole scaling footprint into whichever slab holds it, so the slab that
/// gets the largest row must fit mean-share *plus* that row — i.e.
/// k = ceil(scaling / (budget - resident - max_row)). The caller's bounded
/// slab-halving retries absorb the estimate still being optimistic.
/// Returns 0 when not even a single-row slab can fit (B alone exceeds the
/// budget).
/// The slab-count arithmetic on a precomputed estimate: the session layer
/// runs admission control and degradation planning off one estimate
/// without re-walking the allocation schedule. `resident_bytes` is the
/// footprint every slab keeps resident (B), `a_rows` bounds the slab count.
[[nodiscard]] inline index_t plan_row_slabs_from_estimate(const MemoryEstimate& e,
                                                          std::size_t resident_bytes,
                                                          index_t a_rows,
                                                          std::size_t budget_bytes)
{
    if (budget_bytes <= resident_bytes) { return 0; }
    const std::size_t per_slab_budget = budget_bytes - resident_bytes;
    const std::size_t scaling = e.peak > resident_bytes ? e.peak - resident_bytes : 0;
    if (scaling == 0) { return 1; }
    const std::size_t rows = to_size(std::max<index_t>(a_rows, 0));
    const std::size_t max_k = std::max<std::size_t>(rows, 1);
    // Reserve the hub row's footprint out of every slab's budget; when the
    // budget cannot even cover that row the best the plan can do is
    // single-row slabs (the hub slab may still OOM and surface upstream).
    std::size_t k = max_k;
    if (per_slab_budget > e.max_row) {
        const std::size_t usable = per_slab_budget - e.max_row;
        k = std::min(std::max<std::size_t>((scaling + usable - 1) / usable, 1), max_k);
    }
    // Clamp away trailing zero-row slabs: a ceil split of R rows into k
    // slabs fills only ceil(R / ceil(R/k)) of them (R=6, k=4 yields
    // 2-row slabs, so the 4th slab is empty). The per-slab row count —
    // and hence the footprint — is unchanged by the clamp; only the count
    // becomes honest. This matters when a hub row forces k = rows on a
    // budget that barely misses: the shard planner builds on this count
    // and must never emit an empty shard.
    if (rows > 0) {
        const std::size_t slab_rows = (rows + k - 1) / k;
        k = (rows + slab_rows - 1) / slab_rows;
    }
    return to_index(k);
}

template <ValueType T>
[[nodiscard]] index_t plan_row_slabs(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                     std::size_t budget_bytes,
                                     const sim::DeviceSpec& spec = {})
{
    const auto e = estimate_hash_spgemm_memory(a, b, spec);
    return plan_row_slabs_from_estimate(e, b.byte_size(), a.rows, budget_bytes);
}

}  // namespace nsparse::core
