// Predicts the peak device-memory footprint of hash_spgemm without
// running the numeric phase — the planning question the paper's
// memory-saving claim answers: "does this multiply fit on my GPU?"
//
// The prediction walks the same allocation schedule the driver performs
// (inputs, products, group permutations, row nnz, output CSR, the group-0
// global-table arenas) using a cheap symbolic pass for the exact per-row
// nnz. test_memory_estimator.cpp asserts it brackets the measured
// allocator peak tightly.
#pragma once

#include <algorithm>

#include "core/grouping.hpp"
#include "core/hash_table.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse::core {

struct MemoryEstimate {
    std::size_t inputs = 0;          ///< A and B in CSR
    std::size_t output = 0;          ///< C in CSR
    std::size_t bookkeeping = 0;     ///< products, permutations, row nnz
    std::size_t symbolic_global = 0; ///< group-0 fallback key tables
    std::size_t numeric_global = 0;  ///< group-0 (key,value) tables
    std::size_t peak = 0;            ///< predicted allocator peak
};

template <ValueType T>
[[nodiscard]] MemoryEstimate estimate_hash_spgemm_memory(const CsrMatrix<T>& a,
                                                         const CsrMatrix<T>& b,
                                                         const sim::DeviceSpec& spec = {})
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    const auto sym = GroupingPolicy::symbolic(spec);
    const auto num = GroupingPolicy::numeric(spec, sizeof(T));

    MemoryEstimate e;
    e.inputs = a.byte_size() + b.byte_size();

    const auto rows = to_size(a.rows);
    // products + symbolic permutation + row_nnz + numeric permutation
    e.bookkeeping = 4 * rows * sizeof(index_t);

    const auto products = intermediate_products_per_row(a, b);
    const auto nnz = reference_row_nnz(a, b);

    wide_t nnz_c = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        nnz_c += nnz[to_size(i)];
        // symbolic fallback: a group-0 row whose distinct-column count
        // saturates the largest shared table
        if (products[to_size(i)] > sym.max_shared_table &&
            nnz[to_size(i)] >= sym.max_shared_table) {
            e.symbolic_global +=
                to_size(next_pow2(products[to_size(i)])) * sizeof(index_t);
        }
        if (nnz[to_size(i)] > num.max_shared_table) {
            e.numeric_global += to_size(next_pow2(std::max<index_t>(1, nnz[to_size(i)]) * 2)) *
                                (sizeof(index_t) + sizeof(T));
        }
    }
    e.output = (rows + 1) * sizeof(index_t) +
               to_size(nnz_c) * (sizeof(index_t) + sizeof(T));

    // Symbolic-phase peak: everything before C exists, plus fail flags for
    // the group-0 attempt and the fallback tables.
    std::size_t group0_rows = 0;
    for (index_t i = 0; i < a.rows; ++i) {
        if (products[to_size(i)] > sym.max_shared_table) { ++group0_rows; }
    }
    const std::size_t peak_symbolic = e.inputs + e.bookkeeping - rows * sizeof(index_t) +
                                      group0_rows * sizeof(index_t) + e.symbolic_global;
    // Numeric-phase peak: inputs + bookkeeping + C + numeric global arena.
    const std::size_t peak_numeric =
        e.inputs + e.bookkeeping + e.output + e.numeric_global;
    e.peak = std::max(peak_symbolic, peak_numeric);
    return e;
}

/// Plans the row-slab split of the OOM fallback: the smallest slab count k
/// such that the estimated per-slab footprint fits `budget_bytes`. B stays
/// resident for every slab; everything else (A's slab, bookkeeping, the
/// slab's share of C and of the global-table arenas) scales roughly with
/// 1/k, so k = ceil(scaling / (budget - resident)). The caller's bounded
/// slab-halving retries absorb the estimate being optimistic for skewed
/// rows. Returns 0 when not even a single-row slab can fit (B alone
/// exceeds the budget).
template <ValueType T>
[[nodiscard]] index_t plan_row_slabs(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                     std::size_t budget_bytes,
                                     const sim::DeviceSpec& spec = {})
{
    const auto e = estimate_hash_spgemm_memory(a, b, spec);
    const std::size_t resident = b.byte_size();
    if (budget_bytes <= resident) { return 0; }
    const std::size_t per_slab_budget = budget_bytes - resident;
    const std::size_t scaling = e.peak > resident ? e.peak - resident : 0;
    if (scaling == 0) { return 1; }
    const std::size_t k = (scaling + per_slab_budget - 1) / per_slab_budget;
    const std::size_t max_k = to_size(std::max<index_t>(a.rows, 1));
    return to_index(std::min(std::max<std::size_t>(k, 1), max_k));
}

}  // namespace nsparse::core
