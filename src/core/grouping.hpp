// Row grouping (paper §III-A, §III-D and Table I).
//
// Rows are divided into groups by the number of intermediate products
// (before the symbolic phase) or by the number of output nonzeros (before
// the numeric phase). Each group gets a thread assignment (PWARP/ROW or
// TB/ROW), a thread-block size and a power-of-two hash-table size; the
// whole table is *derived* from the device spec exactly as §III-D
// describes, and a unit test asserts the derivation reproduces the paper's
// Table I for the P100.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "sparse/types.hpp"

namespace nsparse::core {

enum class Assignment { kPwarpRow, kTbRow };

struct GroupInfo {
    int id = 0;
    index_t min_count = 0;   ///< inclusive lower bound of the count range
    index_t max_count = 0;   ///< inclusive upper bound; -1 = unbounded (group 0)
    Assignment assignment = Assignment::kTbRow;
    int block_size = 0;      ///< CUDA thread-block size
    int tb_per_sm = 0;       ///< Table I "#TB": min(maxThreads/SM / block, maxTB/SM)
    index_t table_size = 0;  ///< shared hash-table entries per row (0: per-row global)
    bool global_table = false;

    [[nodiscard]] bool contains(index_t count) const
    {
        return count >= min_count && (max_count < 0 || count <= max_count);
    }
};

/// The derived per-phase group table.
struct GroupingPolicy {
    std::vector<GroupInfo> groups;  ///< ordered by id: 0 (largest) .. N-1 (pwarp)
    int pwarp_width = 4;
    index_t pwarp_border = 0;  ///< counts <= border go to the PWARP/ROW group
    index_t max_shared_table = 0;

    /// Policy for the symbolic phase (key-only tables, 4 B/entry,
    /// border 32).
    static GroupingPolicy symbolic(const sim::DeviceSpec& spec, int pwarp_width = 4,
                                   bool use_pwarp = true);

    /// Policy for the numeric phase ((key,value) tables, 4+sizeof(T)
    /// bytes/entry — the paper sizes for double, 12 B — border 16).
    static GroupingPolicy numeric(const sim::DeviceSpec& spec, std::size_t value_bytes,
                                  int pwarp_width = 4, bool use_pwarp = true);

    /// Group id responsible for a row with `count` products/nonzeros.
    [[nodiscard]] int group_of(index_t count) const;

private:
    static GroupingPolicy derive(const sim::DeviceSpec& spec, std::size_t entry_bytes,
                                 index_t border, int pwarp_width, bool use_pwarp);
};

/// Result of partitioning the rows of a concrete matrix into groups:
/// a permutation buffer in device memory (the "array of gathered row
/// indices" of §III-A — the algorithm's only sizeable extra memory) plus
/// per-group offsets.
struct GroupedRows {
    sim::DeviceBuffer<index_t> permutation;  ///< rows, grouped
    std::vector<index_t> offsets;            ///< per-group start, size groups+1

    [[nodiscard]] index_t group_size(int g) const
    {
        return offsets[to_size(g) + 1] - offsets[to_size(g)];
    }
};

/// Partitions rows by `counts` according to `policy`, charging the
/// classify/scatter kernels to the device's current phase.
GroupedRows group_rows(sim::Device& dev, const GroupingPolicy& policy,
                       const sim::DeviceBuffer<index_t>& counts);

}  // namespace nsparse::core
