// Row-shard planning for multi-device SpGEMM (core/spgemm_sharded.hpp).
//
// A shard is a contiguous row range of A multiplied against the whole of B
// on one simulated device. The planner builds on the row-slab footprint
// arithmetic of core/memory_estimator.hpp and adds the index-width
// dimension: each shard's nnz upper bound (sum over its rows of
// min(products, cols(B))) is kept within `ShardOptions::index_limit`, so
// every shard's kernels and row-pointer scans run in 32-bit even when the
// merged product must escalate to 64-bit row pointers.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "core/options.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "sparse/csr.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse::sim {
class Device;
class CancelToken;
}  // namespace nsparse::sim

namespace nsparse::core {

/// One planned shard: a contiguous, never-empty row range of A.
struct ShardRange {
    index_t row_begin = 0;
    index_t row_end = 0;  ///< exclusive
    /// Sum over the shard's rows of min(products, cols(B)) — an upper
    /// bound on the shard's nnz(C) share that the real run cannot exceed.
    wide_t nnz_upper_bound = 0;

    [[nodiscard]] index_t rows() const { return row_end - row_begin; }
};

/// The planner's output: the shard list plus the width decision inputs.
struct ShardPlan {
    std::vector<ShardRange> shards;
    /// Sum of the per-shard upper bounds (= the whole product's bound).
    wide_t total_nnz_upper_bound = 0;
    /// The merged row pointers may cross `index_limit`: the merge must be
    /// prepared to escalate to 64-bit row pointers (whether it actually
    /// does depends on the real nnz, decided after the shards complete).
    bool may_escalate_64bit = false;

    [[nodiscard]] int count() const { return static_cast<int>(shards.size()); }
};

/// Knobs of the sharded execution layer.
struct ShardOptions {
    /// Simulated devices the shards are scheduled onto (>= 1). Each device
    /// is constructed fresh from `device_spec` / `cost_model`.
    int devices = 2;

    /// Requested shard count; 0 lets the planner decide (it still never
    /// plans fewer than `devices` or `min_shards` shards, nor more than
    /// rows(A)).
    int shards = 0;

    /// Memory-plan floor for the shard count (the session layer feeds the
    /// admission planner's slab level through here); 0 = no floor.
    index_t min_shards = 0;

    /// Throw ShardFailed on the first shard whose ladder is exhausted
    /// instead of collecting every failure into its result slot (the
    /// spgemm_batch convention: lowest shard index wins deterministically).
    bool fail_fast = false;

    /// Per-shard multiply knobs (plan mode, executor threads, retries...).
    core::Options options = {};

    /// Per-shard recovery ladder (mirrors the session's RecoveryPolicy):
    /// estimated→exact replan, row-slab sub-split, host recourse.
    bool exact_replan = true;
    bool slab_fallback = true;
    bool host_recourse = true;

    /// Re-dispatches of a ladder-exhausted shard onto the next device
    /// (>= 0). Requeues run after the concurrent pass, in shard order.
    int max_requeues = 1;

    /// Escalation boundary for the merged row pointers. The default is the
    /// real 32-bit range; tests lower it to exercise the 64-bit escalation
    /// without allocating 2^31 nonzeros. Must be >= 1.
    wide_t index_limit = std::numeric_limits<index_t>::max();

    /// Per-shard budgets (0 = unlimited), enforced by a per-shard
    /// CancelToken at kernel boundaries; an expired shard fails terminally
    /// (no requeue) without touching its siblings.
    double shard_sim_seconds = 0.0;
    std::int64_t shard_wall_ms = 0;

    /// External cancellation (not owned; may be null): checked between
    /// shards and ladder stages so a session-level cancel stops the whole
    /// sharded run cooperatively.
    sim::CancelToken* cancel = nullptr;

    /// Device template for every shard device.
    sim::DeviceSpec device_spec = sim::DeviceSpec::pascal_p100();
    sim::CostModel cost_model = {};

    /// Retain per-kernel trace entries and roll them up (with device ids)
    /// into ShardedOutput::trace.
    bool record_trace = false;

    /// Test hook: invoked once per device after construction (device id,
    /// device) — fault plans, allocator shrinks etc. are installed here.
    std::function<void(int, sim::Device&)> configure_device;
};

/// Validates the ShardOptions contract (PreconditionError naming the
/// violated invariant, like core::validate_options which it includes).
inline void validate_shard_options(const ShardOptions& sopt)
{
    validate_options(sopt.options);
    if (sopt.devices < 1) {
        throw PreconditionError("ShardOptions::devices must be >= 1 (got " +
                                    std::to_string(sopt.devices) + ")",
                                "shard_devices_positive");
    }
    if (sopt.shards < 0) {
        throw PreconditionError("ShardOptions::shards must be non-negative (got " +
                                    std::to_string(sopt.shards) + ")",
                                "shard_count_non_negative");
    }
    if (sopt.min_shards < 0) {
        throw PreconditionError("ShardOptions::min_shards must be non-negative (got " +
                                    std::to_string(sopt.min_shards) + ")",
                                "min_shards_non_negative");
    }
    if (sopt.max_requeues < 0) {
        throw PreconditionError("ShardOptions::max_requeues must be non-negative (got " +
                                    std::to_string(sopt.max_requeues) + ")",
                                "max_requeues_non_negative");
    }
    if (sopt.index_limit < 1) {
        throw PreconditionError("ShardOptions::index_limit must be >= 1 (got " +
                                    std::to_string(sopt.index_limit) + ")",
                                "index_limit_positive");
    }
}

/// Plans the row shards of A*B. Deterministic in (A, B, sopt): the walk
/// cuts a shard when it reaches the target row count or when adding the
/// next row would push the shard's nnz upper bound past `index_limit`
/// (a single row always forms a valid shard — its real nnz is bounded by
/// cols(B), which fits 32-bit by construction). Never emits an empty
/// shard; rows(A) == 0 yields an empty plan.
template <ValueType T>
[[nodiscard]] ShardPlan plan_row_shards(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                                        const ShardOptions& sopt)
{
    NSPARSE_EXPECTS(a.cols == b.rows, "inner dimensions must agree");
    validate_shard_options(sopt);

    ShardPlan plan;
    if (a.rows == 0) { return plan; }

    const auto products = intermediate_products_per_row(a, b);
    std::vector<index_t> ub(to_size(a.rows));
    for (index_t i = 0; i < a.rows; ++i) {
        ub[to_size(i)] = std::min(products[to_size(i)], b.cols);
        plan.total_nnz_upper_bound += ub[to_size(i)];
    }
    plan.may_escalate_64bit = plan.total_nnz_upper_bound > sopt.index_limit;

    const index_t k = std::min<index_t>(
        a.rows, std::max<index_t>({static_cast<index_t>(sopt.shards),
                                   static_cast<index_t>(sopt.devices), sopt.min_shards, 1}));
    const index_t target_rows = (a.rows + k - 1) / k;

    ShardRange cur;
    for (index_t i = 0; i < a.rows; ++i) {
        const wide_t row_ub = ub[to_size(i)];
        const bool full = cur.rows() >= target_rows;
        const bool would_overflow =
            cur.rows() > 0 && cur.nnz_upper_bound + row_ub > sopt.index_limit;
        if (full || would_overflow) {
            plan.shards.push_back(cur);
            cur = ShardRange{i, i, 0};
        }
        cur.row_end = i + 1;
        cur.nnz_upper_bound += row_ub;
    }
    plan.shards.push_back(cur);
    return plan;
}

}  // namespace nsparse::core
