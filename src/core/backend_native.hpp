// Native CPU backend of the hash SpGEMM pipeline (BackendKind::kNative).
//
// The same two-phase hash algorithm as the simulated backend — count
// products, symbolic count, row-pointer scan, allocate C, numeric
// accumulate/gather/sort — but the per-row hash kernels execute directly
// on the host worker pool (sim::parallel_chunks) instead of as simulated
// thread blocks. The metric here is wall-clock: no grouping, no cost-model
// arithmetic, no makespan scheduling. Each chunk owns a reusable
// thread-private hash workspace (NativeWorkspace) whose occupied slots are
// reset after every row, so steady-state rows allocate nothing.
//
// Byte-identity with the simulated backend holds for every plan mode and
// thread count because (a) hash_accumulate semantics — values added per
// key in traversal order (j over A's row, k over B's row) — do not depend
// on the table size, (b) every emit path sorts by column, and (c) the
// symbolic distinct-count is order-independent. Table sizing here only
// decides how many probes a row pays, never what C contains. Chunk
// boundaries depend only on (rows, threads) and all cross-chunk
// reductions (product totals, fault lists, the row-pointer carry) are
// folded in row order, so results are also identical for any thread count.
//
// What stays on the simulated device: allocation. A/B uploads, the
// products/row_nnz/capacity scratch, pad storage and C itself go through
// sim::DeviceAllocator, so admission control, the FaultPlan injection
// hooks, peak-memory accounting and the OOM slab ladder behave exactly as
// on the simulated backend. Thread-private hash tables are plain host
// memory — the analogue of (uncharged) shared memory. Estimation-based
// planning (build_row_plan, the hybrid low-confidence recount) also runs
// through the simulated helpers: plans and estimation stats are identical
// by construction, and only the heavy numeric work runs natively.
//
// Cancellation is cooperative at phase boundaries (Device::check_cancel on
// the host thread — the Timeline is not thread-safe), matching the
// kernel-boundary granularity of the simulated backend.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/estimator.hpp"
#include "core/fault.hpp"
#include "core/hash_table.hpp"
#include "core/multiply_result.hpp"
#include "core/options.hpp"
#include "core/scratch.hpp"
#include "gpusim/algorithm.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/error.hpp"

namespace nsparse::core::detail {

/// Native hash-table size for a row expecting up to `n` distinct columns:
/// power of two (bit-and probing), load factor <= 0.5, capped like
/// retry_table_size. Never saturates when the bound is honest (distinct
/// <= n < table size, so an empty slot always exists within the probe
/// bound).
[[nodiscard]] inline index_t native_table_size(index_t n)
{
    constexpr index_t kCap = index_t{1} << 30;
    const index_t base = next_pow2(std::max<index_t>(1, n));
    return base >= kCap / 2 ? kCap : base * 2;
}

/// Thread-private hash workspace of one worker chunk, reused across all
/// its rows. Invariant between rows: every slot of `keys` is kEmptySlot —
/// clear_touched() resets only the slots the previous row occupied, so the
/// per-row cost is O(row work), not O(table size), and steady-state rows
/// allocate nothing.
template <ValueType T>
struct NativeWorkspace {
    std::vector<index_t> keys;
    std::vector<T> vals;
    std::vector<index_t> touched;      ///< occupied slots, insertion order
    /// Sorted (key << 32 | slot) of the last computed row. Packing the
    /// column into the high half makes the sort an 8-byte branch-free
    /// compare instead of a 16-byte pair compare — the gather/sort is the
    /// hottest part of the numeric phase. Columns are non-negative index_t,
    /// so unsigned 64-bit order equals column order.
    std::vector<std::uint64_t> order;
    std::vector<std::uint64_t> order_tmp;  ///< radix scatter buffer
    std::vector<std::uint32_t> hist;       ///< radix bucket histogram

    void ensure(index_t table_size)
    {
        if (to_index(keys.size()) < table_size) {
            keys.resize(to_size(table_size), kEmptySlot);
            vals.resize(to_size(table_size));
        }
    }

    void clear_touched()
    {
        for (const index_t t : touched) { keys[to_size(t)] = kEmptySlot; }
        touched.clear();
    }

    /// Sorts `order` by column (the high 32 bits). Column keys are unique
    /// within a row, so any comparison tie-breaking is irrelevant and the
    /// result equals std::sort's. Large rows use an LSB-first stable radix
    /// sort (11-bit digits, pass count from the column range) — per-row
    /// std::sort is the single hottest piece of the whole numeric phase,
    /// and the radix version is ~3x cheaper at fig2 row sizes. Small rows
    /// keep std::sort: a 2048-bucket histogram costs more than the sort.
    void sort_order(index_t cols)
    {
        constexpr std::size_t kSmallRow = 64;
        if (order.size() < kSmallRow) {
            std::sort(order.begin(), order.end());
            return;
        }
        const int bits =
            cols <= 1 ? 1 : static_cast<int>(std::bit_width(static_cast<std::uint32_t>(cols - 1)));
        const int passes = (bits + 10) / 11;
        for (int p = 0; p < passes; ++p) {
            const int shift = 32 + 11 * p;
            hist.assign(2049, 0);
            for (const std::uint64_t o : order) { ++hist[((o >> shift) & 2047u) + 1]; }
            for (std::size_t bkt = 1; bkt <= 2048; ++bkt) { hist[bkt] += hist[bkt - 1]; }
            order_tmp.resize(order.size());
            for (const std::uint64_t o : order) {
                order_tmp[hist[(o >> shift) & 2047u]++] = o;
            }
            order.swap(order_tmp);
        }
    }

    /// Writes the last computed row (ws.order from native_compute_row) to
    /// `col`/`val` in column order. Valid until the next row is computed:
    /// clear_touched() resets keys only, the value slots order points at
    /// stay intact.
    void emit(index_t* col, T* val) const
    {
        for (std::size_t s = 0; s < order.size(); ++s) {
            col[s] = static_cast<index_t>(order[s] >> 32);
            val[s] = vals[static_cast<std::size_t>(order[s] & 0xffffffffu)];
        }
    }
};

/// Symbolic count of row i's distinct columns on a table of `tsize` slots
/// (probe-bounded like hash_insert_key). Returns the nnz, or -1 if the
/// table saturated (the caller feeds the row to the retry machinery). The
/// workspace is left clear either way.
template <ValueType T>
[[nodiscard]] inline index_t native_count_row(const sim::DeviceCsr<T>& a,
                                              const sim::DeviceCsr<T>& b, index_t i,
                                              index_t tsize, NativeWorkspace<T>& ws)
{
    ws.ensure(tsize);
    index_t* const keys = ws.keys.data();
    const index_t* const arpt = a.rpt.data();
    const index_t* const acol = a.col.data();
    const index_t* const brpt = b.rpt.data();
    const index_t* const bcol = b.col.data();
    index_t nz = 0;
    bool full = false;
    const index_t a_end = arpt[i + 1];
    for (index_t j = arpt[i]; j < a_end && !full; ++j) {
        const index_t d = acol[j];
        const index_t b_end = brpt[d + 1];
        for (index_t k = brpt[d]; k < b_end; ++k) {
            const index_t key = bcol[k];
            index_t h = hash_slot(key, tsize, /*pow2=*/true);
            index_t probes = 0;
            for (;;) {
                if (probes++ >= tsize) {
                    full = true;
                    break;
                }
                const index_t cur = keys[h];
                if (cur == key) { break; }
                if (cur == kEmptySlot) {
                    keys[h] = key;
                    ws.touched.push_back(h);
                    ++nz;
                    break;
                }
                h = (h + 1) & (tsize - 1);
            }
            if (full) { break; }
        }
    }
    ws.clear_touched();
    return full ? -1 : nz;
}

/// Computes row i completely — accumulate products in traversal order,
/// gather the occupied slots, sort by column — leaving the finished row in
/// ws.order/ws.vals for NativeWorkspace::emit. Returns the row's nnz, or
/// -1 if the table saturated (ws cleared). Value bit-identity with the
/// simulated kernels: additions land per key in exactly the traversal
/// order hash_accumulate applies them, and sorting permutes finished sums
/// only.
template <ValueType T>
[[nodiscard]] inline index_t native_compute_row(const sim::DeviceCsr<T>& a,
                                                const sim::DeviceCsr<T>& b, index_t i,
                                                index_t tsize, NativeWorkspace<T>& ws)
{
    ws.ensure(tsize);
    index_t* const keys = ws.keys.data();
    T* const vals = ws.vals.data();
    const index_t* const arpt = a.rpt.data();
    const index_t* const acol = a.col.data();
    const T* const aval = a.val.data();
    const index_t* const brpt = b.rpt.data();
    const index_t* const bcol = b.col.data();
    const T* const bval = b.val.data();
    bool full = false;
    const index_t a_end = arpt[i + 1];
    for (index_t j = arpt[i]; j < a_end && !full; ++j) {
        const index_t d = acol[j];
        const T av = aval[j];
        const index_t b_end = brpt[d + 1];
        for (index_t k = brpt[d]; k < b_end; ++k) {
            const index_t key = bcol[k];
            const T prod = av * bval[k];
            index_t h = hash_slot(key, tsize, /*pow2=*/true);
            index_t probes = 0;
            for (;;) {
                if (probes++ >= tsize) {
                    full = true;
                    break;
                }
                const index_t cur = keys[h];
                if (cur == key) {
                    vals[h] += prod;
                    break;
                }
                if (cur == kEmptySlot) {
                    keys[h] = key;
                    vals[h] = prod;
                    ws.touched.push_back(h);
                    break;
                }
                h = (h + 1) & (tsize - 1);
            }
            if (full) { break; }
        }
    }
    if (full) {
        ws.clear_touched();
        return -1;
    }
    ws.order.clear();
    for (const index_t t : ws.touched) {
        ws.order.push_back(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(keys[t])) << 32) |
            static_cast<std::uint32_t>(t));
    }
    ws.sort_order(b.cols);
    ws.clear_touched();
    return to_index(ws.order.size());
}

/// Hard cap on the number of B-row lists the k-way merge kernels carry on
/// the stack. Below the cap, a per-row cost model decides merge vs hash:
/// the merge pays O(k) head scans per output but eliminates the hash
/// probes and — on the numeric side — the per-row sort and gather, so it
/// wins exactly when k is small relative to the row's duplicate ratio.
inline constexpr index_t kMergeMaxK = 64;
/// Symbolic merge gate: the merge count advances every product once plus
/// one O(k) scan per output (P + k*nnz), the hash count pays ~2 units per
/// product plus the touch/clear (2P + 2nnz); merging wins when k <=
/// products/nnz + 3, and since the duplicate ratio is >= 1, k <= 4 is
/// always safe without knowing nnz up front.
inline constexpr index_t kMergeMaxKCount = 4;

/// Numeric merge-vs-hash choice for a row with `k` B-lists, `nnz` output
/// entries (known from the symbolic phase) and `products` intermediate
/// products: merge work ~ k*nnz head scans, hash work ~ 2 units per probe
/// plus ~8 per output for the gather/sort/emit it avoids.
[[nodiscard]] inline bool merge_beats_hash(index_t k, index_t nnz, index_t products)
{
    return static_cast<wide_t>(k) * nnz <=
           2 * static_cast<wide_t>(products) + 8 * static_cast<wide_t>(nnz);
}

/// True when every row has strictly increasing column indices (sorted,
/// duplicate-free) — the precondition for the merge kernels below.
template <ValueType T>
[[nodiscard]] inline bool rows_strictly_sorted(const sim::DeviceCsr<T>& m)
{
    const index_t* const rpt = m.rpt.data();
    const index_t* const col = m.col.data();
    for (index_t i = 0; i < m.rows; ++i) {
        for (index_t k = rpt[i] + 1; k < rpt[i + 1]; ++k) {
            if (col[k] <= col[k - 1]) { return false; }
        }
    }
    return true;
}

/// Merge-based symbolic count of row i: the <= kMergeMaxK strictly-sorted
/// B rows that A's row selects are k-way merged, counting each distinct
/// column once. Exact by construction — no table, so no saturation — and
/// only used for rows the sized hash tables could not fault on either.
template <ValueType T>
[[nodiscard]] inline index_t native_merge_count_row(const sim::DeviceCsr<T>& a,
                                                    const sim::DeviceCsr<T>& b, index_t i)
{
    const index_t* const arpt = a.rpt.data();
    const index_t* const acol = a.col.data();
    const index_t* const brpt = b.rpt.data();
    const index_t* const bcol = b.col.data();
    index_t heads[kMergeMaxK];
    index_t ends[kMergeMaxK];
    index_t k = 0;
    const index_t a_end = arpt[i + 1];
    for (index_t j = arpt[i]; j < a_end; ++j) {
        const index_t d = acol[j];
        if (brpt[d] == brpt[d + 1]) { continue; }
        heads[k] = brpt[d];
        ends[k] = brpt[d + 1];
        ++k;
    }
    if (k == 1) { return ends[0] - heads[0]; }
    if (k == 2) {
        index_t h0 = heads[0];
        index_t h1 = heads[1];
        index_t nz = 0;
        while (h0 < ends[0] && h1 < ends[1]) {
            const index_t c0 = bcol[h0];
            const index_t c1 = bcol[h1];
            h0 += c0 <= c1 ? 1 : 0;
            h1 += c1 <= c0 ? 1 : 0;
            ++nz;
        }
        return nz + (ends[0] - h0) + (ends[1] - h1);
    }
    index_t nz = 0;
    while (k > 0) {
        index_t mink = bcol[heads[0]];
        for (index_t l = 1; l < k; ++l) { mink = std::min(mink, bcol[heads[l]]); }
        for (index_t l = 0; l < k;) {
            if (bcol[heads[l]] == mink && ++heads[l] == ends[l]) {
                for (index_t m = l; m + 1 < k; ++m) {
                    heads[m] = heads[m + 1];
                    ends[m] = ends[m + 1];
                }
                --k;
                continue;
            }
            ++l;
        }
        ++nz;
    }
    return nz;
}

/// Merge-based numeric row: k-way merge of the scaled B rows straight into
/// the output slice, already in column order — no hash table, no sort, no
/// gather. Writes at most `cap` entries but keeps counting, returning the
/// true nnz (callers treat a mismatch like a kernel fault; a partially
/// written slice is always rewritten by the retry ladder).
///
/// Value bit-identity with the hash kernels: for one output column, at
/// most one product comes from each selected B row (strictly sorted rows
/// have no duplicate columns), and the match scan below visits lists in
/// A-row storage order — exactly the order hash_accumulate applies the
/// additions. The first match assigns rather than adding to zero so a
/// leading -0.0 product survives exactly as the hash insert stores it.
template <ValueType T>
[[nodiscard]] inline index_t native_merge_row(const sim::DeviceCsr<T>& a,
                                              const sim::DeviceCsr<T>& b, index_t i,
                                              index_t* col, T* val, index_t cap)
{
    const index_t* const arpt = a.rpt.data();
    const index_t* const acol = a.col.data();
    const T* const aval = a.val.data();
    const index_t* const brpt = b.rpt.data();
    const index_t* const bcol = b.col.data();
    const T* const bval = b.val.data();
    index_t heads[kMergeMaxK];
    index_t ends[kMergeMaxK];
    T avs[kMergeMaxK];
    index_t k = 0;
    const index_t a_end = arpt[i + 1];
    for (index_t j = arpt[i]; j < a_end; ++j) {
        const index_t d = acol[j];
        if (brpt[d] == brpt[d + 1]) { continue; }
        heads[k] = brpt[d];
        ends[k] = brpt[d + 1];
        avs[k] = aval[j];
        ++k;
    }
    if (k == 1) {
        const index_t n = ends[0] - heads[0];
        const T av = avs[0];
        for (index_t s = 0; s < n && s < cap; ++s) {
            col[s] = bcol[heads[0] + s];
            val[s] = av * bval[heads[0] + s];
        }
        return n;
    }
    if (k == 2) {
        // Two-pointer merge; an equal-key pair sums list 0's product first
        // (A-row storage order), matching the general scan and the hash
        // kernels exactly.
        index_t h0 = heads[0];
        index_t h1 = heads[1];
        const T av0 = avs[0];
        const T av1 = avs[1];
        index_t nz = 0;
        while (h0 < ends[0] && h1 < ends[1]) {
            const index_t c0 = bcol[h0];
            const index_t c1 = bcol[h1];
            index_t ckey;
            T v;
            if (c0 < c1) {
                ckey = c0;
                v = av0 * bval[h0];
                ++h0;
            } else if (c1 < c0) {
                ckey = c1;
                v = av1 * bval[h1];
                ++h1;
            } else {
                ckey = c0;
                v = av0 * bval[h0] + av1 * bval[h1];
                ++h0;
                ++h1;
            }
            if (nz < cap) {
                col[nz] = ckey;
                val[nz] = v;
            }
            ++nz;
        }
        for (; h0 < ends[0]; ++h0) {
            if (nz < cap) {
                col[nz] = bcol[h0];
                val[nz] = av0 * bval[h0];
            }
            ++nz;
        }
        for (; h1 < ends[1]; ++h1) {
            if (nz < cap) {
                col[nz] = bcol[h1];
                val[nz] = av1 * bval[h1];
            }
            ++nz;
        }
        return nz;
    }
    index_t nz = 0;
    while (k > 0) {
        index_t mink = bcol[heads[0]];
        for (index_t l = 1; l < k; ++l) { mink = std::min(mink, bcol[heads[l]]); }
        T sum{};
        bool first = true;
        for (index_t l = 0; l < k;) {
            if (bcol[heads[l]] == mink) {
                const T prod = avs[l] * bval[heads[l]];
                sum = first ? prod : sum + prod;
                first = false;
                if (++heads[l] == ends[l]) {
                    for (index_t m = l; m + 1 < k; ++m) {
                        heads[m] = heads[m + 1];
                        ends[m] = ends[m + 1];
                        avs[m] = avs[m + 1];
                    }
                    --k;
                    continue;
                }
            }
            ++l;
        }
        if (nz < cap) {
            col[nz] = mink;
            val[nz] = sum;
        }
        ++nz;
    }
    return nz;
}

/// Host reference recourse of one row, bit-identical to the simulated
/// recourse: accumulate in traversal order (the order hash_accumulate
/// applies additions), sort by column.
template <ValueType T>
[[nodiscard]] inline std::vector<std::pair<index_t, T>> native_host_row(
    const sim::DeviceCsr<T>& a, const sim::DeviceCsr<T>& b, index_t i)
{
    std::unordered_map<index_t, T> acc;
    for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
        const index_t d = a.col[to_size(j)];
        const T av = a.val[to_size(j)];
        for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
            acc[b.col[to_size(k)]] += av * b.val[to_size(k)];
        }
    }
    std::vector<std::pair<index_t, T>> row(acc.begin(), acc.end());
    std::sort(row.begin(), row.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    return row;
}

/// Per-row intermediate-product counts on host threads; returns the grand
/// total (per-chunk partials folded in chunk = row order).
template <ValueType T>
[[nodiscard]] inline wide_t native_count_products(const sim::DeviceCsr<T>& a,
                                                  const sim::DeviceCsr<T>& b,
                                                  sim::DeviceBuffer<index_t>& products,
                                                  int threads)
{
    std::vector<wide_t> part(to_size(std::max(threads, 1)), 0);
    sim::parallel_chunks(a.rows, threads, [&](int ci, std::int64_t lo, std::int64_t hi) {
        wide_t sum = 0;
        for (std::int64_t ii = lo; ii < hi; ++ii) {
            const auto i = static_cast<index_t>(ii);
            wide_t n = 0;
            for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
                const index_t d = a.col[to_size(j)];
                n += b.rpt[to_size(d) + 1] - b.rpt[to_size(d)];
            }
            products[to_size(i)] = to_index(n);
            sum += n;
        }
        part[to_size(ci)] = sum;
    });
    wide_t total = 0;
    for (const wide_t s : part) { total += s; }
    return total;
}

/// Chunked exclusive scan of per-row counts into row pointers: per-chunk
/// partial sums, a sequential carry across chunks, then per-chunk prefix
/// writes. Chunk boundaries depend only on (rows, threads), so the result
/// — and the typed IndexOverflow for an overflowing total (running counts
/// are monotone, so the lowest throwing chunk holds the globally first
/// overflowing row, which parallel_chunks' lowest-chunk-wins rethrow
/// surfaces) — matches the sequential scan exactly.
inline void native_scan_row_pointers(std::span<const index_t> counts,
                                     std::vector<index_t>& rpt, int threads)
{
    const auto rows = to_index(counts.size());
    rpt.assign(to_size(rows) + 1, 0);
    if (rows == 0) { return; }
    std::vector<wide_t> chunk_sum(to_size(std::max(threads, 1)), 0);
    sim::parallel_chunks(rows, threads, [&](int ci, std::int64_t lo, std::int64_t hi) {
        wide_t s = 0;
        for (std::int64_t ii = lo; ii < hi; ++ii) { s += counts[static_cast<std::size_t>(ii)]; }
        chunk_sum[to_size(ci)] = s;
    });
    std::vector<wide_t> chunk_base(chunk_sum.size(), 0);
    for (std::size_t ci = 1; ci < chunk_sum.size(); ++ci) {
        chunk_base[ci] = chunk_base[ci - 1] + chunk_sum[ci - 1];
    }
    sim::parallel_chunks(rows, threads, [&](int ci, std::int64_t lo, std::int64_t hi) {
        wide_t running = chunk_base[to_size(ci)];
        for (std::int64_t ii = lo; ii < hi; ++ii) {
            running += counts[static_cast<std::size_t>(ii)];
            if (!std::in_range<index_t>(running)) {
                throw IndexOverflow(
                    "nnz(C) exceeds the row-pointer index range: the output row pointers "
                    "cannot be represented (escalate to 64-bit row pointers or shard the "
                    "rows)",
                    static_cast<index_t>(ii), running);
            }
            rpt[static_cast<std::size_t>(ii) + 1] = static_cast<index_t>(running);
        }
    });
}

/// Native symbolic phase: every row counted in parallel — short rows of a
/// sorted B through the exact merge kernel, the rest with a thread-private
/// table sized from its product bound (cannot saturate unless injected) —
/// then the same containment ladder as the simulated phase — bounded
/// doubling retries, host recourse — run sequentially on the (rare)
/// captured rows. Kernel choice never changes counts or fault semantics:
/// both kernels are exact for honestly bounded rows, and injected rows
/// always take the ladder.
template <ValueType T>
PhaseFaults native_symbolic(sim::Device& dev, const sim::DeviceCsr<T>& a,
                            const sim::DeviceCsr<T>& b,
                            const sim::DeviceBuffer<index_t>& products,
                            sim::DeviceBuffer<index_t>& row_nnz, const Options& opt,
                            int threads, bool merge_ok)
{
    const std::vector<std::uint8_t> inject =
        inject_flags(opt.inject_symbolic_row_faults, a.rows);
    std::vector<std::uint8_t> faulted(to_size(a.rows), 0);
    const auto table_for = [&](index_t i) {
        return native_table_size(std::min(products[to_size(i)], b.cols));
    };
    sim::parallel_chunks(a.rows, threads, [&](int, std::int64_t lo, std::int64_t hi) {
        NativeWorkspace<T> ws;
        for (std::int64_t ii = lo; ii < hi; ++ii) {
            const auto i = static_cast<index_t>(ii);
            if (!inject.empty() && inject[to_size(i)] != 0) {
                faulted[to_size(i)] = 1;
                continue;
            }
            if (merge_ok && a.rpt[to_size(i) + 1] - a.rpt[to_size(i)] <= kMergeMaxKCount) {
                row_nnz[to_size(i)] = native_merge_count_row(a, b, i);
                continue;
            }
            const index_t nz = native_count_row(a, b, i, table_for(i), ws);
            if (nz < 0) {
                faulted[to_size(i)] = 1;
                continue;
            }
            row_nnz[to_size(i)] = nz;
        }
    });

    PhaseFaults pf;
    std::vector<index_t> pending;
    for (index_t i = 0; i < a.rows; ++i) {
        if (faulted[to_size(i)] == 0) { continue; }
        pending.push_back(i);
        dev.record_fault_event("symbolic_row_fault", 0, i, table_for(i),
                               static_cast<int>(table_for(i)), 0);
    }
    pf.faulted_rows = static_cast<int>(pending.size());

    int attempt = 0;
    NativeWorkspace<T> ws;
    while (!pending.empty() && attempt < opt.max_row_retries) {
        std::vector<index_t> next;
        for (const index_t i : pending) {
            const index_t base = next_pow2(std::max<index_t>(1, products[to_size(i)]));
            const index_t ts = retry_table_size(base, attempt);
            const index_t nz = native_count_row(a, b, i, ts, ws);
            if (nz < 0) {
                next.push_back(i);
            } else {
                row_nnz[to_size(i)] = nz;
            }
            dev.record_fault_event("symbolic_row_retry", 0, i, ts, static_cast<int>(ts),
                                   attempt + 1);
        }
        pf.row_retries += static_cast<int>(pending.size());
        pending = std::move(next);
        ++attempt;
    }

    for (const index_t i : pending) {
        std::vector<index_t> cols;
        for (index_t j = a.rpt[to_size(i)]; j < a.rpt[to_size(i) + 1]; ++j) {
            const index_t d = a.col[to_size(j)];
            for (index_t k = b.rpt[to_size(d)]; k < b.rpt[to_size(d) + 1]; ++k) {
                cols.push_back(b.col[to_size(k)]);
            }
        }
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        row_nnz[to_size(i)] = to_index(cols.size());
        ++pf.host_fallback_rows;
        dev.record_fault_event("symbolic_host_row", 0, i, 0, 0, attempt);
    }
    return pf;
}

/// Native numeric phase: every row computed in parallel and written
/// straight into its disjoint slice of C — short rows of a sorted B merge
/// directly in column order, the rest accumulate/gather/sort through a
/// thread-private table — then the containment ladder for captured rows
/// (injection, saturation, nnz mismatch).
template <ValueType T>
PhaseFaults native_numeric(sim::Device& dev, const sim::DeviceCsr<T>& a,
                           const sim::DeviceCsr<T>& b,
                           const sim::DeviceBuffer<index_t>& products,
                           const sim::DeviceBuffer<index_t>& row_nnz, sim::DeviceCsr<T>& c,
                           const Options& opt, int threads, bool merge_ok)
{
    const std::vector<std::uint8_t> inject =
        inject_flags(opt.inject_numeric_row_faults, a.rows);
    std::vector<std::uint8_t> faulted(to_size(a.rows), 0);
    const auto table_for = [&](index_t i) {
        return native_table_size(std::max<index_t>(1, row_nnz[to_size(i)]));
    };
    // Compute-then-emit: the row is only written when its nnz agrees with
    // the symbolic count (disjoint slices of C, so concurrent emits are
    // race-free).
    const auto compute_and_write = [&](index_t i, index_t ts, NativeWorkspace<T>& ws) {
        const index_t nz = native_compute_row(a, b, i, ts, ws);
        const index_t base = c.rpt[to_size(i)];
        if (nz < 0 || nz != c.rpt[to_size(i) + 1] - base) { return false; }
        ws.emit(c.col.data() + base, c.val.data() + base);
        return true;
    };

    sim::parallel_chunks(a.rows, threads, [&](int, std::int64_t lo, std::int64_t hi) {
        NativeWorkspace<T> ws;
        for (std::int64_t ii = lo; ii < hi; ++ii) {
            const auto i = static_cast<index_t>(ii);
            if (!inject.empty() && inject[to_size(i)] != 0) {
                faulted[to_size(i)] = 1;
                continue;
            }
            const index_t k = a.rpt[to_size(i) + 1] - a.rpt[to_size(i)];
            if (merge_ok && k <= kMergeMaxK) {
                const index_t base = c.rpt[to_size(i)];
                const index_t expect = c.rpt[to_size(i) + 1] - base;
                if (merge_beats_hash(k, expect, products[to_size(i)])) {
                    if (native_merge_row(a, b, i, c.col.data() + base, c.val.data() + base,
                                         expect) != expect) {
                        faulted[to_size(i)] = 1;  // unreachable with exact counts; defensive
                    }
                    continue;
                }
            }
            if (!compute_and_write(i, table_for(i), ws)) { faulted[to_size(i)] = 1; }
        }
    });

    PhaseFaults pf;
    std::vector<index_t> pending;
    for (index_t i = 0; i < a.rows; ++i) {
        if (faulted[to_size(i)] == 0) { continue; }
        pending.push_back(i);
        dev.record_fault_event("numeric_row_fault", 0, i, table_for(i),
                               static_cast<int>(table_for(i)), 0);
    }
    pf.faulted_rows = static_cast<int>(pending.size());

    int attempt = 0;
    NativeWorkspace<T> ws;
    while (!pending.empty() && attempt < opt.max_row_retries) {
        std::vector<index_t> next;
        for (const index_t i : pending) {
            const index_t base = next_pow2(std::max<index_t>(1, row_nnz[to_size(i)]) * 2);
            const index_t ts = retry_table_size(base, attempt);
            if (!compute_and_write(i, ts, ws)) { next.push_back(i); }
            dev.record_fault_event("numeric_row_retry", 0, i, ts, static_cast<int>(ts),
                                   attempt + 1);
        }
        pf.row_retries += static_cast<int>(pending.size());
        pending = std::move(next);
        ++attempt;
    }

    for (const index_t i : pending) {
        const auto row = native_host_row(a, b, i);
        const index_t base = c.rpt[to_size(i)];
        if (to_index(row.size()) != c.rpt[to_size(i) + 1] - base) {
            throw KernelFault("host recourse nnz disagrees with row pointers", "calc",
                              /*group=*/0, i, /*table_size=*/0, /*probes=*/0, attempt);
        }
        for (std::size_t s = 0; s < row.size(); ++s) {
            c.col[to_size(base) + s] = row[s].first;
            c.val[to_size(base) + s] = row[s].second;
        }
        ++pf.host_fallback_rows;
        dev.record_fault_event("numeric_host_row", 0, i, 0, 0, attempt);
    }
    return pf;
}

/// One full native multiply under exact planning: the mirror of
/// multiply_attempt_exact with the kernels run on host threads. Grouping
/// is skipped entirely — it only decides simulated kernel shapes, never
/// output bytes (every native row gets an adequately sized private table).
template <ValueType T>
MultiplyResult<T> multiply_attempt_native_exact(sim::Device& dev, const CsrMatrix<T>& a,
                                                const CsrMatrix<T>& b, const Options& opt,
                                                SpgemmStats& stats)
{
    const int threads = sim::BlockExecutor::resolve_threads(dev.executor_threads());
    MultiplyResult<T> out;
    sim::DeviceCsr<T> c;
    wide_t total_products = 0;

    {
        auto phase = dev.phase_scope("setup");
        dev.check_cancel();
        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);
        const bool merge_ok = rows_strictly_sorted(db);
        auto products = take_index_scratch(dev, "products", to_size(a.rows));
        total_products = native_count_products(da, db, products, threads);

        auto row_nnz = take_index_scratch(dev, "row_nnz", to_size(a.rows));
        row_nnz.fill(0);
        {
            auto count_phase = dev.phase_scope("count");
            dev.check_cancel();
            const PhaseFaults pf =
                native_symbolic(dev, da, db, products, row_nnz, opt, threads, merge_ok);
            stats.faulted_rows += pf.faulted_rows;
            stats.row_retries += pf.row_retries;
            stats.host_fallback_rows += pf.host_fallback_rows;
        }

        std::vector<index_t> rpt;
        native_scan_row_pointers(std::span<const index_t>(row_nnz.data(), row_nnz.size()),
                                 rpt, threads);
        const index_t nnz_c = rpt.back();
        c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, nnz_c);
        std::copy(rpt.begin(), rpt.end(), c.rpt.data());

        {
            auto calc_phase = dev.phase_scope("calc");
            dev.check_cancel();
            const PhaseFaults pf =
                native_numeric(dev, da, db, products, row_nnz, c, opt, threads, merge_ok);
            stats.faulted_rows += pf.faulted_rows;
            stats.row_retries += pf.row_retries;
            stats.host_fallback_rows += pf.host_fallback_rows;
        }

        put_index_scratch(dev, "products", std::move(products));
        put_index_scratch(dev, "row_nnz", std::move(row_nnz));
    }

    dev.check_cancel();
    // Stats before the moving download: take_download releases C's device
    // allocation, and that free must not be charged to the measured run.
    fill_stats_from_device(stats, dev);
    out.matrix = c.take_download();
    out.products = total_products;
    return out;
}

/// One full native multiply under estimation-based planning. Planning
/// (build_row_plan and the hybrid low-confidence recount) is delegated to
/// the simulated helpers — the plan, its estimation stats, and the
/// sample's simulated cost are identical to the simulated backend by
/// construction, and the sample is a small fraction of the rows — while
/// the padded numeric pass, the compaction and the mispredict rewrites run
/// natively. Output bytes never depend on the plan (capacities only decide
/// where a row is computed), so byte-identity holds for every mode.
template <ValueType T>
MultiplyResult<T> multiply_attempt_native_estimated(sim::Device& dev, const CsrMatrix<T>& a,
                                                    const CsrMatrix<T>& b,
                                                    const Options& opt, SpgemmStats& stats)
{
    const int threads = sim::BlockExecutor::resolve_threads(dev.executor_threads());
    MultiplyResult<T> out;
    sim::DeviceCsr<T> c;
    wide_t total_products = 0;

    {
        auto phase = dev.phase_scope("setup");
        dev.check_cancel();
        const auto da = sim::DeviceCsr<T>::upload(dev.allocator(), a);
        const auto db = sim::DeviceCsr<T>::upload(dev.allocator(), b);
        auto products = take_index_scratch(dev, "products", to_size(a.rows));
        total_products = native_count_products(da, db, products, threads);

        RowPlan plan;
        {
            auto est_phase = dev.phase_scope("estimate");
            plan = build_row_plan(dev, da, db, products, opt);
            stats.faulted_rows += plan.sample_faults.faulted_rows;
            stats.row_retries += plan.sample_faults.row_retries;
            stats.host_fallback_rows += plan.sample_faults.host_fallback_rows;
        }
        if (!plan.lowconf.empty()) {
            auto count_phase = dev.phase_scope("count");
            const std::span<const index_t> prod(products.data(), to_size(a.rows));
            const CountRowsOutcome counted = count_rows_contained(
                dev, da, db, plan.lowconf, prod, std::span<index_t>(plan.capacity), opt,
                inject_flags(opt.inject_symbolic_row_faults, a.rows), "symbolic_lowconf");
            for (const index_t i : plan.lowconf) {
                plan.exact[to_size(i)] = 1;
                plan.plan_nnz[to_size(i)] = plan.capacity[to_size(i)];
            }
            stats.faulted_rows += counted.faults.faulted_rows;
            stats.row_retries += counted.faults.row_retries;
            stats.host_fallback_rows += counted.faults.host_fallback_rows;
        }

        // Padded capacity scan + pad storage, as in the simulated path.
        auto capacity = take_index_scratch(dev, "capacity", to_size(a.rows));
        std::copy(plan.capacity.begin(), plan.capacity.end(), capacity.data());
        std::vector<index_t> cap_rpt;
        native_scan_row_pointers(
            std::span<const index_t>(capacity.data(), capacity.size()), cap_rpt, threads);
        sim::DeviceBuffer<index_t> pad_col(dev.allocator(), to_size(cap_rpt.back()));
        sim::DeviceBuffer<T> pad_val(dev.allocator(), to_size(cap_rpt.back()));

        auto row_nnz = take_index_scratch(dev, "row_nnz", to_size(a.rows));
        row_nnz.fill(0);

        const std::vector<std::uint8_t> inject =
            inject_flags(opt.inject_numeric_row_faults, a.rows);
        std::vector<std::uint8_t> in_pad(to_size(a.rows), 0);
        std::vector<std::uint8_t> faulted(to_size(a.rows), 0);
        int mispredicted = 0;
        std::vector<index_t> rewrite_rows;
        {
            // ---- calc: native padded pass, scan, compact, rewrite ----
            auto calc_phase = dev.phase_scope("calc");
            dev.check_cancel();

            sim::parallel_chunks(a.rows, threads, [&](int, std::int64_t lo, std::int64_t hi) {
                NativeWorkspace<T> ws;
                for (std::int64_t ii = lo; ii < hi; ++ii) {
                    const auto i = static_cast<index_t>(ii);
                    if (!inject.empty() && inject[to_size(i)] != 0) {
                        faulted[to_size(i)] = 1;
                        continue;
                    }
                    const index_t ts = native_table_size(std::max(
                        plan.plan_nnz[to_size(i)], plan.capacity[to_size(i)]));
                    const index_t actual = native_compute_row(da, db, i, ts, ws);
                    if (actual < 0) {
                        // Saturated the planned table (gross underestimate):
                        // captured like the simulated kernels capture it.
                        faulted[to_size(i)] = 1;
                        continue;
                    }
                    row_nnz[to_size(i)] = actual;
                    if (actual <= plan.capacity[to_size(i)]) {
                        const auto base = to_size(cap_rpt[to_size(i)]);
                        ws.emit(pad_col.data() + base, pad_val.data() + base);
                        in_pad[to_size(i)] = 1;
                    }
                }
            });

            // Captured rows: repair the counts so the scan sees true nnz
            // everywhere (exact rows already know theirs), then classify.
            NativeWorkspace<T> ws;
            for (index_t i = 0; i < a.rows; ++i) {
                if (faulted[to_size(i)] == 0) { continue; }
                const index_t ts = native_table_size(
                    std::max(plan.plan_nnz[to_size(i)], plan.capacity[to_size(i)]));
                dev.record_fault_event("numeric_est_row_fault", 0, i, ts,
                                       static_cast<int>(ts), 0);
                if (plan.exact[to_size(i)] != 0) {
                    row_nnz[to_size(i)] = plan.capacity[to_size(i)];
                } else {
                    const index_t nz = native_count_row(
                        da, db, i, native_table_size(std::min(products[to_size(i)], b.cols)),
                        ws);
                    NSPARSE_ASSERT(nz >= 0, "product-bounded count table saturated");
                    row_nnz[to_size(i)] = nz;
                }
            }
            for (index_t i = 0; i < a.rows; ++i) {
                if (in_pad[to_size(i)] != 0) { continue; }
                rewrite_rows.push_back(i);
                stats.faulted_rows += faulted[to_size(i)] != 0 ? 1 : 0;
                const bool injected = !inject.empty() && inject[to_size(i)] != 0;
                if (plan.exact[to_size(i)] == 0 && !injected && faulted[to_size(i)] == 0) {
                    ++mispredicted;
                }
                if (plan.exact[to_size(i)] == 0 && faulted[to_size(i)] != 0 && !injected) {
                    ++mispredicted;  // saturated planned table
                }
            }

            std::vector<index_t> rpt;
            native_scan_row_pointers(
                std::span<const index_t>(row_nnz.data(), row_nnz.size()), rpt, threads);
            c = sim::DeviceCsr<T>::allocate(dev.allocator(), a.rows, b.cols, rpt.back());
            std::copy(rpt.begin(), rpt.end(), c.rpt.data());

            // Compact the well-predicted rows from pad storage (disjoint
            // coalesced copies), release the pads, then recompute the rest
            // straight into the final CSR.
            sim::parallel_chunks(a.rows, threads, [&](int, std::int64_t lo, std::int64_t hi) {
                for (std::int64_t ii = lo; ii < hi; ++ii) {
                    const auto i = static_cast<index_t>(ii);
                    if (in_pad[to_size(i)] == 0) { continue; }
                    const index_t base = c.rpt[to_size(i)];
                    const index_t n = c.rpt[to_size(i) + 1] - base;
                    const auto src = to_size(cap_rpt[to_size(i)]);
                    for (index_t s = 0; s < n; ++s) {
                        c.col[to_size(base + s)] = pad_col[src + to_size(s)];
                        c.val[to_size(base + s)] = pad_val[src + to_size(s)];
                    }
                }
            });
            pad_col = sim::DeviceBuffer<index_t>();
            pad_val = sim::DeviceBuffer<T>();

            if (!rewrite_rows.empty()) {
                std::vector<std::uint8_t> still(rewrite_rows.size(), 0);
                sim::parallel_chunks(
                    to_index(rewrite_rows.size()), threads,
                    [&](int, std::int64_t lo, std::int64_t hi) {
                        NativeWorkspace<T> rws;
                        for (std::int64_t rr = lo; rr < hi; ++rr) {
                            const index_t i = rewrite_rows[static_cast<std::size_t>(rr)];
                            const index_t ts = native_table_size(
                                std::max<index_t>(1, row_nnz[to_size(i)]));
                            const index_t nz = native_compute_row(da, db, i, ts, rws);
                            const index_t base = c.rpt[to_size(i)];
                            if (nz >= 0 && nz == c.rpt[to_size(i) + 1] - base) {
                                rws.emit(c.col.data() + base, c.val.data() + base);
                            } else {
                                still[static_cast<std::size_t>(rr)] = 1;
                            }
                        }
                    });
                stats.row_retries += static_cast<int>(rewrite_rows.size());
                for (std::size_t r = 0; r < rewrite_rows.size(); ++r) {
                    const index_t ts = native_table_size(
                        std::max<index_t>(1, row_nnz[to_size(rewrite_rows[r])]));
                    dev.record_fault_event("numeric_est_rewrite", 0, rewrite_rows[r], ts,
                                           static_cast<int>(ts), 1);
                }
                for (std::size_t r = 0; r < rewrite_rows.size(); ++r) {
                    if (still[r] == 0) { continue; }
                    const index_t i = rewrite_rows[r];
                    const auto row = native_host_row(da, db, i);
                    const index_t base = c.rpt[to_size(i)];
                    if (to_index(row.size()) != c.rpt[to_size(i) + 1] - base) {
                        throw KernelFault(
                            "estimated rewrite nnz disagrees with repaired row pointers",
                            "calc", /*group=*/0, i, /*table_size=*/0, /*probes=*/0, 1);
                    }
                    for (std::size_t s = 0; s < row.size(); ++s) {
                        c.col[to_size(base) + s] = row[s].first;
                        c.val[to_size(base) + s] = row[s].second;
                    }
                    ++stats.host_fallback_rows;
                    dev.record_fault_event("numeric_est_host_row", 0, i, 0, 0, 1);
                }
            }
        }

        stats.estimated_rows += plan.estimated_rows;
        stats.mispredicted_rows += mispredicted;
        stats.symbolic_cycles_saved += plan.symbolic_cycles_saved;

        put_index_scratch(dev, "products", std::move(products));
        put_index_scratch(dev, "row_nnz", std::move(row_nnz));
        put_index_scratch(dev, "capacity", std::move(capacity));
    }

    dev.check_cancel();
    // Stats before the moving download: take_download releases C's device
    // allocation, and that free must not be charged to the measured run.
    fill_stats_from_device(stats, dev);
    out.matrix = c.take_download();
    out.products = total_products;
    return out;
}

/// Planning-mode dispatch of the native backend, mirroring
/// multiply_attempt; called from multiply_attempt when
/// Options::backend == BackendKind::kNative, so the slab ladder, batch and
/// session layers compose with the native path unchanged.
template <ValueType T>
MultiplyResult<T> multiply_attempt_native(sim::Device& dev, const CsrMatrix<T>& a,
                                          const CsrMatrix<T>& b, const Options& opt,
                                          SpgemmStats& stats)
{
    if (opt.plan_mode != PlanMode::kExact) {
        return multiply_attempt_native_estimated(dev, a, b, opt, stats);
    }
    return multiply_attempt_native_exact(dev, a, b, opt, stats);
}

}  // namespace nsparse::core::detail
