#include "core/grouping.hpp"

#include <algorithm>
#include <cstdint>

#include "core/hash_table.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/scratch_pool.hpp"
#include "gpusim/worker_pool.hpp"

namespace nsparse::core {

GroupingPolicy GroupingPolicy::derive(const sim::DeviceSpec& spec, std::size_t entry_bytes,
                                      index_t border, int pwarp_width, bool use_pwarp)
{
    GroupingPolicy p;
    p.pwarp_width = pwarp_width;
    p.pwarp_border = use_pwarp ? border : 0;

    // Largest power-of-two table fitting the per-block shared-memory limit
    // (§III-D: 48 KB / 12 B = 4096 for the numeric phase on P100).
    p.max_shared_table = prev_pow2(to_index(spec.max_shared_per_block / entry_bytes));

    const auto tb_for = [&spec](int block) {
        return std::min(spec.max_threads_per_sm / block, spec.max_blocks_per_sm);
    };

    // Group 0: rows beyond the largest shared table -> global-memory tables.
    p.groups.push_back(GroupInfo{
        .id = 0,
        .min_count = p.max_shared_table + 1,
        .max_count = -1,
        .assignment = Assignment::kTbRow,
        .block_size = spec.max_threads_per_block,
        .tb_per_sm = tb_for(spec.max_threads_per_block),
        .table_size = 0,
        .global_table = true,
    });

    // TB/ROW groups: halve table and block size until the per-SM block
    // limit (32) is reached (§III-D). With PWARP disabled the smallest
    // TB group absorbs the short (and empty) rows the PWARP group would
    // have taken, so its range starts at 0.
    index_t table = p.max_shared_table;
    int block = spec.max_threads_per_block;
    int id = 1;
    while (true) {
        const bool last = tb_for(block) >= spec.max_blocks_per_sm;
        p.groups.push_back(GroupInfo{
            .id = id,
            .min_count = last ? (use_pwarp ? p.pwarp_border + 1 : 0) : table / 2 + 1,
            .max_count = table,
            .assignment = Assignment::kTbRow,
            .block_size = block,
            .tb_per_sm = tb_for(block),
            .table_size = table,
            .global_table = false,
        });
        ++id;
        if (last) { break; }
        table /= 2;
        block = std::max(block / 2, spec.warp_size * 2);
    }

    // PWARP/ROW group for the short rows — only when the assignment is
    // enabled. Emitting it disabled (max_count = 0) used to route empty
    // rows to a kernel that was supposed to be off.
    if (use_pwarp) {
        p.groups.push_back(GroupInfo{
            .id = id,
            .min_count = 0,
            .max_count = p.pwarp_border,
            .assignment = Assignment::kPwarpRow,
            .block_size = 512,
            .tb_per_sm = tb_for(512),
            .table_size = border,  // per-row mini table (32 symbolic / 16 numeric)
            .global_table = false,
        });
    }
    return p;
}

GroupingPolicy GroupingPolicy::symbolic(const sim::DeviceSpec& spec, int pwarp_width,
                                        bool use_pwarp)
{
    return derive(spec, sizeof(index_t), 32, pwarp_width, use_pwarp);
}

GroupingPolicy GroupingPolicy::numeric(const sim::DeviceSpec& spec, std::size_t value_bytes,
                                       int pwarp_width, bool use_pwarp)
{
    // The paper sizes numeric tables for double precision (12 B/entry) and
    // uses the same Table I for both precisions; we honour the actual value
    // size but P100 numbers coincide (prev_pow2(6144) == 4096).
    return derive(spec, sizeof(index_t) + value_bytes, 16, pwarp_width, use_pwarp);
}

int GroupingPolicy::group_of(index_t count) const
{
    NSPARSE_EXPECTS(count >= 0, "negative row count");
    if (groups.back().assignment == Assignment::kPwarpRow && count <= pwarp_border) {
        return groups.back().id;
    }
    // Smallest shared table that fits the count; otherwise global group 0.
    for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
        if (it->assignment == Assignment::kPwarpRow) { continue; }
        if (!it->global_table && it->contains(count)) { return it->id; }
    }
    return 0;
}

GroupedRows group_rows(sim::Device& dev, const GroupingPolicy& policy,
                       const sim::DeviceBuffer<index_t>& counts)
{
    const auto rows = to_index(counts.size());
    const auto n_groups = to_index(policy.groups.size());

    // Kernel 1: classify each row and histogram group sizes (global
    // atomics). Kernel 2: scatter row ids to their group segment. Both are
    // cheap streaming kernels; the paper calls this cost "setup" and shows
    // it negligible (§IV-C). The kernels are charge-only (they may run
    // asynchronously); the functional classify/scatter happens in the
    // parallel host loops below.
    std::vector<index_t> group_of_row(to_size(rows));

    // Chunked parallel classify with per-chunk histograms. The chunk
    // layout follows the executor thread count, but the outputs do not:
    // classification is per-row independent and the partial histograms
    // are reduced in ascending chunk order, so every thread count yields
    // bit-identical sizes, offsets and permutation.
    constexpr index_t kMinRowsPerChunk = 1024;
    const int nt = sim::BlockExecutor::resolve_threads(dev.executor_threads());
    const int chunks = static_cast<int>(std::max<index_t>(
        1, std::min<index_t>(static_cast<index_t>(nt), rows / kMinRowsPerChunk)));

    constexpr int kBlock = 256;
    const index_t grid = rows == 0 ? 0 : (rows + kBlock - 1) / kBlock;
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "grouping_classify",
               [rows](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kBlock;
                   const index_t end = std::min(rows, begin + kBlock);
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   blk.global_read(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.int_ops(lanes, 6.0);  // range comparisons
                   blk.atomic_global(lanes, 1.0);
               });

    std::vector<std::vector<index_t>> hist(
        to_size(chunks), std::vector<index_t>(to_size(n_groups), 0));
    sim::parallel_chunks(rows, chunks,
                         [&](int c, std::int64_t begin, std::int64_t end) {
                             auto& h = hist[to_size(c)];
                             for (std::int64_t r = begin; r < end; ++r) {
                                 const int g = policy.group_of(counts[to_size(r)]);
                                 group_of_row[to_size(r)] = g;
                                 ++h[to_size(g)];
                             }
                         });

    std::vector<index_t> sizes(to_size(n_groups), 0);
    for (int c = 0; c < chunks; ++c) {
        for (index_t g = 0; g < n_groups; ++g) { sizes[to_size(g)] += hist[to_size(c)][to_size(g)]; }
    }

    GroupedRows out;
    out.offsets.assign(to_size(n_groups) + 1, 0);
    for (index_t g = 0; g < n_groups; ++g) {
        out.offsets[to_size(g) + 1] = out.offsets[to_size(g)] + sizes[to_size(g)];
    }

    // Parallel stable scatter: chunk c's cursor for group g starts where
    // the rows of chunks < c left off, so each group segment stays sorted
    // by row index — exactly the sequential (stable) permutation, for any
    // chunk count. The kernel below charges the cost the GPU scatter
    // would incur.
    // The permutation is the algorithm's only sizeable grouping scratch
    // (§III-A); under batched execution it is taken from the device's
    // scratch pool so same-shape products reuse the allocation instead of
    // paying cudaMalloc per product. Stale contents are fine: the scatter
    // below writes every element.
    if (auto* pool = dev.scratch_pool()) {
        out.permutation = pool->take("grouping_perm", dev.allocator(), to_size(rows));
    } else {
        out.permutation = sim::DeviceBuffer<index_t>(dev.allocator(), to_size(rows));
    }
    {
        std::vector<std::vector<index_t>> cursor(to_size(chunks));
        std::vector<index_t> running(out.offsets.begin(), out.offsets.end() - 1);
        for (int c = 0; c < chunks; ++c) {
            cursor[to_size(c)] = running;
            for (index_t g = 0; g < n_groups; ++g) {
                running[to_size(g)] += hist[to_size(c)][to_size(g)];
            }
        }
        sim::parallel_chunks(rows, chunks,
                             [&](int c, std::int64_t begin, std::int64_t end) {
                                 auto& cur = cursor[to_size(c)];
                                 for (std::int64_t r = begin; r < end; ++r) {
                                     const index_t g = group_of_row[to_size(r)];
                                     out.permutation[to_size(cur[to_size(g)]++)] =
                                         static_cast<index_t>(r);
                                 }
                             });
    }
    dev.launch(dev.default_stream(), {grid, kBlock, 0}, "grouping_scatter",
               [&](sim::BlockCtx& blk) {
                   const index_t begin = blk.block_idx() * kBlock;
                   const index_t end = std::min(rows, begin + kBlock);
                   const int lanes = static_cast<int>(end - begin);
                   if (lanes <= 0) { return; }
                   blk.global_read(lanes, sizeof(index_t), sim::MemPattern::kCoalesced);
                   blk.atomic_global(lanes, 1.0);
                   blk.global_write(lanes, sizeof(index_t), sim::MemPattern::kRandom);
               });
    dev.synchronize();
    return out;
}

}  // namespace nsparse::core
