#include "core/spgemm_batch.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/spgemm_impl.hpp"
#include "gpusim/scratch_pool.hpp"
#include "sparse/validate.hpp"

namespace nsparse::core {

namespace {

/// Leaves the device usable no matter how spgemm_batch exits: closes a
/// still-open capture window (swallowing straggler errors — the primary
/// exception already unwinding wins) and detaches the stack-local pool.
struct BatchScopeGuard {
    sim::Device& dev;
    ~BatchScopeGuard()
    {
        if (dev.batch_capture_active()) {
            try {
                dev.end_batch_capture();
            } catch (...) {  // NOLINT(bugprone-empty-catch)
            }
        }
        dev.set_scratch_pool(nullptr);
    }
};

std::string product_prefix(std::size_t k) { return "batch product " + std::to_string(k) + ": "; }

}  // namespace

template <ValueType T>
SpgemmBatchOutput<T> spgemm_batch(sim::Device& dev, std::span<const CsrMatrix<T>* const> as,
                                  std::span<const CsrMatrix<T>* const> bs,
                                  const core::Options& opt)
{
    core::validate_options(opt);
    NSPARSE_EXPECTS(as.size() == bs.size(), "batch A and B lists must have equal length");
    const std::size_t n = as.size();

    // Validate every product before any kernel runs: a malformed batch is
    // a caller error and fails as a whole, naming the offending product.
    for (std::size_t k = 0; k < n; ++k) {
        if (as[k] == nullptr || bs[k] == nullptr) {
            throw PreconditionError(product_prefix(k) + "null matrix pointer",
                                    "non_null_inputs");
        }
        if (opt.validate_inputs) {
            try {
                validate_spgemm_inputs(*as[k], *bs[k]);
            } catch (const PreconditionError& e) {
                throw PreconditionError(product_prefix(k) + e.what(), e.invariant());
            }
        }
        if (as[k]->cols != bs[k]->rows) {
            throw PreconditionError(product_prefix(k) + "inner dimensions must agree (A is " +
                                        std::to_string(as[k]->rows) + "x" +
                                        std::to_string(as[k]->cols) + ", B is " +
                                        std::to_string(bs[k]->rows) + "x" +
                                        std::to_string(bs[k]->cols) + ")",
                                    "inner_dims_agree");
        }
    }

    dev.set_executor_threads(opt.executor_threads);
    dev.reset_measurement();

    SpgemmBatchOutput<T> out;
    out.items.resize(n);
    out.stats.products = static_cast<int>(n);
    if (n == 0) { return out; }

    sim::ScratchPool pool;
    BatchScopeGuard guard{dev};
    if (opt.batch_scratch_reuse) { dev.set_scratch_pool(&pool); }

    const std::size_t wave = static_cast<std::size_t>(std::max(1, opt.batch_streams));
    std::map<int, sim::BatchStreamUsage> stream_usage;
    double makespan_total = 0.0;

    for (std::size_t w0 = 0; w0 < n; w0 += wave) {
        const std::size_t w1 = std::min(n, w0 + wave);
        ++out.stats.waves;
        dev.begin_batch_capture();
        // Host issue order inside the wave is sequential and fixed, so
        // the functional results — and every counter folded at the flush
        // joins — are bit-identical for any thread count; only the
        // window's simulated schedule overlaps the products.
        for (std::size_t k = w0; k < w1; ++k) {
            dev.set_batch_item(static_cast<int>(k));
            dev.allocator().reset_peak();
            const std::size_t live_floor = dev.allocator().live_bytes();
            const double malloc0 = dev.malloc_seconds();
            auto& slot = out.items[k];
            try {
                // The retry hook drops pooled scratch before the slabbed
                // rerun: it must not compete with buffers held for
                // products that already completed.
                detail::MultiplyResult<T> res = detail::multiply_with_fallback(
                    dev, *as[k], *bs[k], opt, live_floor, slot.out.stats,
                    [&pool](std::size_t) { pool.clear(); });
                slot.out.matrix = std::move(res.matrix);
                slot.out.stats.intermediate_products = res.products;
                slot.out.stats.nnz_c = slot.out.matrix.nnz();
                slot.out.stats.peak_bytes = dev.allocator().peak_bytes();
            } catch (const Error& e) {
                // Contained failure: this product's slot carries the error,
                // its neighbours run to completion untouched. Products are
                // issued in index order, so under batch_fail_fast the first
                // rethrow is the lowest failing index.
                slot.error = std::current_exception();
                slot.error_message = product_prefix(k) + e.what();
                ++out.stats.failed;
                if (opt.batch_fail_fast) {
                    try {
                        dev.end_batch_capture();
                    } catch (...) {  // NOLINT(bugprone-empty-catch)
                        // A straggler launch of the failed product surfaced
                        // at the closing flush; the primary (lowest-index)
                        // error wins.
                    }
                    std::rethrow_exception(slot.error);
                }
            }
            slot.out.stats.malloc_seconds = dev.malloc_seconds() - malloc0;
        }
        const sim::BatchWindowReport report = dev.end_batch_capture();
        makespan_total += report.makespan;
        for (const auto& [item, usage] : report.items) {
            if (item < 0 || static_cast<std::size_t>(item) >= n) { continue; }
            // The timeline-derived timing fields written during capture are
            // meaningless (scheduling was deferred); replace them with the
            // item's share of the window schedule.
            auto& s = out.items[static_cast<std::size_t>(item)].out.stats;
            s.setup_seconds = usage.setup_seconds;
            s.count_seconds = usage.count_seconds;
            s.calc_seconds = usage.calc_seconds;
            s.estimate_seconds = usage.estimate_seconds;
            s.seconds = usage.busy_seconds + s.malloc_seconds;
        }
        for (const auto& [sid, usage] : report.streams) {
            auto& agg = stream_usage[sid];
            agg.kernels += usage.kernels;
            agg.busy_seconds += usage.busy_seconds;
        }
    }

    // Roll-up (maps are ordered and items accumulate in index order, so
    // the floating-point sums are deterministic).
    out.stats.makespan_seconds = makespan_total;
    out.stats.seconds = dev.elapsed();
    out.stats.malloc_seconds = dev.malloc_seconds();
    out.stats.scratch_hits = pool.hits();
    out.stats.scratch_misses = pool.misses();
    for (const auto& item : out.items) {
        const auto& s = item.out.stats;
        out.stats.total_intermediate_products += s.intermediate_products;
        out.stats.total_nnz_c += s.nnz_c;
        out.stats.peak_bytes = std::max(out.stats.peak_bytes, s.peak_bytes);
        out.stats.fallback_slabs += s.fallback_slabs;
        out.stats.fallback_retries += s.fallback_retries;
        out.stats.faulted_rows += s.faulted_rows;
        out.stats.row_retries += s.row_retries;
        out.stats.host_fallback_rows += s.host_fallback_rows;
        out.stats.estimated_rows += s.estimated_rows;
        out.stats.mispredicted_rows += s.mispredicted_rows;
        out.stats.replans += s.replans;
        out.stats.host_recourse_products += s.host_recourse;
    }
    out.stats.stream_occupancy.reserve(stream_usage.size());
    for (const auto& [sid, usage] : stream_usage) {
        out.stats.stream_occupancy.push_back(BatchStreamOccupancy{
            .stream_id = sid,
            .kernels = usage.kernels,
            .busy_seconds = usage.busy_seconds,
            .occupancy = makespan_total > 0.0 ? usage.busy_seconds / makespan_total : 0.0,
        });
    }
    return out;
}

template SpgemmBatchOutput<float>
spgemm_batch<float>(sim::Device&, std::span<const CsrMatrix<float>* const>,
                    std::span<const CsrMatrix<float>* const>, const core::Options&);
template SpgemmBatchOutput<double>
spgemm_batch<double>(sim::Device&, std::span<const CsrMatrix<double>* const>,
                     std::span<const CsrMatrix<double>* const>, const core::Options&);

}  // namespace nsparse::core
