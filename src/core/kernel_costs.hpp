// Per-element cycle-cost bundles shared by the symbolic and numeric
// kernels, so every kernel charges consistent costs for the same simulated
// machine operations.
#pragma once

#include <algorithm>
#include <span>

#include "gpusim/cost_model.hpp"
#include "sparse/types.hpp"

namespace nsparse::core {

namespace detail {

inline double sum(std::span<const double> v)
{
    double s = 0.0;
    for (const double x : v) { s += x; }
    return s;
}

inline double max_of(std::span<const double> v)
{
    double s = 0.0;
    for (const double x : v) { s = std::max(s, x); }
    return s;
}

}  // namespace detail

struct ElemCosts {
    double read_a = 0.0;     ///< per A-nonzero: colA read + B row-pointer pair + first touch
    double elem_b = 0.0;     ///< per B-element: colB (+valB) read + hash arithmetic
    double probe_shared = 0.0;
    double probe_global = 0.0;
    double insert_shared = 0.0;  ///< atomicCAS claim of a slot
    double insert_global = 0.0;
    double accum_shared = 0.0;   ///< numeric value atomicAdd + multiply
    double accum_global = 0.0;

    static ElemCosts make(const sim::CostModel& m, bool numeric, std::size_t value_bytes,
                          bool pow2_tables = true)
    {
        ElemCosts c;
        c.read_a = m.global_cost(sizeof(index_t), sim::MemPattern::kCoalesced) +
                   m.global_cost(2 * sizeof(index_t), sim::MemPattern::kRandom) +
                   m.global_cost(sizeof(index_t), sim::MemPattern::kRandom);
        const std::size_t b_bytes = sizeof(index_t) + (numeric ? value_bytes : 0);
        const double hash_arith = pow2_tables ? 3.0 * m.int_op : 2.0 * m.int_op + m.modulus_op;
        c.elem_b = m.global_cost(b_bytes, sim::MemPattern::kCoalesced) + hash_arith;
        c.probe_shared = m.shared_access;
        c.probe_global = m.global_cost(sizeof(index_t), sim::MemPattern::kRandom);
        c.insert_shared = m.shared_atomic;
        c.insert_global = m.global_atomic;
        c.accum_shared = m.shared_atomic + m.flop;
        c.accum_global = m.global_atomic + m.flop;
        return c;
    }
};

}  // namespace nsparse::core
