// The persistent worker pool under the execution engine: task execution,
// growth/clamping, drain-on-shutdown ordering, caller help, and the
// executor's lowest-block-index exception contract on top of it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"

namespace nsparse::sim {
namespace {

TEST(Completion, SetWaitDone)
{
    Completion c;
    EXPECT_FALSE(c.done());
    EXPECT_FALSE(c.wait_for_ms(1));
    c.set();
    EXPECT_TRUE(c.done());
    c.wait();  // must not block after set
    EXPECT_TRUE(c.wait_for_ms(1));
}

TEST(WorkerPool, ExecutesSubmittedTasks)
{
    WorkerPool pool(2);
    EXPECT_EQ(pool.workers(), 2);

    constexpr int kTasks = 64;
    std::atomic<int> counter{0};
    Completion done;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            if (counter.fetch_add(1, std::memory_order_acq_rel) + 1 == kTasks) { done.set(); }
        });
    }
    pool.wait(done);
    EXPECT_EQ(counter.load(), kTasks);
    EXPECT_GE(pool.tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(WorkerPool, ShutdownDrainsQueuedTasksThenJoins)
{
    std::atomic<int> counter{0};
    {
        WorkerPool pool(1);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor: queued tasks all run before the workers exit.
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(WorkerPool, EnsureWorkersGrowsButNeverShrinks)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.workers(), 0);
    pool.ensure_workers(3);
    EXPECT_EQ(pool.workers(), 3);
    pool.ensure_workers(2);  // never shrinks
    EXPECT_EQ(pool.workers(), 3);
    pool.ensure_workers(-7);  // absurd requests are a no-op
    EXPECT_EQ(pool.workers(), 3);
}

TEST(WorkerPool, CallerHelpsWhenWorkersAreBusy)
{
    WorkerPool pool(1);
    Completion gate;   // holds the only worker hostage
    Completion parked; // the hostage task reached the gate
    pool.submit([&] {
        parked.set();
        gate.wait();
    });
    parked.wait();

    constexpr int kTasks = 16;
    std::atomic<int> counter{0};
    Completion done;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            if (counter.fetch_add(1, std::memory_order_acq_rel) + 1 == kTasks) { done.set(); }
        });
    }
    // The only worker is blocked: wait() must run the tasks on this thread.
    pool.wait(done);
    EXPECT_EQ(counter.load(), kTasks);
    gate.set();
}

TEST(WorkerPool, ProcessPoolIsPersistentAcrossLaunches)
{
    auto& pool = WorkerPool::instance();
    EXPECT_EQ(&pool, &WorkerPool::instance());

    Device dev(DeviceSpec::pascal_p100());
    dev.set_executor_threads(4);
    const auto executed_before = pool.tasks_executed();
    for (int i = 0; i < 3; ++i) {
        dev.launch(dev.default_stream(), {64, 64, 0}, "warm",
                   [](BlockCtx& blk) { blk.int_ops(64, 1.0); });
    }
    dev.synchronize();
    // The launches ran as pool tasks on persistent workers — no
    // per-launch thread spawn.
    EXPECT_GE(pool.workers(), 3);
    EXPECT_GT(pool.tasks_executed(), executed_before);
}

TEST(WorkerPool, ResolveThreadsClampsAbsurdRequests)
{
    EXPECT_EQ(BlockExecutor::resolve_threads(1), 1);
    EXPECT_EQ(BlockExecutor::resolve_threads(7), 7);
    EXPECT_GE(BlockExecutor::resolve_threads(0), 1);
    // Negative resolves like the default (all hardware threads).
    EXPECT_EQ(BlockExecutor::resolve_threads(-3), BlockExecutor::resolve_threads(0));
    // Huge requests clamp to the pool ceiling.
    EXPECT_EQ(BlockExecutor::resolve_threads(1 << 20), WorkerPool::kMaxWorkers);
    EXPECT_EQ(BlockExecutor::resolve_threads(WorkerPool::kMaxWorkers),
              WorkerPool::kMaxWorkers);
}

TEST(WorkerPool, HelpingWaitNeverStealsBlockingTasks)
{
    // Regression: two chained stream launches on one worker. Launch B1
    // helps while waiting out its own leaf chunks; if that help could
    // steal the queued successor B2 (which blocks on B1's completion),
    // B1's stack would wait on itself. The bench deadlocked exactly this
    // way with executor_threads=2. The kind split makes the schedule
    // deterministic: helping runs leaf tasks only.
    WorkerPool pool(1);
    Completion parked;
    Completion go;
    Completion b1_done;
    Completion b2_done;
    pool.submit(
        [&] {
            parked.set();
            go.wait();
        },
        WorkerPool::TaskKind::blocking);
    parked.wait();  // both stream tasks below enqueue behind the park

    pool.submit(
        [&] {
            Completion leaf_done;
            pool.submit([&] { leaf_done.set(); });
            pool.wait(leaf_done);  // must not steal B2 from the queue
            b1_done.set();
        },
        WorkerPool::TaskKind::blocking);
    pool.submit(
        [&] {
            b1_done.wait();
            b2_done.set();
        },
        WorkerPool::TaskKind::blocking);

    go.set();
    pool.wait(b2_done);
    EXPECT_TRUE(b1_done.done());
}

TEST(WorkerPool, ExceptionPropagationStillLowestBlockIndex)
{
    // The executor's contract on top of the pool: several blocks fail,
    // the surfaced error is deterministically the lowest block index.
    const LaunchConfig cfg{200, 64, 0};
    const CostModel cost;
    std::vector<BlockCost> blocks(200);
    try {
        BlockExecutor::run(cfg, cost, 4, blocks, [](BlockCtx& blk) {
            const auto b = blk.block_idx();
            if (b == 41 || b == 77 || b == 199) {
                throw std::runtime_error("block " + std::to_string(b) + " failed");
            }
        });
        FAIL() << "run must rethrow the functor's exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "block 41 failed");
    }
}

TEST(WorkerPool, ParallelChunksCoversRangeOnce)
{
    constexpr std::int64_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_chunks(kN, 4, [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
}

TEST(WorkerPool, ParallelChunksLowestChunkExceptionWins)
{
    try {
        parallel_chunks(1000, 4, [](int c, std::int64_t, std::int64_t) {
            if (c >= 1) { throw std::runtime_error("chunk " + std::to_string(c)); }
        });
        FAIL() << "parallel_chunks must rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 1");
    }
}

}  // namespace
}  // namespace nsparse::sim
