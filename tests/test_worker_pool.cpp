// The persistent worker pool under the execution engine: task execution,
// growth/clamping, drain-on-shutdown ordering, caller help, and the
// executor's lowest-block-index exception contract on top of it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/worker_pool.hpp"

namespace nsparse::sim {
namespace {

TEST(Completion, SetWaitDone)
{
    Completion c;
    EXPECT_FALSE(c.done());
    EXPECT_FALSE(c.wait_for_ms(1));
    c.set();
    EXPECT_TRUE(c.done());
    c.wait();  // must not block after set
    EXPECT_TRUE(c.wait_for_ms(1));
}

TEST(WorkerPool, ExecutesSubmittedTasks)
{
    WorkerPool pool(2);
    EXPECT_EQ(pool.workers(), 2);

    constexpr int kTasks = 64;
    std::atomic<int> counter{0};
    Completion done;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            if (counter.fetch_add(1, std::memory_order_acq_rel) + 1 == kTasks) { done.set(); }
        });
    }
    pool.wait(done);
    EXPECT_EQ(counter.load(), kTasks);
    EXPECT_GE(pool.tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(WorkerPool, ShutdownDrainsQueuedTasksThenJoins)
{
    std::atomic<int> counter{0};
    {
        WorkerPool pool(1);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor: queued tasks all run before the workers exit.
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(WorkerPool, EnsureWorkersGrowsButNeverShrinks)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.workers(), 0);
    pool.ensure_workers(3);
    EXPECT_EQ(pool.workers(), 3);
    pool.ensure_workers(2);  // never shrinks
    EXPECT_EQ(pool.workers(), 3);
    pool.ensure_workers(-7);  // absurd requests are a no-op
    EXPECT_EQ(pool.workers(), 3);
}

TEST(WorkerPool, CallerHelpsWhenWorkersAreBusy)
{
    WorkerPool pool(1);
    Completion gate;   // holds the only worker hostage
    Completion parked; // the hostage task reached the gate
    pool.submit([&] {
        parked.set();
        gate.wait();
    });
    parked.wait();

    constexpr int kTasks = 16;
    std::atomic<int> counter{0};
    Completion done;
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            if (counter.fetch_add(1, std::memory_order_acq_rel) + 1 == kTasks) { done.set(); }
        });
    }
    // The only worker is blocked: wait() must run the tasks on this thread.
    pool.wait(done);
    EXPECT_EQ(counter.load(), kTasks);
    gate.set();
}

TEST(WorkerPool, ProcessPoolIsPersistentAcrossLaunches)
{
    auto& pool = WorkerPool::instance();
    EXPECT_EQ(&pool, &WorkerPool::instance());

    Device dev(DeviceSpec::pascal_p100());
    dev.set_executor_threads(4);
    const auto executed_before = pool.tasks_executed();
    for (int i = 0; i < 3; ++i) {
        dev.launch(dev.default_stream(), {64, 64, 0}, "warm",
                   [](BlockCtx& blk) { blk.int_ops(64, 1.0); });
    }
    dev.synchronize();
    // The launches ran as pool tasks on persistent workers — no
    // per-launch thread spawn.
    EXPECT_GE(pool.workers(), 3);
    EXPECT_GT(pool.tasks_executed(), executed_before);
}

TEST(WorkerPool, ResolveThreadsClampsAbsurdRequests)
{
    EXPECT_EQ(BlockExecutor::resolve_threads(1), 1);
    EXPECT_EQ(BlockExecutor::resolve_threads(7), 7);
    EXPECT_GE(BlockExecutor::resolve_threads(0), 1);
    // Negative resolves like the default (all hardware threads).
    EXPECT_EQ(BlockExecutor::resolve_threads(-3), BlockExecutor::resolve_threads(0));
    // Huge requests clamp to the pool ceiling.
    EXPECT_EQ(BlockExecutor::resolve_threads(1 << 20), WorkerPool::kMaxWorkers);
    EXPECT_EQ(BlockExecutor::resolve_threads(WorkerPool::kMaxWorkers),
              WorkerPool::kMaxWorkers);
}

TEST(WorkerPool, HelpingWaitNeverStealsBlockingTasks)
{
    // Regression: two chained stream launches on one worker. Launch B1
    // helps while waiting out its own leaf chunks; if that help could
    // steal the queued successor B2 (which blocks on B1's completion),
    // B1's stack would wait on itself. The bench deadlocked exactly this
    // way with executor_threads=2. The kind split makes the schedule
    // deterministic: helping runs leaf tasks only.
    WorkerPool pool(1);
    Completion parked;
    Completion go;
    Completion b1_done;
    Completion b2_done;
    pool.submit(
        [&] {
            parked.set();
            go.wait();
        },
        WorkerPool::TaskKind::blocking);
    parked.wait();  // both stream tasks below enqueue behind the park

    pool.submit(
        [&] {
            Completion leaf_done;
            pool.submit([&] { leaf_done.set(); });
            pool.wait(leaf_done);  // must not steal B2 from the queue
            b1_done.set();
        },
        WorkerPool::TaskKind::blocking);
    pool.submit(
        [&] {
            b1_done.wait();
            b2_done.set();
        },
        WorkerPool::TaskKind::blocking);

    go.set();
    pool.wait(b2_done);
    EXPECT_TRUE(b1_done.done());
}

TEST(WorkerPool, ExceptionPropagationStillLowestBlockIndex)
{
    // The executor's contract on top of the pool: several blocks fail,
    // the surfaced error is deterministically the lowest block index.
    const LaunchConfig cfg{200, 64, 0};
    const CostModel cost;
    std::vector<BlockCost> blocks(200);
    try {
        BlockExecutor::run(cfg, cost, 4, blocks, [](BlockCtx& blk) {
            const auto b = blk.block_idx();
            if (b == 41 || b == 77 || b == 199) {
                throw std::runtime_error("block " + std::to_string(b) + " failed");
            }
        });
        FAIL() << "run must rethrow the functor's exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "block 41 failed");
    }
}

TEST(WorkerPool, RepeatedFlushFoldsCountersOnce)
{
    // Regression: flush() must be idempotent. Each LaunchState carries its
    // pending_ record index and a counted latch; the old tail-index
    // arithmetic (pending size minus inflight size) re-folded earlier
    // records once batch capture keeps already-counted launches pending
    // across flushes.
    for (const int threads : {1, 4}) {
        Device dev(DeviceSpec::pascal_p100());
        dev.set_executor_threads(threads);
        dev.begin_batch_capture();
        dev.set_batch_item(0);
        dev.launch(dev.default_stream(), {8, 64, 0}, "k0", [](BlockCtx& blk) {
            blk.global_read(64, 4, MemPattern::kCoalesced);
        });
        dev.flush();
        dev.flush();  // counted record still pending; must not re-fold
        EXPECT_EQ(dev.kernels_launched(), 1U) << "threads=" << threads;
        EXPECT_EQ(dev.blocks_executed(), 8U) << "threads=" << threads;
        const double bytes_after_one = dev.total_global_bytes();

        dev.set_batch_item(1);
        dev.launch(dev.default_stream(), {8, 64, 0}, "k1", [](BlockCtx& blk) {
            blk.global_read(64, 4, MemPattern::kCoalesced);
        });
        dev.flush();
        dev.flush();
        dev.flush();
        EXPECT_EQ(dev.kernels_launched(), 2U) << "threads=" << threads;
        EXPECT_EQ(dev.blocks_executed(), 16U) << "threads=" << threads;
        EXPECT_DOUBLE_EQ(dev.total_global_bytes(), 2.0 * bytes_after_one)
            << "threads=" << threads;

        const auto report = dev.end_batch_capture();
        EXPECT_EQ(report.items.size(), 2U);
        // The window scheduled both records exactly once.
        EXPECT_EQ(report.items.at(0).kernels, 1U);
        EXPECT_EQ(report.items.at(1).kernels, 1U);
        EXPECT_EQ(dev.kernels_launched(), 2U) << "threads=" << threads;
    }
}

TEST(WorkerPool, RepeatedFlushAfterFailedLaunchStaysIdempotent)
{
    // The failed record is dropped at its first flush; later flushes must
    // neither re-raise nor disturb the counters of the surviving launch.
    for (const int threads : {1, 4}) {
        Device dev(DeviceSpec::pascal_p100());
        dev.set_executor_threads(threads);
        dev.begin_batch_capture();
        dev.set_batch_item(0);
        dev.launch(dev.default_stream(), {4, 64, 0}, "ok", [](BlockCtx& blk) {
            blk.int_ops(64, 1.0);
        });
        dev.launch(dev.create_stream(), {4, 64, 0}, "bad", [](BlockCtx& blk) {
            if (blk.block_idx() == 0) { throw std::runtime_error("boom"); }
        });
        EXPECT_THROW(dev.flush(), std::runtime_error);
        dev.flush();  // nothing in flight: no rethrow, no re-count
        dev.flush();
        EXPECT_EQ(dev.kernels_launched(), 1U) << "threads=" << threads;
        EXPECT_EQ(dev.blocks_executed(), 4U) << "threads=" << threads;
        const auto report = dev.end_batch_capture();
        EXPECT_EQ(report.items.at(0).kernels, 1U);  // failed record dropped
    }
}

TEST(WorkerPool, FlushErrorChoosesLowestBatchItem)
{
    // Several items' launches fail in one in-flight set: the surfaced
    // error is deterministically the lowest (batch item, launch index),
    // i.e. the lowest product index — regardless of issue interleaving or
    // executor thread count.
    for (const int threads : {1, 4}) {
        Device dev(DeviceSpec::pascal_p100());
        dev.set_executor_threads(threads);
        dev.begin_batch_capture();
        for (const int item : {2, 0, 1}) {  // deliberately out of order
            dev.set_batch_item(item);
            dev.launch(dev.default_stream(), {2, 64, 0},
                       "fail" + std::to_string(item), [item](BlockCtx& blk) {
                           if (blk.block_idx() == 0) {
                               throw std::runtime_error("item " + std::to_string(item));
                           }
                       });
        }
        try {
            dev.flush();
            FAIL() << "flush must rethrow (threads=" << threads << ")";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "item 0") << "threads=" << threads;
        }
        EXPECT_EQ(dev.last_error_batch_item(), 0) << "threads=" << threads;
        (void)dev.end_batch_capture();
    }
}

TEST(WorkerPool, ParallelChunksCoversRangeOnce)
{
    constexpr std::int64_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_chunks(kN, 4, [&](int /*chunk*/, std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
}

TEST(WorkerPool, ParallelChunksLowestChunkExceptionWins)
{
    try {
        parallel_chunks(1000, 4, [](int c, std::int64_t, std::int64_t) {
            if (c >= 1) { throw std::runtime_error("chunk " + std::to_string(c)); }
        });
        FAIL() << "parallel_chunks must rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 1");
    }
}

}  // namespace
}  // namespace nsparse::sim
