// CSR linear-algebra utilities: SpMV, add, diagonal, scaling, vector ops.
#include <gtest/gtest.h>

#include "matgen/generators.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/dense.hpp"
#include "sparse/equality.hpp"

namespace nsparse {
namespace {

TEST(Spmv, MatchesDense)
{
    const auto a = gen::uniform_random(30, 40, 5, 1);
    std::vector<double> x(40);
    for (std::size_t i = 0; i < x.size(); ++i) { x[i] = 0.1 * static_cast<double>(i) - 1.0; }
    std::vector<double> y(30);
    spmv(a, std::span<const double>(x), std::span<double>(y));

    const auto d = to_dense(a);
    for (index_t i = 0; i < 30; ++i) {
        double ref = 0.0;
        for (index_t j = 0; j < 40; ++j) { ref += d.at(i, j) * x[to_size(j)]; }
        EXPECT_NEAR(y[to_size(i)], ref, 1e-12);
    }
}

TEST(Spmv, SizeMismatchThrows)
{
    const auto a = gen::uniform_random(5, 6, 2, 2);
    std::vector<double> x(5);
    std::vector<double> y(5);
    EXPECT_THROW(spmv(a, std::span<const double>(x), std::span<double>(y)),
                 PreconditionError);
}

TEST(CsrAdd, AlphaBetaCombination)
{
    auto a = gen::uniform_random(20, 20, 4, 3);
    auto b = gen::uniform_random(20, 20, 4, 4);
    a.sort_rows();
    b.sort_rows();
    const auto c = csr_add(a, b, 2.0, -1.0);
    const auto da = to_dense(a);
    const auto db = to_dense(b);
    const auto dc = to_dense(c);
    for (index_t i = 0; i < 20; ++i) {
        for (index_t j = 0; j < 20; ++j) {
            EXPECT_NEAR(dc.at(i, j), 2.0 * da.at(i, j) - db.at(i, j), 1e-12);
        }
    }
    EXPECT_TRUE(c.has_sorted_rows());
}

TEST(CsrAdd, AddWithZeroMatrix)
{
    auto a = gen::uniform_random(10, 10, 3, 5);
    a.sort_rows();
    const auto z = CsrMatrix<double>::zero(10, 10);
    EXPECT_TRUE(approx_equal(csr_add(a, z), a, 1e-14));
}

TEST(CsrAdd, ShapeMismatchThrows)
{
    auto a = gen::uniform_random(4, 4, 2, 1);
    auto b = gen::uniform_random(5, 4, 2, 1);
    a.sort_rows();
    b.sort_rows();
    EXPECT_THROW((void)csr_add(a, b), PreconditionError);
}

TEST(Diagonal, ExtractsAndDefaultsToZero)
{
    CsrMatrix<double> m(3, 3, {0, 2, 3, 4}, {0, 2, 2, 0}, {5.0, 1.0, 7.0, 2.0});
    const auto d = diagonal(m);
    EXPECT_DOUBLE_EQ(d[0], 5.0);
    EXPECT_DOUBLE_EQ(d[1], 0.0);  // no (1,1) entry
    EXPECT_DOUBLE_EQ(d[2], 0.0);  // (2,0) only
}

TEST(ScaleRows, MultipliesEachRow)
{
    auto m = CsrMatrix<double>::identity(4);
    const std::vector<double> s{2, 3, 4, 5};
    scale_rows(m, std::span<const double>(s));
    for (index_t i = 0; i < 4; ++i) { EXPECT_DOUBLE_EQ(m.row_vals(i)[0], s[to_size(i)]); }
}

TEST(VectorOps, DotNormAxpy)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{4, -5, 6};
    EXPECT_DOUBLE_EQ(dot(std::span<const double>(x), std::span<const double>(y)), 12.0);
    EXPECT_NEAR(norm2(std::span<const double>(x)), std::sqrt(14.0), 1e-14);
    std::vector<double> z = y;
    axpy(2.0, std::span<const double>(x), std::span<double>(z));
    EXPECT_DOUBLE_EQ(z[0], 6.0);
    EXPECT_DOUBLE_EQ(z[1], -1.0);
    EXPECT_DOUBLE_EQ(z[2], 12.0);
}

}  // namespace
}  // namespace nsparse
