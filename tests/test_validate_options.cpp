// core::validate_options — every public entry point (hash_spgemm,
// spgemm_batch, Session) rejects out-of-domain Options with a
// PreconditionError naming the violated invariant, before any kernel runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/spgemm.hpp"
#include "core/spgemm_batch.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> tiny() { return gen::uniform_random(20, 20, 3, 5); }

std::string invariant_of(const std::function<void()>& fn)
{
    try {
        fn();
    } catch (const PreconditionError& e) {
        return e.invariant();
    }
    return {};
}

TEST(ValidateOptions, HashSpgemmRejectsNegativeRetryBudgets)
{
    const auto a = tiny();
    sim::Device dev(sim::DeviceSpec::pascal_p100());

    core::Options opt;
    opt.max_slab_retries = -1;
    EXPECT_EQ(invariant_of([&] { (void)hash_spgemm<double>(dev, a, a, opt); }),
              "max_slab_retries_non_negative");

    opt = {};
    opt.max_row_retries = -3;
    EXPECT_EQ(invariant_of([&] { (void)hash_spgemm<double>(dev, a, a, opt); }),
              "max_row_retries_non_negative");
}

TEST(ValidateOptions, HashSpgemmRejectsNonPositiveSampleRate)
{
    const auto a = tiny();
    sim::Device dev(sim::DeviceSpec::pascal_p100());

    for (const double rate : {0.0, -0.5, std::nan("")}) {
        core::Options opt;
        opt.estimate_sample_rate = rate;
        EXPECT_EQ(invariant_of([&] { (void)hash_spgemm<double>(dev, a, a, opt); }),
                  "estimate_sample_rate_positive")
            << rate;
    }
}

TEST(ValidateOptions, BatchRejectsNonPositiveStreams)
{
    const auto a = tiny();
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const std::vector<const CsrMatrix<double>*> ms = {&a};

    for (const int streams : {0, -4}) {
        core::Options opt;
        opt.batch_streams = streams;
        EXPECT_EQ(invariant_of([&] {
                      (void)core::spgemm_batch<double>(dev, ms, ms, opt);
                  }),
                  "batch_streams_positive")
            << streams;
    }
}

TEST(ValidateOptions, SessionRejectsInvalidOptionsAtConstruction)
{
    SessionConfig cfg;
    cfg.options.batch_streams = 0;
    EXPECT_THROW(Session{std::move(cfg)}, PreconditionError);

    SessionConfig cfg2;
    cfg2.options.estimate_sample_rate = -1.0;
    EXPECT_THROW(Session{std::move(cfg2)}, PreconditionError);
}

TEST(ValidateOptions, SessionRejectsInvalidPolicyAtConstruction)
{
    SessionConfig cfg;
    cfg.policy.max_plan_attempts = 0;
    EXPECT_THROW(Session{std::move(cfg)}, PreconditionError);

    SessionConfig cfg2;
    cfg2.policy.max_row_retries = -1;
    EXPECT_THROW(Session{std::move(cfg2)}, PreconditionError);

    SessionConfig cfg3;
    cfg3.policy.max_slab_retries = -2;
    EXPECT_THROW(Session{std::move(cfg3)}, PreconditionError);
}

TEST(ValidateOptions, EdgeValuesAreAccepted)
{
    const auto a = tiny();
    sim::Device dev(sim::DeviceSpec::pascal_p100());

    core::Options opt;
    opt.max_slab_retries = 0;
    opt.max_row_retries = 0;
    opt.estimate_sample_rate = 1e-6;
    opt.batch_streams = 1;
    EXPECT_NO_THROW(core::validate_options(opt));
    EXPECT_NO_THROW((void)hash_spgemm<double>(dev, a, a, opt));

    // Over-unit sample rates are clamped, not rejected.
    opt.estimate_sample_rate = 7.5;
    EXPECT_NO_THROW(core::validate_options(opt));
}

TEST(ValidateOptions, ValidationRunsBeforeAnyKernel)
{
    const auto a = tiny();
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    core::Options opt;
    opt.batch_streams = -1;
    const std::vector<const CsrMatrix<double>*> ms = {&a};
    EXPECT_THROW((void)core::spgemm_batch<double>(dev, ms, ms, opt), PreconditionError);
    EXPECT_EQ(dev.kernels_launched(), 0U);
    EXPECT_EQ(dev.allocator().live_bytes(), 0U);
}

}  // namespace
}  // namespace nsparse
