// Device-reuse hygiene: after a DeviceOutOfMemory, a KernelFault, a
// cancellation or a dangling batch capture, Device::reclaim() (and the
// reset_measurement every entry point performs) must hand the next multiply
// a device indistinguishable from a fresh one — no stale trace events, no
// leaked counters, no dangling cancel token, byte-identical results.
#include <gtest/gtest.h>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> pressure_matrix() { return gen::uniform_random(400, 400, 8, 3); }

std::size_t unchunked_peak(const CsrMatrix<double>& a)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<double>(dev, a, a).stats.peak_bytes;
}

void expect_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want)
{
    EXPECT_EQ(got.rpt, want.rpt);
    EXPECT_EQ(got.col, want.col);
    EXPECT_EQ(got.val, want.val);
}

TEST(DeviceReuse, AfterDeviceOutOfMemoryWithFallbackDisabled)
{
    const auto a = pressure_matrix();
    const auto small = gen::uniform_random(60, 60, 4, 11);
    const auto want = reference_spgemm(small, small);

    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = unchunked_peak(a) * 3 / 4;
    sim::Device dev(spec);
    core::Options opt;
    opt.slab_fallback = false;
    EXPECT_THROW((void)hash_spgemm<double>(dev, a, a, opt), DeviceOutOfMemory);

    dev.reclaim();
    EXPECT_EQ(dev.allocator().live_bytes(), 0U);
    const auto out = hash_spgemm<double>(dev, small, small);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, AfterInjectedAllocationFault)
{
    const auto a = gen::uniform_random(120, 120, 5, 7);
    const auto want = reference_spgemm(a, a);

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    core::Options opt;
    opt.slab_fallback = false;
    sim::FaultPlan plan;
    plan.fail_at_alloc = 2;
    dev.allocator().set_fault_plan(plan);
    EXPECT_THROW((void)hash_spgemm<double>(dev, a, a, opt), DeviceOutOfMemory);

    dev.reclaim();
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, AfterKernelFaultSurfacedFromALaunch)
{
    const auto a = gen::uniform_random(80, 80, 5, 7);
    const auto want = reference_spgemm(a, a);

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.set_executor_threads(1);  // eager: the fault surfaces at launch
    try {
        dev.launch(dev.default_stream(), {1, 32, 0}, "faulting_kernel",
                   [](sim::BlockCtx&) {
                       throw KernelFault("injected fault", "count", 0, 7, 64, 64);
                   });
        dev.synchronize();
        FAIL() << "expected KernelFault";
    } catch (const KernelFault& e) {
        EXPECT_EQ(e.row(), 7);
    }

    dev.reclaim();
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, AfterDeferredKernelFaultOnThePool)
{
    const auto a = gen::uniform_random(80, 80, 5, 7);
    const auto want = reference_spgemm(a, a);

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.set_executor_threads(4);  // async: the fault defers to the flush
    EXPECT_THROW(
        {
            dev.launch(dev.default_stream(), {1, 32, 0}, "faulting_kernel",
                       [](sim::BlockCtx&) {
                           throw KernelFault("injected fault", "count", 0, 7, 64, 64);
                       });
            dev.synchronize();
        },
        KernelFault);

    dev.reclaim();
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, TraceAndCountersResetBetweenMultiplies)
{
    const auto a = pressure_matrix();
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = unchunked_peak(a) * 3 / 4;
    sim::Device dev(spec);
    dev.enable_trace();

    // First multiply recovers via slabs and records memory events.
    (void)hash_spgemm<double>(dev, a, a);
    EXPECT_GE(dev.memory_events_recorded(), 1U);
    ASSERT_FALSE(dev.trace().memory_events().empty());

    // The second multiply fits (smaller input): its measurement must not
    // inherit the first one's events or counters.
    const auto small = gen::uniform_random(60, 60, 4, 11);
    (void)hash_spgemm<double>(dev, small, small);
    EXPECT_EQ(dev.memory_events_recorded(), 0U);
    EXPECT_EQ(dev.fault_events_recorded(), 0U);
    EXPECT_TRUE(dev.trace().memory_events().empty());
    EXPECT_TRUE(dev.trace().fault_events().empty());
}

TEST(DeviceReuse, ReclaimClosesDanglingBatchCapture)
{
    const auto a = gen::uniform_random(60, 60, 4, 11);
    const auto want = reference_spgemm(a, a);

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.begin_batch_capture();
    dev.set_batch_item(0);
    ASSERT_TRUE(dev.batch_capture_active());

    dev.reclaim();
    EXPECT_FALSE(dev.batch_capture_active());
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, ReclaimDetachesCancelToken)
{
    const auto a = gen::uniform_random(60, 60, 4, 11);
    const auto want = reference_spgemm(a, a);

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.set_executor_threads(1);
    sim::CancelToken token;
    dev.set_cancel_token(&token);
    token.request_cancel("test");
    EXPECT_THROW(dev.launch(dev.default_stream(), {1, 32, 0}, "noop",
                            [](sim::BlockCtx&) {}),
                 OperationCancelled);

    // reclaim() detaches the token: the sticky cancellation no longer
    // applies to the device, only to the token's owner.
    dev.reclaim();
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, SimDeadlineTripsAtKernelBoundary)
{
    const auto a = gen::uniform_random(120, 120, 5, 7);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    sim::CancelToken token;
    token.arm_sim_deadline(1e-9);
    dev.set_cancel_token(&token);
    try {
        (void)hash_spgemm<double>(dev, a, a);
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded& e) {
        EXPECT_FALSE(e.wall_clock());
    }
    dev.reclaim();
    EXPECT_EQ(dev.allocator().live_bytes(), 0U);
    const auto out = hash_spgemm<double>(dev, a, a);
    const auto want = reference_spgemm(a, a);
    expect_identical(out.matrix, want);
}

TEST(DeviceReuse, ReclaimIsIdempotentOnAHealthyDevice)
{
    const auto a = gen::uniform_random(60, 60, 4, 11);
    const auto want = reference_spgemm(a, a);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.reclaim();
    dev.reclaim();
    const auto out = hash_spgemm<double>(dev, a, a);
    expect_identical(out.matrix, want);
}

}  // namespace
}  // namespace nsparse
