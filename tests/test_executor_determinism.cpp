// The parallel block executor's contract: for any executor thread count
// the simulated device produces bit-identical results — functional output,
// cycle accounting, phase timelines, traces, counters and group
// populations. Only host wall-clock may differ. These tests pin the
// contract by comparing a sequential (1-thread) run against a parallel
// (4-thread) run of the same workload.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/grouping.hpp"
#include "core/spgemm.hpp"
#include "gpusim/executor.hpp"
#include "matgen/generators.hpp"
#include "matgen/rng.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr int kParallel = 4;

sim::Device p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

core::Options with_threads(int n)
{
    core::Options opt;
    opt.executor_threads = n;
    return opt;
}

void expect_same_stats(const SpgemmStats& a, const SpgemmStats& b)
{
    EXPECT_EQ(a.intermediate_products, b.intermediate_products);
    EXPECT_EQ(a.nnz_c, b.nnz_c);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.setup_seconds, b.setup_seconds);
    EXPECT_DOUBLE_EQ(a.count_seconds, b.count_seconds);
    EXPECT_DOUBLE_EQ(a.calc_seconds, b.calc_seconds);
    EXPECT_DOUBLE_EQ(a.malloc_seconds, b.malloc_seconds);
    EXPECT_EQ(a.peak_bytes, b.peak_bytes);
}

TEST(ExecutorDeterminism, ResolveThreads)
{
    EXPECT_EQ(sim::BlockExecutor::resolve_threads(1), 1);
    EXPECT_EQ(sim::BlockExecutor::resolve_threads(7), 7);
    EXPECT_GE(sim::BlockExecutor::resolve_threads(0), 1);
}

TEST(ExecutorDeterminism, HashSpgemmIdenticalOutputAndCycles)
{
    const auto a = gen::uniform_random(600, 600, 10, 17);
    sim::Device d1 = p100();
    sim::Device dn = p100();
    const auto c1 = hash_spgemm<double>(d1, a, a, with_threads(1));
    const auto cn = hash_spgemm<double>(dn, a, a, with_threads(kParallel));

    EXPECT_TRUE(c1.matrix == cn.matrix);
    expect_same_stats(c1.stats, cn.stats);
    EXPECT_EQ(d1.kernels_launched(), dn.kernels_launched());
    EXPECT_EQ(d1.blocks_executed(), dn.blocks_executed());
    EXPECT_DOUBLE_EQ(d1.total_global_bytes(), dn.total_global_bytes());
}

TEST(ExecutorDeterminism, SkewedMatrixIdenticalAcrossThreadCounts)
{
    // Power-law rows: very uneven per-block work, the case where dynamic
    // scheduling actually reorders block execution.
    gen::ScaleFreeParams p;
    p.rows = 2000;
    p.avg_degree = 5.0;
    p.max_degree = 500;
    p.seed = 23;
    const auto a = gen::scale_free(p);
    sim::Device d1 = p100();
    sim::Device dn = p100();
    const auto c1 = hash_spgemm<double>(d1, a, a, with_threads(1));
    const auto cn = hash_spgemm<double>(dn, a, a, with_threads(kParallel));
    EXPECT_TRUE(c1.matrix == cn.matrix);
    expect_same_stats(c1.stats, cn.stats);
}

TEST(ExecutorDeterminism, TraceIsBitIdentical)
{
    const auto a = gen::uniform_random(400, 400, 8, 19);
    sim::Device d1 = p100();
    sim::Device dn = p100();
    d1.enable_trace();
    dn.enable_trace();
    // reset_measurement() inside hash_spgemm clears the trace, so both
    // traces cover exactly the measured portion.
    (void)hash_spgemm<double>(d1, a, a, with_threads(1));
    (void)hash_spgemm<double>(dn, a, a, with_threads(kParallel));

    const auto& e1 = d1.trace().entries();
    const auto& en = dn.trace().entries();
    ASSERT_EQ(e1.size(), en.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(e1[i].name, en[i].name);
        EXPECT_EQ(e1[i].phase, en[i].phase);
        EXPECT_EQ(e1[i].stream_id, en[i].stream_id);
        EXPECT_EQ(e1[i].grid_dim, en[i].grid_dim);
        EXPECT_EQ(e1[i].block_dim, en[i].block_dim);
        EXPECT_DOUBLE_EQ(e1[i].total_work, en[i].total_work);
        EXPECT_DOUBLE_EQ(e1[i].max_span, en[i].max_span);
        EXPECT_DOUBLE_EQ(e1[i].start, en[i].start);
        EXPECT_DOUBLE_EQ(e1[i].finish, en[i].finish);
    }
}

TEST(ExecutorDeterminism, GroupPopulationsIdentical)
{
    sim::Device d1 = p100();
    sim::Device dn = p100();
    d1.set_executor_threads(1);
    dn.set_executor_threads(kParallel);
    const auto policy = core::GroupingPolicy::symbolic(d1.spec());

    constexpr index_t kRows = 5000;
    gen::Pcg32 rng(41);
    sim::DeviceBuffer<index_t> counts1(d1.allocator(), to_size(kRows));
    sim::DeviceBuffer<index_t> countsn(dn.allocator(), to_size(kRows));
    for (std::size_t i = 0; i < counts1.size(); ++i) {
        const auto c = to_index(rng.bounded(20000));
        counts1[i] = c;
        countsn[i] = c;
    }
    const auto g1 = core::group_rows(d1, policy, counts1);
    const auto gn = core::group_rows(dn, policy, countsn);

    EXPECT_EQ(g1.offsets, gn.offsets);
    ASSERT_EQ(g1.permutation.size(), gn.permutation.size());
    for (std::size_t i = 0; i < g1.permutation.size(); ++i) {
        ASSERT_EQ(g1.permutation[i], gn.permutation[i]) << "position " << i;
    }
    EXPECT_DOUBLE_EQ(d1.elapsed(), dn.elapsed());
}

TEST(ExecutorDeterminism, BaselinesIdenticalAcrossThreadCounts)
{
    const auto a = gen::uniform_random(300, 300, 6, 29);
    {
        sim::Device d1 = p100();
        sim::Device dn = p100();
        const auto c1 = baseline::esc_spgemm<double>(d1, a, a, 1);
        const auto cn = baseline::esc_spgemm<double>(dn, a, a, kParallel);
        EXPECT_TRUE(c1.matrix == cn.matrix);
        expect_same_stats(c1.stats, cn.stats);
    }
    {
        sim::Device d1 = p100();
        sim::Device dn = p100();
        const auto c1 = baseline::cusparse_spgemm<double>(d1, a, a, 1);
        const auto cn = baseline::cusparse_spgemm<double>(dn, a, a, kParallel);
        EXPECT_TRUE(c1.matrix == cn.matrix);
        expect_same_stats(c1.stats, cn.stats);
    }
    {
        sim::Device d1 = p100();
        sim::Device dn = p100();
        const auto c1 = baseline::bhsparse_spgemm<double>(d1, a, a, 1);
        const auto cn = baseline::bhsparse_spgemm<double>(dn, a, a, kParallel);
        EXPECT_TRUE(c1.matrix == cn.matrix);
        expect_same_stats(c1.stats, cn.stats);
    }
}

TEST(ExecutorDeterminism, RawLaunchChargesIdenticalCycles)
{
    // Uneven per-block work straight at the executor, no algorithm above.
    const auto run = [](int threads) {
        sim::Device dev = p100();
        dev.set_executor_threads(threads);
        dev.launch(dev.default_stream(), {257, 128, 0}, "uneven", [](sim::BlockCtx& blk) {
            const auto b = blk.block_idx();
            blk.int_ops(128, static_cast<double>(b % 37 + 1));
            blk.global_read(128, sizeof(index_t), sim::MemPattern::kRandom);
            if (b % 3 == 0) { blk.atomic_global(64, 2.0); }
        });
        dev.synchronize();
        return dev.elapsed();
    };
    const double t1 = run(1);
    EXPECT_DOUBLE_EQ(t1, run(2));
    EXPECT_DOUBLE_EQ(t1, run(kParallel));
    EXPECT_DOUBLE_EQ(t1, run(13));  // more threads than the schedule chunk layout
}

TEST(ExecutorDeterminism, LowestBlockExceptionWinsAndPropagates)
{
    // Several blocks fail; the error reported must deterministically be
    // the lowest block index regardless of which thread hits it first.
    // Functor errors surface at the flush/synchronize join point (CUDA
    // semantics) for every thread count, including the eager 1-thread
    // engine.
    for (const int threads : {1, kParallel}) {
        sim::Device dev = p100();
        dev.set_executor_threads(threads);
        try {
            dev.launch(dev.default_stream(), {200, 64, 0}, "faulty", [](sim::BlockCtx& blk) {
                const auto b = blk.block_idx();
                if (b == 41 || b == 77 || b == 199) {
                    throw std::runtime_error("block " + std::to_string(b) + " failed");
                }
            });
            dev.synchronize();
            FAIL() << "synchronize must rethrow the functor's exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "block 41 failed") << "threads=" << threads;
        }
    }
}

TEST(ExecutorDeterminism, DeviceUsableAfterFunctorThrows)
{
    for (const int threads : {1, kParallel}) {
        sim::Device dev = p100();
        dev.set_executor_threads(threads);
        EXPECT_THROW(
            {
                dev.launch(dev.default_stream(), {64, 64, 0}, "faulty",
                           [](sim::BlockCtx& blk) {
                               if (blk.block_idx() == 0) { throw std::runtime_error("boom"); }
                           });
                dev.synchronize();
            },
            std::runtime_error);
        // The failed launch was dropped at the flush; the device keeps
        // working.
        EXPECT_EQ(dev.kernels_launched(), 0U);
        const auto a = gen::uniform_random(100, 100, 4, 31);
        const auto out = hash_spgemm<double>(dev, a, a, with_threads(threads));
        EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(a, a)));
    }
}

TEST(ExecutorDeterminism, StreamOverlapIdenticalAcrossThreadCounts)
{
    // The acceptance matrix of the execution engine: executor_threads in
    // {1, 2, 4, hw} x streams {off, on} — all simulated results (output,
    // cycles, timelines, traces, counters) bit-identical to the 1-thread
    // run with the same streams setting.
    const auto a = gen::uniform_random(400, 400, 9, 43);
    const int hw = sim::BlockExecutor::resolve_threads(0);
    for (const bool streams : {false, true}) {
        sim::Device d1 = p100();
        d1.enable_trace();
        core::Options o1;
        o1.executor_threads = 1;
        o1.use_streams = streams;
        const auto c1 = hash_spgemm<double>(d1, a, a, o1);

        for (const int threads : {2, kParallel, hw}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " streams=" + std::to_string(streams));
            sim::Device dn = p100();
            dn.enable_trace();
            core::Options on;
            on.executor_threads = threads;
            on.use_streams = streams;
            const auto cn = hash_spgemm<double>(dn, a, a, on);

            EXPECT_TRUE(c1.matrix == cn.matrix);
            expect_same_stats(c1.stats, cn.stats);
            EXPECT_EQ(d1.kernels_launched(), dn.kernels_launched());
            EXPECT_EQ(d1.blocks_executed(), dn.blocks_executed());
            EXPECT_DOUBLE_EQ(d1.total_global_bytes(), dn.total_global_bytes());
            const auto& e1 = d1.trace().entries();
            const auto& en = dn.trace().entries();
            ASSERT_EQ(e1.size(), en.size());
            for (std::size_t i = 0; i < e1.size(); ++i) {
                ASSERT_EQ(e1[i].name, en[i].name) << "entry " << i;
                ASSERT_EQ(e1[i].stream_id, en[i].stream_id) << "entry " << i;
                ASSERT_DOUBLE_EQ(e1[i].start, en[i].start) << "entry " << i;
                ASSERT_DOUBLE_EQ(e1[i].finish, en[i].finish) << "entry " << i;
            }
        }
    }
}

TEST(ExecutorDeterminism, SameStreamLaunchesStayOrdered)
{
    // CUDA stream FIFO on the host engine: a launch must observe the
    // functional writes of its same-stream predecessor even when both run
    // asynchronously on the pool; flush() is the host-side join point.
    constexpr index_t kN = 4096;
    constexpr int kBlock = 64;
    constexpr index_t kGrid = kN / kBlock;
    sim::Device dev = p100();
    dev.set_executor_threads(kParallel);
    const auto s1 = dev.create_stream();
    const auto s2 = dev.create_stream();

    std::vector<int> data(to_size(kN), 0);
    std::vector<int> other(to_size(kN), 0);
    for (int round = 1; round <= 3; ++round) {
        dev.launch(s1, {kGrid, kBlock, 0}, "bump", [&, round](sim::BlockCtx& blk) {
            const index_t begin = blk.block_idx() * kBlock;
            for (index_t i = begin; i < begin + kBlock; ++i) {
                // Predecessor's write must already be visible (FIFO).
                if (data[to_size(i)] == round - 1) { data[to_size(i)] = round; }
            }
            blk.int_ops(kBlock, 1.0);
        });
        // Concurrent second stream touching disjoint data.
        dev.launch(s2, {kGrid, kBlock, 0}, "other", [&](sim::BlockCtx& blk) {
            const index_t begin = blk.block_idx() * kBlock;
            for (index_t i = begin; i < begin + kBlock; ++i) { ++other[to_size(i)]; }
            blk.int_ops(kBlock, 1.0);
        });
    }

    EXPECT_EQ(dev.inflight_launches(), 6U);
    dev.flush();  // join point: all functional results visible, no time charged
    EXPECT_EQ(dev.inflight_launches(), 0U);
    EXPECT_DOUBLE_EQ(dev.elapsed(), 0.0);
    EXPECT_EQ(dev.kernels_launched(), 6U);
    for (index_t i = 0; i < kN; ++i) {
        ASSERT_EQ(data[to_size(i)], 3) << "row " << i;
        ASSERT_EQ(other[to_size(i)], 3) << "row " << i;
    }
    EXPECT_GT(dev.synchronize(), 0.0);  // scheduling still happens after flush
}

TEST(ExecutorDeterminism, ParallelGroupingMatchesSequentialReference)
{
    // The parallel classify/histogram/scatter in group_rows must
    // reproduce the sequential stable grouping (each group segment sorted
    // by row index) for every thread count.
    const auto policy =
        core::GroupingPolicy::symbolic(sim::DeviceSpec::pascal_p100());
    constexpr index_t kRows = 30000;  // large enough for several chunks
    gen::Pcg32 rng(97);
    std::vector<index_t> counts(to_size(kRows));
    for (auto& c : counts) {
        // Skewed: mostly tiny rows, occasional huge ones (like SpGEMM).
        const auto r = rng.bounded(100);
        c = r < 90 ? to_index(rng.bounded(33)) : to_index(rng.bounded(40000));
    }

    // Host reference: stable counting sort by group id.
    const auto n_groups = to_index(policy.groups.size());
    std::vector<index_t> ref_offsets(to_size(n_groups) + 1, 0);
    std::vector<index_t> ref_perm;
    ref_perm.reserve(to_size(kRows));
    for (index_t g = 0; g < n_groups; ++g) {
        index_t n = 0;
        for (index_t r = 0; r < kRows; ++r) {
            if (policy.group_of(counts[to_size(r)]) == g) {
                ++n;
            }
        }
        ref_offsets[to_size(g) + 1] = ref_offsets[to_size(g)] + n;
    }
    for (index_t g = 0; g < n_groups; ++g) {
        for (index_t r = 0; r < kRows; ++r) {
            if (policy.group_of(counts[to_size(r)]) == g) { ref_perm.push_back(r); }
        }
    }

    const int hw = sim::BlockExecutor::resolve_threads(0);
    for (const int threads : {1, 2, kParallel, hw}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        sim::Device dev = p100();
        dev.set_executor_threads(threads);
        sim::DeviceBuffer<index_t> dcounts(dev.allocator(), counts);
        const auto grouped = core::group_rows(dev, policy, dcounts);
        ASSERT_EQ(grouped.offsets, ref_offsets);
        ASSERT_EQ(grouped.permutation.size(), ref_perm.size());
        for (std::size_t i = 0; i < ref_perm.size(); ++i) {
            ASSERT_EQ(grouped.permutation[i], ref_perm[i]) << "position " << i;
        }
    }
}

}  // namespace
}  // namespace nsparse
