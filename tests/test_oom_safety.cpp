// Failure injection: when the simulated device runs out of memory
// mid-algorithm, RAII must release every temporary so the device can be
// reused, and successive attempts behave identically. With the seedable
// FaultPlan the sweep below drives an OOM through *every* allocation site
// of every algorithm, not just the first upload that exceeds capacity.
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

core::Options no_fallback()
{
    core::Options o;
    o.slab_fallback = false;
    return o;
}

class OomSafety : public ::testing::TestWithParam<const char*> {
protected:
    static SpgemmOutput<double> run(const std::string& name, sim::Device& dev,
                                    const CsrMatrix<double>& a,
                                    const core::Options& opt = {})
    {
        if (name == "CUSP") { return baseline::esc_spgemm<double>(dev, a, a); }
        if (name == "cuSPARSE") { return baseline::cusparse_spgemm<double>(dev, a, a); }
        if (name == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(dev, a, a); }
        return hash_spgemm<double>(dev, a, a, opt);
    }
};

TEST_P(OomSafety, OomReleasesEverythingAndDeviceStaysUsable)
{
    const std::string alg = GetParam();
    const auto big = gen::uniform_random(1500, 1500, 40, 1);   // ~2.4M products
    const auto small = gen::uniform_random(100, 100, 4, 2);

    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 4 * 1024 * 1024;  // 4 MB: `big` cannot run unchunked
    sim::Device dev(spec);

    const std::size_t live_before = dev.allocator().live_bytes();
    // Baselines (and the proposal with the fallback disabled) fail; all
    // temporaries must be released by RAII during unwinding.
    EXPECT_THROW((void)run(alg, dev, big, no_fallback()), DeviceOutOfMemory);
    EXPECT_EQ(dev.allocator().live_bytes(), live_before) << alg;

    // The device remains usable for a computation that fits.
    const auto out = run(alg, dev, small);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(small, small))) << alg;
    EXPECT_EQ(dev.allocator().live_bytes(), live_before) << alg;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, OomSafety,
                         ::testing::Values("CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"));

TEST(OomSafety, RepeatedAttemptsAreDeterministic)
{
    const auto a = gen::uniform_random(1500, 1500, 40, 1);
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 4 * 1024 * 1024;
    sim::Device dev(spec);
    for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_THROW((void)baseline::esc_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
}

TEST(OomSafety, ExactCapacityBoundary)
{
    // Find how much the proposal needs, then verify capacity-1 byte fails
    // (with the slab fallback disabled; with it on, it degrades instead)
    // and exact capacity succeeds.
    const auto a = gen::uniform_random(400, 400, 8, 3);
    std::size_t peak = 0;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        peak = hash_spgemm<double>(dev, a, a).stats.peak_bytes;
    }
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = peak;
        sim::Device dev(spec);
        EXPECT_NO_THROW((void)hash_spgemm<double>(dev, a, a));
    }
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = peak - 1;
        sim::Device dev(spec);
        EXPECT_THROW((void)hash_spgemm<double>(dev, a, a, no_fallback()), DeviceOutOfMemory);
    }
}

// --- fault-injection sweep (ctest label: faults) -------------------------
//
// For every algorithm, fail each allocation index in turn. Each run must
// either complete with the correct product or throw DeviceOutOfMemory; in
// both cases the allocator's live bytes must return to the pre-call value
// (strong leak guarantee). The proposal with its slab fallback enabled is
// additionally expected to *survive* most transient injections.

SpgemmOutput<double> run_alg(const std::string& name, sim::Device& dev,
                             const CsrMatrix<double>& a, const core::Options& opt)
{
    if (name == "CUSP") { return baseline::esc_spgemm<double>(dev, a, a); }
    if (name == "cuSPARSE") { return baseline::cusparse_spgemm<double>(dev, a, a); }
    if (name == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(dev, a, a); }
    return hash_spgemm<double>(dev, a, a, opt);
}

struct SweepResult {
    int completed = 0;
    int injections = 0;
};

/// Sweeps an injected one-shot failure across every allocation index of a
/// clean run; returns how many injected runs still completed.
SweepResult sweep_faults(const std::string& alg, const core::Options& opt)
{
    const auto a = gen::uniform_random(120, 120, 5, 7);
    const auto expected = reference_spgemm(a, a);

    // Clean run to learn the allocation schedule length.
    std::uint64_t n_allocs = 0;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        (void)run_alg(alg, dev, a, opt);
        n_allocs = dev.allocator().allocations();
    }
    EXPECT_GT(n_allocs, 0U) << alg;

    int completed = 0;
    for (std::uint64_t idx = 0; idx < n_allocs; ++idx) {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        sim::FaultPlan plan;
        plan.fail_at_alloc = static_cast<std::int64_t>(idx);
        dev.allocator().set_fault_plan(plan);
        const std::size_t live_before = dev.allocator().live_bytes();
        try {
            const auto out = run_alg(alg, dev, a, opt);
            EXPECT_TRUE(approx_equal(out.matrix, expected))
                << alg << " wrong result with injected fault at allocation " << idx;
            ++completed;
        } catch (const DeviceOutOfMemory&) {
            // acceptable: surfaced the injected failure
        } catch (const KernelFault& f) {
            // An allocation failure must never manifest as a kernel fault:
            // that would mean a kernel consumed a half-initialised buffer.
            ADD_FAILURE() << alg << " raised KernelFault for injected allocation failure @"
                          << idx << ": " << f.what();
        }
        EXPECT_EQ(dev.allocator().live_bytes(), live_before)
            << alg << " leaked with injected fault at allocation " << idx;
        EXPECT_GE(dev.allocator().failed_allocations(), 1U) << alg << " @" << idx;
    }
    return {completed, static_cast<int>(n_allocs)};
}

class FaultSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultSweep, EveryAllocationSiteIsLeakFree)
{
    (void)sweep_faults(GetParam(), core::Options{});
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FaultSweep,
                         ::testing::Values("CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"));

TEST(FaultInjection, ProposalSurvivesEveryTransientFaultViaSlabFallback)
{
    // With the fallback enabled a single injected failure is absorbed by
    // the row-slab retry: every injection point completes correctly.
    const auto r = sweep_faults("PROPOSAL", core::Options{});
    EXPECT_EQ(r.completed, r.injections);
}

TEST(FaultInjection, NoFallbackSurfacesEveryInjection)
{
    core::Options opt;
    opt.slab_fallback = false;
    const auto r = sweep_faults("PROPOSAL", opt);
    // Without the fallback no injected failure can be absorbed.
    EXPECT_EQ(r.completed, 0);
}

TEST(FaultInjection, ShrinkingCapacityMidRunIsLeakFree)
{
    const auto a = gen::uniform_random(120, 120, 5, 7);
    const auto expected = reference_spgemm(a, a);
    for (const std::int64_t shrink_at : {2, 5, 9}) {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        sim::FaultPlan plan;
        plan.shrink_after_alloc = shrink_at;
        plan.shrink_to_bytes = 600 * 1024;  // tight but workable for slabs
        dev.allocator().set_fault_plan(plan);
        const std::size_t live_before = dev.allocator().live_bytes();
        try {
            const auto out = hash_spgemm<double>(dev, a, a);
            EXPECT_TRUE(approx_equal(out.matrix, expected)) << "shrink@" << shrink_at;
        } catch (const DeviceOutOfMemory&) {
            // acceptable when even slabbed execution cannot fit
        } catch (const KernelFault& f) {
            ADD_FAILURE() << "capacity shrink@" << shrink_at
                          << " raised KernelFault instead of DeviceOutOfMemory: " << f.what();
        }
        EXPECT_EQ(dev.allocator().live_bytes(), live_before) << "shrink@" << shrink_at;
    }
}

}  // namespace
}  // namespace nsparse
