// Failure injection: when the simulated device runs out of memory
// mid-algorithm, RAII must release every temporary so the device can be
// reused, and successive attempts behave identically.
#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

template <ValueType T>
using Runner = SpgemmOutput<T> (*)(sim::Device&, const CsrMatrix<T>&, const CsrMatrix<T>&);

template <ValueType T>
SpgemmOutput<T> run_hash(sim::Device& d, const CsrMatrix<T>& a, const CsrMatrix<T>& b)
{
    return hash_spgemm<T>(d, a, b);
}

class OomSafety : public ::testing::TestWithParam<const char*> {
protected:
    static SpgemmOutput<double> run(const std::string& name, sim::Device& dev,
                                    const CsrMatrix<double>& a)
    {
        if (name == "CUSP") { return baseline::esc_spgemm<double>(dev, a, a); }
        if (name == "cuSPARSE") { return baseline::cusparse_spgemm<double>(dev, a, a); }
        if (name == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(dev, a, a); }
        return hash_spgemm<double>(dev, a, a);
    }
};

TEST_P(OomSafety, OomReleasesEverythingAndDeviceStaysUsable)
{
    const std::string alg = GetParam();
    const auto big = gen::uniform_random(1500, 1500, 40, 1);   // ~2.4M products
    const auto small = gen::uniform_random(100, 100, 4, 2);

    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 4 * 1024 * 1024;  // 4 MB: everything OOMs on `big`
    sim::Device dev(spec);

    const std::size_t live_before = dev.allocator().live_bytes();
    EXPECT_THROW((void)run(alg, dev, big), DeviceOutOfMemory);
    // All temporaries released by RAII during unwinding.
    EXPECT_EQ(dev.allocator().live_bytes(), live_before) << alg;

    // The device remains usable for a computation that fits.
    const auto out = run(alg, dev, small);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(small, small))) << alg;
    EXPECT_EQ(dev.allocator().live_bytes(), live_before) << alg;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, OomSafety,
                         ::testing::Values("CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"));

TEST(OomSafety, RepeatedAttemptsAreDeterministic)
{
    const auto a = gen::uniform_random(1500, 1500, 40, 1);
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 4 * 1024 * 1024;
    sim::Device dev(spec);
    for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_THROW((void)baseline::esc_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
}

TEST(OomSafety, ExactCapacityBoundary)
{
    // Find how much the proposal needs, then verify capacity-1 byte fails
    // and exact capacity succeeds.
    const auto a = gen::uniform_random(400, 400, 8, 3);
    std::size_t peak = 0;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        peak = hash_spgemm<double>(dev, a, a).stats.peak_bytes;
    }
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = peak;
        sim::Device dev(spec);
        EXPECT_NO_THROW((void)hash_spgemm<double>(dev, a, a));
    }
    {
        sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
        spec.memory_capacity = peak - 1;
        sim::Device dev(spec);
        EXPECT_THROW((void)hash_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
}

}  // namespace
}  // namespace nsparse
