// Adversarial-input fuzz harness (ctest labels: fuzz, tsan, faults).
//
// Drives all four algorithms over a deterministic stream of pathological
// matrices — hash-adversarial columns, duplicate/unsorted rows, empty-row
// runs, a dense row forcing the numeric group-0 path, rows pinned on
// Table-I group boundaries — and checks every product against the host
// reference. Also composes the stream with PR 2's allocation FaultPlan and
// with the per-row kernel-fault injection hooks: under memory pressure the
// only acceptable outcomes are a correct product or DeviceOutOfMemory,
// never a KernelFault or a leak.
//
// NSPARSE_FUZZ_ITERS scales the stream (default 200 cases); the seed is
// fixed so any failing index reproduces in isolation via
// gen::adversarial_case(kSeed, index).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/adversarial.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr std::uint64_t kSeed = 20170814;  // nsparse @ ICPP'17
constexpr const char* kAlgorithms[] = {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"};

int fuzz_iters()
{
    const char* s = std::getenv("NSPARSE_FUZZ_ITERS");
    if (s == nullptr) { return 200; }
    const int v = std::atoi(s);
    return v > 0 ? v : 200;
}

SpgemmOutput<double> run_alg(const std::string& name, sim::Device& dev,
                             const CsrMatrix<double>& a, const core::Options& opt = {})
{
    if (name == "CUSP") { return baseline::esc_spgemm<double>(dev, a, a); }
    if (name == "cuSPARSE") { return baseline::cusparse_spgemm<double>(dev, a, a); }
    if (name == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(dev, a, a); }
    return hash_spgemm<double>(dev, a, a, opt);
}

TEST(FuzzAdversarial, AllAlgorithmsMatchReference)
{
    const int iters = fuzz_iters();
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        for (const char* alg : kAlgorithms) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = run_alg(alg, dev, c.matrix);
            EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
                << alg << " wrong on case #" << i << " (" << c.name << ")";
            if (std::string(alg) == "PROPOSAL") {
                // Valid (if hostile) inputs must never trip the fault
                // containment: the grouping sizes every table generously
                // enough that even all-colliding columns still fit.
                EXPECT_EQ(out.stats.faulted_rows, 0)
                    << "case #" << i << " (" << c.name << ")";
                EXPECT_EQ(out.stats.host_fallback_rows, 0)
                    << "case #" << i << " (" << c.name << ")";
            }
        }
    }
}

TEST(FuzzAdversarial, ComposedWithAllocationFaults)
{
    // Random allocation failures on top of the adversarial stream: each
    // run either completes correctly or surfaces DeviceOutOfMemory, and in
    // both cases releases everything. A KernelFault here would mean a
    // kernel consumed a half-initialised buffer.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        for (const char* alg : kAlgorithms) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            sim::FaultPlan plan;
            plan.fail_probability = 0.05;
            plan.seed = kSeed + static_cast<std::uint64_t>(i);
            dev.allocator().set_fault_plan(plan);
            const std::size_t live_before = dev.allocator().live_bytes();
            try {
                const auto out = run_alg(alg, dev, c.matrix);
                EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
                    << alg << " wrong under allocation faults, case #" << i << " ("
                    << c.name << ")";
            } catch (const DeviceOutOfMemory&) {
                // acceptable: the injected failure surfaced
            } catch (const KernelFault& f) {
                ADD_FAILURE() << alg << " raised KernelFault under allocation faults, case #"
                              << i << " (" << c.name << "): " << f.what();
            }
            EXPECT_EQ(dev.allocator().live_bytes(), live_before)
                << alg << " leaked, case #" << i << " (" << c.name << ")";
        }
    }
}

TEST(FuzzAdversarial, ComposedWithRowFaultInjection)
{
    // Kernel-level row faults injected on top of adversarial structure:
    // the per-row retry (and, for rows that keep faulting, the host
    // recourse) must still deliver the exact reference product.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        const index_t n = c.matrix.rows;
        core::Options opt;
        opt.inject_symbolic_row_faults = {0, n / 2};
        opt.inject_numeric_row_faults = {n / 3, n - 1};
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
        EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
            << "wrong with injected row faults, case #" << i << " (" << c.name << ")";
        EXPECT_GT(out.stats.faulted_rows, 0) << "case #" << i << " (" << c.name << ")";
    }
}

TEST(FuzzAdversarial, ValidateModeFlagsUnsortedInputs)
{
    // Every intentionally unsorted/duplicated case in the stream must be
    // rejected by the validate_inputs gate with the rows_sorted invariant;
    // every clean case must pass it.
    const int iters = fuzz_iters();
    int unsorted_seen = 0;
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        core::Options opt;
        opt.validate_inputs = true;
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        if (c.sorted) {
            EXPECT_NO_THROW((void)hash_spgemm<double>(dev, c.matrix, c.matrix, opt))
                << "case #" << i << " (" << c.name << ")";
        } else {
            ++unsorted_seen;
            try {
                (void)hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
                ADD_FAILURE() << "unsorted case #" << i << " (" << c.name
                              << ") passed validation";
            } catch (const PreconditionError& e) {
                EXPECT_EQ(e.invariant(), "rows_sorted")
                    << "case #" << i << " (" << c.name << ")";
            }
        }
    }
    EXPECT_GT(unsorted_seen, 0);
}

}  // namespace
}  // namespace nsparse
