// Adversarial-input fuzz harness (ctest labels: fuzz, tsan, faults, plan).
//
// Drives all four algorithms over a deterministic stream of pathological
// matrices — hash-adversarial columns, duplicate/unsorted rows, empty-row
// runs, a dense row forcing the numeric group-0 path, rows pinned on
// Table-I group boundaries — and checks every product against the host
// reference. Also composes the stream with PR 2's allocation FaultPlan and
// with the per-row kernel-fault injection hooks: under memory pressure the
// only acceptable outcomes are a correct product or DeviceOutOfMemory,
// never a KernelFault or a leak. The estimation-based planning modes run
// the same stream at both confidence extremes and starved/rich sample
// rates: output must stay byte-identical to exact planning with every
// misprediction absorbed by the group-0 retry.
//
// NSPARSE_FUZZ_ITERS scales the stream (default 200 cases); the seed is
// fixed so any failing index reproduces in isolation via
// gen::adversarial_case(kSeed, index).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <vector>

#include "baselines/batch_reference.hpp"
#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "core/spgemm_batch.hpp"
#include "matgen/adversarial.hpp"
#include "service/session.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr std::uint64_t kSeed = 20170814;  // nsparse @ ICPP'17
constexpr const char* kAlgorithms[] = {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"};

int fuzz_iters()
{
    const char* s = std::getenv("NSPARSE_FUZZ_ITERS");
    if (s == nullptr) { return 200; }
    const int v = std::atoi(s);
    return v > 0 ? v : 200;
}

SpgemmOutput<double> run_alg(const std::string& name, sim::Device& dev,
                             const CsrMatrix<double>& a, const core::Options& opt = {})
{
    if (name == "CUSP") { return baseline::esc_spgemm<double>(dev, a, a); }
    if (name == "cuSPARSE") { return baseline::cusparse_spgemm<double>(dev, a, a); }
    if (name == "BHSPARSE") { return baseline::bhsparse_spgemm<double>(dev, a, a); }
    return hash_spgemm<double>(dev, a, a, opt);
}

TEST(FuzzAdversarial, AllAlgorithmsMatchReference)
{
    const int iters = fuzz_iters();
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        for (const char* alg : kAlgorithms) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = run_alg(alg, dev, c.matrix);
            EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
                << alg << " wrong on case #" << i << " (" << c.name << ")";
            if (std::string(alg) == "PROPOSAL") {
                // Valid (if hostile) inputs must never trip the fault
                // containment: the grouping sizes every table generously
                // enough that even all-colliding columns still fit.
                EXPECT_EQ(out.stats.faulted_rows, 0)
                    << "case #" << i << " (" << c.name << ")";
                EXPECT_EQ(out.stats.host_fallback_rows, 0)
                    << "case #" << i << " (" << c.name << ")";
            }
        }
    }
}

TEST(FuzzAdversarial, ComposedWithAllocationFaults)
{
    // Random allocation failures on top of the adversarial stream: each
    // run either completes correctly or surfaces DeviceOutOfMemory, and in
    // both cases releases everything. A KernelFault here would mean a
    // kernel consumed a half-initialised buffer.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        for (const char* alg : kAlgorithms) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            sim::FaultPlan plan;
            plan.fail_probability = 0.05;
            plan.seed = kSeed + static_cast<std::uint64_t>(i);
            dev.allocator().set_fault_plan(plan);
            const std::size_t live_before = dev.allocator().live_bytes();
            try {
                const auto out = run_alg(alg, dev, c.matrix);
                EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
                    << alg << " wrong under allocation faults, case #" << i << " ("
                    << c.name << ")";
            } catch (const DeviceOutOfMemory&) {
                // acceptable: the injected failure surfaced
            } catch (const KernelFault& f) {
                ADD_FAILURE() << alg << " raised KernelFault under allocation faults, case #"
                              << i << " (" << c.name << "): " << f.what();
            }
            EXPECT_EQ(dev.allocator().live_bytes(), live_before)
                << alg << " leaked, case #" << i << " (" << c.name << ")";
        }
    }
}

TEST(FuzzAdversarial, ComposedWithRowFaultInjection)
{
    // Kernel-level row faults injected on top of adversarial structure:
    // the per-row retry (and, for rows that keep faulting, the host
    // recourse) must still deliver the exact reference product.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        const index_t n = c.matrix.rows;
        core::Options opt;
        opt.inject_symbolic_row_faults = {0, n / 2};
        opt.inject_numeric_row_faults = {n / 3, n - 1};
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
        EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
            << "wrong with injected row faults, case #" << i << " (" << c.name << ")";
        EXPECT_GT(out.stats.faulted_rows, 0) << "case #" << i << " (" << c.name << ")";
    }
}

TEST(FuzzAdversarial, BatchedMatchesSinglesOnAdversarialStream)
{
    // Batch differential: slice the adversarial stream into mixed batches
    // (each spiced with an empty matrix, a 1-row product and a duplicate
    // pointer) and require every product of core::spgemm_batch to be
    // byte-identical to an independent hash_spgemm call — alternating
    // executor thread counts and batch_streams across batches.
    const int iters = fuzz_iters();
    constexpr int kPerBatch = 6;
    int batch_no = 0;
    for (int i = 0; i < iters; i += kPerBatch, ++batch_no) {
        std::vector<CsrMatrix<double>> store;
        store.reserve(kPerBatch + 4);
        std::vector<std::string> names;
        for (int j = i; j < std::min(iters, i + kPerBatch); ++j) {
            auto c = gen::adversarial_case(kSeed, j);
            names.push_back("case #" + std::to_string(j) + " (" + c.name + ")");
            store.push_back(std::move(c.matrix));
        }
        store.push_back(CsrMatrix<double>::zero(37, 37));
        names.emplace_back("zero 37x37");
        std::vector<const CsrMatrix<double>*> as;
        std::vector<const CsrMatrix<double>*> bs;
        for (const auto& m : store) {
            as.push_back(&m);
            bs.push_back(&m);
        }
        // 1-row product: a 1x16 A against the 16-col identity.
        store.push_back(CsrMatrix<double>(1, 16, {0, 3}, {2, 7, 11}, {1.0, -2.0, 0.5}));
        const auto* one_row = &store.back();
        store.push_back(CsrMatrix<double>::identity(16));
        as.push_back(one_row);
        bs.push_back(&store.back());
        names.emplace_back("single row x identity");
        as.push_back(&store.front());  // duplicate pointers across products
        bs.push_back(&store.front());
        names.push_back(names.front() + " [duplicate]");

        core::Options opt;
        opt.executor_threads = (batch_no % 2 == 0) ? 1 : 8;
        opt.batch_streams = (batch_no % 3 == 0) ? 1 : 4;
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto batched = core::spgemm_batch<double>(dev, as, bs, opt);
        ASSERT_EQ(batched.stats.failed, 0) << "batch starting at case #" << i;
        for (std::size_t k = 0; k < as.size(); ++k) {
            sim::Device single_dev(sim::DeviceSpec::pascal_p100());
            const auto single = hash_spgemm<double>(single_dev, *as[k], *bs[k], opt);
            ASSERT_TRUE(batched.items[k].out.matrix == single.matrix)
                << "batched product " << k << " (" << names[k]
                << ") differs from its single call, batch at case #" << i
                << " threads=" << opt.executor_threads
                << " batch_streams=" << opt.batch_streams;
        }
    }
}

TEST(FuzzAdversarial, BatchedComposedWithAllocationFaults)
{
    // FaultPlan on the shared batch device: every product either completes
    // correctly (possibly through the row-slab fallback) or carries a
    // DeviceOutOfMemory in its slot; neighbours never corrupt, nothing
    // leaks, and no KernelFault escapes containment.
    const int iters = std::max(1, fuzz_iters() / 4);
    constexpr int kPerBatch = 4;
    for (int i = 0; i + kPerBatch <= iters || i == 0; i += kPerBatch) {
        std::vector<CsrMatrix<double>> store;
        store.reserve(kPerBatch);
        std::vector<CsrMatrix<double>> expected;
        for (int j = i; j < i + kPerBatch; ++j) {
            auto c = gen::adversarial_case(kSeed, j);
            expected.push_back(reference_spgemm(c.matrix, c.matrix));
            store.push_back(std::move(c.matrix));
        }
        std::vector<const CsrMatrix<double>*> ptrs;
        for (const auto& m : store) { ptrs.push_back(&m); }

        sim::Device dev(sim::DeviceSpec::pascal_p100());
        sim::FaultPlan plan;
        plan.fail_probability = 0.05;
        plan.seed = kSeed + static_cast<std::uint64_t>(i);
        dev.allocator().set_fault_plan(plan);
        const std::size_t live_before = dev.allocator().live_bytes();
        const auto out = core::spgemm_batch<double>(dev, ptrs, ptrs);
        for (std::size_t k = 0; k < out.items.size(); ++k) {
            if (out.items[k].ok()) {
                EXPECT_TRUE(approx_equal(out.items[k].out.matrix, expected[k], 1e-10))
                    << "batch at case #" << i << " product " << k
                    << " wrong under allocation faults";
            } else {
                try {
                    std::rethrow_exception(out.items[k].error);
                } catch (const DeviceOutOfMemory&) {
                    // acceptable: injected failure exhausted the fallback
                } catch (const KernelFault& f) {
                    ADD_FAILURE() << "batch at case #" << i << " product " << k
                                  << " raised KernelFault under allocation faults: "
                                  << f.what();
                }
            }
        }
        EXPECT_EQ(dev.allocator().live_bytes(), live_before)
            << "batch at case #" << i << " leaked";
    }
}

TEST(FuzzAdversarial, BatchedComposedWithRowFaultInjection)
{
    // Per-row kernel-fault injection applied to every product of a batch:
    // containment must deliver outputs byte-identical to single calls with
    // the same injection.
    const int iters = std::max(1, fuzz_iters() / 4);
    constexpr int kPerBatch = 4;
    for (int i = 0; i + kPerBatch <= iters || i == 0; i += kPerBatch) {
        std::vector<CsrMatrix<double>> store;
        store.reserve(kPerBatch);
        for (int j = i; j < i + kPerBatch; ++j) {
            store.push_back(gen::adversarial_case(kSeed, j).matrix);
        }
        std::vector<const CsrMatrix<double>*> ptrs;
        for (const auto& m : store) { ptrs.push_back(&m); }

        core::Options opt;
        opt.inject_symbolic_row_faults = {0, 9};
        opt.inject_numeric_row_faults = {1, 13};
        const auto ref = baseline::batch_reference<double>(
            [] { return sim::Device(sim::DeviceSpec::pascal_p100()); }, ptrs, ptrs, opt);
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto got = core::spgemm_batch<double>(dev, ptrs, ptrs, opt);
        ASSERT_EQ(got.stats.failed, 0) << "batch at case #" << i;
        int ref_faulted = 0;
        for (std::size_t k = 0; k < ptrs.size(); ++k) {
            ASSERT_TRUE(ref.items[k].ok()) << "batch at case #" << i << " product " << k;
            EXPECT_TRUE(got.items[k].out.matrix == ref.items[k].out.matrix)
                << "batch at case #" << i << " product " << k
                << " differs from its single call under row-fault injection";
            ref_faulted += ref.items[k].out.stats.faulted_rows;
        }
        EXPECT_EQ(got.stats.faulted_rows, ref_faulted) << "batch at case #" << i;
    }
}

TEST(FuzzAdversarial, PlanModesByteIdenticalAtConfidenceExtremes)
{
    // Estimation-based planning over the adversarial stream — hub rows,
    // hash colliders, dense rows, boundary-pinned rows — alternating a
    // starved sample rate (the model sees almost nothing) with a rich one,
    // and the confidence knob between trust-everything and trust-nothing.
    // Whatever the plan predicts, the output must be byte-identical to
    // exact planning, and on a clean run every misprediction must be
    // recovered by exactly one group-0 retry (no host recourse).
    const int iters = std::max(1, fuzz_iters() / 2);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        sim::Device exact_dev(sim::DeviceSpec::pascal_p100());
        const auto exact = hash_spgemm<double>(exact_dev, c.matrix, c.matrix);
        for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
            core::Options opt;
            opt.plan_mode = mode;
            opt.estimate_sample_rate = (i % 2 == 0) ? 1e-6 : 0.3;
            opt.estimate_confidence = (i % 3 == 0) ? 1.0 : 0.0;
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
            const char* mode_name =
                mode == core::PlanMode::kEstimated ? "estimated" : "hybrid";
            EXPECT_TRUE(out.matrix == exact.matrix)
                << mode_name << " plan diverges from exact on case #" << i << " ("
                << c.name << ") rate=" << opt.estimate_sample_rate
                << " conf=" << opt.estimate_confidence;
            EXPECT_EQ(out.stats.row_retries, out.stats.mispredicted_rows)
                << mode_name << " group-0 retries out of step with mispredicts, case #"
                << i << " (" << c.name << ")";
            EXPECT_EQ(out.stats.host_fallback_rows, 0)
                << mode_name << " needed host recourse on case #" << i << " ("
                << c.name << ")";
            EXPECT_LE(out.stats.mispredicted_rows, out.stats.estimated_rows)
                << mode_name << " case #" << i << " (" << c.name << ")";
        }
    }
}

TEST(FuzzAdversarial, PlanModesComposedWithAllocationFaults)
{
    // FaultPlan on top of estimation-based planning: the estimated path
    // allocates pad storage the exact path never touches, and its OOM
    // fallback re-runs through the row-slab machinery (which resets the
    // estimation stats) — under injected allocation failures every run
    // must still end in a correct product or DeviceOutOfMemory, never a
    // KernelFault, and never a leak.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const auto expected = reference_spgemm(c.matrix, c.matrix);
        for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
            core::Options opt;
            opt.plan_mode = mode;
            opt.estimate_confidence = (i % 2 == 0) ? 0.0 : 1.0;
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            sim::FaultPlan plan;
            plan.fail_probability = 0.05;
            plan.seed = kSeed + static_cast<std::uint64_t>(i);
            dev.allocator().set_fault_plan(plan);
            const std::size_t live_before = dev.allocator().live_bytes();
            try {
                const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
                EXPECT_TRUE(approx_equal(out.matrix, expected, 1e-10))
                    << "estimated plan wrong under allocation faults, case #" << i
                    << " (" << c.name << ")";
            } catch (const DeviceOutOfMemory&) {
                // acceptable: the injected failure surfaced
            } catch (const KernelFault& f) {
                ADD_FAILURE() << "estimated plan raised KernelFault under allocation "
                                 "faults, case #"
                              << i << " (" << c.name << "): " << f.what();
            }
            EXPECT_EQ(dev.allocator().live_bytes(), live_before)
                << "estimated plan leaked, case #" << i << " (" << c.name << ")";
        }
    }
}

TEST(FuzzAdversarial, PlanModesComposedWithRowFaultInjection)
{
    // Injected kernel faults stack on top of genuine mispredictions: the
    // retry counter then exceeds the mispredict tally (each injected row
    // burns at least one extra attempt), but containment still delivers
    // the exact-plan bytes.
    const int iters = std::max(1, fuzz_iters() / 4);
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        const index_t n = c.matrix.rows;
        sim::Device exact_dev(sim::DeviceSpec::pascal_p100());
        const auto exact = hash_spgemm<double>(exact_dev, c.matrix, c.matrix);
        core::Options opt;
        opt.plan_mode = core::PlanMode::kEstimated;
        opt.estimate_confidence = 0.0;
        opt.inject_numeric_row_faults = {0, n / 2, n - 1};
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
        EXPECT_TRUE(out.matrix == exact.matrix)
            << "estimated plan with injected row faults diverges, case #" << i << " ("
            << c.name << ")";
        EXPECT_GE(out.stats.row_retries, out.stats.mispredicted_rows)
            << "case #" << i << " (" << c.name << ")";
        EXPECT_GT(out.stats.faulted_rows, 0) << "case #" << i << " (" << c.name << ")";
    }
}

TEST(FuzzAdversarial, CacheChurnOnAdversarialStream)
{
    // Cache-churn mode: the whole adversarial stream flows through ONE
    // session whose operand cache is squeezed into tiny budgets, composed
    // with per-row kernel-fault injection, and every third iteration
    // resubmits an operand from two requests ago so plan/residency entries
    // are consulted mid-churn. Whatever mix of hit, miss, eviction and
    // row-fault recovery a request sees, its bytes must equal an uncached
    // single call with the same options on a fresh device.
    const int iters = std::max(1, fuzz_iters() / 4);

    SessionConfig cfg;
    cfg.cache.enabled = true;
    cfg.cache.plan_budget_bytes = std::size_t{64} << 10;
    cfg.cache.residency_budget_bytes = std::size_t{256} << 10;
    cfg.options.inject_numeric_row_faults = {3, 31};
    Session session(std::move(cfg));

    core::Options ref_opt;
    ref_opt.inject_numeric_row_faults = {3, 31};

    std::uint64_t completed = 0;
    for (int j = 0; j < iters; ++j) {
        const int idx = (j % 3 == 2) ? j - 2 : j;  // revisit two requests back
        const auto c = gen::adversarial_case(kSeed, idx);
        const auto res = session.multiply<double>(c.matrix, c.matrix);
        ASSERT_TRUE(res.ok()) << "iteration " << j << " case #" << idx << " ("
                              << c.name << "): " << res.error_message;
        ++completed;
        sim::Device ref_dev(sim::DeviceSpec::pascal_p100());
        const auto ref = hash_spgemm<double>(ref_dev, c.matrix, c.matrix, ref_opt);
        ASSERT_TRUE(res.out.matrix == ref.matrix)
            << "cached session diverges from uncached single call, iteration " << j
            << " case #" << idx << " (" << c.name << ")";
    }

    const auto& s = session.stats();
    const auto& cs = session.operand_cache().stats();
    // Every request was cache-eligible: the plan consults partition exactly.
    EXPECT_EQ(s.cache_hits + s.cache_misses, completed);
    EXPECT_EQ(s.cache_residency_hits + s.cache_residency_misses, 2 * completed);
    // The revisits found warm entries, and the tiny budgets forced churn.
    EXPECT_GT(s.cache_hits, 0U);
    EXPECT_GT(cs.plan_evictions + cs.residency_evictions, 0U);
    // Budgets held at every insert: what remains resident fits.
    EXPECT_LE(session.operand_cache().plan_bytes(), std::size_t{64} << 10);
    EXPECT_LE(session.operand_cache().residency_bytes(), std::size_t{256} << 10);
}

TEST(FuzzAdversarial, ValidateModeFlagsUnsortedInputs)
{
    // Every intentionally unsorted/duplicated case in the stream must be
    // rejected by the validate_inputs gate with the rows_sorted invariant;
    // every clean case must pass it.
    const int iters = fuzz_iters();
    int unsorted_seen = 0;
    for (int i = 0; i < iters; ++i) {
        const auto c = gen::adversarial_case(kSeed, i);
        core::Options opt;
        opt.validate_inputs = true;
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        if (c.sorted) {
            EXPECT_NO_THROW((void)hash_spgemm<double>(dev, c.matrix, c.matrix, opt))
                << "case #" << i << " (" << c.name << ")";
        } else {
            ++unsorted_seen;
            try {
                (void)hash_spgemm<double>(dev, c.matrix, c.matrix, opt);
                ADD_FAILURE() << "unsorted case #" << i << " (" << c.name
                              << ") passed validation";
            } catch (const PreconditionError& e) {
                EXPECT_EQ(e.invariant(), "rows_sorted")
                    << "case #" << i << " (" << c.name << ")";
            }
        }
    }
    EXPECT_GT(unsorted_seen, 0);
}

}  // namespace
}  // namespace nsparse
