// Differential cache-correctness battery for the session operand cache
// (ctest label: cache). The contract under test: a warm request — plan
// artifacts, grouping, estimation model and device residency all served
// from the cache — produces bytes identical to the cold request, across
// every plan mode, backend and executor thread count; hit/miss/evict
// accounting partitions exactly; eviction composes with FaultPlan OOM
// (the cache is the first rung of the memory-pressure ladder); device
// reclaim invalidates residency; and the key is operand *content*, not
// the pointer the caller happens to resubmit.
#include <gtest/gtest.h>

#include <vector>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> cache_matrix() { return gen::uniform_random(200, 200, 7, 13); }

void expect_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want)
{
    EXPECT_EQ(got.rpt, want.rpt);
    EXPECT_EQ(got.col, want.col);
    EXPECT_EQ(got.val, want.val);
}

SessionConfig cached_config()
{
    SessionConfig cfg;
    cfg.cache.enabled = true;
    return cfg;
}

TEST(OperandCache, ColdVsWarmByteIdentitySweep)
{
    // The tentpole differential: for every plan mode x backend x thread
    // count, the warm request's bytes equal the cold request's bytes,
    // and both equal the host reference.
    const auto a = cache_matrix();
    const auto want = reference_spgemm(a, a);

    for (const auto mode :
         {core::PlanMode::kExact, core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
        for (const auto backend : {core::BackendKind::kSimulated, core::BackendKind::kNative}) {
            for (const int threads : {1, 2, 8}) {
                SessionConfig cfg = cached_config();
                cfg.options.plan_mode = mode;
                cfg.options.backend = backend;
                cfg.options.executor_threads = threads;
                Session session(std::move(cfg));

                const auto cold = session.multiply<double>(a, a);
                ASSERT_TRUE(cold.ok())
                    << "cold mode=" << static_cast<int>(mode)
                    << " backend=" << static_cast<int>(backend) << " threads=" << threads
                    << ": " << cold.error_message;
                const auto warm = session.multiply<double>(a, a);
                ASSERT_TRUE(warm.ok())
                    << "warm mode=" << static_cast<int>(mode)
                    << " backend=" << static_cast<int>(backend) << " threads=" << threads
                    << ": " << warm.error_message;

                expect_identical(cold.out.matrix, want);
                expect_identical(warm.out.matrix, cold.out.matrix);

                if (backend == core::BackendKind::kSimulated) {
                    // Second request of the same pair is a plan hit.
                    EXPECT_EQ(session.stats().cache_misses, 1U);
                    EXPECT_EQ(session.stats().cache_hits, 1U);
                    EXPECT_TRUE(warm.log.contains(RecoveryEvent::Kind::kCacheHit));
                    EXPECT_TRUE(cold.log.contains(RecoveryEvent::Kind::kCacheMiss));
                } else {
                    // The native backend manages host memory itself: the
                    // cache never consults, so no hit/miss is recorded.
                    EXPECT_EQ(session.stats().cache_hits + session.stats().cache_misses, 0U);
                }
            }
        }
    }
}

TEST(OperandCache, WarmRequestIsCheaperAndHitsResidency)
{
    const auto a = cache_matrix();
    Session session(cached_config());

    const auto cold = session.multiply<double>(a, a);
    ASSERT_TRUE(cold.ok()) << cold.error_message;
    // A*A: both operands share one fingerprint -> one residency entry.
    EXPECT_EQ(session.operand_cache().residency_entries(), 1U);
    EXPECT_EQ(session.operand_cache().plan_entries(), 1U);

    const auto warm = session.multiply<double>(a, a);
    ASSERT_TRUE(warm.ok()) << warm.error_message;
    expect_identical(warm.out.matrix, cold.out.matrix);
    // Warm run skips the H2D uploads and the symbolic count: simulated
    // time strictly drops.
    EXPECT_LT(warm.out.stats.seconds, cold.out.stats.seconds);
    EXPECT_EQ(session.stats().cache_residency_hits, 2U);  // A and B, warm only
    EXPECT_EQ(session.stats().cache_residency_misses, 2U);
}

TEST(OperandCache, AccountingInvariantsPartitionExactly)
{
    const auto a = cache_matrix();
    const auto b = gen::uniform_random(200, 200, 5, 29);
    Session session(cached_config());

    (void)session.multiply<double>(a, a);  // plan miss
    (void)session.multiply<double>(a, b);  // plan miss (different pair)
    (void)session.multiply<double>(a, a);  // plan hit
    (void)session.multiply<double>(b, a);  // plan miss (order matters)
    (void)session.multiply<double>(a, b);  // plan hit

    const auto& s = session.stats();
    const auto& cs = session.operand_cache().stats();
    // Every eligible request consults the plan store once and the
    // residency store twice; the pairs partition the lookups.
    EXPECT_EQ(s.cache_hits + s.cache_misses, 5U);
    EXPECT_EQ(s.cache_hits, 2U);
    EXPECT_EQ(s.cache_residency_hits + s.cache_residency_misses, 10U);
    // The session mirrors of the cache's own counters agree.
    EXPECT_EQ(cs.plan_hits, s.cache_hits);
    EXPECT_EQ(cs.plan_misses, s.cache_misses);
    EXPECT_EQ(cs.residency_hits, s.cache_residency_hits);
    EXPECT_EQ(cs.residency_misses, s.cache_residency_misses);
    EXPECT_EQ(s.cache_evictions, cs.plan_evictions + cs.residency_evictions);
    EXPECT_EQ(session.operand_cache().plan_entries(), 3U);   // (a,a) (a,b) (b,a)
    EXPECT_EQ(session.operand_cache().residency_entries(), 2U);  // a, b
}

TEST(OperandCache, TinyBudgetsChurnWithoutCorruption)
{
    // Budgets too small to retain anything: every request is a miss, every
    // insert evicts, byte-identity holds throughout, and the byte
    // accounting returns to zero.
    const auto a = cache_matrix();
    const auto want = reference_spgemm(a, a);
    SessionConfig cfg = cached_config();
    cfg.cache.plan_budget_bytes = 1;
    cfg.cache.residency_budget_bytes = 1;
    Session session(std::move(cfg));

    for (int i = 0; i < 3; ++i) {
        const auto res = session.multiply<double>(a, a);
        ASSERT_TRUE(res.ok()) << "round " << i << ": " << res.error_message;
        expect_identical(res.out.matrix, want);
        EXPECT_TRUE(res.log.contains(RecoveryEvent::Kind::kCacheEvict)) << i;
    }
    const auto& s = session.stats();
    EXPECT_EQ(s.cache_hits, 0U);
    EXPECT_EQ(s.cache_misses, 3U);
    EXPECT_GE(s.cache_evictions, 6U);  // one plan + one residency per round
    EXPECT_EQ(session.operand_cache().plan_entries(), 0U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 0U);
    EXPECT_EQ(session.operand_cache().plan_bytes(), 0U);
    EXPECT_EQ(session.operand_cache().residency_bytes(), 0U);
}

TEST(OperandCache, EvictionComposesWithFaultPlanOom)
{
    // A FaultPlan OOM lands in the warm request's planned attempt: the
    // ladder's first memory rung evicts the resident operands (logged as
    // session_cache_evict) before degrading, and the recovered product is
    // still byte-identical.
    const auto a = cache_matrix();
    const auto want = reference_spgemm(a, a);
    Session session(cached_config());

    const auto cold = session.multiply<double>(a, a);
    ASSERT_TRUE(cold.ok()) << cold.error_message;
    ASSERT_EQ(session.operand_cache().residency_entries(), 1U);

    sim::FaultPlan plan;
    plan.fail_at_alloc = 0;  // the warm attempt's first allocation OOMs
    session.device().allocator().set_fault_plan(plan);
    const auto warm = session.multiply<double>(a, a);
    session.device().allocator().set_fault_plan(sim::FaultPlan{});

    ASSERT_TRUE(warm.ok()) << warm.error_message;
    expect_identical(warm.out.matrix, want);
    EXPECT_NE(warm.final_stage, RecoveryStage::kPlanned);  // it really escalated
    EXPECT_TRUE(warm.log.contains(RecoveryEvent::Kind::kCacheEvict));
    EXPECT_GE(session.stats().cache_evictions, 1U);
    // The pressure rung emptied the residency store; the recovered request
    // did not re-adopt (only kPlanned completions insert).
    EXPECT_EQ(session.operand_cache().residency_entries(), 0U);
    EXPECT_EQ(session.stats().recovered, 1U);

    // Chaos off: the next request re-populates and the session keeps going.
    const auto again = session.multiply<double>(a, a);
    ASSERT_TRUE(again.ok()) << again.error_message;
    expect_identical(again.out.matrix, want);
    EXPECT_EQ(session.operand_cache().residency_entries(), 1U);
}

TEST(OperandCache, ReclaimInvalidatesResidency)
{
    // A failed request reclaims the device; every resident operand is
    // dropped (pinned or not) so no later request can consume a handle
    // into reclaimed state.
    const auto a = cache_matrix();
    const auto want = reference_spgemm(a, a);
    Session session(cached_config());

    ASSERT_TRUE(session.multiply<double>(a, a).ok());
    ASSERT_EQ(session.operand_cache().residency_entries(), 1U);

    // The doomed request is a *cold* pair (symbolic + numeric, many kernel
    // boundaries), so a 1e-12 simulated budget trips deterministically.
    const auto b = gen::uniform_random(200, 200, 5, 29);
    RequestBudget tiny;
    tiny.sim_seconds = 1e-12;
    const auto doomed = session.multiply<double>(a, b, tiny);
    ASSERT_FALSE(doomed.ok());
    ASSERT_EQ(doomed.outcome, RequestOutcome::kDeadline);
    EXPECT_EQ(session.operand_cache().residency_entries(), 0U);
    EXPECT_GE(session.stats().cache_invalidations, 1U);
    EXPECT_TRUE(doomed.log.contains(RecoveryEvent::Kind::kCacheEvict));

    // Plan artifacts are host-side and survive the reclaim: the next
    // request is a plan hit with a residency miss, and byte-identical.
    const auto after = session.multiply<double>(a, a);
    ASSERT_TRUE(after.ok()) << after.error_message;
    expect_identical(after.out.matrix, want);
    EXPECT_EQ(session.stats().cache_hits, 1U);
    EXPECT_EQ(session.stats().cache_misses, 2U);
}

TEST(OperandCache, MutatedOperandSamePointerMissesByContent)
{
    // The caller mutates a matrix in place and resubmits the same object:
    // the fingerprint (not the address) is the key, so the request is a
    // clean miss and the product reflects the *new* values.
    auto a = cache_matrix();
    Session session(cached_config());

    ASSERT_TRUE(session.multiply<double>(a, a).ok());
    EXPECT_EQ(session.stats().cache_misses, 1U);

    a.val[0] += 1.5;  // same object, same pointers, different content
    const auto res = session.multiply<double>(a, a);
    ASSERT_TRUE(res.ok()) << res.error_message;
    expect_identical(res.out.matrix, reference_spgemm(a, a));
    EXPECT_EQ(session.stats().cache_hits, 0U);
    EXPECT_EQ(session.stats().cache_misses, 2U);
    // Both generations coexist under distinct fingerprints.
    EXPECT_EQ(session.operand_cache().plan_entries(), 2U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 2U);

    // Another in-place mutation: a third generation, still keyed apart.
    a.val.back() *= -2.0;
    const auto res2 = session.multiply<double>(a, a);
    ASSERT_TRUE(res2.ok()) << res2.error_message;
    expect_identical(res2.out.matrix, reference_spgemm(a, a));
    EXPECT_EQ(session.stats().cache_hits, 0U);
    EXPECT_EQ(session.stats().cache_misses, 3U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 3U);
}

TEST(OperandCache, DistinctCopiesWithEqualContentHit)
{
    // The converse of the mutation case: a bitwise-equal copy at a
    // different address is the same operand.
    const auto a = cache_matrix();
    const CsrMatrix<double> copy = a;
    Session session(cached_config());

    ASSERT_TRUE(session.multiply<double>(a, a).ok());
    const auto res = session.multiply<double>(copy, copy);
    ASSERT_TRUE(res.ok()) << res.error_message;
    EXPECT_EQ(session.stats().cache_hits, 1U);
    EXPECT_EQ(session.stats().cache_misses, 1U);
    expect_identical(res.out.matrix, reference_spgemm(a, a));
}

TEST(OperandCache, ResidencyDisabledStillCachesPlans)
{
    const auto a = cache_matrix();
    SessionConfig cfg = cached_config();
    cfg.cache.residency_budget_bytes = 0;
    Session session(std::move(cfg));

    const auto cold = session.multiply<double>(a, a);
    const auto warm = session.multiply<double>(a, a);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    expect_identical(warm.out.matrix, cold.out.matrix);
    EXPECT_EQ(session.stats().cache_hits, 1U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 0U);
    EXPECT_EQ(session.stats().cache_residency_hits, 0U);
    EXPECT_EQ(session.stats().cache_residency_misses, 4U);
}

TEST(OperandCache, DisabledByDefaultNeverConsults)
{
    const auto a = cache_matrix();
    Session session;  // default config: cache off
    ASSERT_TRUE(session.multiply<double>(a, a).ok());
    ASSERT_TRUE(session.multiply<double>(a, a).ok());
    const auto& s = session.stats();
    EXPECT_EQ(s.cache_hits + s.cache_misses, 0U);
    EXPECT_EQ(s.cache_residency_hits + s.cache_residency_misses, 0U);
    EXPECT_EQ(session.operand_cache().plan_entries(), 0U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 0U);
}

TEST(OperandCache, WarmBatchSharesTheSessionCache)
{
    // A batch over repeated operands: first occurrence misses, the rest
    // hit, and every product is byte-identical to the reference.
    const auto a = cache_matrix();
    const auto want = reference_spgemm(a, a);
    Session session(cached_config());

    const std::vector<const CsrMatrix<double>*> ms(6, &a);
    const auto out = session.multiply_batch<double>(ms, ms);
    ASSERT_EQ(out.items.size(), 6U);
    for (const auto& item : out.items) {
        ASSERT_TRUE(item.ok()) << item.error_message;
        expect_identical(item.out.matrix, want);
    }
    EXPECT_EQ(session.stats().cache_misses, 1U);
    EXPECT_EQ(session.stats().cache_hits, 5U);
}

TEST(OperandCache, FloatOperandsCacheIndependently)
{
    const auto ad = cache_matrix();
    CsrMatrix<float> a(ad.rows, ad.cols, ad.rpt, ad.col,
                       std::vector<float>(ad.val.begin(), ad.val.end()));
    Session session(cached_config());

    const auto cold = session.multiply<float>(a, a);
    const auto warm = session.multiply<float>(a, a);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.out.matrix.rpt, cold.out.matrix.rpt);
    EXPECT_EQ(warm.out.matrix.col, cold.out.matrix.col);
    EXPECT_EQ(warm.out.matrix.val, cold.out.matrix.val);
    EXPECT_EQ(session.stats().cache_hits, 1U);
    EXPECT_EQ(session.operand_cache().residency_entries(), 1U);
}

}  // namespace
}  // namespace nsparse
