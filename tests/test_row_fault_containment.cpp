// Per-row kernel-fault containment: rows whose hash kernel faults are
// retried on the group-0 global-table path with doubled tables, and rows
// that keep faulting fall back to the host reference recourse — in every
// case the assembled product is bit-identical to the fault-free run, the
// stats account for each contained row, and the trace records the events.
#include <gtest/gtest.h>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

const CsrMatrix<double>& test_matrix()
{
    static const CsrMatrix<double> a = gen::uniform_random(200, 200, 6, 5);
    return a;
}

CsrMatrix<double> clean_product()
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<double>(dev, test_matrix(), test_matrix()).matrix;
}

TEST(RowFaultContainment, NumericInjectionRetriesBitIdentical)
{
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_numeric_row_faults = {3, 17, 50};

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, a, a, opt);

    // Bit-identical, not merely approximately equal: the retry accumulates
    // each output column in the same traversal order as the first attempt.
    EXPECT_TRUE(out.matrix == clean_product());

    EXPECT_EQ(out.stats.faulted_rows, 3);
    EXPECT_EQ(out.stats.row_retries, 3);  // each row recovers on retry #1
    EXPECT_EQ(out.stats.host_fallback_rows, 0);

    const auto& trace = dev.trace();
    EXPECT_GE(trace.count("numeric_global_retry"), 1U);
    EXPECT_EQ(trace.fault_count("numeric_row_fault"), 3U);
    EXPECT_EQ(trace.fault_count("numeric_row_retry"), 3U);
    EXPECT_EQ(trace.fault_count("numeric_host_row"), 0U);
    EXPECT_EQ(dev.fault_events_recorded(), 6U);
}

TEST(RowFaultContainment, SymbolicInjectionContained)
{
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_symbolic_row_faults = {0, 42, 199};

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, a, a, opt);

    EXPECT_TRUE(out.matrix == clean_product());
    EXPECT_EQ(out.stats.faulted_rows, 3);
    EXPECT_EQ(out.stats.row_retries, 3);
    EXPECT_EQ(out.stats.host_fallback_rows, 0);
    EXPECT_GE(dev.trace().count("symbolic_global_retry"), 1U);
    EXPECT_EQ(dev.trace().fault_count("symbolic_row_fault"), 3U);
}

TEST(RowFaultContainment, BothPhasesInjectedStillExact)
{
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_symbolic_row_faults = {1, 100};
    opt.inject_numeric_row_faults = {1, 150};

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == clean_product());
    EXPECT_EQ(out.stats.faulted_rows, 4);  // 2 symbolic + 2 numeric
}

TEST(RowFaultContainment, ZeroRetriesFallsBackToHost)
{
    // With the retry budget at zero, faulted rows go straight to the host
    // reference recourse — still bit-identical, and accounted as such.
    const auto& a = test_matrix();
    core::Options opt;
    opt.max_row_retries = 0;
    opt.inject_numeric_row_faults = {7, 90};

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, a, a, opt);

    EXPECT_TRUE(out.matrix == clean_product());
    EXPECT_EQ(out.stats.faulted_rows, 2);
    EXPECT_EQ(out.stats.row_retries, 0);
    EXPECT_EQ(out.stats.host_fallback_rows, 2);
    EXPECT_EQ(dev.trace().fault_count("numeric_host_row"), 2U);
    EXPECT_EQ(dev.trace().count("numeric_global_retry"), 0U);
}

TEST(RowFaultContainment, InjectionMatchesHostReference)
{
    // Against the independent dense-accumulator reference the contained
    // run is still exact to the usual tolerance.
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_symbolic_row_faults = {10};
    opt.inject_numeric_row_faults = {10};
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(a, a), 1e-12));
}

TEST(RowFaultContainment, CleanRunHasNoFaultEvents)
{
    const auto& a = test_matrix();
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, a, a);
    EXPECT_EQ(out.stats.faulted_rows, 0);
    EXPECT_EQ(out.stats.row_retries, 0);
    EXPECT_EQ(out.stats.host_fallback_rows, 0);
    EXPECT_EQ(dev.fault_events_recorded(), 0U);
    EXPECT_TRUE(dev.trace().fault_events().empty());
}

TEST(RowFaultContainment, OutOfRangeInjectionIsIgnored)
{
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_numeric_row_faults = {-5, 200, 1 << 20};  // none in [0, rows)
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == clean_product());
    EXPECT_EQ(out.stats.faulted_rows, 0);
}

TEST(RowFaultContainment, StatsResetWhenSlabFallbackReruns)
{
    // When the whole multiply falls back to row slabs after an OOM, the
    // per-row fault counters restart with the slabbed run instead of
    // double-counting the aborted attempt.
    const auto& a = test_matrix();
    core::Options opt;
    opt.inject_numeric_row_faults = {3};
    opt.force_slabs = 0;
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    sim::Device probe(spec);
    const auto peak = hash_spgemm<double>(probe, a, a).stats.peak_bytes;

    spec.memory_capacity = peak - 1;  // unchunked attempt must OOM
    sim::Device dev(spec);
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_GT(out.stats.fallback_slabs, 0);
    EXPECT_TRUE(out.matrix == clean_product());
    // The injected row faults in the completing slabbed run (slab-local
    // row numbering may expose it to more than one slab).
    EXPECT_GE(out.stats.faulted_rows, 1);
}

}  // namespace
}  // namespace nsparse
