// Makespan-scheduler tests: resource residency, processor sharing, span
// floors (load imbalance), stream serialisation vs overlap, launch
// overhead — the properties the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "gpusim/scheduler.hpp"

namespace nsparse::sim {
namespace {

DeviceSpec spec() { return DeviceSpec::pascal_p100(); }

KernelRecord make_kernel(std::string name, int stream, index_t blocks, int block_dim,
                         double work, double span, std::size_t smem = 0)
{
    KernelRecord k;
    k.name = std::move(name);
    k.stream_id = stream;
    k.cfg = {blocks, block_dim, smem};
    k.blocks.assign(to_size(blocks), BlockCost{work, span, 0.0});
    return k;
}

double seconds_of_cycles(double cycles)
{
    return cycles / (spec().clock_hz() * spec().efficiency);
}

TEST(Scheduler, EmptyBatch)
{
    EXPECT_DOUBLE_EQ(schedule({}, spec(), CostModel{}).makespan, 0.0);
}

TEST(Scheduler, SingleBlockBoundBySpan)
{
    // One block: makespan >= span regardless of tiny work.
    const auto r = schedule({make_kernel("k", 0, 1, 128, 10.0, 1e6)}, spec(), CostModel{});
    EXPECT_GE(r.makespan, seconds_of_cycles(1e6));
    EXPECT_LT(r.makespan, seconds_of_cycles(1e6) * 1.5 + 1e-4);
}

TEST(Scheduler, MakespanAtLeastLaunchOverhead)
{
    CostModel cost;
    const auto r = schedule({make_kernel("k", 0, 1, 64, 1.0, 1.0)}, spec(), cost);
    EXPECT_GE(r.makespan, cost.launch_overhead_us * 1e-6);
}

TEST(Scheduler, ThroughputScalesWithSmCount)
{
    // Many equal blocks: time ~ total work / (SMs * rate).
    const double work = 1e6;
    const index_t blocks = 5600;
    const auto r =
        schedule({make_kernel("k", 0, blocks, 1024, work, work / 1024.0)}, spec(), CostModel{});
    const double ideal = blocks * work / (spec().sm_rate() * spec().num_sms);
    EXPECT_GT(r.makespan, 0.9 * ideal);
    EXPECT_LT(r.makespan, 2.0 * ideal + 1e-3);
}

TEST(Scheduler, OneGiantBlockDominates)
{
    // The webbase story: 1000 tiny blocks + 1 block with 1000x the span.
    std::vector<KernelRecord> ks;
    auto k = make_kernel("skewed", 0, 1001, 128, 1e3, 1e3);
    k.blocks.back() = BlockCost{1e7, 1e7, 0.0};
    ks.push_back(std::move(k));
    const auto r = schedule(ks, spec(), CostModel{});
    EXPECT_GE(r.makespan, seconds_of_cycles(1e7));
}

TEST(Scheduler, SameStreamSerializes)
{
    std::vector<KernelRecord> ks;
    ks.push_back(make_kernel("a", 3, 56, 1024, 1e6, 1e6 / 1024));
    ks.push_back(make_kernel("b", 3, 56, 1024, 1e6, 1e6 / 1024));
    const auto r = schedule(ks, spec(), CostModel{});
    // b must start after a finishes
    EXPECT_GE(r.kernels[1].start, r.kernels[0].finish - 1e-12);
}

TEST(Scheduler, DifferentStreamsOverlap)
{
    // Two kernels, each with only 8 blocks (far fewer than 56 SMs): on
    // different streams they run concurrently; the makespan is well below
    // the serialized sum. This is §IV-C's multi-stream effect.
    const double work = 1e6;
    std::vector<KernelRecord> serial;
    serial.push_back(make_kernel("a", 1, 8, 256, work, work / 256));
    serial.push_back(make_kernel("b", 1, 8, 256, work, work / 256));
    std::vector<KernelRecord> streams;
    streams.push_back(make_kernel("a", 1, 8, 256, work, work / 256));
    streams.push_back(make_kernel("b", 2, 8, 256, work, work / 256));

    const double t_serial = schedule(serial, spec(), CostModel{}).makespan;
    const double t_streams = schedule(streams, spec(), CostModel{}).makespan;
    EXPECT_LT(t_streams, 0.75 * t_serial);
}

TEST(Scheduler, SharedMemoryLimitsResidency)
{
    // Latency-bound blocks (span >> work/rate): 48KB blocks allow only one
    // resident per SM so spans serialize; 6KB blocks co-reside and overlap
    // their latency. This is Table I's occupancy rationale.
    const double work = 1e4;
    const double span = 1e5;
    const index_t blocks = 560;
    const auto fat = schedule({make_kernel("fat", 0, blocks, 64, work, span, 48 * 1024)},
                              spec(), CostModel{});
    const auto slim = schedule({make_kernel("slim", 0, blocks, 64, work, span, 6 * 1024)},
                               spec(), CostModel{});
    EXPECT_LT(slim.makespan, 0.2 * fat.makespan);
}

TEST(Scheduler, ThreadLimitRespected)
{
    // 1024-thread blocks: 2 per SM (2048 threads/SM). 112 blocks = exactly
    // one wave on 56 SMs; 113 blocks need a second wave.
    const double span = 1e6;
    const auto one_wave =
        schedule({make_kernel("w", 0, 112, 1024, 10.0, span)}, spec(), CostModel{});
    const auto two_waves =
        schedule({make_kernel("w", 0, 113, 1024, 10.0, span)}, spec(), CostModel{});
    EXPECT_NEAR(two_waves.makespan, one_wave.makespan + seconds_of_cycles(span),
                0.2 * seconds_of_cycles(span));
}

TEST(Scheduler, ZeroBlockKernelCompletes)
{
    std::vector<KernelRecord> ks;
    ks.push_back(make_kernel("empty", 0, 0, 128, 0, 0));
    ks.push_back(make_kernel("after", 0, 4, 128, 100.0, 10.0));
    const auto r = schedule(ks, spec(), CostModel{});
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_LE(r.kernels[0].finish, r.kernels[1].finish);
}

TEST(Scheduler, ManyTinyBlocksNoLivelock)
{
    // Regression: fp-underflow of remaining work used to re-fire events at
    // an unchanged timestamp forever.
    std::vector<KernelRecord> ks;
    ks.push_back(make_kernel("tiny", 0, 20000, 64, 1e-7, 1e-9));
    const auto r = schedule(ks, spec(), CostModel{});
    EXPECT_GE(r.makespan, 0.0);
}

TEST(Scheduler, KernelTimingsConsistent)
{
    std::vector<KernelRecord> ks;
    ks.push_back(make_kernel("a", 1, 10, 128, 1e5, 1e3));
    ks.push_back(make_kernel("b", 2, 10, 128, 1e5, 1e3));
    const auto r = schedule(ks, spec(), CostModel{});
    for (const auto& t : r.kernels) {
        EXPECT_LE(t.ready, t.start + 1e-15);
        EXPECT_LE(t.start, t.finish);
        EXPECT_LE(t.finish, r.makespan + 1e-15);
    }
}

TEST(Scheduler, WorkConservationLowerBound)
{
    // Makespan can never beat total work / total device rate.
    std::vector<KernelRecord> ks;
    ks.push_back(make_kernel("a", 0, 1000, 256, 5e5, 5e5 / 256));
    ks.push_back(make_kernel("b", 1, 500, 512, 1e6, 1e6 / 512));
    const auto r = schedule(ks, spec(), CostModel{});
    const double total_work = 1000 * 5e5 + 500 * 1e6;
    EXPECT_GE(r.makespan, total_work / (spec().sm_rate() * spec().num_sms) * 0.99);
}

}  // namespace
}  // namespace nsparse::sim
