// MatrixMarket reader/writer: round trip, symmetric/pattern variants,
// malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/io_matrix_market.hpp"

namespace nsparse {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip)
{
    auto a = gen::uniform_random(30, 40, 5, 1);
    a.sort_rows();
    std::stringstream ss;
    write_matrix_market(ss, a);
    const auto back = read_matrix_market(ss);
    EXPECT_TRUE(approx_equal(a, back, 1e-14));
}

TEST(MatrixMarket, ParsesGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment line\n"
        "3 3 3\n"
        "1 1 2.5\n"
        "3 2 -1.0\n"
        "2 3 4.0\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.rows, 3);
    EXPECT_EQ(m.cols, 3);
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 2.5);
    EXPECT_EQ(m.row_cols(2)[0], 1);
}

TEST(MatrixMarket, ExpandsSymmetric)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 1 5.0\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 3);  // (0,0), (1,0) and mirrored (0,1)
    EXPECT_DOUBLE_EQ(m.row_vals(0)[1], 5.0);
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3.0\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.row_vals(0)[0], -3.0);
    EXPECT_DOUBLE_EQ(m.row_vals(1)[0], 3.0);
}

TEST(MatrixMarket, PatternGetsUnitValues)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.val[0], 1.0);
}

TEST(MatrixMarket, FoldsDuplicateEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "1 1 2\n"
        "1 1 1.0\n"
        "1 1 2.0\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_DOUBLE_EQ(m.val[0], 3.0);
}

TEST(MatrixMarket, RejectsMissingBanner)
{
    std::istringstream in("3 3 0\n");
    EXPECT_THROW((void)read_matrix_market(in), ParseError);
}

TEST(MatrixMarket, RejectsUnsupportedFormat)
{
    std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW((void)read_matrix_market(in), ParseError);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_THROW((void)read_matrix_market(in), ParseError);
}

TEST(MatrixMarket, RejectsTruncatedEntries)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW((void)read_matrix_market(in), ParseError);
}

TEST(MatrixMarket, MissingFileThrows)
{
    EXPECT_THROW((void)read_matrix_market_file("/nonexistent/file.mtx"), ParseError);
}

// --- structured ParseError with line numbers (corrupt fixtures) -----------

/// Parses and returns the ParseError the input must produce.
ParseError parse_failure(const std::string& text)
{
    std::istringstream in(text);
    try {
        (void)read_matrix_market(in);
    } catch (const ParseError& e) {
        return e;
    }
    ADD_FAILURE() << "input parsed without error:\n" << text;
    return ParseError("unreachable");
}

TEST(MatrixMarket, BadBannerReportsLineOne)
{
    const auto e = parse_failure("%%NotMatrixMarket matrix coordinate real general\n1 1 0\n");
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("banner"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(line 1)"), std::string::npos);
}

TEST(MatrixMarket, MalformedSizeLineReportsItsLine)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment\n"
        "% another comment\n"
        "3 three 3\n");
    EXPECT_EQ(e.line(), 4);
}

TEST(MatrixMarket, TrailingTokenOnSizeLineRejected)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3 7\n");
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
}

TEST(MatrixMarket, NonNumericValueReportsEntryLine)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 2 froot\n");
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("value"), std::string::npos);
}

TEST(MatrixMarket, MalformedEntryReportsEntryLine)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "not-a-row 1 1.0\n");
    EXPECT_EQ(e.line(), 3);
}

TEST(MatrixMarket, ShortFileReportsLastLine)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n");
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("1 of 3"), std::string::npos);
}

TEST(MatrixMarket, OutOfRangeEntryNamesTheIndex)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("(3, 1)"), std::string::npos);
}

TEST(MatrixMarket, HugeDeclaredEntryCountDoesNotPreallocate)
{
    // The declared count is a lie; the reader must fail on the truncated
    // entries without first reserving memory for 10^15 of them.
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1000000000000000\n"
        "1 1 1.0\n");
    EXPECT_EQ(e.line(), 3);
}

TEST(MatrixMarket, DimensionBeyondIndexRangeRejected)
{
    const auto e = parse_failure(
        "%%MatrixMarket matrix coordinate real general\n"
        "4294967296 2 0\n");
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("index range"), std::string::npos);
}

TEST(MatrixMarket, ToleratesBlankLinesAndCrlf)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\r\n"
        "% comment\r\n"
        "2 2 2\r\n"
        "\r\n"
        "1 1 1.5\r\n"
        "2 2 2.5\r\n");
    const auto m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.row_vals(1)[0], 2.5);
}

TEST(MatrixMarket, FileRoundTrip)
{
    auto a = gen::uniform_random(10, 10, 3, 2);
    a.sort_rows();
    const std::string path = ::testing::TempDir() + "/nsparse_io_test.mtx";
    write_matrix_market_file(path, a);
    const auto back = read_matrix_market_file(path);
    EXPECT_TRUE(approx_equal(a, back, 1e-14));
}

TEST(ConvertValues, DoubleToFloat)
{
    const auto a = gen::uniform_random(20, 20, 4, 3);
    const auto f = convert_values<float>(a);
    EXPECT_EQ(f.rpt, a.rpt);
    EXPECT_EQ(f.col, a.col);
    for (std::size_t k = 0; k < a.val.size(); ++k) {
        EXPECT_FLOAT_EQ(f.val[k], static_cast<float>(a.val[k]));
    }
}

}  // namespace
}  // namespace nsparse
