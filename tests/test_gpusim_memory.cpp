// Simulated device memory: capacity enforcement, live/peak accounting,
// RAII buffers, allocation-time hooks.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/device_csr.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/scratch_pool.hpp"
#include "matgen/generators.hpp"

namespace nsparse::sim {
namespace {

TEST(DeviceAllocator, TracksLiveAndPeak)
{
    DeviceAllocator alloc(1000);
    alloc.allocate(300);
    EXPECT_EQ(alloc.live_bytes(), 300U);
    EXPECT_EQ(alloc.peak_bytes(), 300U);
    alloc.allocate(500);
    EXPECT_EQ(alloc.live_bytes(), 800U);
    alloc.deallocate(300);
    EXPECT_EQ(alloc.live_bytes(), 500U);
    EXPECT_EQ(alloc.peak_bytes(), 800U);  // peak survives frees
    alloc.allocate(100);
    EXPECT_EQ(alloc.peak_bytes(), 800U);
}

TEST(DeviceAllocator, ThrowsBeyondCapacity)
{
    DeviceAllocator alloc(100);
    alloc.allocate(80);
    EXPECT_THROW(alloc.allocate(21), DeviceOutOfMemory);
    EXPECT_EQ(alloc.live_bytes(), 80U);  // failed allocation leaves no trace
    alloc.allocate(20);                  // exactly to capacity is fine
}

TEST(DeviceAllocator, ResetPeakToLive)
{
    DeviceAllocator alloc(1000);
    alloc.allocate(600);
    alloc.deallocate(600);
    alloc.allocate(100);
    alloc.reset_peak();
    EXPECT_EQ(alloc.peak_bytes(), 100U);
}

TEST(DeviceAllocator, HooksInvoked)
{
    DeviceAllocator alloc(1000);
    std::size_t allocs = 0;
    int frees = 0;
    alloc.set_hooks([&](std::size_t b) { allocs += b; }, [&] { ++frees; });
    alloc.allocate(10);
    alloc.allocate(20);
    alloc.deallocate(10);
    EXPECT_EQ(allocs, 30U);
    EXPECT_EQ(frees, 1);
}

TEST(DeviceBuffer, RaiiReleasesOnDestruction)
{
    DeviceAllocator alloc(1 << 20);
    {
        DeviceBuffer<double> b(alloc, 100);
        EXPECT_EQ(alloc.live_bytes(), 800U);
        EXPECT_EQ(b.size(), 100U);
    }
    EXPECT_EQ(alloc.live_bytes(), 0U);
}

TEST(DeviceBuffer, MoveTransfersOwnership)
{
    DeviceAllocator alloc(1 << 20);
    DeviceBuffer<index_t> a(alloc, 10);
    a[3] = 42;
    DeviceBuffer<index_t> b(std::move(a));
    EXPECT_EQ(b[3], 42);
    EXPECT_EQ(alloc.live_bytes(), 40U);
    DeviceBuffer<index_t> c;
    c = std::move(b);
    EXPECT_EQ(c[3], 42);
    EXPECT_EQ(alloc.live_bytes(), 40U);
    c.release();
    EXPECT_EQ(alloc.live_bytes(), 0U);
}

TEST(DeviceBuffer, UploadFromHostSpan)
{
    DeviceAllocator alloc(1 << 20);
    const std::vector<float> host{1.0F, 2.0F, 3.0F};
    DeviceBuffer<float> b(alloc, std::span<const float>(host));
    EXPECT_EQ(b.to_host(), host);
}

TEST(DeviceBuffer, FillAndSpan)
{
    DeviceAllocator alloc(1 << 20);
    DeviceBuffer<index_t> b(alloc, 5);
    b.fill(-1);
    for (const index_t v : b.span()) { EXPECT_EQ(v, -1); }
}

TEST(DeviceCsr, UploadDownloadRoundTrip)
{
    Device dev(DeviceSpec::pascal_p100());
    auto m = gen::uniform_random(40, 50, 4, 1);
    const auto d = DeviceCsr<double>::upload(dev.allocator(), m);
    EXPECT_EQ(d.nnz(), m.nnz());
    EXPECT_EQ(d.rows, 40);
    EXPECT_EQ(d.row_nnz(0), m.row_nnz(0));
    EXPECT_TRUE(d.download() == m);
    EXPECT_GE(dev.allocator().live_bytes(), m.byte_size());
}

TEST(DeviceCsr, UploadChargesMallocTime)
{
    Device dev(DeviceSpec::pascal_p100());
    EXPECT_DOUBLE_EQ(dev.malloc_seconds(), 0.0);
    const auto d = DeviceCsr<double>::upload(dev.allocator(),
                                             gen::uniform_random(100, 100, 5, 2));
    EXPECT_GT(dev.malloc_seconds(), 0.0);
    (void)d;
}

TEST(DeviceAllocator, HugeRequestDoesNotWrapAround)
{
    // live + bytes used to overflow size_t and admit an impossible request.
    DeviceAllocator alloc(100);
    alloc.allocate(80);
    EXPECT_THROW(alloc.allocate(std::numeric_limits<std::size_t>::max() - 10),
                 DeviceOutOfMemory);
    EXPECT_EQ(alloc.live_bytes(), 80U);
}

TEST(DeviceAllocator, FaultPlanFailsExactAllocationIndex)
{
    DeviceAllocator alloc(1 << 20);
    FaultPlan plan;
    plan.fail_at_alloc = 1;
    alloc.set_fault_plan(plan);
    alloc.allocate(10);                                   // #0 fine
    EXPECT_THROW(alloc.allocate(10), DeviceOutOfMemory);  // #1 injected
    alloc.allocate(10);                                   // #2 fine again
    EXPECT_EQ(alloc.live_bytes(), 20U);
    EXPECT_EQ(alloc.allocations(), 3U);
    EXPECT_EQ(alloc.failed_allocations(), 1U);
}

TEST(DeviceAllocator, FaultPlanFailsAboveByteThreshold)
{
    DeviceAllocator alloc(1 << 20);
    FaultPlan plan;
    plan.fail_above_bytes = 100;
    alloc.set_fault_plan(plan);
    alloc.allocate(100);  // at the threshold: fine
    EXPECT_THROW(alloc.allocate(101), DeviceOutOfMemory);
    alloc.clear_fault_plan();
    alloc.allocate(101);  // plan removed
    EXPECT_EQ(alloc.live_bytes(), 201U);
}

TEST(DeviceAllocator, FaultPlanShrinksCapacityMidRun)
{
    DeviceAllocator alloc(1000);
    FaultPlan plan;
    plan.shrink_after_alloc = 2;
    plan.shrink_to_bytes = 300;
    alloc.set_fault_plan(plan);
    alloc.allocate(200);  // #0 under full capacity
    alloc.allocate(50);   // #1
    // #2 onward the effective capacity is 300 and 250 B are live.
    EXPECT_THROW(alloc.allocate(100), DeviceOutOfMemory);
    alloc.allocate(50);  // fits the shrunken capacity exactly
    EXPECT_EQ(alloc.live_bytes(), 300U);
}

TEST(DeviceAllocator, SeededProbabilisticFaultsAreDeterministic)
{
    auto pattern = [](std::uint64_t seed) {
        DeviceAllocator alloc(1 << 20);
        FaultPlan plan;
        plan.fail_probability = 0.5;
        plan.seed = seed;
        alloc.set_fault_plan(plan);
        std::vector<bool> failed;
        for (int i = 0; i < 32; ++i) {
            try {
                alloc.allocate(8);
                failed.push_back(false);
            } catch (const DeviceOutOfMemory&) {
                failed.push_back(true);
            }
        }
        return failed;
    };
    EXPECT_EQ(pattern(7), pattern(7));
    EXPECT_NE(pattern(7), pattern(8));  // astronomically unlikely to match
}

TEST(DeviceAllocator, RecordsLiveBytesAtOom)
{
    DeviceAllocator alloc(100);
    alloc.allocate(60);
    EXPECT_THROW(alloc.allocate(60), DeviceOutOfMemory);
    EXPECT_EQ(alloc.last_oom_live_bytes(), 60U);
}

TEST(DeviceBuffer, RejectedAllocationLeavesNoCharge)
{
    // The capacity charge happens before host storage is committed, so a
    // rejected construction must leave the allocator untouched.
    DeviceAllocator alloc(1024);
    EXPECT_THROW(DeviceBuffer<double>(alloc, 1024), DeviceOutOfMemory);
    EXPECT_EQ(alloc.live_bytes(), 0U);
    DeviceBuffer<double> ok(alloc, 128);  // the full capacity is still free
    EXPECT_EQ(alloc.live_bytes(), 1024U);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(DeviceAllocatorDeathTest, DeallocateUnderflowAbortsInDebug)
{
    DeviceAllocator alloc(1000);
    alloc.allocate(10);
    EXPECT_DEATH(alloc.deallocate(20), "underflow");
}
#endif

TEST(DeviceCsr, AllocateForKnownNnz)
{
    Device dev(DeviceSpec::pascal_p100());
    auto d = DeviceCsr<float>::allocate(dev.allocator(), 10, 20, 35);
    EXPECT_EQ(d.col.size(), 35U);
    EXPECT_EQ(d.val.size(), 35U);
    EXPECT_EQ(d.rpt.size(), 11U);
}

TEST(DeviceBuffer, ReshapeWithinChargedCapacity)
{
    DeviceAllocator alloc(1U << 20);
    DeviceBuffer<index_t> buf(alloc, 100);
    const std::size_t charged = alloc.live_bytes();
    EXPECT_EQ(buf.capacity_elems(), 100U);
    buf.reshape(60);
    EXPECT_EQ(buf.size(), 60U);
    EXPECT_EQ(buf.capacity_elems(), 100U);        // charge unchanged
    EXPECT_EQ(alloc.live_bytes(), charged);       // no device traffic
    buf.reshape(100);                              // back up to the charge
    EXPECT_EQ(buf.size(), 100U);
    EXPECT_EQ(alloc.live_bytes(), charged);
}

TEST(ScratchPool, ExactMatchIsPreferredOverSlack)
{
    // Regression for the bounded-slack free lists: an exact-size cached
    // buffer must win even when a slack-eligible larger one is also free,
    // preserving the pre-slack hit/miss accounting byte for byte.
    DeviceAllocator alloc(1U << 20);
    ScratchPool pool;
    pool.put("t", DeviceBuffer<index_t>(alloc, 125));  // within 25% of 100
    pool.put("t", DeviceBuffer<index_t>(alloc, 100));  // exact
    auto buf = pool.take("t", alloc, 100);
    EXPECT_EQ(pool.hits(), 1U);
    EXPECT_EQ(pool.misses(), 0U);
    EXPECT_EQ(buf.capacity_elems(), 100U);  // the exact buffer, not the 125
    EXPECT_EQ(buf.size(), 100U);
}

TEST(ScratchPool, BoundedSlackReusesNearMisses)
{
    // The tentpole regression this PR locks: a request within 25% of a
    // cached buffer's allocation reuses it (reshaped down, no simulated
    // cudaMalloc), while an oversize buffer beyond the bound stays cached
    // and the request pays a fresh allocation.
    DeviceAllocator alloc(1U << 20);
    ScratchPool pool;

    pool.put("t", DeviceBuffer<index_t>(alloc, 125));
    auto near = pool.take("t", alloc, 100);  // 125 <= 100 + 100/4: slack hit
    EXPECT_EQ(pool.hits(), 1U);
    EXPECT_EQ(pool.misses(), 0U);
    EXPECT_EQ(near.size(), 100U);             // reshaped: no stale tail
    EXPECT_EQ(near.capacity_elems(), 125U);   // still the 125-element charge

    pool.put("t", DeviceBuffer<index_t>(alloc, 126));
    auto far = pool.take("t", alloc, 100);  // 126 > 100 + 100/4: miss
    EXPECT_EQ(pool.hits(), 1U);
    EXPECT_EQ(pool.misses(), 1U);
    EXPECT_EQ(far.capacity_elems(), 100U);  // fresh allocation

    // A smaller cached buffer never serves a larger request.
    pool.clear();
    pool.put("t", DeviceBuffer<index_t>(alloc, 90));
    auto grow = pool.take("t", alloc, 100);
    EXPECT_EQ(pool.misses(), 2U);
    EXPECT_EQ(grow.capacity_elems(), 100U);
}

TEST(ScratchPool, SlackPicksSmallestEligibleBuffer)
{
    DeviceAllocator alloc(1U << 20);
    ScratchPool pool;
    pool.put("t", DeviceBuffer<index_t>(alloc, 124));
    pool.put("t", DeviceBuffer<index_t>(alloc, 110));
    pool.put("t", DeviceBuffer<index_t>(alloc, 120));
    auto buf = pool.take("t", alloc, 100);
    EXPECT_EQ(pool.hits(), 1U);
    EXPECT_EQ(buf.capacity_elems(), 110U);  // smallest within slack wins
    EXPECT_EQ(buf.size(), 100U);
}

TEST(ScratchPool, SlackReuseCountsLockBatchAmortization)
{
    // Reuse-count lock for drifting sizes: rows shrink a few percent per
    // product (an A^k-chain shape). The old exact-size-only lists missed
    // every take after the first; bounded slack turns all of them into
    // hits until the request size drifts out of the 25% window.
    DeviceAllocator alloc(1U << 20);
    ScratchPool pool;
    const std::size_t sizes[] = {1000, 980, 955, 930, 900, 870, 830, 800};
    {
        auto first = pool.take("rows", alloc, sizes[0]);
        EXPECT_EQ(pool.misses(), 1U);
        pool.put("rows", std::move(first));
    }
    for (std::size_t i = 1; i < std::size(sizes); ++i) {
        auto buf = pool.take("rows", alloc, sizes[i]);
        EXPECT_EQ(buf.size(), sizes[i]);
        pool.put("rows", std::move(buf));
    }
    // Every drifted take reuses the original 1000-element buffer: its
    // capacity stays within 25% of each request down to 800.
    EXPECT_EQ(pool.hits(), 7U);
    EXPECT_EQ(pool.misses(), 1U);
}

}  // namespace
}  // namespace nsparse::sim
