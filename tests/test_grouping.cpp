// Grouping policy tests: the derivation of §III-D must reproduce the
// paper's Table I exactly on the P100 spec, and row partitioning must be a
// permutation that respects the group ranges.
#include <gtest/gtest.h>

#include "core/grouping.hpp"
#include "gpusim/device.hpp"
#include "matgen/rng.hpp"

namespace nsparse::core {
namespace {

using sim::DeviceSpec;

TEST(GroupingPolicy, SymbolicMatchesPaperTable1OnP100)
{
    const auto p = GroupingPolicy::symbolic(DeviceSpec::pascal_p100());
    ASSERT_EQ(p.groups.size(), 7U);

    // Table I column "(3) Num of intermediate products".
    const struct {
        index_t min, max;
        int block, tb;
    } expected[7] = {
        {8193, -1, 1024, 2},   // group 0
        {4097, 8192, 1024, 2}, // group 1
        {2049, 4096, 512, 4},  // group 2
        {1025, 2048, 256, 8},  // group 3
        {513, 1024, 128, 16},  // group 4
        {33, 512, 64, 32},     // group 5
        {0, 32, 512, 4},       // group 6 (PWARP/ROW)
    };
    for (int g = 0; g < 7; ++g) {
        SCOPED_TRACE(g);
        EXPECT_EQ(p.groups[to_size(g)].min_count, expected[g].min);
        EXPECT_EQ(p.groups[to_size(g)].max_count, expected[g].max);
        EXPECT_EQ(p.groups[to_size(g)].block_size, expected[g].block);
        EXPECT_EQ(p.groups[to_size(g)].tb_per_sm, expected[g].tb);
        EXPECT_EQ(p.groups[to_size(g)].assignment,
                  g == 6 ? Assignment::kPwarpRow : Assignment::kTbRow);
    }
    EXPECT_EQ(p.max_shared_table, 8192);  // 48KB / 4B -> pow2
    EXPECT_TRUE(p.groups[0].global_table);
}

TEST(GroupingPolicy, NumericMatchesPaperTable1OnP100)
{
    const auto p = GroupingPolicy::numeric(DeviceSpec::pascal_p100(), sizeof(double));
    ASSERT_EQ(p.groups.size(), 7U);

    // Table I column "(6) Num of non-zero elements".
    const struct {
        index_t min, max;
    } expected[7] = {
        {4097, -1}, {2049, 4096}, {1025, 2048}, {513, 1024}, {257, 512}, {17, 256}, {0, 16},
    };
    for (int g = 0; g < 7; ++g) {
        SCOPED_TRACE(g);
        EXPECT_EQ(p.groups[to_size(g)].min_count, expected[g].min);
        EXPECT_EQ(p.groups[to_size(g)].max_count, expected[g].max);
    }
    EXPECT_EQ(p.max_shared_table, 4096);  // 48KB / 12B -> pow2 (paper §III-D)
}

TEST(GroupingPolicy, FloatTablesCoincideWithDoubleOnP100)
{
    // prev_pow2(48K/8) == prev_pow2(48K/12) == 4096: the paper can use one
    // Table I for both precisions.
    const auto pf = GroupingPolicy::numeric(DeviceSpec::pascal_p100(), sizeof(float));
    const auto pd = GroupingPolicy::numeric(DeviceSpec::pascal_p100(), sizeof(double));
    EXPECT_EQ(pf.max_shared_table, pd.max_shared_table);
}

TEST(GroupingPolicy, GroupOfRespectsRanges)
{
    const auto p = GroupingPolicy::symbolic(DeviceSpec::pascal_p100());
    EXPECT_EQ(p.group_of(0), 6);
    EXPECT_EQ(p.group_of(32), 6);
    EXPECT_EQ(p.group_of(33), 5);
    EXPECT_EQ(p.group_of(512), 5);
    EXPECT_EQ(p.group_of(513), 4);
    EXPECT_EQ(p.group_of(1024), 4);
    EXPECT_EQ(p.group_of(1025), 3);
    EXPECT_EQ(p.group_of(2048), 3);
    EXPECT_EQ(p.group_of(2049), 2);
    EXPECT_EQ(p.group_of(4096), 2);
    EXPECT_EQ(p.group_of(4097), 1);
    EXPECT_EQ(p.group_of(8192), 1);
    EXPECT_EQ(p.group_of(8193), 0);
    EXPECT_EQ(p.group_of(1 << 20), 0);
}

TEST(GroupingPolicy, EveryCountHasExactlyOneGroup)
{
    for (const bool use_pwarp : {true, false}) {
        const auto p = GroupingPolicy::symbolic(DeviceSpec::pascal_p100(), 4, use_pwarp);
        for (index_t c = 0; c <= 20000; ++c) {
            int containing = 0;
            for (const auto& g : p.groups) {
                if (g.contains(c)) { ++containing; }
            }
            ASSERT_EQ(containing, 1) << "count " << c << " pwarp=" << use_pwarp;
            ASSERT_TRUE(p.groups[to_size(p.group_of(c))].contains(c)) << c;
        }
    }
}

TEST(GroupingPolicy, DisablingPwarpExtendsSmallestTbGroup)
{
    const auto p = GroupingPolicy::symbolic(DeviceSpec::pascal_p100(), 4, /*use_pwarp=*/false);
    EXPECT_EQ(p.pwarp_border, 0);
    // No PWARP group at all: Table I minus its last row, with the smallest
    // TB group's range widened to [0, 512].
    ASSERT_EQ(p.groups.size(), 6U);
    for (const auto& g : p.groups) { EXPECT_NE(g.assignment, Assignment::kPwarpRow); }
    EXPECT_EQ(p.groups.back().min_count, 0);
    EXPECT_EQ(p.group_of(0), 5);
    EXPECT_EQ(p.group_of(1), 5);
    EXPECT_EQ(p.group_of(32), 5);
    EXPECT_EQ(p.group_of(512), 5);
    EXPECT_EQ(p.group_of(513), 4);
}

TEST(GroupRows, EmptyRowsWithPwarpDisabledLandInATbGroup)
{
    // Regression: the disabled-PWARP policy used to keep an (empty-range)
    // PWARP group, and empty rows were routed to its kernel even though
    // the assignment was switched off.
    sim::Device dev(DeviceSpec::pascal_p100());
    const auto policy = GroupingPolicy::symbolic(dev.spec(), 4, /*use_pwarp=*/false);
    constexpr index_t kRows = 64;
    sim::DeviceBuffer<index_t> counts(dev.allocator(), to_size(kRows));
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts[i] = i % 3 == 0 ? 0 : to_index(i);  // a third of the rows empty
    }
    const auto grouped = group_rows(dev, policy, counts);
    ASSERT_EQ(grouped.offsets.size(), policy.groups.size() + 1);
    EXPECT_EQ(grouped.offsets.back(), kRows);
    for (std::size_t g = 0; g < policy.groups.size(); ++g) {
        if (grouped.offsets[g] == grouped.offsets[g + 1]) { continue; }
        EXPECT_NE(policy.groups[g].assignment, Assignment::kPwarpRow);
    }
}

TEST(GroupRows, PartitionIsAPermutation)
{
    sim::Device dev(DeviceSpec::pascal_p100());
    const auto policy = GroupingPolicy::symbolic(dev.spec());
    constexpr index_t kRows = 5000;
    sim::DeviceBuffer<index_t> counts(dev.allocator(), to_size(kRows));
    gen::Pcg32 rng(7);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        counts[i] = to_index(rng.bounded(20000));
    }
    const auto grouped = group_rows(dev, policy, counts);

    ASSERT_EQ(grouped.permutation.size(), to_size(kRows));
    ASSERT_EQ(grouped.offsets.size(), policy.groups.size() + 1);
    EXPECT_EQ(grouped.offsets.front(), 0);
    EXPECT_EQ(grouped.offsets.back(), kRows);

    std::vector<bool> seen(to_size(kRows), false);
    for (std::size_t g = 0; g < policy.groups.size(); ++g) {
        for (index_t k = grouped.offsets[g]; k < grouped.offsets[g + 1]; ++k) {
            const index_t row = grouped.permutation[to_size(k)];
            ASSERT_FALSE(seen[to_size(row)]);
            seen[to_size(row)] = true;
            EXPECT_TRUE(policy.groups[g].contains(counts[to_size(row)]))
                << "row " << row << " count " << counts[to_size(row)] << " in group " << g;
        }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(GroupRows, SegmentsSortedByRowIndex)
{
    sim::Device dev(DeviceSpec::pascal_p100());
    const auto policy = GroupingPolicy::numeric(dev.spec(), sizeof(double));
    constexpr index_t kRows = 1000;
    sim::DeviceBuffer<index_t> counts(dev.allocator(), to_size(kRows));
    gen::Pcg32 rng(11);
    for (std::size_t i = 0; i < counts.size(); ++i) { counts[i] = to_index(rng.bounded(5000)); }
    const auto grouped = group_rows(dev, policy, counts);
    for (std::size_t g = 0; g < policy.groups.size(); ++g) {
        for (index_t k = grouped.offsets[g] + 1; k < grouped.offsets[g + 1]; ++k) {
            EXPECT_LT(grouped.permutation[to_size(k - 1)], grouped.permutation[to_size(k)]);
        }
    }
}

}  // namespace
}  // namespace nsparse::core
