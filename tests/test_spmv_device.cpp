// Simulated-device SpMV: numerical agreement with the host reference,
// kernel selection, and cost-model sanity (SpMV should run at far higher
// GFLOPS than SpGEMM on the same matrix — the paper's §II framing).
#include <gtest/gtest.h>

#include "core/spgemm.hpp"
#include "core/spmv.hpp"
#include "matgen/generators.hpp"
#include "sparse/csr_ops.hpp"

namespace nsparse {
namespace {

TEST(SpmvDevice, MatchesHostReference)
{
    for (const index_t degree : {2, 20, 60}) {
        const auto a = gen::uniform_random(500, 700, degree, 1);
        std::vector<double> x(700);
        for (std::size_t i = 0; i < x.size(); ++i) { x[i] = 0.01 * static_cast<double>(i); }
        std::vector<double> y_host(500);
        std::vector<double> y_dev(500);
        spmv(a, std::span<const double>(x), std::span<double>(y_host));
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        (void)spmv_device<double>(dev, a, std::span<const double>(x),
                                  std::span<double>(y_dev));
        for (std::size_t i = 0; i < y_host.size(); ++i) {
            EXPECT_NEAR(y_dev[i], y_host[i], 1e-10) << "degree " << degree << " row " << i;
        }
    }
}

TEST(SpmvDevice, SelectsVectorKernelForLongRows)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto a = gen::uniform_random(300, 300, 40, 2);
    std::vector<double> x(300, 1.0);
    std::vector<double> y(300);
    (void)spmv_device<double>(dev, a, std::span<const double>(x), std::span<double>(y));
    EXPECT_EQ(dev.trace().count("spmv_csr_vector"), 1U);
    EXPECT_EQ(dev.trace().count("spmv_csr_scalar"), 0U);
}

TEST(SpmvDevice, SelectsScalarKernelForShortRows)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto a = gen::uniform_random(300, 300, 3, 2);
    std::vector<double> x(300, 1.0);
    std::vector<double> y(300);
    (void)spmv_device<double>(dev, a, std::span<const double>(x), std::span<double>(y));
    EXPECT_EQ(dev.trace().count("spmv_csr_scalar"), 1U);
}

TEST(SpmvDevice, MuchFasterThanSpgemmPerFlop)
{
    // §II: SpMV is the "easy" kernel; per-FLOP it should beat SpGEMM by a
    // wide margin on the same matrix (no hashing, no two phases).
    const auto a = gen::uniform_random(2000, 2000, 20, 3);
    std::vector<double> x(2000, 1.0);
    std::vector<double> y(2000);
    sim::Device d1(sim::DeviceSpec::pascal_p100());
    const auto sv = spmv_device<double>(d1, a, std::span<const double>(x),
                                        std::span<double>(y));
    sim::Device d2(sim::DeviceSpec::pascal_p100());
    const auto gm = hash_spgemm<double>(d2, a, a);
    EXPECT_GT(sv.gflops, 2.0 * gm.stats.gflops());
}

TEST(SpmvDevice, SizeMismatchThrows)
{
    const auto a = gen::uniform_random(10, 20, 3, 4);
    std::vector<double> x(10);
    std::vector<double> y(10);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    EXPECT_THROW((void)spmv_device<double>(dev, a, std::span<const double>(x),
                                           std::span<double>(y)),
                 PreconditionError);
}

}  // namespace
}  // namespace nsparse
