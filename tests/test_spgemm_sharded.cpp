// Sharded SpGEMM test battery (ctest labels: shard, faults, tsan).
//
// Differential: core::spgemm_sharded must be byte-identical to a single
// hash_spgemm call for every (device count x shard count x executor
// thread count) — each output row depends only on its A row and B, and
// the merge concatenates shards in shard order. Robustness: an injected
// allocation fault on one device is contained in that device's shards
// (ladder recovery or cross-device requeue) while siblings run
// untouched; an exhausted ladder surfaces a structured ShardFailed with
// shard/device attribution; shard budgets are terminal (no requeue).
// Scale: a lowered ShardOptions::index_limit drives the 64-bit
// row-pointer escalation round-trip without allocating 2^31 nonzeros.
//
// NSPARSE_SHARD_STRESS scales the escalation/identity matrix sizes
// (default 1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/spgemm.hpp"
#include "core/spgemm_sharded.hpp"
#include "matgen/generators.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr std::uint64_t kSeed = 20170814;  // nsparse @ ICPP'17

int stress_factor()
{
    const char* s = std::getenv("NSPARSE_SHARD_STRESS");
    if (s == nullptr) { return 1; }
    const int v = std::atoi(s);
    return v >= 1 ? v : 1;
}

/// The single-device ground truth every sharded run must reproduce
/// byte-for-byte.
CsrMatrix<double> reference_product(const CsrMatrix<double>& a, const CsrMatrix<double>& b)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<double>(dev, a, b).matrix;
}

void expect_bytes_identical(const CsrMatrix<double>& got, const CsrMatrix<double>& want,
                            const std::string& what)
{
    ASSERT_EQ(got.rows, want.rows) << what;
    ASSERT_EQ(got.cols, want.cols) << what;
    EXPECT_EQ(got.rpt, want.rpt) << what;
    EXPECT_EQ(got.col, want.col) << what;
    EXPECT_EQ(got.val, want.val) << what;
}

/// A FaultPlan that makes every allocation beyond a few KB fail — the
/// device has "lost" its memory to another context. B cannot even be
/// uploaded, so every rung that touches the device OOMs and only the
/// host recourse (or a requeue onto a healthy device) can finish.
void shrink_device(sim::Device& dev)
{
    sim::FaultPlan plan;
    plan.shrink_after_alloc = 0;
    plan.shrink_to_bytes = 4096;
    dev.allocator().set_fault_plan(plan);
}

// ---------------------------------------------------------------------------
// planner
// ---------------------------------------------------------------------------

TEST(ShardPlan, EmptyMatrixYieldsEmptyPlanAndEmptyProduct)
{
    const auto a = CsrMatrix<double>::zero(0, 7);
    const auto b = gen::uniform_random(7, 5, 2, kSeed);

    core::ShardOptions sopt;
    sopt.devices = 3;
    EXPECT_EQ(core::plan_row_shards(a, b, sopt).count(), 0);

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.sharded.shards, 0);
    EXPECT_EQ(out.matrix.rows, 0);
    EXPECT_EQ(out.matrix.cols, 5);
    EXPECT_EQ(out.matrix.nnz(), 0);
}

TEST(ShardPlan, SingleRowIsOneShardRegardlessOfRequests)
{
    const auto a = gen::uniform_random(1, 50, 10, kSeed + 1);
    const auto b = gen::uniform_random(50, 40, 4, kSeed + 2);

    core::ShardOptions sopt;
    sopt.devices = 4;
    sopt.shards = 8;
    const auto plan = core::plan_row_shards(a, b, sopt);
    ASSERT_EQ(plan.count(), 1);
    EXPECT_EQ(plan.shards[0].row_begin, 0);
    EXPECT_EQ(plan.shards[0].row_end, 1);

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    expect_bytes_identical(out.matrix, reference_product(a, b), "single-row shard");
}

TEST(ShardPlan, ShardsAreContiguousNonEmptyAndHonourMinShards)
{
    const auto a = gen::uniform_random(100, 100, 6, kSeed + 3);
    const auto b = gen::uniform_random(100, 90, 5, kSeed + 4);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.min_shards = 10;
    const auto plan = core::plan_row_shards(a, b, sopt);
    ASSERT_GE(plan.count(), 10);
    ASSERT_LE(plan.count(), 100);

    index_t next = 0;
    wide_t ub_sum = 0;
    for (const auto& sh : plan.shards) {
        EXPECT_EQ(sh.row_begin, next);
        EXPECT_GT(sh.rows(), 0);  // never an empty shard
        next = sh.row_end;
        ub_sum += sh.nnz_upper_bound;
    }
    EXPECT_EQ(next, a.rows);
    EXPECT_EQ(ub_sum, plan.total_nnz_upper_bound);
}

TEST(ShardPlan, IndexLimitCutsKeepEveryMultiRowShardWithinTheLimit)
{
    const auto a = gen::uniform_random(120, 120, 8, kSeed + 5);
    const auto b = gen::uniform_random(120, 110, 7, kSeed + 6);

    core::ShardOptions sopt;
    sopt.devices = 1;
    sopt.index_limit = 300;  // far below the product's total upper bound
    const auto plan = core::plan_row_shards(a, b, sopt);
    EXPECT_TRUE(plan.may_escalate_64bit);
    EXPECT_GT(plan.count(), 1);
    for (const auto& sh : plan.shards) {
        // A single row is always a valid shard (its real nnz is bounded by
        // cols(B)); any multi-row shard must respect the cut.
        if (sh.rows() > 1) { EXPECT_LE(sh.nnz_upper_bound, sopt.index_limit); }
    }
}

TEST(ShardPlan, InvalidOptionsAndShapesAreRejectedUpFront)
{
    const auto a = gen::uniform_random(10, 20, 3, kSeed + 7);
    const auto b = gen::uniform_random(20, 10, 3, kSeed + 8);

    core::ShardOptions sopt;
    sopt.devices = 0;
    EXPECT_THROW(core::spgemm_sharded<double>(a, b, sopt), PreconditionError);
    sopt.devices = 2;
    sopt.max_requeues = -1;
    EXPECT_THROW(core::spgemm_sharded<double>(a, b, sopt), PreconditionError);
    sopt.max_requeues = 1;
    sopt.index_limit = 0;
    EXPECT_THROW(core::spgemm_sharded<double>(a, b, sopt), PreconditionError);
    sopt.index_limit = 1;
    sopt.shards = -1;
    EXPECT_THROW(core::spgemm_sharded<double>(a, b, sopt), PreconditionError);

    const auto wrong = gen::uniform_random(30, 5, 2, kSeed + 9);
    EXPECT_THROW(core::spgemm_sharded<double>(a, wrong, core::ShardOptions{}),
                 PreconditionError);
}

// ---------------------------------------------------------------------------
// byte identity + determinism
// ---------------------------------------------------------------------------

TEST(SpgemmSharded, ByteIdenticalAcrossDevicesShardsAndThreads)
{
    const int stress = stress_factor();
    // Odd row count: shards are uneven, the last shard is short.
    const auto a = gen::uniform_random(257 * stress, 257 * stress, 6, kSeed + 10);
    const auto b = gen::uniform_random(257 * stress, 263 * stress, 5, kSeed + 11);
    const auto want = reference_product(a, b);
    const wide_t want_products = total_intermediate_products(a, b);

    for (const int devices : {1, 2, 4}) {
        for (const int shards : {0, 3, 7}) {
            for (const int threads : {1, 8}) {
                core::ShardOptions sopt;
                sopt.devices = devices;
                sopt.shards = shards;
                sopt.options.executor_threads = threads;
                const std::string what = "devices=" + std::to_string(devices) +
                                         " shards=" + std::to_string(shards) +
                                         " threads=" + std::to_string(threads);

                const auto out = core::spgemm_sharded<double>(a, b, sopt);
                ASSERT_TRUE(out.ok()) << what;
                EXPECT_FALSE(out.escalated_64bit) << what;
                expect_bytes_identical(out.matrix, want, what);
                EXPECT_EQ(out.stats.nnz_c, want.nnz()) << what;
                EXPECT_EQ(out.stats.intermediate_products, want_products) << what;
                EXPECT_EQ(out.sharded.devices, devices) << what;
                EXPECT_GE(out.sharded.shards, std::max(1, std::max(devices, shards)))
                    << what;
                EXPECT_EQ(out.sharded.failed_shards, 0) << what;
                EXPECT_EQ(out.sharded.faults, 0) << what;
                EXPECT_EQ(out.sharded.requeues, 0) << what;
                for (const auto& st : out.shards) {
                    EXPECT_EQ(st.final_stage, core::ShardStage::kPlanned) << what;
                    EXPECT_TRUE(st.ok()) << what;
                }
            }
        }
    }
}

TEST(SpgemmSharded, PerShardTimingIsDeterministicAcrossThreadCounts)
{
    const auto a = gen::uniform_random(200, 200, 7, kSeed + 12);
    const auto b = gen::uniform_random(200, 180, 6, kSeed + 13);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 5;

    sopt.options.executor_threads = 1;
    const auto seq = core::spgemm_sharded<double>(a, b, sopt);
    sopt.options.executor_threads = 8;
    const auto par = core::spgemm_sharded<double>(a, b, sopt);

    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    ASSERT_EQ(seq.shards.size(), par.shards.size());
    for (std::size_t s = 0; s < seq.shards.size(); ++s) {
        // Static round-robin: the assignment itself is deterministic...
        EXPECT_EQ(seq.shards[s].device_id, par.shards[s].device_id) << "shard " << s;
        // ...and simulated time is a function of the shard content only.
        EXPECT_EQ(seq.shards[s].sim_seconds, par.shards[s].sim_seconds) << "shard " << s;
    }
    EXPECT_EQ(seq.sharded.makespan_seconds, par.sharded.makespan_seconds);
    EXPECT_EQ(seq.stats.seconds, par.stats.seconds);
    expect_bytes_identical(par.matrix, seq.matrix, "thread-count determinism");
}

// ---------------------------------------------------------------------------
// fault isolation
// ---------------------------------------------------------------------------

TEST(SpgemmSharded, ShrunkenDeviceRecoversViaLadderWithoutTouchingSiblings)
{
    const auto a = gen::uniform_random(160, 160, 6, kSeed + 14);
    const auto b = gen::uniform_random(160, 150, 5, kSeed + 15);
    const auto want = reference_product(a, b);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.max_requeues = 0;  // the ladder alone must absorb the fault
    sopt.configure_device = [](int id, sim::Device& dev) {
        if (id == 1) { shrink_device(dev); }
    };

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    expect_bytes_identical(out.matrix, want, "ladder recovery");
    EXPECT_GT(out.sharded.faults, 0);
    EXPECT_EQ(out.sharded.failed_shards, 0);
    for (const auto& st : out.shards) {
        ASSERT_TRUE(st.ok()) << "shard " << st.shard << ": " << st.error_message;
        if (st.device_id == 1) {
            // B cannot even be uploaded: planned and slab rungs OOM, the
            // host recourse finishes the shard.
            EXPECT_EQ(st.final_stage, core::ShardStage::kHostRecourse)
                << "shard " << st.shard;
            EXPECT_GT(st.faults, 0) << "shard " << st.shard;
        } else {
            // Siblings on the healthy device never see the fault.
            EXPECT_EQ(st.final_stage, core::ShardStage::kPlanned) << "shard " << st.shard;
            EXPECT_EQ(st.faults, 0) << "shard " << st.shard;
        }
    }
}

TEST(SpgemmSharded, LadderOffShardsRequeueOntoHealthySibling)
{
    const auto a = gen::uniform_random(160, 160, 6, kSeed + 16);
    const auto b = gen::uniform_random(160, 150, 5, kSeed + 17);
    const auto want = reference_product(a, b);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.exact_replan = false;
    sopt.slab_fallback = false;
    sopt.host_recourse = false;
    sopt.max_requeues = 1;
    sopt.configure_device = [](int id, sim::Device& dev) {
        if (id == 1) { shrink_device(dev); }
    };

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    expect_bytes_identical(out.matrix, want, "requeue recovery");
    EXPECT_EQ(out.sharded.failed_shards, 0);
    EXPECT_EQ(out.sharded.requeues, 2);  // shards 1 and 3 started on device 1
    for (const auto& st : out.shards) {
        ASSERT_TRUE(st.ok()) << "shard " << st.shard << ": " << st.error_message;
        // Every completed attempt ends on the healthy device: shards that
        // started on device 1 were re-dispatched to device 0.
        EXPECT_EQ(st.device_id, 0) << "shard " << st.shard;
        const bool started_on_faulty = st.shard % 2 == 1;
        EXPECT_EQ(st.requeues, started_on_faulty ? 1 : 0) << "shard " << st.shard;
        EXPECT_EQ(st.final_stage, core::ShardStage::kPlanned) << "shard " << st.shard;
    }
}

TEST(SpgemmSharded, ExhaustedLadderFillsSlotsWithStructuredErrors)
{
    const auto a = gen::uniform_random(120, 120, 5, kSeed + 18);
    const auto b = gen::uniform_random(120, 110, 4, kSeed + 19);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.exact_replan = false;
    sopt.slab_fallback = false;
    sopt.host_recourse = false;
    sopt.max_requeues = 1;
    sopt.fail_fast = false;
    sopt.configure_device = [](int, sim::Device& dev) { shrink_device(dev); };

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.sharded.failed_shards, out.sharded.shards);
    // Neither width of the merged product exists on failure.
    EXPECT_EQ(out.matrix.nnz(), 0);
    EXPECT_EQ(out.wide_matrix.nnz(), 0);
    for (const auto& st : out.shards) {
        EXPECT_EQ(st.final_stage, core::ShardStage::kFailed) << "shard " << st.shard;
        EXPECT_EQ(st.requeues, 1) << "shard " << st.shard;  // the requeue also failed
        EXPECT_FALSE(st.error_message.empty()) << "shard " << st.shard;
        ASSERT_NE(st.error, nullptr) << "shard " << st.shard;
        EXPECT_THROW(std::rethrow_exception(st.error), DeviceOutOfMemory)
            << "shard " << st.shard;
    }
}

TEST(SpgemmSharded, FailFastThrowsShardFailedForTheLowestShard)
{
    const auto a = gen::uniform_random(120, 120, 5, kSeed + 20);
    const auto b = gen::uniform_random(120, 110, 4, kSeed + 21);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.exact_replan = false;
    sopt.slab_fallback = false;
    sopt.host_recourse = false;
    sopt.max_requeues = 0;
    sopt.fail_fast = true;
    sopt.configure_device = [](int, sim::Device& dev) { shrink_device(dev); };

    try {
        core::spgemm_sharded<double>(a, b, sopt);
        FAIL() << "expected ShardFailed";
    } catch (const ShardFailed& e) {
        EXPECT_EQ(e.shard(), 0);   // lowest failed shard wins deterministically
        EXPECT_EQ(e.device(), 0);  // shard 0 ran (and died) on device 0
        ASSERT_NE(e.cause(), nullptr);
        EXPECT_THROW(std::rethrow_exception(e.cause()), DeviceOutOfMemory);
        EXPECT_NE(std::string(e.what()).find("shard=0"), std::string::npos) << e.what();
    }
}

TEST(SpgemmSharded, InjectedRowFaultsAreAbsorbedInsideTheOwningShard)
{
    const auto a = gen::uniform_random(200, 200, 6, kSeed + 22);
    const auto b = gen::uniform_random(200, 180, 5, kSeed + 23);
    const auto want = reference_product(a, b);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    // Global row indices: the shard layer localizes them, so only the
    // owning shard sees its row fault (one symbolic, one numeric).
    sopt.options.inject_symbolic_row_faults = {150};
    sopt.options.inject_numeric_row_faults = {10};

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    expect_bytes_identical(out.matrix, want, "row-fault absorption");
    // Per-row retries absorb the faults inside multiply_attempt: the
    // ladder never engages, but the roll-up still reports the rows.
    EXPECT_EQ(out.stats.faulted_rows, 2);
    EXPECT_GT(out.stats.row_retries, 0);
    for (const auto& st : out.shards) {
        EXPECT_EQ(st.final_stage, core::ShardStage::kPlanned) << "shard " << st.shard;
    }
}

TEST(SpgemmSharded, ShardSimBudgetExpiryIsTerminalAndNeverRequeued)
{
    const auto a = gen::uniform_random(150, 150, 6, kSeed + 24);
    const auto b = gen::uniform_random(150, 140, 5, kSeed + 25);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.max_requeues = 3;
    // Far below any shard's simulated cost: the first kernel boundary
    // inside the attempt trips the per-shard deadline.
    sopt.shard_sim_seconds = 1e-12;

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    EXPECT_FALSE(out.ok());
    // The budget is the shard's own, not the device's: requeueing cannot
    // buy more time, so no requeue is attempted.
    EXPECT_EQ(out.sharded.requeues, 0);
    for (const auto& st : out.shards) {
        EXPECT_FALSE(st.ok()) << "shard " << st.shard;
        EXPECT_EQ(st.requeues, 0) << "shard " << st.shard;
        ASSERT_NE(st.error, nullptr) << "shard " << st.shard;
        EXPECT_THROW(std::rethrow_exception(st.error), DeadlineExceeded)
            << "shard " << st.shard;
    }
}

// ---------------------------------------------------------------------------
// 64-bit escalation + trace roll-up
// ---------------------------------------------------------------------------

TEST(SpgemmSharded, LoweredIndexLimitEscalatesTo64BitRowPointers)
{
    const int stress = stress_factor();
    const auto a = gen::uniform_random(300 * stress, 300 * stress, 8, kSeed + 26);
    const auto b = gen::uniform_random(300 * stress, 280 * stress, 7, kSeed + 27);
    const auto want = reference_product(a, b);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.index_limit = 2000;  // well below nnz(C): force the escalation
    sopt.record_trace = true;
    ASSERT_GT(static_cast<wide_t>(want.nnz()), sopt.index_limit)
        << "test workload must cross the lowered limit";

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.escalated_64bit);
    EXPECT_TRUE(out.sharded.escalated_64bit);

    // The 32-bit slot stays empty; the wide matrix carries the product,
    // byte-identical to the single-device reference up to the pointer
    // width (col/val are the very same kernels' output).
    EXPECT_EQ(out.matrix.nnz(), 0);
    ASSERT_EQ(out.wide_matrix.rows, want.rows);
    ASSERT_EQ(out.wide_matrix.cols, want.cols);
    ASSERT_EQ(out.wide_matrix.rpt.size(), want.rpt.size());
    for (std::size_t i = 0; i < want.rpt.size(); ++i) {
        EXPECT_EQ(out.wide_matrix.rpt[i], static_cast<wide_t>(want.rpt[i])) << "row " << i;
    }
    EXPECT_EQ(out.wide_matrix.col, want.col);
    EXPECT_EQ(out.wide_matrix.val, want.val);
    EXPECT_EQ(out.stats.nnz_c, want.nnz());

    // The escalation is annotated: a shard_escalate_64bit memory event on
    // device 0 carrying the widening's byte cost.
    bool annotated = false;
    for (const auto& ev : out.trace.memory_events()) {
        if (ev.label == "shard_escalate_64bit") {
            annotated = true;
            EXPECT_EQ(ev.device_id, 0);
            EXPECT_EQ(ev.bytes_freed,
                      (to_size(a.rows) + 1) * (sizeof(wide_t) - sizeof(index_t)));
            EXPECT_EQ(ev.slabs, out.sharded.shards);
        }
    }
    EXPECT_TRUE(annotated) << "shard_escalate_64bit memory event missing from the trace";
}

TEST(SpgemmSharded, TraceRollupStampsEveryEntryWithItsDevice)
{
    const auto a = gen::uniform_random(180, 180, 6, kSeed + 28);
    const auto b = gen::uniform_random(180, 170, 5, kSeed + 29);

    core::ShardOptions sopt;
    sopt.devices = 2;
    sopt.shards = 4;
    sopt.record_trace = true;

    const auto out = core::spgemm_sharded<double>(a, b, sopt);
    ASSERT_TRUE(out.ok());
    ASSERT_FALSE(out.trace.entries().empty());

    bool saw_dev[2] = {false, false};
    int last_device = -1;
    for (const auto& e : out.trace.entries()) {
        ASSERT_GE(e.device_id, 0);
        ASSERT_LT(e.device_id, 2);
        saw_dev[e.device_id] = true;
        // Devices absorb in id order: the roll-up is grouped by device.
        EXPECT_GE(e.device_id, last_device);
        last_device = e.device_id;
    }
    EXPECT_TRUE(saw_dev[0]);
    EXPECT_TRUE(saw_dev[1]);
}

}  // namespace
}  // namespace nsparse
