// Options::validate_inputs — the shared pre-kernel CSR gate. Every
// documented corrupt-CSR shape must be rejected by all four algorithms
// with a PreconditionError naming the violated invariant, before any
// kernel indexes the data.
#include <gtest/gtest.h>

#include <string>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/adversarial.hpp"
#include "matgen/generators.hpp"
#include "sparse/validate.hpp"

namespace nsparse {
namespace {

constexpr const char* kAlgorithms[] = {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"};

void run_validated(const std::string& name, const CsrMatrix<double>& a,
                   const CsrMatrix<double>& b)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    if (name == "CUSP") {
        (void)baseline::esc_spgemm<double>(dev, a, b, 0, /*validate_inputs=*/true);
    } else if (name == "cuSPARSE") {
        (void)baseline::cusparse_spgemm<double>(dev, a, b, 0, /*validate_inputs=*/true);
    } else if (name == "BHSPARSE") {
        (void)baseline::bhsparse_spgemm<double>(dev, a, b, 0, /*validate_inputs=*/true);
    } else {
        core::Options opt;
        opt.validate_inputs = true;
        (void)hash_spgemm<double>(dev, a, b, opt);
    }
}

TEST(ValidateInputs, EveryCorruptionRejectedByEveryAlgorithm)
{
    const auto good = gen::banded(16, 5, 1, 3);
    for (const auto kind : gen::kAllCorruptions) {
        const auto bad = gen::corrupt_csr(kind, 3);
        for (const char* alg : kAlgorithms) {
            // Corrupt A, valid B.
            try {
                run_validated(alg, bad, good);
                ADD_FAILURE() << alg << " accepted corrupt A: " << gen::corruption_name(kind);
            } catch (const PreconditionError& e) {
                EXPECT_EQ(e.invariant(), gen::corruption_invariant(kind))
                    << alg << " / " << gen::corruption_name(kind) << ": " << e.what();
            }
            // Valid A, corrupt B.
            try {
                run_validated(alg, good, bad);
                ADD_FAILURE() << alg << " accepted corrupt B: " << gen::corruption_name(kind);
            } catch (const PreconditionError& e) {
                EXPECT_EQ(e.invariant(), gen::corruption_invariant(kind))
                    << alg << " / " << gen::corruption_name(kind) << ": " << e.what();
            }
        }
    }
}

TEST(ValidateInputs, InnerDimensionMismatchNamed)
{
    const auto a = gen::banded(16, 3, 1, 1);
    auto b = gen::banded(20, 3, 1, 2);
    for (const char* alg : kAlgorithms) {
        try {
            run_validated(alg, a, b);
            ADD_FAILURE() << alg << " accepted mismatched inner dimensions";
        } catch (const PreconditionError& e) {
            EXPECT_EQ(e.invariant(), "inner_dims_agree") << alg;
        }
    }
}

TEST(ValidateInputs, ValidInputPassesEverywhere)
{
    const auto a = gen::banded(24, 4, 1, 7);
    for (const char* alg : kAlgorithms) {
        EXPECT_NO_THROW(run_validated(alg, a, a)) << alg;
    }
}

TEST(ValidateInputs, ErrorMessageNamesMatrixAndInvariant)
{
    const auto bad = gen::corrupt_csr(gen::CsrCorruption::kColumnOutOfRange, 11);
    const auto good = gen::banded(16, 5, 1, 11);
    try {
        run_validated("PROPOSAL", good, bad);
        FAIL() << "corrupt B accepted";
    } catch (const PreconditionError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("matrix B"), std::string::npos) << what;
        EXPECT_NE(what.find("col_in_range"), std::string::npos) << what;
    }
}

TEST(ValidateInputs, HelperIsDirectlyUsable)
{
    // The validator is a plain library entry point, usable before any
    // device exists (e.g. by tools right after parsing an .mtx file).
    const auto good = gen::banded(16, 5, 1, 3);
    EXPECT_NO_THROW(validate_csr_input(good, "A"));
    const auto dup = gen::corrupt_csr(gen::CsrCorruption::kDuplicateColumn, 3);
    EXPECT_THROW(validate_csr_input(dup, "A"), PreconditionError);
    // … and duplicates are tolerated when sortedness is not required.
    EXPECT_NO_THROW(validate_csr_input(dup, "A", /*require_sorted=*/false));
}

}  // namespace
}  // namespace nsparse
