// CSR container unit tests: construction, validation, accessors, sorting.
#include <gtest/gtest.h>

#include "sparse/csr.hpp"

namespace nsparse {
namespace {

TEST(Csr, DefaultIsEmpty)
{
    CsrMatrix<double> m;
    EXPECT_EQ(m.rows, 0);
    EXPECT_EQ(m.cols, 0);
    EXPECT_EQ(m.nnz(), 0);
    m.validate();
}

TEST(Csr, ZeroFactory)
{
    const auto m = CsrMatrix<float>::zero(5, 9);
    EXPECT_EQ(m.rows, 5);
    EXPECT_EQ(m.cols, 9);
    EXPECT_EQ(m.nnz(), 0);
    for (index_t i = 0; i < 5; ++i) { EXPECT_EQ(m.row_nnz(i), 0); }
}

TEST(Csr, IdentityFactory)
{
    const auto m = CsrMatrix<double>::identity(4);
    EXPECT_EQ(m.nnz(), 4);
    for (index_t i = 0; i < 4; ++i) {
        ASSERT_EQ(m.row_nnz(i), 1);
        EXPECT_EQ(m.row_cols(i)[0], i);
        EXPECT_DOUBLE_EQ(m.row_vals(i)[0], 1.0);
    }
    EXPECT_TRUE(m.has_sorted_rows());
}

TEST(Csr, RowAccessors)
{
    const CsrMatrix<double> m(3, 4, {0, 2, 2, 5}, {1, 3, 0, 2, 3}, {1, 2, 3, 4, 5});
    EXPECT_EQ(m.nnz(), 5);
    EXPECT_EQ(m.row_nnz(0), 2);
    EXPECT_EQ(m.row_nnz(1), 0);
    EXPECT_EQ(m.row_nnz(2), 3);
    EXPECT_EQ(m.row_cols(2)[1], 2);
    EXPECT_DOUBLE_EQ(m.row_vals(0)[1], 2.0);
}

TEST(Csr, ByteSize)
{
    const CsrMatrix<double> m(2, 2, {0, 1, 2}, {0, 1}, {1, 1});
    EXPECT_EQ(m.byte_size(), 3 * sizeof(index_t) + 2 * sizeof(index_t) + 2 * sizeof(double));
}

TEST(CsrValidate, RejectsBadRptSize)
{
    CsrMatrix<double> m;
    m.rows = 2;
    m.cols = 2;
    m.rpt = {0, 1};  // needs rows+1 = 3
    m.col = {0};
    m.val = {1.0};
    EXPECT_THROW(m.validate(), PreconditionError);
}

TEST(CsrValidate, RejectsDecreasingRpt)
{
    CsrMatrix<double> m;
    m.rows = 2;
    m.cols = 2;
    m.rpt = {0, 2, 1};
    m.col = {0, 1};
    m.val = {1.0, 1.0};
    EXPECT_THROW(m.validate(), PreconditionError);
}

TEST(CsrValidate, RejectsColumnOutOfRange)
{
    EXPECT_THROW(CsrMatrix<double>(1, 2, {0, 1}, {2}, {1.0}), PreconditionError);
    EXPECT_THROW(CsrMatrix<double>(1, 2, {0, 1}, {-1}, {1.0}), PreconditionError);
}

TEST(CsrValidate, RejectsValColMismatch)
{
    CsrMatrix<double> m;
    m.rows = 1;
    m.cols = 2;
    m.rpt = {0, 1};
    m.col = {0};
    m.val = {1.0, 2.0};
    EXPECT_THROW(m.validate(), PreconditionError);
}

TEST(CsrSort, SortsRowsAndDetectsUnsorted)
{
    CsrMatrix<double> m(2, 5, {0, 3, 5}, {4, 0, 2, 3, 1}, {40, 0, 20, 30, 10});
    EXPECT_FALSE(m.has_sorted_rows());
    m.sort_rows();
    EXPECT_TRUE(m.has_sorted_rows());
    EXPECT_EQ(m.col, (std::vector<index_t>{0, 2, 4, 1, 3}));
    EXPECT_EQ(m.val, (std::vector<double>{0, 20, 40, 10, 30}));
}

TEST(CsrSort, DuplicateColumnsBreakSortedness)
{
    const CsrMatrix<double> m(1, 4, {0, 2}, {2, 2}, {1, 1});
    EXPECT_FALSE(m.has_sorted_rows());
}

TEST(Csr, EqualityOperator)
{
    const auto a = CsrMatrix<double>::identity(3);
    auto b = CsrMatrix<double>::identity(3);
    EXPECT_TRUE(a == b);
    b.val[1] = 2.0;
    EXPECT_FALSE(a == b);
}

TEST(TypeHelpers, ToIndexChecksRange)
{
    EXPECT_EQ(to_index(std::size_t{42}), 42);
    EXPECT_THROW((void)to_index(std::size_t{1} << 40), PreconditionError);
    EXPECT_THROW((void)to_size(-1), PreconditionError);
    EXPECT_EQ(to_size(index_t{7}), 7U);
}

}  // namespace
}  // namespace nsparse
