// Kernel-trace tests: the trace records which kernels ran, which lets us
// assert *behavioural* properties of the algorithm — which thread
// assignment handled which rows, when the global fallback fired, and that
// streams were used.
#include <gtest/gtest.h>

#include <set>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

struct TracedDevice {
    sim::Device dev{sim::DeviceSpec::pascal_p100()};
    TracedDevice() { dev.enable_trace(); }
};

TEST(Trace, ShortRowsUsePwarpKernels)
{
    const auto a = gen::uniform_random(2000, 2000, 2, 1);  // products/row = 4
    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);
    EXPECT_EQ(dev.trace().count("symbolic_pwarp"), 1U);
    EXPECT_EQ(dev.trace().count("numeric_pwarp"), 1U);
    EXPECT_EQ(dev.trace().count("symbolic_tb"), 0U);    // nothing above the border
    EXPECT_EQ(dev.trace().count("symbolic_global"), 0U);
}

TEST(Trace, DisablingPwarpRoutesToTbKernels)
{
    const auto a = gen::uniform_random(2000, 2000, 2, 1);
    core::Options opt;
    opt.use_pwarp = false;
    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a, opt);
    EXPECT_EQ(dev.trace().count("symbolic_pwarp"), 0U);
    EXPECT_GE(dev.trace().count("symbolic_tb"), 1U);
}

TEST(Trace, HubRowTriggersGlobalFallback)
{
    // one full row: squaring it yields products = nnz(A) >> 8192 and an
    // output row wider than 4096 -> both global paths must fire
    constexpr index_t n = 9000;
    CsrMatrix<double> a;
    a.rows = a.cols = n;
    a.rpt.resize(to_size(n) + 1);
    a.rpt[0] = 0;
    for (index_t i = 0; i < n; ++i) { a.rpt[to_size(i) + 1] = n + i; }
    for (index_t j = 0; j < n; ++j) {
        a.col.push_back(j);
        a.val.push_back(1.0);
    }
    for (index_t i = 1; i < n; ++i) {
        a.col.push_back(i);
        a.val.push_back(2.0);
    }
    a.validate();

    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);
    EXPECT_EQ(dev.trace().count("symbolic_global"), 1U);
    EXPECT_EQ(dev.trace().count("numeric_global"), 1U);
}

TEST(Trace, StreamsDistinctPerGroupWhenEnabled)
{
    gen::ScaleFreeParams p;
    p.rows = 3000;
    p.avg_degree = 5.0;
    p.max_degree = 700;
    p.alpha = 1.4;
    p.seed = 2;
    const auto a = gen::scale_free(p);

    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);
    std::set<int> symbolic_streams;
    for (const auto& e : dev.trace().entries()) {
        if (e.name.rfind("symbolic_", 0) == 0) { symbolic_streams.insert(e.stream_id); }
    }
    EXPECT_GE(symbolic_streams.size(), 2U);  // groups launched on own streams

    TracedDevice td2;
    auto& dev2 = td2.dev;
    core::Options opt;
    opt.use_streams = false;
    (void)hash_spgemm<double>(dev2, a, a, opt);
    std::set<int> serial_streams;
    for (const auto& e : dev2.trace().entries()) { serial_streams.insert(e.stream_id); }
    EXPECT_EQ(serial_streams.size(), 1U);
}

TEST(Trace, EntriesCarryScheduleTimes)
{
    const auto a = gen::uniform_random(400, 400, 6, 3);
    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);
    ASSERT_FALSE(dev.trace().empty());
    for (const auto& e : dev.trace().entries()) {
        EXPECT_LE(e.start, e.finish) << e.name;
        EXPECT_GE(e.grid_dim, 0) << e.name;
        EXPECT_GT(e.block_dim, 0) << e.name;
        EXPECT_FALSE(e.phase.empty()) << e.name;
    }
}

TEST(Trace, ReportListsKernelsByWorkShare)
{
    const auto a = gen::uniform_random(600, 600, 8, 4);
    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);
    const std::string rep = dev.trace().report();
    EXPECT_NE(rep.find("count_products"), std::string::npos);
    EXPECT_NE(rep.find('%'), std::string::npos);
}

TEST(Trace, ResetMeasurementClears)
{
    const auto a = gen::uniform_random(100, 100, 4, 5);
    TracedDevice td;
    auto& dev = td.dev;
    (void)hash_spgemm<double>(dev, a, a);  // driver resets at entry, then records
    EXPECT_FALSE(dev.trace().empty());
    dev.reset_measurement();
    EXPECT_TRUE(dev.trace().empty());
}

TEST(Trace, DisabledByDefault)
{
    const auto a = gen::uniform_random(100, 100, 4, 5);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    (void)hash_spgemm<double>(dev, a, a);
    EXPECT_TRUE(dev.trace().empty());
}

}  // namespace
}  // namespace nsparse
