// Rows engineered to land exactly on every Table-I group boundary: the
// full pipeline must stay correct at the edges where kernels switch
// (pwarp<->TB, shared table sizes, global fallback), in both precisions.
#include <gtest/gtest.h>

#include <set>

#include "core/grouping.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "matgen/rng.hpp"
#include "sparse/equality.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

struct BoundaryFixture {
    CsrMatrix<double> a;  ///< block-diagonal-ish A over shared B pattern
    CsrMatrix<double> b;
};

/// Builds A (rows with the requested product counts) and a B with constant
/// 32-nonzero rows, so products(row i) = 32 * nnzA(row i) exactly.
BoundaryFixture build(const std::vector<index_t>& products_per_row, std::uint64_t seed)
{
    constexpr index_t kBRow = 32;
    index_t max_k = 1;
    for (const index_t p : products_per_row) {
        NSPARSE_EXPECTS(p % kBRow == 0, "test wants multiples of 32");
        max_k = std::max(max_k, p / kBRow);
    }
    const index_t n = std::max<index_t>(to_index(products_per_row.size()), max_k + kBRow + 1);

    BoundaryFixture f;
    f.b = gen::banded(n, kBRow, 1, seed);

    f.a.rows = to_index(products_per_row.size());
    f.a.cols = n;
    f.a.rpt.assign(products_per_row.size() + 1, 0);
    gen::Pcg32 rng(seed + 1);
    for (std::size_t i = 0; i < products_per_row.size(); ++i) {
        const index_t k = products_per_row[i] / kBRow;
        for (index_t j = 0; j < k; ++j) {
            // spread targets so output rows are wide (exercises the tables)
            f.a.col.push_back((j * (n / std::max<index_t>(k, 1))) % n);
            f.a.val.push_back(rng.uniform(0.5, 1.5));
        }
        f.a.rpt[i + 1] = to_index(f.a.col.size());
    }
    f.a.validate();
    return f;
}

TEST(GroupBoundaries, SymbolicBoundariesExact)
{
    // products exactly at every symbolic boundary of Table I
    const std::vector<index_t> products{32,   64,   512,  544,  1024, 1056,
                                        2048, 2080, 4096, 4128, 8192, 8224};
    const auto f = build(products, 7);

    // verify the engineered product counts are exact
    const auto per_row = intermediate_products_per_row(f.a, f.b);
    for (std::size_t i = 0; i < products.size(); ++i) {
        ASSERT_EQ(per_row[i], products[i]) << i;
    }

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<double>(dev, f.a, f.b);
    const auto ref = reference_spgemm(f.a, f.b);
    const auto diff = compare_csr(out.matrix, ref, 1e-10);
    EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GroupBoundaries, EveryGroupPopulatedAndCorrect)
{
    // a matrix whose rows hit all 7 symbolic groups at once
    std::vector<index_t> products;
    for (const index_t p : {32, 64, 288, 544, 1568, 3104, 6176, 9216, 12288}) {
        products.push_back(p);
        products.push_back(p);  // two rows per class
    }
    const auto f = build(products, 11);

    const auto policy = core::GroupingPolicy::symbolic(sim::DeviceSpec::pascal_p100());
    const auto per_row = intermediate_products_per_row(f.a, f.b);
    std::set<int> groups_hit;
    for (const index_t p : per_row) { groups_hit.insert(policy.group_of(p)); }
    EXPECT_GE(groups_hit.size(), 6U);  // everything except maybe one class

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<double>(dev, f.a, f.b);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(f.a, f.b), 1e-10));
}

TEST(GroupBoundaries, FloatPrecisionSameBoundaries)
{
    const std::vector<index_t> products{32, 64, 4096, 4128, 8192, 8224};
    const auto f = build(products, 13);
    const auto af = convert_values<float>(f.a);
    const auto bf = convert_values<float>(f.b);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto out = hash_spgemm<float>(dev, af, bf);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(af, bf), 1e-3));
}

TEST(GroupBoundaries, BoundaryRowsNeverFault)
{
    // Rows sitting exactly on every shared-table limit must complete on
    // their first kernel attempt: the grouping sizes each table for its
    // boundary, so no boundary row may trip the fault containment.
    const std::vector<index_t> products{32,   64,   512,  544,  1024, 1056,
                                        2048, 2080, 4096, 4128, 8192, 8224};
    const auto f = build(products, 23);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, f.a, f.b);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(f.a, f.b), 1e-10));
    EXPECT_EQ(out.stats.faulted_rows, 0);
    EXPECT_EQ(out.stats.row_retries, 0);
    EXPECT_EQ(out.stats.host_fallback_rows, 0);
    EXPECT_EQ(dev.fault_events_recorded(), 0U);
}

TEST(GroupBoundaries, OnePastSharedMaxRoutesToGroupZeroWithoutFault)
{
    // The largest bounded symbolic group ends at 8192 products; one past
    // it must be classified into the unbounded group 0 and complete there
    // without engaging the per-row fault machinery.
    const auto policy = core::GroupingPolicy::symbolic(sim::DeviceSpec::pascal_p100());
    index_t largest_bounded = 0;
    for (const auto& g : policy.groups) {
        if (g.max_count > largest_bounded) { largest_bounded = g.max_count; }
    }
    ASSERT_GT(largest_bounded, 0);
    EXPECT_NE(policy.group_of(largest_bounded), 0);
    EXPECT_EQ(policy.group_of(largest_bounded + 1), 0);

    // The fixture's products are multiples of 32; the next count past the
    // boundary it can realise is +32, still group 0.
    const auto f = build({largest_bounded, largest_bounded + 32}, 29);
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    dev.enable_trace();
    const auto out = hash_spgemm<double>(dev, f.a, f.b);
    EXPECT_TRUE(approx_equal(out.matrix, reference_spgemm(f.a, f.b), 1e-10));
    EXPECT_EQ(out.stats.faulted_rows, 0);
    EXPECT_EQ(dev.fault_events_recorded(), 0U);
}

TEST(GroupBoundaries, WithoutStreamsSameResults)
{
    const std::vector<index_t> products{32, 512, 1024, 8224};
    const auto f = build(products, 17);
    core::Options with;
    core::Options without;
    without.use_streams = false;
    sim::Device d1(sim::DeviceSpec::pascal_p100());
    sim::Device d2(sim::DeviceSpec::pascal_p100());
    const auto c1 = hash_spgemm<double>(d1, f.a, f.b, with);
    const auto c2 = hash_spgemm<double>(d2, f.a, f.b, without);
    EXPECT_TRUE(c1.matrix == c2.matrix);
}

}  // namespace
}  // namespace nsparse
