// Randomized scheduler invariants: for arbitrary kernel batches the
// makespan must respect work conservation, span floors, launch overhead
// and stream ordering — and never livelock.
#include <gtest/gtest.h>

#include "gpusim/scheduler.hpp"
#include "matgen/rng.hpp"

namespace nsparse::sim {
namespace {

struct Fuzz {
    std::vector<KernelRecord> kernels;
    double total_work = 0.0;
    double max_span_cycles = 0.0;
};

Fuzz random_batch(std::uint64_t seed)
{
    gen::Pcg32 rng(seed);
    Fuzz f;
    const int n_kernels = 1 + static_cast<int>(rng.bounded(6));
    for (int k = 0; k < n_kernels; ++k) {
        KernelRecord rec;
        rec.name = "fuzz" + std::to_string(k);
        rec.stream_id = static_cast<int>(rng.bounded(3));
        const int block_choices[] = {32, 64, 128, 256, 512, 1024};
        rec.cfg.block_dim = block_choices[rng.bounded(6)];
        rec.cfg.grid_dim = 1 + to_index(rng.bounded(300));
        rec.cfg.shared_bytes = to_size(rng.bounded(48)) * 1024;
        rec.blocks.resize(to_size(rec.cfg.grid_dim));
        for (auto& b : rec.blocks) {
            b.work = rng.uniform(0.0, 1e6);
            b.span = rng.uniform(0.0, b.work);  // span cannot exceed work
            f.total_work += b.work;
            f.max_span_cycles = std::max(f.max_span_cycles, b.span);
        }
        f.kernels.push_back(std::move(rec));
    }
    return f;
}

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, InvariantsHold)
{
    const auto spec = DeviceSpec::pascal_p100();
    const CostModel cost;
    const auto f = random_batch(GetParam());
    const auto r = schedule(f.kernels, spec, cost);

    // 1. work conservation: the device cannot retire faster than all SMs.
    const double work_floor =
        f.total_work / (spec.sm_rate() * spec.num_sms);
    EXPECT_GE(r.makespan * (1.0 + 1e-9), work_floor);

    // 2. span floor: no block finishes faster than its critical path.
    const double span_floor = f.max_span_cycles / (spec.clock_hz() * spec.efficiency);
    EXPECT_GE(r.makespan * (1.0 + 1e-9), span_floor);

    // 3. launch overhead floor.
    EXPECT_GE(r.makespan,
              static_cast<double>(f.kernels.size()) * cost.launch_overhead_us * 1e-6 * 0.999);

    // 4. per-kernel timing sanity + same-stream ordering.
    for (std::size_t i = 0; i < r.kernels.size(); ++i) {
        EXPECT_LE(r.kernels[i].ready, r.kernels[i].start + 1e-12);
        EXPECT_LE(r.kernels[i].start, r.kernels[i].finish + 1e-12);
        for (std::size_t j = 0; j < i; ++j) {
            if (f.kernels[i].stream_id == f.kernels[j].stream_id) {
                EXPECT_GE(r.kernels[i].start + 1e-12, r.kernels[j].finish)
                    << "stream order violated: kernels " << j << " -> " << i;
            }
        }
    }

    // 5. determinism.
    const auto r2 = schedule(f.kernels, spec, cost);
    EXPECT_DOUBLE_EQ(r.makespan, r2.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U, 9U, 10U, 11U, 12U,
                                           13U, 14U, 15U, 16U));

TEST(SchedulerMonotonicity, MoreWorkNeverFaster)
{
    const auto spec = DeviceSpec::pascal_p100();
    const CostModel cost;
    auto f = random_batch(42);
    const double before = schedule(f.kernels, spec, cost).makespan;
    for (auto& k : f.kernels) {
        for (auto& b : k.blocks) { b.work *= 2.0; }
    }
    const double after = schedule(f.kernels, spec, cost).makespan;
    EXPECT_GE(after, before);
}

TEST(SchedulerMonotonicity, MoreSmsNeverSlower)
{
    auto spec = DeviceSpec::pascal_p100();
    const CostModel cost;
    const auto f = random_batch(43);
    const double p100 = schedule(f.kernels, spec, cost).makespan;
    spec.num_sms *= 2;
    const double doubled = schedule(f.kernels, spec, cost).makespan;
    EXPECT_LE(doubled, p100 * (1.0 + 1e-9));
}

}  // namespace
}  // namespace nsparse::sim
