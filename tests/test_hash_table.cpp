// Hash-table primitive tests (paper Algorithm 5): probing, saturation,
// determinism, pow2 vs modulus equivalence, numeric accumulation.
#include <gtest/gtest.h>

#include <set>

#include "core/hash_table.hpp"
#include "matgen/rng.hpp"

namespace nsparse::core {
namespace {

TEST(Pow2Helpers, NextPrevPow2)
{
    EXPECT_EQ(next_pow2(1), 1);
    EXPECT_EQ(next_pow2(2), 2);
    EXPECT_EQ(next_pow2(3), 4);
    EXPECT_EQ(next_pow2(4095), 4096);
    EXPECT_EQ(next_pow2(4097), 8192);
    EXPECT_EQ(next_pow2(0), 1);
    EXPECT_EQ(prev_pow2(1), 1);
    EXPECT_EQ(prev_pow2(12288), 8192);
    EXPECT_EQ(prev_pow2(4096), 4096);
    EXPECT_THROW((void)prev_pow2(0), PreconditionError);
}

TEST(HashInsert, InsertFindAndCount)
{
    std::vector<index_t> table(64, kEmptySlot);
    auto r = hash_insert_key(std::span<index_t>(table), 17);
    EXPECT_TRUE(r.inserted);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.probes, 1);

    r = hash_insert_key(std::span<index_t>(table), 17);
    EXPECT_FALSE(r.inserted);
    EXPECT_TRUE(r.found);
}

TEST(HashInsert, LinearProbingResolvesCollisions)
{
    // keys k and k + 64/gcd collide under (key*107) & 63 when chosen so.
    std::vector<index_t> table(8, kEmptySlot);
    // find two keys with same slot
    index_t k1 = 0;
    index_t k2 = -1;
    const index_t s1 = hash_slot(k1, 8, true);
    for (index_t k = 1; k < 100; ++k) {
        if (hash_slot(k, 8, true) == s1) {
            k2 = k;
            break;
        }
    }
    ASSERT_GE(k2, 0);
    (void)hash_insert_key(std::span<index_t>(table), k1);
    const auto r = hash_insert_key(std::span<index_t>(table), k2);
    EXPECT_TRUE(r.inserted);
    EXPECT_GT(r.probes, 1);  // had to walk past the collision
}

TEST(HashInsert, SaturationReportsFull)
{
    std::vector<index_t> table(4, kEmptySlot);
    for (index_t k = 0; k < 4; ++k) {
        EXPECT_TRUE(hash_insert_key(std::span<index_t>(table), k * 13 + 1).inserted);
    }
    const auto r = hash_insert_key(std::span<index_t>(table), 997);
    EXPECT_TRUE(r.full);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.probes, 4);

    // re-inserting an existing key still succeeds at full load
    EXPECT_TRUE(hash_insert_key(std::span<index_t>(table), 1).found);
}

TEST(HashInsert, CountsDistinctKeysExactly)
{
    gen::Pcg32 rng(1);
    std::vector<index_t> table(1024, kEmptySlot);
    std::set<index_t> distinct;
    index_t inserted = 0;
    for (int i = 0; i < 600; ++i) {
        const auto key = to_index(rng.bounded(400));
        distinct.insert(key);
        if (hash_insert_key(std::span<index_t>(table), key).inserted) { ++inserted; }
    }
    EXPECT_EQ(to_size(inserted), distinct.size());
}

TEST(HashInsert, Pow2AndModulusAgreeOnPow2Tables)
{
    std::vector<index_t> t1(256, kEmptySlot);
    std::vector<index_t> t2(256, kEmptySlot);
    gen::Pcg32 rng(2);
    for (int i = 0; i < 200; ++i) {
        const auto key = to_index(rng.bounded(100000));
        const auto r1 = hash_insert_key(std::span<index_t>(t1), key, true);
        const auto r2 = hash_insert_key(std::span<index_t>(t2), key, false);
        EXPECT_EQ(r1.inserted, r2.inserted);
        EXPECT_EQ(r1.probes, r2.probes);
    }
    EXPECT_EQ(t1, t2);
}

TEST(HashInsert, NonPow2TableWorks)
{
    std::vector<index_t> table(100, kEmptySlot);
    index_t n = 0;
    for (index_t k = 0; k < 100; ++k) {
        if (hash_insert_key(std::span<index_t>(table), k * 7919, false).inserted) { ++n; }
    }
    EXPECT_EQ(n, 100);  // fills completely without losing keys
}

TEST(HashAccumulate, SumsValuesUnderSameKey)
{
    std::vector<index_t> keys(32, kEmptySlot);
    std::vector<double> vals(32, 0.0);
    auto ks = std::span<index_t>(keys);
    auto vs = std::span<double>(vals);
    EXPECT_TRUE(hash_accumulate(ks, vs, 5, 1.5).inserted);
    EXPECT_TRUE(hash_accumulate(ks, vs, 5, 2.5).found);
    EXPECT_TRUE(hash_accumulate(ks, vs, 9, 1.0).inserted);

    double sum5 = 0.0;
    for (std::size_t s = 0; s < keys.size(); ++s) {
        if (keys[s] == 5) { sum5 = vals[s]; }
    }
    EXPECT_DOUBLE_EQ(sum5, 4.0);
}

TEST(HashAccumulate, MismatchedSpansThrow)
{
    std::vector<index_t> keys(8, kEmptySlot);
    std::vector<double> vals(4, 0.0);
    EXPECT_THROW((void)hash_accumulate(std::span<index_t>(keys), std::span<double>(vals),
                                       index_t{1}, 1.0),
                 PreconditionError);
}

TEST(HashAccumulate, FullTableReported)
{
    std::vector<index_t> keys(2, kEmptySlot);
    std::vector<float> vals(2, 0.0F);
    auto ks = std::span<index_t>(keys);
    auto vs = std::span<float>(vals);
    (void)hash_accumulate(ks, vs, 1, 1.0F);
    (void)hash_accumulate(ks, vs, 2, 1.0F);
    EXPECT_TRUE(hash_accumulate(ks, vs, 3, 1.0F).full);
}

TEST(HashSlot, MatchesPaperFormula)
{
    // hash = (key * HASH_SCAL) % t_size
    EXPECT_EQ(hash_slot(10, 1024, true),
              to_index((10ULL * kHashScale) % 1024ULL));
    EXPECT_EQ(hash_slot(12345, 1000, false),
              to_index((12345ULL * kHashScale) % 1000ULL));
}

}  // namespace
}  // namespace nsparse::core
