// End-to-end correctness of the paper's hash SpGEMM against the sequential
// Gustavson reference, across generators, precisions and option settings.
#include <gtest/gtest.h>

#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/equality.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/reference_spgemm.hpp"
#include "sparse/transpose.hpp"

namespace nsparse {
namespace {

sim::Device p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

template <ValueType T>
void expect_matches_reference(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                              const core::Options& opt = {})
{
    sim::Device dev = p100();
    const auto out = hash_spgemm<T>(dev, a, b, opt);
    const auto ref = reference_spgemm(a, b);
    const auto diff = compare_csr(out.matrix, ref, 2e-5);
    EXPECT_FALSE(diff.has_value()) << *diff;
    EXPECT_EQ(out.stats.intermediate_products, total_intermediate_products(a, b));
    EXPECT_EQ(out.stats.nnz_c, ref.nnz());
    EXPECT_GT(out.stats.seconds, 0.0);
}

TEST(HashSpgemm, TinyHandComputed)
{
    // A = [1 2; 0 3], B = [0 1; 4 0] -> C = [8 1; 12 0]
    CsrMatrix<double> a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
    CsrMatrix<double> b(2, 2, {0, 1, 2}, {1, 0}, {1, 4});
    sim::Device dev = p100();
    const auto c = hash_spgemm<double>(dev, a, b).matrix;
    ASSERT_EQ(c.rows, 2);
    ASSERT_EQ(c.cols, 2);
    ASSERT_EQ(c.nnz(), 3);
    EXPECT_EQ(c.col, (std::vector<index_t>{0, 1, 0}));
    EXPECT_DOUBLE_EQ(c.val[0], 8.0);
    EXPECT_DOUBLE_EQ(c.val[1], 1.0);
    EXPECT_DOUBLE_EQ(c.val[2], 12.0);
}

TEST(HashSpgemm, EmptyMatrix)
{
    const auto a = CsrMatrix<double>::zero(10, 10);
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, EmptyRowsAndColumns)
{
    // Only row 3 and column 7 populated.
    CsrMatrix<double> a(10, 10, {0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2}, {2, 7}, {1.5, -2.0});
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, IdentityTimesIdentity)
{
    const auto i = CsrMatrix<double>::identity(257);
    expect_matches_reference(i, i);
}

TEST(HashSpgemm, RectangularShapes)
{
    const auto a = gen::uniform_random(40, 70, 6, 1);
    const auto b = gen::uniform_random(70, 25, 4, 2);
    expect_matches_reference(a, b);
}

TEST(HashSpgemm, MismatchedInnerDimensionThrows)
{
    const auto a = gen::uniform_random(10, 20, 3, 1);
    const auto b = gen::uniform_random(30, 10, 3, 2);
    sim::Device dev = p100();
    EXPECT_THROW((void)hash_spgemm<double>(dev, a, b), PreconditionError);
}

TEST(HashSpgemm, SquareUniformDouble)
{
    const auto a = gen::uniform_random(500, 500, 12, 3);
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, SquareUniformFloat)
{
    const auto a = convert_values<float>(gen::uniform_random(500, 500, 12, 3));
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, DenseRowsHitLargeGroups)
{
    // ~160 nnz/row squared -> ~6400 products/row: exercises TB/ROW groups
    // 1-2 in the symbolic phase and mid groups in numeric.
    gen::FemParams p;
    p.nodes = 120;
    p.block_size = 4;
    p.avg_blocks = 40;
    p.bandwidth = 60;
    p.seed = 5;
    const auto a = gen::fem_like(p);
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, HubRowExercisesGlobalFallback)
{
    // One row with every column: squaring gives products(row) = nnz(A) >>
    // 8192, forcing the group-0 shared attempt to fail and the global pass
    // to run; output row nnz > 4096 also exercises numeric group 0.
    constexpr index_t n = 9000;
    CsrMatrix<double> a;
    a.rows = a.cols = n;
    a.rpt.resize(to_size(n) + 1);
    // row 0: all columns; other rows: diagonal
    a.rpt[0] = 0;
    for (index_t i = 0; i < n; ++i) { a.rpt[to_size(i) + 1] = n + i; }
    for (index_t j = 0; j < n; ++j) {
        a.col.push_back(j);
        a.val.push_back(1.0);
    }
    for (index_t i = 1; i < n; ++i) {
        a.col.push_back(i);
        a.val.push_back(2.0);
    }
    a.validate();
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, PowerLawMatrix)
{
    gen::ScaleFreeParams p;
    p.rows = 3000;
    p.avg_degree = 4.0;
    p.max_degree = 600;
    p.alpha = 1.5;
    p.seed = 9;
    const auto a = gen::scale_free(p);
    expect_matches_reference(a, a);
}

TEST(HashSpgemm, WithoutStreams)
{
    core::Options opt;
    opt.use_streams = false;
    const auto a = gen::uniform_random(400, 400, 10, 4);
    expect_matches_reference(a, a, opt);
}

TEST(HashSpgemm, WithoutPwarp)
{
    core::Options opt;
    opt.use_pwarp = false;
    const auto a = gen::uniform_random(400, 400, 3, 5);
    expect_matches_reference(a, a, opt);
}

class PwarpWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PwarpWidthTest, AllWidthsCorrect)
{
    core::Options opt;
    opt.pwarp_width = GetParam();
    const auto a = gen::uniform_random(600, 600, 4, 6);
    expect_matches_reference(a, a, opt);
}

INSTANTIATE_TEST_SUITE_P(Widths, PwarpWidthTest, ::testing::Values(1, 2, 4, 8, 16));

// Property sweep: (generator kind, size, degree, seed) grid.
struct SweepParam {
    int kind;
    index_t n;
    index_t degree;
    std::uint64_t seed;
};

class SpgemmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SpgemmSweep, MatchesReference)
{
    const auto [kind, n, degree, seed] = GetParam();
    CsrMatrix<double> a;
    switch (kind) {
        case 0: a = gen::uniform_random(n, n, degree, seed); break;
        case 1: {
            gen::ScaleFreeParams p;
            p.rows = n;
            p.avg_degree = static_cast<double>(degree);
            p.max_degree = n / 4;
            p.seed = seed;
            a = gen::scale_free(p);
            break;
        }
        default: {
            gen::RmatParams p;
            p.scale = 0;
            while ((index_t{1} << p.scale) < n) { ++p.scale; }
            p.edges_per_vertex = static_cast<double>(degree);
            p.seed = seed;
            a = gen::rmat(p);
            break;
        }
    }
    expect_matches_reference(a, a);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpgemmSweep,
    ::testing::Values(SweepParam{0, 64, 2, 1}, SweepParam{0, 64, 8, 2},
                      SweepParam{0, 256, 5, 3}, SweepParam{0, 1024, 3, 4},
                      SweepParam{0, 1024, 20, 5}, SweepParam{1, 128, 3, 6},
                      SweepParam{1, 512, 6, 7}, SweepParam{1, 2048, 4, 8},
                      SweepParam{2, 128, 4, 9}, SweepParam{2, 512, 6, 10},
                      SweepParam{2, 2048, 5, 11}));

// Algebraic properties.

TEST(HashSpgemmProperties, MultiplyByIdentityIsIdentityMap)
{
    const auto a = gen::uniform_random(300, 300, 7, 12);
    const auto i = CsrMatrix<double>::identity(300);
    sim::Device dev = p100();
    auto ai = hash_spgemm<double>(dev, a, i).matrix;
    auto sorted_a = a;
    sorted_a.sort_rows();
    EXPECT_TRUE(approx_equal(ai, sorted_a, 1e-12));
    auto ia = hash_spgemm<double>(dev, i, a).matrix;
    EXPECT_TRUE(approx_equal(ia, sorted_a, 1e-12));
}

TEST(HashSpgemmProperties, TransposeIdentity)
{
    // (B^T A^T)^T == A B
    const auto a = gen::uniform_random(150, 200, 5, 13);
    const auto b = gen::uniform_random(200, 120, 6, 14);
    sim::Device dev = p100();
    const auto ab = hash_spgemm<double>(dev, a, b).matrix;
    const auto btat = hash_spgemm<double>(dev, transpose(b), transpose(a)).matrix;
    EXPECT_TRUE(approx_equal(ab, transpose(btat), 1e-10));
}

TEST(HashSpgemmProperties, NnzNeverExceedsIntermediateProducts)
{
    for (const std::uint64_t seed : {21U, 22U, 23U}) {
        const auto a = gen::uniform_random(400, 400, 6, seed);
        sim::Device dev = p100();
        const auto out = hash_spgemm<double>(dev, a, a);
        EXPECT_LE(out.stats.nnz_c, out.stats.intermediate_products);
        EXPECT_GE(out.stats.nnz_c, 0);
    }
}

TEST(HashSpgemmProperties, DeterministicAcrossRuns)
{
    const auto a = gen::uniform_random(300, 300, 8, 30);
    sim::Device d1 = p100();
    sim::Device d2 = p100();
    const auto c1 = hash_spgemm<double>(d1, a, a);
    const auto c2 = hash_spgemm<double>(d2, a, a);
    EXPECT_TRUE(c1.matrix == c2.matrix);
    EXPECT_DOUBLE_EQ(c1.stats.seconds, c2.stats.seconds);
}

TEST(HashSpgemmProperties, OutputRowsAreSorted)
{
    const auto a = gen::uniform_random(500, 500, 9, 31);
    sim::Device dev = p100();
    EXPECT_TRUE(hash_spgemm<double>(dev, a, a).matrix.has_sorted_rows());
}

TEST(HashSpgemmStats, PhasesSumToTotal)
{
    const auto a = gen::uniform_random(400, 400, 10, 32);
    sim::Device dev = p100();
    const auto s = hash_spgemm<double>(dev, a, a).stats;
    EXPECT_NEAR(s.setup_seconds + s.count_seconds + s.estimate_seconds + s.calc_seconds +
                    s.malloc_seconds,
                s.seconds, 1e-12);
    EXPECT_EQ(s.estimate_seconds, 0.0) << "exact planning must not run the estimator";
    EXPECT_GT(s.peak_bytes, 0U);
    EXPECT_GT(s.gflops(), 0.0);
}

TEST(HashSpgemmStats, MultiplyConvenienceWrapper)
{
    const auto a = gen::uniform_random(100, 100, 5, 33);
    const auto c = multiply<double>(a, a);
    EXPECT_TRUE(approx_equal(c, reference_spgemm(a, a)));
}

}  // namespace
}  // namespace nsparse
