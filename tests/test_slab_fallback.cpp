// Row-slab OOM fallback of hash_spgemm: under memory pressure the multiply
// must degrade to row slabs and produce a bit-identical result, restore
// the allocator's live bytes on success and failure, and report what it
// did (stats fields, trace memory events, structured DeviceOutOfMemory) —
// the paper's Table III asymmetry (the proposal completes where the
// baselines print "-") made mechanical.
#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/esc.hpp"
#include "core/memory_estimator.hpp"
#include "core/spgemm.hpp"
#include "matgen/generators.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/equality.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

CsrMatrix<double> pressure_matrix() { return gen::uniform_random(400, 400, 8, 3); }

/// Peak bytes of the unchunked multiply at unlimited capacity.
std::size_t unchunked_peak(const CsrMatrix<double>& a)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    return hash_spgemm<double>(dev, a, a).stats.peak_bytes;
}

sim::Device device_with_capacity(std::size_t bytes)
{
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = bytes;
    return sim::Device(spec);
}

TEST(SlabFallback, CompletesBitIdenticalBelowUnchunkedPeak)
{
    const auto a = pressure_matrix();
    CsrMatrix<double> full;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        full = hash_spgemm<double>(dev, a, a).matrix;
    }

    const std::size_t peak = unchunked_peak(a);
    sim::Device dev = device_with_capacity(peak * 3 / 4);
    const std::size_t live_before = dev.allocator().live_bytes();
    const auto out = hash_spgemm<double>(dev, a, a);

    // Bit-identical assembly: same structure AND the same value bits.
    EXPECT_EQ(out.matrix.rpt, full.rpt);
    EXPECT_EQ(out.matrix.col, full.col);
    EXPECT_EQ(out.matrix.val, full.val);

    EXPECT_GE(out.stats.fallback_slabs, 2);
    EXPECT_GT(out.stats.fallback_bytes_freed, 0U);
    EXPECT_EQ(dev.allocator().live_bytes(), live_before);
}

TEST(SlabFallback, BaselinesStillThrowAtThatCapacity)
{
    // The Table III asymmetry: at a capacity where the proposal completes
    // via slabs, the upper-bound-buffer baselines still go out of memory.
    const auto a = pressure_matrix();
    const std::size_t capacity = unchunked_peak(a) * 3 / 4;
    {
        sim::Device dev = device_with_capacity(capacity);
        EXPECT_NO_THROW((void)hash_spgemm<double>(dev, a, a));
    }
    {
        sim::Device dev = device_with_capacity(capacity);
        EXPECT_THROW((void)baseline::esc_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
    {
        sim::Device dev = device_with_capacity(capacity);
        EXPECT_THROW((void)baseline::bhsparse_spgemm<double>(dev, a, a), DeviceOutOfMemory);
    }
}

TEST(SlabFallback, ForcedSlabsMatchUnchunkedResult)
{
    const auto a = pressure_matrix();
    CsrMatrix<double> full;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        full = hash_spgemm<double>(dev, a, a).matrix;
    }
    for (const int k : {2, 3, 7}) {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        core::Options opt;
        opt.force_slabs = k;
        const auto out = hash_spgemm<double>(dev, a, a, opt);
        EXPECT_EQ(out.matrix.rpt, full.rpt) << k;
        EXPECT_EQ(out.matrix.col, full.col) << k;
        EXPECT_EQ(out.matrix.val, full.val) << k;
        EXPECT_GE(out.stats.fallback_slabs, k) << k;
        EXPECT_EQ(dev.allocator().live_bytes(), 0U) << k;
    }
}

TEST(SlabFallback, StatsStayConsistentUnderFallback)
{
    const auto a = pressure_matrix();
    wide_t products_full = 0;
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        products_full = hash_spgemm<double>(dev, a, a).stats.intermediate_products;
    }
    sim::Device dev = device_with_capacity(unchunked_peak(a) * 3 / 4);
    const auto out = hash_spgemm<double>(dev, a, a);
    EXPECT_EQ(out.stats.intermediate_products, products_full);
    EXPECT_EQ(out.stats.nnz_c, out.matrix.nnz());
    EXPECT_GT(out.stats.seconds, 0.0);
    EXPECT_LE(out.stats.peak_bytes, dev.allocator().capacity());
}

TEST(SlabFallback, RecordsMemoryEventsInTrace)
{
    const auto a = pressure_matrix();
    sim::Device dev = device_with_capacity(unchunked_peak(a) * 3 / 4);
    dev.enable_trace();
    (void)hash_spgemm<double>(dev, a, a);
    EXPECT_GE(dev.memory_events_recorded(), 1U);
    const auto& events = dev.trace().memory_events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().label, "slab_fallback");
    EXPECT_GT(events.front().bytes_freed, 0U);
    // The rendered profile mentions the events.
    EXPECT_NE(dev.trace().report().find("slab_fallback"), std::string::npos);
}

TEST(SlabFallback, StructuredErrorWhenBCannotFit)
{
    const auto a = pressure_matrix();
    // Not even B fits: slabbing cannot help, and the error says so.
    sim::Device dev = device_with_capacity(a.byte_size() / 2);
    const std::size_t live_before = dev.allocator().live_bytes();
    try {
        (void)hash_spgemm<double>(dev, a, a);
        FAIL() << "expected DeviceOutOfMemory";
    } catch (const DeviceOutOfMemory& e) {
        EXPECT_GE(e.slab_level(), 1);
        EXPECT_NE(std::string(e.what()).find("slab"), std::string::npos);
    }
    EXPECT_EQ(dev.allocator().live_bytes(), live_before);
}

TEST(SlabFallback, StructuredErrorReportsSlabLevelWhenSlabsDontFit)
{
    const auto a = pressure_matrix();
    // B fits with a sliver to spare, but no slab of A's rows ever will:
    // the fallback must bottom out and report how deep it got.
    sim::Device dev = device_with_capacity(a.byte_size() + 256);
    const std::size_t live_before = dev.allocator().live_bytes();
    try {
        (void)hash_spgemm<double>(dev, a, a);
        FAIL() << "expected DeviceOutOfMemory";
    } catch (const DeviceOutOfMemory& e) {
        EXPECT_GE(e.slab_level(), 1);
    }
    EXPECT_EQ(dev.allocator().live_bytes(), live_before);
}

TEST(SlabFallback, DisabledFallbackPreservesSeedBehaviour)
{
    const auto a = pressure_matrix();
    sim::Device dev = device_with_capacity(unchunked_peak(a) * 3 / 4);
    core::Options opt;
    opt.slab_fallback = false;
    const std::size_t live_before = dev.allocator().live_bytes();
    EXPECT_THROW((void)hash_spgemm<double>(dev, a, a, opt), DeviceOutOfMemory);
    EXPECT_EQ(dev.allocator().live_bytes(), live_before);
}

TEST(SlabFallback, SliceAndAppendRoundTrip)
{
    const auto a = gen::uniform_random(123, 77, 6, 9);
    CsrMatrix<double> rebuilt;
    for (index_t r0 = 0; r0 < a.rows; r0 += 50) {
        const index_t r1 = std::min<index_t>(a.rows, r0 + 50);
        append_rows(rebuilt, slice_rows(a, r0, r1));
    }
    EXPECT_EQ(rebuilt.rows, a.rows);
    EXPECT_EQ(rebuilt.cols, a.cols);
    EXPECT_EQ(rebuilt.rpt, a.rpt);
    EXPECT_EQ(rebuilt.col, a.col);
    EXPECT_EQ(rebuilt.val, a.val);
    rebuilt.validate();
}

}  // namespace
}  // namespace nsparse
