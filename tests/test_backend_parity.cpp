// Backend-parity harness (ctest labels: backend, tsan, faults).
//
// The native CPU backend's contract is byte-identity: for every plan mode,
// thread count, fault-injection pattern and memory-pressure level, the CSR
// it produces must equal the simulated backend's output exactly — same row
// pointers, same column order, same bits in every value (core/backend.hpp
// states the argument; this file enforces it). The sweep runs the
// adversarial pathology stream (hash-adversarial columns, duplicate and
// unsorted rows, dense rows, group-boundary rows) through:
//
//   * backend x thread-count {1, 2, 8} differential runs under exact
//     planning,
//   * backend x plan-mode {exact, estimated, hybrid} differential runs,
//     including misprediction-heavy starved-sample settings,
//   * the fault-injection hooks (symbolic + numeric row faults) and the
//     allocator FaultPlan composed with the native path — recovery must
//     reproduce the same bytes and the same containment tallies,
//   * the row-slab OOM ladder on a shrunken-capacity device,
//   * the Session front end with Options::backend = kNative, including a
//     deterministic sim-seconds deadline (native elapsed time advances
//     through the allocation hooks only, so the budget trips at the same
//     phase boundary on every run),
//   * the estimation-path clean-run invariant and the quiet-knob API.
#include <gtest/gtest.h>

#include <vector>

#include "core/backend.hpp"
#include "core/spgemm.hpp"
#include "gpusim/executor.hpp"
#include "matgen/adversarial.hpp"
#include "matgen/generators.hpp"
#include "service/session.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr std::uint64_t kSeed = 20170814;  // nsparse @ ICPP'17
constexpr int kThreadSweep[] = {1, 2, 8};

sim::Device p100() { return sim::Device(sim::DeviceSpec::pascal_p100()); }

core::Options native_opt(int threads, core::Options base = {})
{
    base.backend = core::BackendKind::kNative;
    base.executor_threads = threads;
    return base;
}

/// The ground truth every configuration must reproduce bit-for-bit: one
/// single-threaded simulated exact run.
SpgemmOutput<double> simulated_reference(const CsrMatrix<double>& a,
                                         const core::Options& base = {})
{
    core::Options opt = base;
    opt.backend = core::BackendKind::kSimulated;
    opt.executor_threads = 1;
    sim::Device dev = p100();
    return hash_spgemm<double>(dev, a, a, opt);
}

TEST(BackendParity, NativeMatchesSimulatedAcrossThreads)
{
    const auto suite = gen::adversarial_suite(kSeed, 30);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite[i].matrix;
        const auto ref = simulated_reference(a);
        for (const int threads : kThreadSweep) {
            sim::Device dev = p100();
            const auto out = hash_spgemm<double>(dev, a, a, native_opt(threads));
            EXPECT_TRUE(out.matrix == ref.matrix)
                << "native(threads=" << threads << ") diverged on case #" << i << " ("
                << suite[i].name << ")";
            EXPECT_EQ(out.stats.intermediate_products, ref.stats.intermediate_products);
            EXPECT_EQ(out.stats.nnz_c, ref.stats.nnz_c);
            // Valid-but-hostile inputs never trip the containment ladder
            // on the native path either: every thread-private table is
            // sized for its row's worst case.
            EXPECT_EQ(out.stats.faulted_rows, 0) << "case #" << i;
            EXPECT_EQ(out.stats.host_fallback_rows, 0) << "case #" << i;
            EXPECT_GE(out.stats.wall_seconds, 0.0);
        }
    }
}

TEST(BackendParity, NativeMatchesSimulatedAcrossPlanModes)
{
    const auto suite = gen::adversarial_suite(kSeed ^ 0x9e3779b9, 12);
    // Starved sample + full confidence maximises mispredictions; the rich
    // hybrid setting exercises the low-confidence exact recount.
    struct ModeCase {
        core::PlanMode mode;
        double sample_rate;
        double confidence;
    };
    const ModeCase modes[] = {
        {core::PlanMode::kExact, 0.05, 0.5},
        {core::PlanMode::kEstimated, 0.02, 0.0},
        {core::PlanMode::kEstimated, 0.25, 0.0},
        {core::PlanMode::kHybrid, 0.05, 0.9},
    };
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite[i].matrix;
        const auto ref = simulated_reference(a);
        for (const auto& mc : modes) {
            for (const int threads : kThreadSweep) {
                core::Options opt = native_opt(threads);
                opt.plan_mode = mc.mode;
                opt.estimate_sample_rate = mc.sample_rate;
                opt.estimate_confidence = mc.confidence;
                sim::Device dev = p100();
                const auto out = hash_spgemm<double>(dev, a, a, opt);
                EXPECT_TRUE(out.matrix == ref.matrix)
                    << "native plan_mode=" << static_cast<int>(mc.mode)
                    << " sample=" << mc.sample_rate << " threads=" << threads
                    << " diverged on case #" << i << " (" << suite[i].name << ")";
            }
        }
    }
}

TEST(BackendParity, RowFaultInjectionReproducesSimulatedRecovery)
{
    const auto suite = gen::adversarial_suite(kSeed ^ 0x51ed2701, 10);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite[i].matrix;
        const auto clean = simulated_reference(a);

        core::Options inj;
        inj.inject_symbolic_row_faults = {0, 3, 5};
        inj.inject_numeric_row_faults = {1, 4};
        const auto sim_out = simulated_reference(a, inj);
        // Injection never changes bytes on the simulated backend...
        ASSERT_TRUE(sim_out.matrix == clean.matrix) << "case #" << i;

        for (const int threads : kThreadSweep) {
            sim::Device dev = p100();
            const auto out = hash_spgemm<double>(dev, a, a, native_opt(threads, inj));
            // ...nor on the native backend, and both ladders contain the
            // same rows with the same effort.
            EXPECT_TRUE(out.matrix == clean.matrix)
                << "native(threads=" << threads << ") diverged under injection on case #"
                << i << " (" << suite[i].name << ")";
            EXPECT_EQ(out.stats.faulted_rows, sim_out.stats.faulted_rows) << "case #" << i;
            EXPECT_EQ(out.stats.row_retries, sim_out.stats.row_retries) << "case #" << i;
            EXPECT_EQ(out.stats.host_fallback_rows, sim_out.stats.host_fallback_rows)
                << "case #" << i;
        }
    }
}

TEST(BackendParity, NativePlanModesAbsorbInjectedFaults)
{
    const auto suite = gen::adversarial_suite(kSeed ^ 0x2545f491, 8);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite[i].matrix;
        const auto ref = simulated_reference(a);
        for (const auto mode : {core::PlanMode::kEstimated, core::PlanMode::kHybrid}) {
            core::Options opt = native_opt(2);
            opt.plan_mode = mode;
            opt.estimate_sample_rate = 0.05;
            opt.inject_symbolic_row_faults = {2};
            opt.inject_numeric_row_faults = {0, 6};
            sim::Device dev = p100();
            const auto out = hash_spgemm<double>(dev, a, a, opt);
            EXPECT_TRUE(out.matrix == ref.matrix)
                << "native estimated injection diverged on case #" << i << " ("
                << suite[i].name << ")";
            EXPECT_GE(out.stats.faulted_rows, 1) << "case #" << i;
        }
    }
}

TEST(BackendParity, AllocationFaultPlanComposesWithNativePath)
{
    const auto c = gen::adversarial_case(kSeed, 7);
    const auto ref = simulated_reference(c.matrix);
    for (std::int64_t fail_at = 0; fail_at < 12; ++fail_at) {
        sim::Device dev = p100();
        sim::FaultPlan plan;
        plan.fail_at_alloc = fail_at;
        dev.allocator().set_fault_plan(plan);
        try {
            const auto out = hash_spgemm<double>(dev, c.matrix, c.matrix, native_opt(2));
            EXPECT_TRUE(out.matrix == ref.matrix)
                << "native under fail_at_alloc=" << fail_at << " diverged";
        } catch (const DeviceOutOfMemory&) {
            // Acceptable when the slab ladder itself is starved; the
            // allocator must balance its books either way.
        }
        dev.allocator().set_fault_plan(sim::FaultPlan{});
        dev.reclaim();
        EXPECT_EQ(dev.allocator().live_bytes(), 0u) << "leak at fail_at=" << fail_at;
    }
}

TEST(BackendParity, SlabFallbackProducesIdenticalBytesNatively)
{
    // A device too small for the unchunked attempt: the OOM unwind must
    // engage the row-slab ladder with the native backend doing the slab
    // work, and still reproduce the reference bytes.
    const auto a = gen::uniform_random(600, 600, 24, /*seed=*/11);
    const auto ref = simulated_reference(a);
    sim::DeviceSpec spec = sim::DeviceSpec::pascal_p100();
    spec.memory_capacity = 220 * 1024;
    sim::Device dev{spec};
    const auto out = hash_spgemm<double>(dev, a, a, native_opt(2));
    EXPECT_TRUE(out.matrix == ref.matrix);
    EXPECT_GE(out.stats.fallback_slabs, 2);
}

TEST(BackendParity, SessionRunsNativeBackendThroughTheLadder)
{
    SessionConfig cfg;
    cfg.options.backend = core::BackendKind::kNative;
    cfg.options.executor_threads = 2;
    Session session(cfg);
    const auto suite = gen::adversarial_suite(kSeed ^ 0x7f4a7c15, 6);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto& a = suite[i].matrix;
        const auto ref = simulated_reference(a);
        const auto res = session.multiply<double>(a, a);
        ASSERT_TRUE(res.ok()) << res.error_message;
        EXPECT_EQ(res.outcome, RequestOutcome::kCompleted);
        EXPECT_TRUE(res.out.matrix == ref.matrix) << "session native diverged on case #"
                                                  << i << " (" << suite[i].name << ")";
    }
}

TEST(BackendParity, SessionDeadlineTripsDeterministicallyOnNative)
{
    // Native elapsed simulated time advances only through the allocation
    // hooks, so a sub-microsecond sim budget reliably trips at the first
    // post-upload cancellation point — same boundary on every run.
    SessionConfig cfg;
    cfg.options.backend = core::BackendKind::kNative;
    Session session(cfg);
    const auto a = gen::uniform_random(300, 300, 16, /*seed=*/5);
    RequestBudget budget;
    budget.sim_seconds = 1e-9;
    const auto res = session.multiply<double>(a, a, budget);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.outcome, RequestOutcome::kDeadline);

    // The session stays usable for the next (unbudgeted) request.
    const auto ok = session.multiply<double>(a, a);
    ASSERT_TRUE(ok.ok()) << ok.error_message;
    EXPECT_TRUE(ok.out.matrix == simulated_reference(a).matrix);
}

TEST(BackendParity, CleanEstimatedRunChargesOneRetryPerMisprediction)
{
    // Clean-run invariant shared with the simulated backend: every
    // mispredicted row is repaired by exactly one rewrite pass.
    const auto a = gen::uniform_random(500, 500, 20, /*seed=*/23);
    core::Options opt = native_opt(2);
    opt.plan_mode = core::PlanMode::kEstimated;
    opt.estimate_sample_rate = 0.02;
    opt.estimate_confidence = 0.0;
    sim::Device dev = p100();
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == simulated_reference(a).matrix);
    EXPECT_GT(out.stats.estimated_rows, 0);
    EXPECT_EQ(out.stats.row_retries, out.stats.mispredicted_rows);
    EXPECT_EQ(out.stats.faulted_rows, 0);
    EXPECT_EQ(out.stats.host_fallback_rows, 0);
}

TEST(BackendParity, QuietKnobSuppressesWithoutConsumingTheLatch)
{
    // API smoke: the switch reads back, the env override composes with it,
    // and a quiet run still resolves threads to the same values.
    const bool before = sim::warnings_quiet();
    sim::set_warnings_quiet(true);
    EXPECT_TRUE(sim::warnings_quiet());

    const auto a = gen::uniform_random(100, 100, 8, /*seed=*/3);
    core::Options opt = native_opt(-3);  // negative: would warn when loud
    opt.quiet = true;
    sim::Device dev = p100();
    const auto out = hash_spgemm<double>(dev, a, a, opt);
    EXPECT_TRUE(out.matrix == simulated_reference(a).matrix);

    sim::set_warnings_quiet(before);
    EXPECT_EQ(sim::warnings_quiet(), before);
}

}  // namespace
}  // namespace nsparse
