// Solver substrate: AMG hierarchy construction (on the simulated device's
// SpGEMM), V-cycle convergence, CG with and without AMG preconditioning.
#include <gtest/gtest.h>

#include "solver/amg.hpp"
#include "sparse/equality.hpp"
#include "solver/cg.hpp"

namespace nsparse::solver {
namespace {

/// 2-D Poisson 5-point operator (SPD).
CsrMatrix<double> poisson2d(index_t n)
{
    CsrMatrix<double> m;
    m.rows = m.cols = n * n;
    m.rpt.assign(to_size(m.rows) + 1, 0);
    const auto at = [n](index_t x, index_t y) { return y * n + x; };
    for (index_t y = 0; y < n; ++y) {
        for (index_t x = 0; x < n; ++x) {
            const auto push = [&](index_t xx, index_t yy, double v) {
                if (xx < 0 || xx >= n || yy < 0 || yy >= n) { return; }
                m.col.push_back(at(xx, yy));
                m.val.push_back(v);
            };
            push(x, y - 1, -1.0);
            push(x - 1, y, -1.0);
            push(x, y, 4.0);
            push(x + 1, y, -1.0);
            push(x, y + 1, -1.0);
            m.rpt[to_size(at(x, y)) + 1] = to_index(m.col.size());
        }
    }
    m.validate();
    return m;
}

TEST(StrengthGraph, KeepsDiagonalAndStrongEntries)
{
    const auto a = poisson2d(8);
    const auto s = strength_graph(a, 0.25);
    // Poisson: all off-diagonals equally strong -> graph unchanged.
    EXPECT_EQ(s.nnz(), a.nnz());
    const auto weak = strength_graph(a, 0.3);
    // theta above 1/4 removes the off-diagonal couplings, keeps diagonal.
    EXPECT_EQ(weak.nnz(), a.rows);
}

TEST(Aggregate, PartitionCoversAllNodes)
{
    const auto a = poisson2d(10);
    const auto t = aggregate(strength_graph(a, 0.25));
    EXPECT_EQ(t.rows, 100);
    EXPECT_GT(t.cols, 0);
    EXPECT_LT(t.cols, 100);  // actually coarsens
    // every row has exactly one unit entry
    for (index_t i = 0; i < t.rows; ++i) {
        ASSERT_EQ(t.row_nnz(i), 1);
        EXPECT_DOUBLE_EQ(t.row_vals(i)[0], 1.0);
    }
}

TEST(AmgHierarchy, BuildsMultipleLevelsAndShrinks)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto a = poisson2d(32);
    const AmgHierarchy amg(dev, a);
    ASSERT_GE(amg.stats().levels, 2);
    for (std::size_t l = 1; l < amg.levels().size(); ++l) {
        EXPECT_LT(amg.levels()[l].a.rows, amg.levels()[l - 1].a.rows);
    }
    EXPECT_GT(amg.stats().total_spgemm_products, 0);
    EXPECT_GT(amg.stats().spgemm_seconds, 0.0);
    EXPECT_GE(amg.stats().operator_complexity, 1.0);
    EXPECT_LT(amg.stats().operator_complexity, 3.0);  // sane SA complexity
}

TEST(AmgHierarchy, GalerkinOperatorsStaySymmetric)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto a = poisson2d(16);
    const AmgHierarchy amg(dev, a);
    for (const auto& lv : amg.levels()) {
        const auto t = transpose(lv.a);
        EXPECT_TRUE(nsparse::approx_equal(lv.a, t, 1e-10));
    }
}

TEST(AmgHierarchy, VcycleReducesResidual)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto a = poisson2d(24);
    const AmgHierarchy amg(dev, a);
    const auto n = to_size(a.rows);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    std::vector<double> r(n);

    const auto residual = [&] {
        spmv(a, std::span<const double>(x), std::span<double>(r));
        for (std::size_t i = 0; i < n; ++i) { r[i] = b[i] - r[i]; }
        return norm2(std::span<const double>(r));
    };
    // Simple SA with one damped-Jacobi sweep each side converges at a
    // factor ~0.7 per cycle on Poisson: require monotone decrease and an
    // order of magnitude over eight cycles.
    const double r0 = residual();
    double prev = r0;
    for (int c = 0; c < 8; ++c) {
        amg.v_cycle(std::span<const double>(b), std::span<double>(x));
        const double rc = residual();
        EXPECT_LT(rc, prev) << "cycle " << c;
        prev = rc;
    }
    EXPECT_LT(prev, 0.1 * r0);
}

TEST(ConjugateGradient, SolvesPoissonUnpreconditioned)
{
    const auto a = poisson2d(16);
    const auto n = to_size(a.rows);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    const auto res = conjugate_gradient(a, std::span<const double>(b), std::span<double>(x));
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.relative_residual, 1e-8);
}

TEST(ConjugateGradient, AmgPreconditioningCutsIterations)
{
    const auto a = poisson2d(40);
    const auto n = to_size(a.rows);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) { b[i] = std::sin(0.37 * static_cast<double>(i)); }

    std::vector<double> x_plain(n, 0.0);
    const auto plain =
        conjugate_gradient(a, std::span<const double>(b), std::span<double>(x_plain));

    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const AmgHierarchy amg(dev, a);
    std::vector<double> x_amg(n, 0.0);
    const auto pre = conjugate_gradient(
        a, std::span<const double>(b), std::span<double>(x_amg), {},
        [&](std::span<const double> rr, std::span<double> zz) { amg.v_cycle(rr, zz); });

    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(pre.converged);
    EXPECT_LT(pre.iterations, plain.iterations / 2) << "AMG should cut CG iterations";

    // both reach the same solution
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        max_diff = std::max(max_diff, std::abs(x_plain[i] - x_amg[i]));
    }
    EXPECT_LT(max_diff, 1e-5);
}

TEST(ConjugateGradient, NonSquareThrows)
{
    CsrMatrix<double> a(2, 3, {0, 1, 2}, {0, 1}, {1.0, 1.0});
    std::vector<double> b(2);
    std::vector<double> x(2);
    EXPECT_THROW((void)conjugate_gradient(a, std::span<const double>(b), std::span<double>(x)),
                 PreconditionError);
}

TEST(AmgHierarchy, UnsmoothedAggregationAlsoConverges)
{
    sim::Device dev(sim::DeviceSpec::pascal_p100());
    const auto a = poisson2d(20);
    AmgOptions opt;
    opt.smoothed_aggregation = false;
    const AmgHierarchy amg(dev, a, opt);
    const auto n = to_size(a.rows);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    const auto res = conjugate_gradient(
        a, std::span<const double>(b), std::span<double>(x), {.max_iterations = 200},
        [&](std::span<const double> rr, std::span<double> zz) { amg.v_cycle(rr, zz); });
    EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace nsparse::solver
