// Device front-end tests: launch/synchronize, phases, block context cost
// charging, shared-memory discipline, warp helpers.
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/warp.hpp"

namespace nsparse::sim {
namespace {

TEST(Device, LaunchExecutesEveryBlockOnce)
{
    Device dev(DeviceSpec::pascal_p100());
    std::vector<int> hits(100, 0);
    dev.launch(dev.default_stream(), {100, 64, 0}, "touch", [&](BlockCtx& blk) {
        ++hits[to_size(blk.block_idx())];
        blk.int_ops(1, 1.0);
    });
    EXPECT_GT(dev.synchronize(), 0.0);
    for (const int h : hits) { EXPECT_EQ(h, 1); }
    EXPECT_EQ(dev.kernels_launched(), 1U);
    EXPECT_EQ(dev.blocks_executed(), 100U);
}

TEST(Device, SynchronizeIdempotentWhenNothingPending)
{
    Device dev(DeviceSpec::pascal_p100());
    EXPECT_DOUBLE_EQ(dev.synchronize(), 0.0);
}

TEST(Device, PhaseScopesBucketTime)
{
    Device dev(DeviceSpec::pascal_p100());
    {
        auto p = dev.phase_scope("count");
        dev.launch(dev.default_stream(), {10, 64, 0}, "k",
                   [](BlockCtx& b) { b.flops(64, 100.0); });
    }
    {
        auto p = dev.phase_scope("calc");
        dev.launch(dev.default_stream(), {10, 64, 0}, "k",
                   [](BlockCtx& b) { b.flops(64, 200.0); });
    }
    EXPECT_GT(dev.timeline().phase("count"), 0.0);
    EXPECT_GT(dev.timeline().phase("calc"), dev.timeline().phase("count"));
    EXPECT_DOUBLE_EQ(dev.timeline().phase("nonexistent"), 0.0);
    EXPECT_NEAR(dev.elapsed(),
                dev.timeline().phase("count") + dev.timeline().phase("calc"), 1e-15);
}

TEST(Device, NestedPhaseRestoresOuter)
{
    Device dev(DeviceSpec::pascal_p100());
    {
        auto outer = dev.phase_scope("setup");
        {
            auto inner = dev.phase_scope("count");
            dev.launch(dev.default_stream(), {1, 64, 0}, "k",
                       [](BlockCtx& b) { b.flops(1, 10.0); });
        }
        dev.launch(dev.default_stream(), {1, 64, 0}, "k",
                   [](BlockCtx& b) { b.flops(1, 10.0); });
    }
    EXPECT_GT(dev.timeline().phase("count"), 0.0);
    EXPECT_GT(dev.timeline().phase("setup"), 0.0);
}

TEST(Device, ResetMeasurementClearsTimelineAndPeak)
{
    Device dev(DeviceSpec::pascal_p100());
    {
        DeviceBuffer<double> b(dev.allocator(), 1000);
        dev.launch(dev.default_stream(), {1, 64, 0}, "k",
                   [](BlockCtx& c) { c.flops(1, 10.0); });
        dev.synchronize();
    }
    dev.reset_measurement();
    EXPECT_DOUBLE_EQ(dev.elapsed(), 0.0);
    EXPECT_EQ(dev.allocator().peak_bytes(), dev.allocator().live_bytes());
    EXPECT_EQ(dev.kernels_launched(), 0U);
}

TEST(Device, StreamsGetDistinctIds)
{
    Device dev(DeviceSpec::pascal_p100());
    const auto s1 = dev.create_stream();
    const auto s2 = dev.create_stream();
    EXPECT_NE(s1.id, s2.id);
    EXPECT_NE(s1.id, dev.default_stream().id);
}

TEST(Device, RejectsOversizedBlockConfig)
{
    Device dev(DeviceSpec::pascal_p100());
    EXPECT_THROW(dev.launch(dev.default_stream(), {1, 2048, 0}, "big", [](BlockCtx&) {}),
                 PreconditionError);
    EXPECT_THROW(dev.launch(dev.default_stream(), {1, 64, 1 << 20}, "smem", [](BlockCtx&) {}),
                 PreconditionError);
}

TEST(BlockCtx, WorkAndSpanSemantics)
{
    const CostModel m;
    LaunchConfig cfg{1, 64, 0};
    BlockCtx blk(0, cfg, m);
    blk.charge(32, 10.0);  // 32 lanes x 10 cycles
    EXPECT_DOUBLE_EQ(blk.cost().work, 320.0);
    EXPECT_DOUBLE_EQ(blk.cost().span, 10.0);
    blk.charge_work_span(100.0, 5.0);
    EXPECT_DOUBLE_EQ(blk.cost().work, 420.0);
    EXPECT_DOUBLE_EQ(blk.cost().span, 15.0);
}

TEST(BlockCtx, GlobalAccessTracksBytes)
{
    const CostModel m;
    LaunchConfig cfg{1, 32, 0};
    BlockCtx blk(0, cfg, m);
    blk.global_read(32, 8, MemPattern::kCoalesced, 2.0);
    EXPECT_DOUBLE_EQ(blk.cost().global_bytes, 32 * 8 * 2.0);
    EXPECT_GT(blk.cost().work, 0.0);
}

TEST(BlockCtx, RandomAccessCostsMoreThanCoalesced)
{
    const CostModel m;
    EXPECT_GT(m.global_cost(4, MemPattern::kRandom), m.global_cost(4, MemPattern::kCoalesced));
    // cost scales with bytes
    EXPECT_GT(m.global_cost(64, MemPattern::kCoalesced), m.global_cost(4, MemPattern::kCoalesced));
}

TEST(BlockCtx, SharedAllocWithinDeclaredLimit)
{
    const CostModel m;
    LaunchConfig cfg{1, 64, 1024};
    BlockCtx blk(0, cfg, m);
    auto s1 = blk.shared_alloc<index_t>(128);  // 512 B
    EXPECT_EQ(s1.size(), 128U);
    auto s2 = blk.shared_alloc<index_t>(128);  // another 512 B: exactly full
    EXPECT_EQ(s2.size(), 128U);
    EXPECT_THROW((void)blk.shared_alloc<index_t>(1), PreconditionError);
}

TEST(Warp, ReduceSumCorrectAndCharged)
{
    const CostModel m;
    LaunchConfig cfg{1, 32, 0};
    BlockCtx blk(0, cfg, m);
    const std::vector<index_t> lanes{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(warp_reduce_sum(blk, std::span<const index_t>(lanes)), 36);
    EXPECT_GT(blk.cost().work, 0.0);
}

TEST(Warp, BlockScanExclusive)
{
    const CostModel m;
    LaunchConfig cfg{1, 32, 0};
    BlockCtx blk(0, cfg, m);
    std::vector<index_t> v{3, 1, 4, 1, 5};
    block_exclusive_scan(blk, std::span<index_t>(v));
    EXPECT_EQ(v, (std::vector<index_t>{0, 3, 4, 8, 9}));
}

TEST(Device, MallocChargedToDedicatedBucket)
{
    Device dev(DeviceSpec::pascal_p100());
    {
        auto p = dev.phase_scope("setup");
        DeviceBuffer<double> b(dev.allocator(), 1 << 20);
        EXPECT_GT(dev.malloc_seconds(), 0.0);
        EXPECT_DOUBLE_EQ(dev.timeline().phase("setup"), 0.0);  // malloc not in setup
    }
}

TEST(Device, LargerAllocationsCostMoreMallocTime)
{
    Device dev(DeviceSpec::pascal_p100());
    DeviceBuffer<double> small(dev.allocator(), 100);
    const double t1 = dev.malloc_seconds();
    DeviceBuffer<double> big(dev.allocator(), 10 << 20);
    EXPECT_GT(dev.malloc_seconds() - t1, t1);
}

}  // namespace
}  // namespace nsparse::sim
