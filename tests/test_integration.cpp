// Integration: every dataset analogue x every algorithm x both precisions
// agrees with the sequential reference (at an aggressive extra scale so
// the whole sweep stays fast), and the headline qualitative results hold
// on the simulated device.
#include <gtest/gtest.h>

#include "baselines/bhsparse.hpp"
#include "baselines/cusparse_like.hpp"
#include "baselines/esc.hpp"
#include "core/spgemm.hpp"
#include "matgen/dataset_suite.hpp"
#include "sparse/equality.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/reference_spgemm.hpp"

namespace nsparse {
namespace {

constexpr double kExtraScale = 16.0;  // on top of each dataset's default

template <ValueType T>
SpgemmOutput<T> run(const std::string& alg, sim::Device& dev, const CsrMatrix<T>& a)
{
    if (alg == "CUSP") { return baseline::esc_spgemm<T>(dev, a, a); }
    if (alg == "cuSPARSE") { return baseline::cusparse_spgemm<T>(dev, a, a); }
    if (alg == "BHSPARSE") { return baseline::bhsparse_spgemm<T>(dev, a, a); }
    return hash_spgemm<T>(dev, a, a);
}

class DatasetAlgo
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(DatasetAlgo, MatchesReferenceBothPrecisions)
{
    const auto [dataset, alg] = GetParam();
    const auto ad = gen::make_dataset(dataset, kExtraScale);
    const auto ref = reference_spgemm(ad, ad);
    {
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = run<double>(alg, dev, ad);
        const auto diff = compare_csr(out.matrix, ref, 1e-8);
        EXPECT_FALSE(diff.has_value()) << dataset << "/" << alg << ": " << *diff;
        EXPECT_EQ(out.stats.intermediate_products, total_intermediate_products(ad, ad));
    }
    {
        const auto af = convert_values<float>(ad);
        sim::Device dev(sim::DeviceSpec::pascal_p100());
        const auto out = run<float>(alg, dev, af);
        // float accumulation order differs per algorithm; structural equality
        // plus loose value tolerance
        const auto rf = reference_spgemm(af, af);
        const auto diff = compare_csr(out.matrix, rf, 5e-3);
        EXPECT_FALSE(diff.has_value()) << dataset << "/" << alg << " (float): " << *diff;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DatasetAlgo,
    ::testing::Combine(::testing::Values("Protein", "FEM/Spheres", "QCD", "FEM/Accelerator",
                                         "Economics", "Circuit", "Epidemiology", "webbase",
                                         "cage15", "wb-edu", "cit-Patents"),
                       ::testing::Values("CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL")),
    [](const auto& param_info) {
        std::string n = std::string(std::get<0>(param_info.param)) + "_" +
                        std::get<1>(param_info.param);
        for (char& c : n) {
            if (c == '/' || c == ' ' || c == '-') { c = '_'; }
        }
        return n;
    });

TEST(IntegrationHeadline, ProposalFastestOnEveryDataset)
{
    // The paper's headline: best performance on all evaluated matrices.
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = gen::make_dataset(spec.name, kExtraScale);
        double best_baseline = 0.0;
        double proposal = 0.0;
        for (const auto* alg : {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"}) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = run<double>(alg, dev, a);
            if (std::string(alg) == "PROPOSAL") {
                proposal = out.stats.gflops();
            } else {
                best_baseline = std::max(best_baseline, out.stats.gflops());
            }
        }
        EXPECT_GT(proposal, best_baseline) << spec.name;
    }
}

TEST(IntegrationHeadline, ProposalLowestMemoryOnEveryDataset)
{
    for (const auto& spec : gen::dataset_suite()) {
        if (spec.large_graph) { continue; }
        const auto a = gen::make_dataset(spec.name, kExtraScale);
        std::size_t best_baseline = SIZE_MAX;
        std::size_t proposal = 0;
        for (const auto* alg : {"CUSP", "cuSPARSE", "BHSPARSE", "PROPOSAL"}) {
            sim::Device dev(sim::DeviceSpec::pascal_p100());
            const auto out = run<double>(alg, dev, a);
            if (std::string(alg) == "PROPOSAL") {
                proposal = out.stats.peak_bytes;
            } else {
                best_baseline = std::min(best_baseline, out.stats.peak_bytes);
            }
        }
        EXPECT_LT(proposal, best_baseline) << spec.name;
    }
}

}  // namespace
}  // namespace nsparse
